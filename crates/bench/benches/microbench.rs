//! Microbenchmarks for the substrate costs behind the experiments: tree
//! operations, ADORE step latencies, invariant evaluation (including the
//! rdist ablation), checker throughput, trace normalization, and
//! simulated-cluster request latency.
//!
//! Plain `harness = false` timing loops (criterion is unavailable
//! offline; see `vendor/README.md`): each benchmark runs a calibrated
//! number of iterations and reports the mean wall-clock time per
//! iteration. Run with `cargo bench -p adore-bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use adore_checker::{explore, ExploreParams, InvariantSuite};
use adore_core::majority::Majority;
use adore_core::{
    invariants, node_set, AdoreState, NodeId, PullDecision, PushDecision, ReconfigGuard, Timestamp,
};
use adore_kv::{Cluster, KvCommand, LatencyModel};
use adore_raft::{normalize, random_trace, ScheduleParams};
use adore_schemes::SingleNode;
use adore_tree::Tree;

/// Times `f`, repeating until ~50 ms have elapsed (at least 3, at most
/// 10 000 iterations), and prints the mean per-iteration latency.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let budget = Duration::from_millis(50);
    let mut iters = 0u32;
    let start = Instant::now();
    loop {
        black_box(f());
        iters += 1;
        if (start.elapsed() >= budget && iters >= 3) || iters >= 10_000 {
            break;
        }
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<42} {:>12} /iter  (n={iters})", fmt_ns(per_iter));
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.2}us", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns}ns")
    }
}

/// Builds an ADORE state with `rounds` election/invoke/commit rounds plus a
/// guarded reconfiguration per round.
fn build_state(rounds: u64) -> AdoreState<SingleNode, &'static str> {
    let mut st = AdoreState::new(SingleNode::new([1, 2, 3]));
    for r in 0..rounds {
        let t = Timestamp(r + 1);
        st.pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: t,
            },
        )
        .expect("valid pull");
        let m = st.invoke(NodeId(1), "m").applied().expect("leader invokes");
        st.push(
            NodeId(1),
            &PushDecision::Ok {
                supporters: node_set([1, 2]),
                target: m,
            },
        )
        .expect("valid push");
        let _ = st.reconfig(NodeId(1), SingleNode::new([1, 2, 3]), ReconfigGuard::all());
    }
    st
}

fn bench_tree() {
    bench("tree/add_leaf_chain_1k", || {
        let mut tree = Tree::new(0u32);
        let mut cur = Tree::<u32>::ROOT;
        for i in 0..1_000 {
            cur = tree.add_leaf(cur, i).expect("parent exists");
        }
        tree
    });
    let mut tree = Tree::new(0u32);
    let mut tips = vec![Tree::<u32>::ROOT];
    for i in 0..1_000 {
        let parent = tips[i % tips.len()];
        tips.push(tree.add_leaf(parent, i as u32).expect("parent exists"));
    }
    let a = tips[500];
    let b_node = tips[900];
    bench("tree/nca_1k_nodes", || {
        tree.nearest_common_ancestor(a, b_node)
    });
    bench("tree/path_interior_1k_nodes", || {
        tree.path_interior(a, b_node)
    });
    bench("tree/check_well_formed_1k", || tree.check_well_formed());
}

fn bench_ops() {
    let st = build_state(8);
    bench("adore_ops/pull_step", || {
        let mut s = st.clone();
        s.pull(
            NodeId(2),
            &PullDecision::Ok {
                supporters: node_set([2, 3]),
                time: Timestamp(100),
            },
        )
        .expect("valid pull")
    });
    bench("adore_ops/invoke_step", || {
        let mut s = st.clone();
        s.invoke(NodeId(1), "x")
    });
    bench("adore_ops/enumerate_pull_decisions", || {
        adore_core::enumerate::pull_decisions(&st, NodeId(2))
    });
    bench("adore_ops/enumerate_push_decisions", || {
        adore_core::enumerate::push_decisions(&st, NodeId(1))
    });
}

fn bench_invariants() {
    for rounds in [4u64, 16, 64] {
        let st = build_state(rounds);
        bench(&format!("invariants/check_safety/{rounds}"), || {
            invariants::check_safety(&st)
        });
        bench(&format!("invariants/check_all/{rounds}"), || {
            invariants::check_all(&st)
        });
        bench(&format!("invariants/tree_rdist/{rounds}"), || {
            invariants::tree_rdist(&st)
        });
        // Ablation: the per-reconfig guard checks R2/R3 walk the active
        // branch; measure them on the deepest cache.
        let deepest = st.tree().ids().last().expect("non-empty tree");
        bench(&format!("invariants/r2_r3_guards/{rounds}"), || {
            (st.r2_holds(deepest), st.r3_holds(deepest))
        });
    }
}

fn bench_checker() {
    bench("checker/explore_2n_depth4_cado", || {
        explore(
            &SingleNode::new([1, 2]),
            &ExploreParams {
                max_depth: 4,
                with_reconfig: false,
                spare_nodes: 0,
                suite: InvariantSuite::SafetyOnly,
                ..ExploreParams::default()
            },
        )
    });
    bench("checker/explore_2n_depth4_adore", || {
        explore(
            &SingleNode::new([1, 2]),
            &ExploreParams {
                max_depth: 4,
                spare_nodes: 1,
                suite: InvariantSuite::SafetyOnly,
                ..ExploreParams::default()
            },
        )
    });
}

fn bench_refinement() {
    let conf0 = SingleNode::new([1, 2, 3]);
    let trace = random_trace(
        &conf0,
        ReconfigGuard::all(),
        &ScheduleParams {
            steps: 150,
            ..ScheduleParams::default()
        },
        1,
        1,
    );
    bench("refinement/normalize_150_events", || {
        normalize(&conf0, ReconfigGuard::all(), &trace).expect("equivalence holds")
    });
    bench("refinement/check_refinement_150_events", || {
        adore_raft::check_refinement(&conf0, ReconfigGuard::all(), &trace, true)
            .expect("equivalence holds")
    });
}

fn bench_cluster() {
    bench("kv_cluster/serve_100_requests_5n", || {
        let mut cluster = Cluster::new(SingleNode::new([1, 2, 3, 4, 5]), LatencyModel::default(), 1);
        cluster.elect(NodeId(1)).expect("election succeeds");
        for i in 0..100 {
            cluster
                .submit(KvCommand::put(format!("k{i}"), "v"))
                .expect("commit succeeds");
        }
        cluster
    });
}

fn bench_majority_baseline() {
    // The Majority scheme is the CADO baseline; compare a pull step under
    // it against the single-node scheme (the ablation DESIGN.md calls out:
    // scheme complexity does not leak into step cost).
    let st_major: AdoreState<Majority, &'static str> = AdoreState::new(Majority::new([1, 2, 3]));
    let st_single: AdoreState<SingleNode, &'static str> =
        AdoreState::new(SingleNode::new([1, 2, 3]));
    bench("scheme_ablation/pull_majority", || {
        let mut s = st_major.clone();
        s.pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: Timestamp(1),
            },
        )
        .expect("valid pull")
    });
    bench("scheme_ablation/pull_single_node", || {
        let mut s = st_single.clone();
        s.pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: Timestamp(1),
            },
        )
        .expect("valid pull")
    });
}

fn bench_schemes() {
    use adore_schemes::{powerset_configs, validate};
    let universe = node_set([1, 2, 3, 4]);
    let configs = powerset_configs(&universe, SingleNode::from_set);
    bench("schemes/validate_single_node_4n", || validate(&configs));
}

fn bench_churn() {
    use adore_kv::{run_churn, ChurnParams};
    bench("churn/repair_200_requests", || {
        run_churn(
            &ChurnParams {
                crash_every: 40,
                total_requests: 200,
                ..ChurnParams::default()
            },
            1,
        )
    });
}

fn bench_shrink() {
    use adore_checker::{fig4_scenario, shrink_trace};
    let scenario = fig4_scenario(ReconfigGuard::all().without_r3());
    bench("shrink/shrink_fig4_trace", || {
        shrink_trace(&scenario.conf0, scenario.guard, &scenario.ops)
    });
}

fn main() {
    println!("{:<42} {:>18}", "benchmark", "mean latency");
    bench_tree();
    bench_ops();
    bench_invariants();
    bench_checker();
    bench_refinement();
    bench_cluster();
    bench_majority_baseline();
    bench_schemes();
    bench_churn();
    bench_shrink();
}
