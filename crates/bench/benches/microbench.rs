//! Criterion microbenchmarks for the substrate costs behind the
//! experiments: tree operations, ADORE step latencies, invariant
//! evaluation (including the rdist ablation), checker throughput, trace
//! normalization, and simulated-cluster request latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adore_checker::{explore, ExploreParams, InvariantSuite};
use adore_core::majority::Majority;
use adore_core::{
    invariants, node_set, AdoreState, NodeId, PullDecision, PushDecision, ReconfigGuard, Timestamp,
};
use adore_kv::{Cluster, KvCommand, LatencyModel};
use adore_raft::{normalize, random_trace, ScheduleParams};
use adore_schemes::SingleNode;
use adore_tree::Tree;

/// Builds an ADORE state with `rounds` election/invoke/commit rounds plus a
/// guarded reconfiguration per round.
fn build_state(rounds: u64) -> AdoreState<SingleNode, &'static str> {
    let mut st = AdoreState::new(SingleNode::new([1, 2, 3]));
    for r in 0..rounds {
        let t = Timestamp(r + 1);
        st.pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: t,
            },
        )
        .expect("valid pull");
        let m = st.invoke(NodeId(1), "m").applied().expect("leader invokes");
        st.push(
            NodeId(1),
            &PushDecision::Ok {
                supporters: node_set([1, 2]),
                target: m,
            },
        )
        .expect("valid push");
        let _ = st.reconfig(NodeId(1), SingleNode::new([1, 2, 3]), ReconfigGuard::all());
    }
    st
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree");
    group.bench_function("add_leaf_chain_1k", |b| {
        b.iter(|| {
            let mut tree = Tree::new(0u32);
            let mut cur = Tree::<u32>::ROOT;
            for i in 0..1_000 {
                cur = tree.add_leaf(cur, i).expect("parent exists");
            }
            tree
        });
    });
    let mut tree = Tree::new(0u32);
    let mut tips = vec![Tree::<u32>::ROOT];
    for i in 0..1_000 {
        let parent = tips[i % tips.len()];
        tips.push(tree.add_leaf(parent, i as u32).expect("parent exists"));
    }
    let a = tips[500];
    let b_node = tips[900];
    group.bench_function("nca_1k_nodes", |b| {
        b.iter(|| tree.nearest_common_ancestor(a, b_node));
    });
    group.bench_function("path_interior_1k_nodes", |b| {
        b.iter(|| tree.path_interior(a, b_node));
    });
    group.bench_function("check_well_formed_1k", |b| {
        b.iter(|| tree.check_well_formed());
    });
    group.finish();
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("adore_ops");
    let st = build_state(8);
    group.bench_function("pull_step", |b| {
        b.iter(|| {
            let mut s = st.clone();
            s.pull(
                NodeId(2),
                &PullDecision::Ok {
                    supporters: node_set([2, 3]),
                    time: Timestamp(100),
                },
            )
            .expect("valid pull")
        });
    });
    group.bench_function("invoke_step", |b| {
        b.iter(|| {
            let mut s = st.clone();
            s.invoke(NodeId(1), "x")
        });
    });
    group.bench_function("enumerate_pull_decisions", |b| {
        b.iter(|| adore_core::enumerate::pull_decisions(&st, NodeId(2)));
    });
    group.bench_function("enumerate_push_decisions", |b| {
        b.iter(|| adore_core::enumerate::push_decisions(&st, NodeId(1)));
    });
    group.finish();
}

fn bench_invariants(c: &mut Criterion) {
    let mut group = c.benchmark_group("invariants");
    for rounds in [4u64, 16, 64] {
        let st = build_state(rounds);
        group.bench_with_input(BenchmarkId::new("check_safety", rounds), &st, |b, st| {
            b.iter(|| invariants::check_safety(st));
        });
        group.bench_with_input(BenchmarkId::new("check_all", rounds), &st, |b, st| {
            b.iter(|| invariants::check_all(st));
        });
        group.bench_with_input(BenchmarkId::new("tree_rdist", rounds), &st, |b, st| {
            b.iter(|| invariants::tree_rdist(st));
        });
        // Ablation: the per-reconfig guard checks R2/R3 walk the active
        // branch; measure them on the deepest cache.
        let deepest = st.tree().ids().last().expect("non-empty tree");
        group.bench_with_input(BenchmarkId::new("r2_r3_guards", rounds), &st, |b, st| {
            b.iter(|| (st.r2_holds(deepest), st.r3_holds(deepest)));
        });
    }
    group.finish();
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    group.sample_size(10);
    group.bench_function("explore_2n_depth4_cado", |b| {
        b.iter(|| {
            explore(
                &SingleNode::new([1, 2]),
                &ExploreParams {
                    max_depth: 4,
                    with_reconfig: false,
                    spare_nodes: 0,
                    suite: InvariantSuite::SafetyOnly,
                    ..ExploreParams::default()
                },
            )
        });
    });
    group.bench_function("explore_2n_depth4_adore", |b| {
        b.iter(|| {
            explore(
                &SingleNode::new([1, 2]),
                &ExploreParams {
                    max_depth: 4,
                    spare_nodes: 1,
                    suite: InvariantSuite::SafetyOnly,
                    ..ExploreParams::default()
                },
            )
        });
    });
    group.finish();
}

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement");
    group.sample_size(10);
    let conf0 = SingleNode::new([1, 2, 3]);
    let trace = random_trace(
        &conf0,
        ReconfigGuard::all(),
        &ScheduleParams {
            steps: 150,
            ..ScheduleParams::default()
        },
        1,
        1,
    );
    group.bench_function("normalize_150_events", |b| {
        b.iter(|| normalize(&conf0, ReconfigGuard::all(), &trace).expect("equivalence holds"));
    });
    group.bench_function("check_refinement_150_events", |b| {
        b.iter(|| {
            adore_raft::check_refinement(&conf0, ReconfigGuard::all(), &trace, true)
                .expect("equivalence holds")
        });
    });
    group.finish();
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_cluster");
    group.sample_size(20);
    group.bench_function("serve_100_requests_5n", |b| {
        b.iter(|| {
            let mut cluster =
                Cluster::new(SingleNode::new([1, 2, 3, 4, 5]), LatencyModel::default(), 1);
            cluster.elect(NodeId(1)).expect("election succeeds");
            for i in 0..100 {
                cluster
                    .submit(KvCommand::put(format!("k{i}"), "v"))
                    .expect("commit succeeds");
            }
            cluster
        });
    });
    group.finish();
}

fn bench_majority_baseline(c: &mut Criterion) {
    // The Majority scheme is the CADO baseline; compare a pull step under
    // it against the single-node scheme (the ablation DESIGN.md calls out:
    // scheme complexity does not leak into step cost).
    let mut group = c.benchmark_group("scheme_ablation");
    let st_major: AdoreState<Majority, &'static str> = AdoreState::new(Majority::new([1, 2, 3]));
    let st_single: AdoreState<SingleNode, &'static str> =
        AdoreState::new(SingleNode::new([1, 2, 3]));
    group.bench_function("pull_majority", |b| {
        b.iter(|| {
            let mut s = st_major.clone();
            s.pull(
                NodeId(1),
                &PullDecision::Ok {
                    supporters: node_set([1, 2]),
                    time: Timestamp(1),
                },
            )
            .expect("valid pull")
        });
    });
    group.bench_function("pull_single_node", |b| {
        b.iter(|| {
            let mut s = st_single.clone();
            s.pull(
                NodeId(1),
                &PullDecision::Ok {
                    supporters: node_set([1, 2]),
                    time: Timestamp(1),
                },
            )
            .expect("valid pull")
        });
    });
    group.finish();
}

fn bench_schemes(c: &mut Criterion) {
    use adore_schemes::{powerset_configs, validate};
    let mut group = c.benchmark_group("schemes");
    let universe = node_set([1, 2, 3, 4]);
    let configs = powerset_configs(&universe, SingleNode::from_set);
    group.bench_function("validate_single_node_4n", |b| {
        b.iter(|| validate(&configs));
    });
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    use adore_kv::{run_churn, ChurnParams};
    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    group.bench_function("repair_200_requests", |b| {
        b.iter(|| {
            run_churn(
                &ChurnParams {
                    crash_every: 40,
                    total_requests: 200,
                    ..ChurnParams::default()
                },
                1,
            )
        });
    });
    group.finish();
}

fn bench_shrink(c: &mut Criterion) {
    use adore_checker::{fig4_scenario, shrink_trace};
    let mut group = c.benchmark_group("shrink");
    group.sample_size(10);
    let scenario = fig4_scenario(ReconfigGuard::all().without_r3());
    group.bench_function("shrink_fig4_trace", |b| {
        b.iter(|| shrink_trace(&scenario.conf0, scenario.guard, &scenario.ops));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tree,
    bench_ops,
    bench_invariants,
    bench_checker,
    bench_refinement,
    bench_cluster,
    bench_majority_baseline,
    bench_schemes,
    bench_churn,
    bench_shrink
);
criterion_main!(benches);
