//! Experiment E2 — the mechanized-effort analogue of §7 "Proof Effort".
//!
//! The paper compares verification effort across abstraction levels: CADO
//! (no reconfiguration, 1.3k LoC / 2 person-weeks), full ADORE (+3 weeks),
//! and network-based approaches (Advert's 5k LoC for non-reconfigurable
//! multi-Paxos; MongoDB's 5–6 person-months for a network-level
//! reconfiguration proof). The executable analogue measures the cost of
//! *exhaustively certifying safety* in each model at equal protocol
//! progress: states, transitions, and wall-clock. The ordering the paper
//! reports — CADO < ADORE ≪ network-based — falls out of the state counts.
//!
//! Usage: `cargo run -p adore-bench --bin effort_table --release`

use adore_bench::{fmt_duration, print_table};
use adore_checker::{explore, explore_net, ExploreParams, InvariantSuite, NetExploreParams};
use adore_schemes::SingleNode;

fn main() {
    let conf0 = SingleNode::new([1, 2]);
    // One committed command costs 3 ADORE operations (pull, invoke, push)
    // but 5 network events (elect, vote delivery, invoke, commit
    // broadcast, ack delivery) on two nodes, so the two-commit horizon is
    // depth 6 for ADORE and depth 10 for the network model.
    let adore_depth = 6usize;
    let net_depth = 10usize;

    let mut rows = Vec::new();

    let cado = explore(
        &conf0,
        &ExploreParams {
            max_depth: adore_depth,
            with_reconfig: false,
            spare_nodes: 0,
            suite: InvariantSuite::Full,
            max_states: 2_000_000,
            ..ExploreParams::default()
        },
    );
    rows.push(vec![
        "CADO (no reconfig)".to_string(),
        format!("{adore_depth} ops"),
        cado.states.to_string(),
        cado.transitions.to_string(),
        fmt_duration(cado.elapsed),
        if cado.is_safe() { "✓ safe" } else { "✗" }.to_string(),
    ]);

    let adore = explore(
        &conf0,
        &ExploreParams {
            max_depth: adore_depth,
            with_reconfig: true,
            spare_nodes: 1,
            suite: InvariantSuite::Full,
            max_states: 2_000_000,
            ..ExploreParams::default()
        },
    );
    rows.push(vec![
        "ADORE (single-node reconfig)".to_string(),
        format!("{adore_depth} ops"),
        adore.states.to_string(),
        adore.transitions.to_string(),
        fmt_duration(adore.elapsed),
        if adore.is_safe() { "✓ safe" } else { "✗" }.to_string(),
    ]);

    let net = explore_net(
        &conf0,
        &NetExploreParams {
            max_depth: net_depth,
            with_reconfig: false,
            spare_nodes: 0,
            max_states: 3_000_000,
            ..NetExploreParams::default()
        },
    );
    rows.push(vec![
        "network-based (no reconfig)".to_string(),
        format!("{net_depth} events"),
        format!("{}{}", net.states, if net.truncated { "+" } else { "" }),
        net.transitions.to_string(),
        fmt_duration(net.elapsed),
        if net.log_safety_violated {
            "✗"
        } else {
            "✓ safe"
        }
        .to_string(),
    ]);

    let net_reconf = explore_net(
        &conf0,
        &NetExploreParams {
            max_depth: net_depth,
            with_reconfig: true,
            spare_nodes: 1,
            max_states: 3_000_000,
            ..NetExploreParams::default()
        },
    );
    rows.push(vec![
        "network-based (single-node reconfig)".to_string(),
        format!("{net_depth} events"),
        format!(
            "{}{}",
            net_reconf.states,
            if net_reconf.truncated { "+" } else { "" }
        ),
        net_reconf.transitions.to_string(),
        fmt_duration(net_reconf.elapsed),
        if net_reconf.log_safety_violated {
            "✗"
        } else {
            "✓ safe"
        }
        .to_string(),
    ]);

    println!("§7 'Proof Effort' analogue — exhaustive safety certification cost");
    println!("(2-node cluster, two-commit horizon, full invariant suite for ADORE)\n");
    print_table(
        &[
            "model",
            "horizon",
            "states",
            "transitions",
            "time",
            "verdict",
        ],
        &rows,
    );
    println!("\npaper: CADO 1.3k LoC / 2 wk; ADORE 4.5k LoC / +3 wk; network-level multi-Paxos");
    println!("(Advert) 5k LoC without reconfiguration; MongoDB's network-level reconfiguration");
    println!("proof took 5-6 person-months. The same ordering appears above as state-space cost.");

    assert!(
        adore.states >= cado.states,
        "reconfiguration never shrinks the space"
    );
    assert!(
        net_reconf.states > adore.states,
        "network-level reconfiguration dominates everything"
    );
}
