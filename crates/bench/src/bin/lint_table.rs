//! Static-discipline table: `adore-lint` over the whole workspace,
//! summarized per rule with the outstanding pragma debt.
//!
//! The per-rule counts make suppression auditable at a glance: every
//! pragma carries a mandatory reason, and this table is where the total
//! is watched so the debt does not quietly grow.
//!
//! Usage: `cargo run -p adore-bench --bin lint_table --release`
//! (also writes `results/lint_table.txt`).

use std::path::PathBuf;

use adore_bench::render_table;
use adore_lint::config::Config;

const RULES: &[(&str, &str)] = &[
    ("L1", "determinism (no hash order / ambient clock / ambient RNG)"),
    ("L2", "panic-free recovery (no unwrap / panic! / indexing)"),
    ("L3", "mutation encapsulation (owner-only field assignment)"),
    ("L4", "certificate hygiene (#[must_use] + consumed verdicts)"),
    ("L5", "no stray console output (print macros only in bin targets)"),
    ("L6", "guard-before-mutation (flow-sensitive R1+/R2/R3 analogue)"),
    ("L7", "nondeterminism taint (banned sources cannot reach state)"),
    ("L8", "discarded fallible results in recovery scopes"),
    ("L9", "lock-order cycles (crate-wide acquisition graph)"),
    ("L10", "no-panic lock acquisition in long-lived threads"),
    ("L11", "no lock guard held across blocking calls"),
    ("L12", "bounded-channel discipline (sync_channel + try_send)"),
    ("L13", "spec drift (differential conformance vs the checker)"),
    ("L14", "semantic guard sufficiency on protected fields"),
    ("L15", "emission order (no durable write after outbound send)"),
    ("P0", "malformed suppression pragma"),
    ("E0", "unparsable file"),
];

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_text =
        std::fs::read_to_string(root.join("adore-lint.toml")).expect("adore-lint.toml exists");
    let cfg = Config::from_toml(&cfg_text).expect("adore-lint.toml parses");
    let report = adore_lint::run_lint(&root, &cfg).expect("workspace scans");
    let tally = report.tally();

    let mut rows = Vec::new();
    for (rule, desc) in RULES {
        let (active, suppressed) = tally.get(*rule).copied().unwrap_or((0, 0));
        rows.push(vec![
            (*rule).to_string(),
            (*desc).to_string(),
            active.to_string(),
            suppressed.to_string(),
        ]);
    }

    let mut out = String::new();
    out.push_str("static discipline — adore-lint over the workspace\n\n");
    out.push_str(&render_table(
        &["rule", "what it certifies", "findings", "suppressed (pragma debt)"],
        &rows,
    ));
    out.push_str(&format!(
        "\n{} files scanned; {} unsuppressed findings, {} pragma-suppressed (each with a written reason)\n",
        report.files_scanned,
        report.active_count(),
        report.suppressed_count()
    ));

    print!("{out}");

    let results = root.join("results");
    if std::fs::create_dir_all(&results).is_ok() {
        let path = results.join("lint_table.txt");
        if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("lint_table: cannot write {}: {e}", path.display());
        }
    }

    // The table is also a gate: a dirty workspace fails the bench run
    // the same way it fails `ci.sh`.
    assert_eq!(
        report.active_count(),
        0,
        "workspace has unsuppressed lint findings"
    );
}

