//! Experiment E1 — regenerates **Fig. 16**: Raft performance under live
//! reconfiguration.
//!
//! Runs the 5 → 3 → 5 workload (1000 requests per phase, reconfiguring
//! between phases) over eight seeded simulated-network runs and prints the
//! per-request max/mean/min latency series the paper plots, bucketed for
//! terminal readability, plus an ASCII sparkline of the mean curve.
//!
//! Usage: `cargo run -p adore-bench --bin fig16 --release [requests_per_phase]`

use adore_bench::print_table;
use adore_kv::{aggregate, run_fig16, Fig16Params};

fn main() {
    let requests_per_phase: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let params = Fig16Params {
        requests_per_phase,
        ..Fig16Params::default()
    };
    let runs: Vec<_> = (0..8)
        .map(|seed| run_fig16(&params, seed).expect("loss-free simulation cannot stall"))
        .collect();
    for run in &runs {
        assert_eq!(run.records.len(), 3 * requests_per_phase);
    }
    let agg = aggregate(&runs);

    println!("Fig. 16 — latency under reconfiguration (8 runs, simulated network)");
    println!(
        "workload: {requests_per_phase} requests per phase; reconfigurations at {} (5→3) and {} (3→5)\n",
        requests_per_phase,
        2 * requests_per_phase
    );

    // Bucketed table (the paper plots per-request; a terminal wants fewer
    // rows). Buckets near the reconfiguration points are kept fine-grained.
    let bucket = (requests_per_phase / 10).max(1);
    let mut rows = Vec::new();
    let mut i = 0;
    while i < agg.len() {
        let phase_boundary = i == requests_per_phase || i == 2 * requests_per_phase;
        let width = if phase_boundary {
            1
        } else {
            bucket.min(agg.len() - i)
        };
        let slice = &agg[i..i + width];
        let min = slice.iter().map(|x| x.0).min().expect("non-empty");
        let mean = slice.iter().map(|x| x.1).sum::<u64>() / width as u64;
        let max = slice.iter().map(|x| x.2).max().expect("non-empty");
        let size = runs[0].records[i].cluster_size;
        rows.push(vec![
            if width == 1 {
                format!("{i}")
            } else {
                format!("{}..{}", i, i + width - 1)
            },
            format!("({size})"),
            format!("{:.2}", min as f64 / 1000.0),
            format!("{:.2}", mean as f64 / 1000.0),
            format!("{:.2}", max as f64 / 1000.0),
        ]);
        i += width;
    }
    print_table(
        &["requests", "nodes", "min (ms)", "mean (ms)", "max (ms)"],
        &rows,
    );

    // Per-phase latency percentiles, from the metrics registry's
    // fixed-bucket histograms merged across the eight seeded runs.
    // Percentiles resolve to bucket upper bounds; max is exact.
    println!("\nper-phase latency percentiles (8 runs merged, registry histograms):\n");
    let phases = runs[0].phase_latency.len();
    let mut pct_rows = Vec::new();
    for p in 0..phases {
        let (label, mut merged) = runs[0].phase_latency[p].clone();
        for run in &runs[1..] {
            assert_eq!(run.phase_latency[p].0, label);
            merged.merge(&run.phase_latency[p].1);
        }
        assert_eq!(merged.count, 8 * requests_per_phase as u64);
        let ms = |v: u64| format!("{:.2}", v as f64 / 1000.0);
        pct_rows.push(vec![
            label,
            format!("{}", merged.count),
            ms(merged.quantile(0.5)),
            ms(merged.quantile(0.95)),
            ms(merged.quantile(0.99)),
            ms(merged.max),
        ]);
    }
    print_table(
        &[
            "phase", "samples", "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)",
        ],
        &pct_rows,
    );

    // Sparkline of the mean latency (log-ish bucketing of magnitude).
    let glyphs = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let means: Vec<u64> = agg.iter().map(|x| x.1).collect();
    let hi = *means.iter().max().expect("non-empty") as f64;
    let lo = *means.iter().min().expect("non-empty") as f64;
    let cols = 120usize;
    let per = means.len().div_ceil(cols);
    let line: String = means
        .chunks(per)
        .map(|c| {
            let m = *c.iter().max().expect("non-empty") as f64;
            let idx = if hi > lo {
                (((m - lo) / (hi - lo)) * (glyphs.len() - 1) as f64).round() as usize
            } else {
                0
            };
            glyphs[idx]
        })
        .collect();
    println!(
        "\nmean latency, {} requests per column (spikes at the reconfiguration points):",
        per
    );
    println!("{line}");
    for (idx, what) in &runs[0].reconfigs {
        println!("  reconfig @ request {idx}: {what}");
    }

    // Paper-shape assertions: reconfiguration adds a bounded, local delay.
    let steady_5 = means[requests_per_phase / 2];
    let first_after_growth = means[2 * requests_per_phase];
    assert!(
        first_after_growth > steady_5,
        "growth transition should cost more than steady state"
    );
    println!(
        "\nshape check: steady-state mean {:.2}ms; first request after 3→5 growth {:.2}ms (catch-up transfer)",
        steady_5 as f64 / 1000.0,
        first_after_growth as f64 / 1000.0
    );
}
