//! Experiment E7 — the §2.3 design-choice ablation: hot vs stop-the-world
//! reconfiguration.
//!
//! The paper motivates ADORE's focus on **hot** algorithms: stop-the-world
//! approaches "somewhat simplify the problem ... however, incur a
//! performance cost due to the disruption in service". This harness
//! quantifies that trade-off on the simulated cluster: grow a cluster from
//! 4 to 5 nodes after N committed entries, once with the hot path (serve
//! throughout; return at quorum) and once with the stop-the-world barrier
//! (refuse requests until every member holds the full log).
//!
//! Usage: `cargo run -p adore-bench --bin ablation_table --release`

use adore_bench::print_table;
use adore_core::NodeId;
use adore_kv::{Cluster, KvCommand, LatencyModel};
use adore_schemes::SingleNode;

/// Builds a 4-node cluster with `log_len` committed entries.
fn warmed(log_len: usize, seed: u64) -> Cluster<SingleNode> {
    let mut c = Cluster::new(SingleNode::new([1, 2, 3, 4]), LatencyModel::default(), seed);
    c.elect(NodeId(1)).expect("election succeeds");
    for i in 0..log_len {
        c.submit(KvCommand::put(format!("k{i}"), "v"))
            .expect("commit succeeds");
    }
    c
}

fn main() {
    println!("§2.3 ablation — hot vs stop-the-world reconfiguration (grow 4→5 nodes)\n");
    let mut rows = Vec::new();
    for log_len in [100usize, 500, 2000, 8000] {
        // Hot: returns at quorum; the catch-up transfer overlaps service.
        let mut hot = warmed(log_len, 1);
        let hot_reconf = hot
            .reconfigure(SingleNode::new([1, 2, 3, 4, 5]))
            .expect("hot reconfiguration succeeds");
        let hot_next = hot
            .submit(KvCommand::put("next", "v"))
            .expect("commit succeeds");

        // Stop-the-world: blocks until the fresh node holds the full log.
        let mut stw = warmed(log_len, 1);
        let stw_stopped = stw
            .reconfigure_stop_the_world(SingleNode::new([1, 2, 3, 4, 5]))
            .expect("stop-the-world reconfiguration succeeds");
        let stw_next = stw
            .submit(KvCommand::put("next", "v"))
            .expect("commit succeeds");

        rows.push(vec![
            log_len.to_string(),
            format!("{:.2}", hot_reconf as f64 / 1000.0),
            format!("{:.2}", hot_next as f64 / 1000.0),
            format!("{:.2}", stw_stopped as f64 / 1000.0),
            format!("{:.2}", stw_next as f64 / 1000.0),
            format!("{:.1}x", stw_stopped as f64 / hot_reconf as f64),
        ]);
        assert!(
            stw_stopped > hot_reconf,
            "the barrier must cost more than the quorum return"
        );
    }
    print_table(
        &[
            "log entries",
            "hot: reconf (ms)",
            "hot: next req (ms)",
            "stw: stopped (ms)",
            "stw: next req (ms)",
            "stw/hot",
        ],
        &rows,
    );
    println!("\nThe hot path returns at quorum and overlaps the catch-up transfer with service");
    println!("(its cost shows up as one slow next request); stop-the-world blocks for the");
    println!("whole transfer, growing linearly with the log — the disruption §2.3 warns of,");
    println!("and the reason ADORE targets hot algorithms despite their harder safety story.");
}
