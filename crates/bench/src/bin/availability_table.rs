//! Experiment E8 — the §1 motivation, measured: availability under
//! permanent replica churn, with and without membership repair.
//!
//! "Server failures are inevitable in distributed settings, so a method
//! for safely and efficiently adjusting the membership is essential."
//! A five-node cluster loses one replica permanently every N requests; a
//! closed-loop client keeps writing. Without reconfiguration the third
//! crash starves every quorum of the original membership; with hot
//! single-node repair (vote the dead node out, a spare in) the cluster
//! runs until the workload ends.
//!
//! Usage: `cargo run -p adore-bench --bin availability_table --release`

use adore_bench::print_table;
use adore_kv::{run_churn, ChurnParams};

fn main() {
    println!("§1 motivation — availability under permanent churn (5-node cluster, 600 requests)\n");
    let mut rows = Vec::new();
    for crash_every in [100usize, 60, 30] {
        for repair in [false, true] {
            let params = ChurnParams {
                crash_every,
                repair,
                total_requests: 600,
                // Enough spares for the fastest churn rate (one crash per
                // 30 requests over 600 requests = 19 crashes).
                spares: (6..=40).collect(),
                ..ChurnParams::default()
            };
            let report = run_churn(&params, 11);
            rows.push(vec![
                format!("1 per {crash_every} reqs"),
                if repair { "hot repair" } else { "none" }.to_string(),
                report.crashes.to_string(),
                report.failovers.to_string(),
                report.repairs.to_string(),
                report.completed.to_string(),
                report
                    .unavailable_at
                    .map_or("— (survived)".to_string(), |i| format!("request {i}")),
            ]);
            if repair {
                assert!(report.unavailable_at.is_none(), "{report:?}");
            } else if report.crashes >= 3 {
                assert!(report.unavailable_at.is_some(), "{report:?}");
            }
        }
    }
    print_table(
        &[
            "crash rate",
            "reconfiguration",
            "crashes",
            "failovers",
            "repairs",
            "committed",
            "unavailable at",
        ],
        &rows,
    );
    println!("\nWithout reconfiguration, five nodes tolerate exactly two permanent losses;");
    println!("the third starves every majority of the fixed membership. Hot single-node");
    println!("repair — remove the dead replica, add a spare, all while serving — keeps the");
    println!("cluster alive through arbitrarily many losses: the reason the machinery that");
    println!("this paper verifies needs to exist.");
}
