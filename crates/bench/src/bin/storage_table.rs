//! Experiment E10 — Durable storage: WAL + simulated disk faults with
//! certified crash recovery.
//!
//! Two sub-experiments:
//!
//! 1. **Certified durability**: the scripted storage-ablation schedules
//!    (run under the *strict* policy) plus a seeded campaign of random
//!    schedules mixing disk faults — torn records, bit-flip corruption,
//!    media wipes, orphaned unsynced writes — with the network and
//!    process faults of E9, all with the storage certification checker
//!    on: every ack is backed by the synced WAL mirror, every recovery
//!    is exactly the replay, and the committed prefix never diverges.
//!    `STORAGE_TABLE_SEEDS` overrides the campaign size (default 100).
//! 2. **Storage-ablation hunts**: with one durability discipline off —
//!    fsync-before-ack, checksum verification at replay, or
//!    truncate-invalid-tail — the engine finds a committed-prefix
//!    divergence, minimizes the schedule with delta debugging,
//!    round-trips the witness through JSON, replays it
//!    deterministically, and confirms the strict policy defuses it.
//!    (No [`adore_nemesis::NetHarness`] cross-check here: the untimed
//!    model has no WAL, so disk faults have no meaning at that level —
//!    these are storage-layer violations by construction.)
//!
//! Usage: `cargo run -p adore-bench --bin storage_table --release`

use adore_bench::{fmt_duration, print_table};
use adore_nemesis::{
    hunt, random_schedule, replay, run_schedule, storage_ablation_suite, Counterexample,
    DurabilityPolicy, EngineParams, FaultSchedule, RandomScheduleParams, ViolationKind,
};

fn main() {
    let params = EngineParams {
        certify_storage: true,
        ..EngineParams::default()
    };
    let seeds: u64 = std::env::var("STORAGE_TABLE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    // 1. Certified durability under the strict policy.
    println!(
        "certified durability — strict policy, storage certification on, {seeds} random seeds\n"
    );
    let mut campaigns: Vec<(String, FaultSchedule)> = storage_ablation_suite()
        .into_iter()
        .map(|(_, s)| {
            (
                format!("{} (strict)", s.name),
                s.with_durability(DurabilityPolicy::strict()),
            )
        })
        .collect();
    let random_params = RandomScheduleParams::default();
    for seed in 0..seeds {
        let s = random_schedule(&random_params, seed);
        campaigns.push((s.name.clone(), s));
    }
    let mut rows = Vec::new();
    let mut violations = 0usize;
    let mut total_records = 0usize;
    let mut total_syncs = 0usize;
    let start_all = std::time::Instant::now();
    for (i, (name, schedule)) in campaigns.iter().enumerate() {
        let start = std::time::Instant::now();
        let report = run_schedule(schedule, &params);
        violations += usize::from(!report.is_safe());
        total_records += report.wal_records;
        total_syncs += report.wal_syncs;
        // The scripted schedules and a sample of the random ones get a
        // table row; the rest only feed the aggregate line.
        if i < 3 || i % (campaigns.len() / 10).max(1) == 0 {
            rows.push(vec![
                name.clone(),
                schedule.faults.len().to_string(),
                format!(
                    "{}/{}",
                    report.degraded.total_acked(),
                    report.degraded.total_attempted()
                ),
                report.committed_entries.to_string(),
                format!("{}/{}", report.wal_records, report.wal_syncs),
                report
                    .violation
                    .as_ref()
                    .map_or("none".to_string(), |(v, i)| format!("phase {i}: {v}")),
                fmt_duration(start.elapsed()),
            ]);
        }
    }
    print_table(
        &[
            "campaign",
            "faults",
            "acked/attempted",
            "committed",
            "wal rec/sync",
            "violation",
            "time",
        ],
        &rows,
    );
    assert_eq!(
        violations, 0,
        "the strict policy must certify every campaign"
    );
    println!(
        "\n{} campaigns, 0 violations (committed-prefix, read-your-writes, ack-durability, \
         recovery-faithfulness); {} WAL records, {} syncs; total {}\n",
        campaigns.len(),
        total_records,
        total_syncs,
        fmt_duration(start_all.elapsed()),
    );

    // 2. Storage-ablation hunts: find, minimize, serialize, replay.
    println!("storage-ablation hunts — the same engine with one discipline off\n");
    let hunt_params = EngineParams::default(); // certification off: the
                                               // committed prefix itself must break
    let mut rows = Vec::new();
    let mut example_json = None;
    for (label, schedule) in storage_ablation_suite() {
        let start = std::time::Instant::now();
        let cex = hunt(&schedule, &hunt_params)
            .unwrap_or_else(|| panic!("{label}: no violation found"));
        assert!(
            matches!(cex.violation, ViolationKind::LogDivergence { .. }),
            "{label}: expected a committed-prefix divergence, got {:?}",
            cex.violation
        );

        // The counterexample is portable: through JSON and back, the
        // replay still produces the same violation.
        let json = serde_json::to_string(&cex).expect("counterexample serializes");
        let back: Counterexample = serde_json::from_str(&json).expect("and deserializes");
        assert_eq!(back, cex, "{label}: JSON round-trip changed the witness");
        let replayed = replay(&back.schedule, &hunt_params).expect("replay still violates");
        assert_eq!(replayed, cex.violation, "{label}: replay disagrees");

        // Cross-check: the minimized witness is defused by restoring the
        // strict policy — the violation lives in the storage ablation,
        // not in the fault sequence.
        assert!(
            replay(
                &back.schedule.clone().with_durability(DurabilityPolicy::strict()),
                &hunt_params,
            )
            .is_none(),
            "{label}: divergence under the strict policy"
        );

        rows.push(vec![
            label.to_string(),
            format!("{}", schedule.durability),
            cex.violation.to_string(),
            format!("{} -> {}", cex.original_faults, cex.schedule.faults.len()),
            format!("{} B", json.len()),
            "defused".to_string(),
            fmt_duration(start.elapsed()),
        ]);
        if label == "no-fsync-before-ack" {
            example_json = Some(serde_json::to_string_pretty(&cex.schedule).expect("pretty"));
        }
    }
    print_table(
        &[
            "ablation",
            "policy",
            "violation",
            "faults (orig -> min)",
            "witness",
            "under strict",
            "time",
        ],
        &rows,
    );
    println!(
        "\nminimized no-fsync witness (replayable with `replay`):\n{}",
        example_json.expect("no-fsync is in the suite")
    );
}
