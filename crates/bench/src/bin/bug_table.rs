//! Experiment E5 — Figs. 4 & 12: the single-server membership-change bug.
//!
//! Three sub-experiments:
//!
//! 1. **Directed replay**: the exact Fig. 4/12 schedule, replayed under
//!    every guard subset — the flawed variants reach `CommitsDiverge`, the
//!    sound guard rejects the trace at its first reconfiguration.
//! 2. **Randomized discovery**: how much random exploration each flawed
//!    variant needs before the violation is found (the "a year to notice"
//!    bug falls to a seeded fuzzer in milliseconds).
//! 3. **Sound-guard certification**: the same exploration budget finds
//!    nothing under R1⁺∧R2∧R3.
//!
//! Usage: `cargo run -p adore-bench --bin bug_table --release`

use adore_bench::{fmt_duration, print_table};
use adore_checker::{fig4_scenario, random_walk, ExploreParams, InvariantSuite, WalkParams};
use adore_core::ReconfigGuard;
use adore_schemes::SingleNode;

fn guard_name(guard: ReconfigGuard) -> String {
    guard.to_string()
}

fn main() {
    // 1. Directed replay of the paper's schedule.
    println!("Fig. 4/12 directed replay — the exact paper schedule under each guard\n");
    let guards = [
        ReconfigGuard::all(),
        ReconfigGuard::all().without_r3(),
        ReconfigGuard::all().without_r2().without_r3(),
        ReconfigGuard::all().without_r1().without_r2().without_r3(),
    ];
    let mut rows = Vec::new();
    for guard in guards {
        let (outcome, _) = fig4_scenario(guard).run();
        rows.push(vec![
            guard_name(guard),
            outcome.applied.to_string(),
            outcome
                .first_noop
                .map_or("—".to_string(), |i| format!("step {i}")),
            outcome
                .violation
                .as_ref()
                .map_or("none".to_string(), |(i, v)| format!("step {i}: {v}")),
        ]);
    }
    print_table(
        &["guard", "ops applied", "first rejection", "violation"],
        &rows,
    );

    let (flawed_outcome, flawed_state) = fig4_scenario(ReconfigGuard::all().without_r3()).run();
    assert!(flawed_outcome.violation.is_some());
    println!(
        "\ncache tree at the violation (no-R3 replay):\n{}",
        flawed_state.render_tree()
    );

    // 2 & 3. Randomized discovery budget per guard.
    println!("randomized discovery — walks of 30 ops over {{S1..S4}}, restarting until found\n");
    let mut rows = Vec::new();
    for (guard, expect_bug) in [
        (ReconfigGuard::all(), false),
        (ReconfigGuard::all().without_r3(), true),
        (ReconfigGuard::all().without_r2().without_r3(), true),
        (
            ReconfigGuard::all().without_r1().without_r2().without_r3(),
            true,
        ),
    ] {
        let start = std::time::Instant::now();
        let params = WalkParams {
            walks: 3000,
            steps_per_walk: 30,
            explore: ExploreParams {
                guard,
                suite: InvariantSuite::SafetyOnly,
                spare_nodes: 0,
                ..ExploreParams::default()
            },
        };
        let report = random_walk(&SingleNode::new([1, 2, 3, 4]), &params, 2026);
        let elapsed = start.elapsed();
        rows.push(vec![
            guard_name(guard),
            report.ops_applied.to_string(),
            report
                .violation
                .as_ref()
                .map_or("none".to_string(), |(v, trace, _)| {
                    format!("{} (trace of {} ops)", v, trace.len())
                }),
            fmt_duration(elapsed),
        ]);
        assert_eq!(
            report.violation.is_some(),
            expect_bug,
            "guard {guard}: unexpected verdict"
        );
    }
    print_table(&["guard", "ops until verdict", "violation", "time"], &rows);

    println!("\nThe violation trace for no-R3 is the machine-found form of the bug that went");
    println!("unnoticed in Raft's single-server algorithm for over a year (Ongaro 2015);");
    println!("R3 — 'commit a current-term entry before reconfiguring' — eliminates it.");
}
