//! Flow-sensitive discipline table: the CFG/dataflow layer (rules
//! L6-L8), the concurrency-discipline layer (rules L9-L12), and the
//! spec-conformance layer (rules L13-L15) over the whole workspace,
//! with per-rule finding counts and per-rule analysis wall-time.
//!
//! Each rule is also timed in isolation — a config variant activates
//! only that rule and `scan_flow`/`scan_conc` runs over the pre-parsed
//! files — so the cost of the must-reach guard analysis (L6), the
//! may-taint analysis (L7), the discarded-result check (L8), and the
//! guard-live-range walks with crate-wide summary fixpoints (L9-L12),
//! and the guarded-command IR extraction plus checker-corpus replay
//! (L13-L15) are visible separately from parsing.
//!
//! Usage: `cargo run -p adore-bench --bin flow_table --release`
//! (also writes `results/flow_table.txt`).

use std::path::PathBuf;
use std::time::Instant;

use adore_bench::render_table;
use adore_lint::config::Config;
use adore_lint::{conc_rules, conform, flow_rules};

/// A config variant that activates exactly one flow rule.
fn isolate(rule: &str, full: &Config) -> Config {
    let mut cfg = Config {
        l6_protected: Vec::new(),
        l7_crates: Vec::new(),
        l2_scopes: Vec::new(),
        l8_fallible: Vec::new(),
        ..full.clone()
    };
    match rule {
        "L6" => cfg.l6_protected = full.l6_protected.clone(),
        "L7" => {
            cfg.l7_crates = full.l7_crates.clone();
            cfg.l7_sink_fields = full.l7_sink_fields.clone();
        }
        "L8" => {
            cfg.l2_scopes = full.l2_scopes.clone();
            cfg.l8_fallible = full.l8_fallible.clone();
        }
        other => panic!("not a flow rule: {other}"),
    }
    cfg
}

const FLOW_RULES: &[(&str, &str)] = &[
    ("L6", "guard-before-mutation (must-reach, R1+/R2/R3 analogue)"),
    ("L7", "nondeterminism taint (may-analysis over renames/joins)"),
    ("L8", "discarded fallible results in recovery scopes"),
];

/// A config variant that activates exactly one concurrency rule.
fn isolate_conc(rule: &str, full: &Config) -> Config {
    let mut cfg = Config {
        l9_crates: Vec::new(),
        l9_locks: Vec::new(),
        l10_scopes: Vec::new(),
        l11_crates: Vec::new(),
        l12_crates: Vec::new(),
        l12_scopes: Vec::new(),
        ..full.clone()
    };
    match rule {
        "L9" => {
            cfg.l9_crates = full.l9_crates.clone();
            cfg.l9_locks = full.l9_locks.clone();
        }
        "L10" => cfg.l10_scopes = full.l10_scopes.clone(),
        "L11" => cfg.l11_crates = full.l11_crates.clone(),
        "L12" => {
            cfg.l12_crates = full.l12_crates.clone();
            cfg.l12_scopes = full.l12_scopes.clone();
        }
        other => panic!("not a concurrency rule: {other}"),
    }
    cfg
}

const CONC_RULES: &[(&str, &str)] = &[
    ("L9", "lock-order cycles (crate-wide acquisition graph)"),
    ("L10", "no-panic lock acquisition in long-lived threads"),
    ("L11", "no lock guard held across blocking calls"),
    ("L12", "bounded-channel discipline (sync_channel + try_send)"),
];

/// A config variant that activates exactly one conformance rule.
fn isolate_conform(rule: &str, full: &Config) -> Config {
    let mut cfg = Config {
        l13_conform: Vec::new(),
        l14_protected: Vec::new(),
        l15_scopes: Vec::new(),
        ..full.clone()
    };
    match rule {
        "L13" => cfg.l13_conform = full.l13_conform.clone(),
        "L14" => cfg.l14_protected = full.l14_protected.clone(),
        "L15" => cfg.l15_scopes = full.l15_scopes.clone(),
        other => panic!("not a conformance rule: {other}"),
    }
    cfg
}

const CONFORM_RULES: &[(&str, &str)] = &[
    ("L13", "spec drift (IR replayed on the checker's corpus)"),
    ("L14", "semantic guard sufficiency on protected fields"),
    ("L15", "emission order (durable-before-outbound on IR paths)"),
];

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_text =
        std::fs::read_to_string(root.join("adore-lint.toml")).expect("adore-lint.toml exists");
    let cfg = Config::from_toml(&cfg_text).expect("adore-lint.toml parses");

    // Parse the workspace once; the per-rule timings below are pure
    // analysis time over these pre-parsed files.
    let rels = adore_lint::collect_files(&root, &cfg).expect("workspace walks");
    let parse_start = Instant::now();
    let mut parsed = Vec::new();
    for rel in &rels {
        let source = std::fs::read_to_string(root.join(rel)).expect("file reads");
        if let Ok(file) = syn::parse_file(&source) {
            parsed.push((rel.clone(), file));
        }
    }
    let parse_ms = parse_start.elapsed().as_secs_f64() * 1e3;

    // Full report (pragmas applied) for the active/suppressed split.
    let report = adore_lint::run_lint(&root, &cfg).expect("workspace scans");
    let tally = report.tally();

    let mut rows = Vec::new();
    let mut flow_ms_total = 0.0;
    for (rule, desc) in FLOW_RULES {
        let iso = isolate(rule, &cfg);
        // Mirror the real pass: each isolated run pays for the
        // workspace call-graph fixpoint it depends on, so the timing
        // reflects what enabling that rule alone would cost.
        let start = Instant::now();
        let guard_names: std::collections::BTreeSet<String> = iso
            .l6_protected
            .iter()
            .flat_map(|e| e.guards.iter().cloned())
            .collect();
        let workspace = adore_lint::callgraph::summarize_workspace(&parsed, &guard_names);
        let mut raw = 0usize;
        for (rel, file) in &parsed {
            let local = adore_lint::callgraph::summarize(file, &guard_names);
            let summaries = adore_lint::callgraph::overlay(local, &workspace);
            raw += flow_rules::scan_flow_with(rel, file, &iso, &summaries)
                .iter()
                .filter(|f| f.rule == *rule)
                .count();
        }
        let ms = start.elapsed().as_secs_f64() * 1e3;
        flow_ms_total += ms;
        let (active, suppressed) = tally.get(*rule).copied().unwrap_or((0, 0));
        assert_eq!(
            raw,
            active + suppressed,
            "{rule}: isolated scan disagrees with the full report"
        );
        rows.push(vec![
            (*rule).to_string(),
            (*desc).to_string(),
            active.to_string(),
            suppressed.to_string(),
            format!("{ms:.1}"),
        ]);
    }

    let mut conc_ms_total = 0.0;
    for (rule, desc) in CONC_RULES {
        let iso = isolate_conc(rule, &cfg);
        let start = Instant::now();
        let raw = conc_rules::scan_conc(&parsed, &iso)
            .iter()
            .filter(|f| f.rule == *rule)
            .count();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        conc_ms_total += ms;
        let (active, suppressed) = tally.get(*rule).copied().unwrap_or((0, 0));
        assert_eq!(
            raw,
            active + suppressed,
            "{rule}: isolated scan disagrees with the full report"
        );
        rows.push(vec![
            (*rule).to_string(),
            (*desc).to_string(),
            active.to_string(),
            suppressed.to_string(),
            format!("{ms:.1}"),
        ]);
    }

    let mut conform_ms_total = 0.0;
    for (rule, desc) in CONFORM_RULES {
        let iso = isolate_conform(rule, &cfg);
        let start = Instant::now();
        let raw = conform::scan_conform(&parsed, &iso)
            .iter()
            .filter(|f| f.rule == *rule)
            .count();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        conform_ms_total += ms;
        let (active, suppressed) = tally.get(*rule).copied().unwrap_or((0, 0));
        assert_eq!(
            raw,
            active + suppressed,
            "{rule}: isolated scan disagrees with the full report"
        );
        rows.push(vec![
            (*rule).to_string(),
            (*desc).to_string(),
            active.to_string(),
            suppressed.to_string(),
            format!("{ms:.1}"),
        ]);
    }

    let mut out = String::new();
    out.push_str("flow-sensitive discipline — CFG/dataflow and concurrency rules over the workspace\n\n");
    out.push_str(&render_table(
        &["rule", "what it certifies", "findings", "suppressed", "analysis ms"],
        &rows,
    ));
    out.push_str(&format!(
        "\n{} files parsed in {:.1} ms; flow analyses {:.1} ms, concurrency \
         analyses {:.1} ms, conformance (IR extraction + corpus replay) \
         {:.1} ms; {} unsuppressed findings, {} pragma-suppressed \
         across all rules\n",
        parsed.len(),
        parse_ms,
        flow_ms_total,
        conc_ms_total,
        conform_ms_total,
        report.active_count(),
        report.suppressed_count()
    ));

    print!("{out}");

    let results = root.join("results");
    if std::fs::create_dir_all(&results).is_ok() {
        let path = results.join("flow_table.txt");
        if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("flow_table: cannot write {}: {e}", path.display());
        }
    }

    // Like lint_table, the bench doubles as a gate.
    assert_eq!(
        report.active_count(),
        0,
        "workspace has unsuppressed lint findings"
    );
}
