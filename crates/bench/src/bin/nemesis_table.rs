//! Experiment E9 — Nemesis: composable fault injection with safety
//! checking under adversarial schedules.
//!
//! Three sub-experiments:
//!
//! 1. **Sound-guard certification**: the scripted guard-ablation
//!    schedules (run under the *full* guard) plus a batch of seeded
//!    random campaigns — partitions, crash storms, leader flaps, message
//!    tampering, reconfiguration churn racing client traffic — all
//!    complete with zero safety violations.
//! 2. **Ablation hunts**: with R1⁺, R2, or R3 disabled, the same engine
//!    finds a committed-prefix divergence, minimizes the schedule with
//!    delta debugging, round-trips the counterexample through JSON, and
//!    replays it deterministically. Each violation is cross-validated at
//!    the untimed network level ([`adore_nemesis::NetHarness`]).
//! 3. **Degraded availability**: a majority/minority partition with a
//!    reconfiguration racing client traffic — availability collapses
//!    while the client is stuck behind the minority leader and recovers
//!    after redirect and heal, with committed-prefix agreement
//!    throughout.
//!
//! Usage: `cargo run -p adore-bench --bin nemesis_table --release`

use adore_bench::{fmt_duration, print_table};
use adore_core::ReconfigGuard;
use adore_nemesis::{
    ablation_suite, hunt, random_schedule, replay, run_schedule, Counterexample,
    DurabilityPolicy, EngineParams, Fault, FaultSchedule, NetHarness, RandomScheduleParams,
};

/// The availability demo: the client starts behind a minority-side
/// leader, the majority elects around it and reconfigures it away, and
/// the heal restores full service.
fn partition_recovery_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "partition-recovery".into(),
        seed: 9,
        members: vec![1, 2, 3, 4, 5],
        guard: ReconfigGuard::all(),
        durability: DurabilityPolicy::strict(),
        faults: vec![
            Fault::ClientBurst { writes: 4 },
            // Drain in-flight replication so the majority side's logs are
            // up to date before the cut; otherwise S3's candidacy can
            // legitimately lose the up-to-dateness vote check.
            Fault::Idle { us: 20_000 },
            Fault::Partition {
                groups: vec![vec![1, 2], vec![3, 4, 5]],
            },
            Fault::ClientBurst { writes: 4 },
            Fault::Elect { nid: 3 },
            Fault::ReconfigRemove { nid: 1 },
            Fault::ClientBurst { writes: 4 },
            Fault::HealAll,
            Fault::ClientBurst { writes: 4 },
        ],
    }
}

fn main() {
    let params = EngineParams::default();

    // 1. Sound-guard certification.
    println!("sound-guard certification — every campaign under R1+^R2^R3\n");
    let mut campaigns: Vec<(String, FaultSchedule)> = ablation_suite()
        .into_iter()
        .map(|(_, s)| {
            (
                format!("{} (sound)", s.name),
                s.with_guard(ReconfigGuard::all()),
            )
        })
        .collect();
    let random_params = RandomScheduleParams::default();
    for seed in 0..10 {
        let s = random_schedule(&random_params, seed);
        campaigns.push((s.name.clone(), s));
    }
    let mut rows = Vec::new();
    let mut violations = 0usize;
    for (name, schedule) in &campaigns {
        let start = std::time::Instant::now();
        let report = run_schedule(schedule, &params);
        violations += usize::from(!report.is_safe());
        rows.push(vec![
            name.clone(),
            schedule.faults.len().to_string(),
            format!("{}/{}", report.degraded.total_acked(), report.degraded.total_attempted()),
            report.committed_entries.to_string(),
            report
                .violation
                .as_ref()
                .map_or("none".to_string(), |(v, i)| format!("phase {i}: {v}")),
            fmt_duration(start.elapsed()),
        ]);
    }
    print_table(
        &["campaign", "faults", "acked/attempted", "committed", "violation", "time"],
        &rows,
    );
    assert_eq!(violations, 0, "sound guard must certify every campaign");
    println!("\n{} campaigns, 0 safety violations\n", campaigns.len());

    // 2. Ablation hunts: find, minimize, serialize, replay.
    println!("ablation hunts — the same engine with one guard bit off\n");
    let mut rows = Vec::new();
    let mut example_json = None;
    for (label, schedule) in ablation_suite() {
        let start = std::time::Instant::now();
        let cex = hunt(&schedule, &params)
            .unwrap_or_else(|| panic!("{label}: no violation found"));

        // The counterexample is portable: through JSON and back, the
        // replay still produces the same violation.
        let json = serde_json::to_string(&cex).expect("counterexample serializes");
        let back: Counterexample = serde_json::from_str(&json).expect("and deserializes");
        assert_eq!(back, cex, "{label}: JSON round-trip changed the witness");
        let replayed = replay(&back.schedule, &params).expect("replay still violates");
        assert_eq!(replayed, cex.violation, "{label}: replay disagrees");

        // Cross-validation: the scripted schedule also diverges in the
        // untimed network-level model, and the sound guard protects it.
        // (The *minimized* schedule is only minimal for the timed engine;
        // the untimed model may need a fault the minimizer dropped.)
        assert!(
            NetHarness::run(&schedule).is_err(),
            "{label}: no net-level divergence"
        );
        assert!(
            NetHarness::run(&schedule.clone().with_guard(ReconfigGuard::all())).is_ok(),
            "{label}: net-level divergence under the sound guard"
        );

        rows.push(vec![
            label.to_string(),
            cex.violation.to_string(),
            format!("{} -> {}", cex.original_faults, cex.schedule.faults.len()),
            format!("{} B", json.len()),
            "diverges".to_string(),
            fmt_duration(start.elapsed()),
        ]);
        if label == "no-R3" {
            example_json = Some(serde_json::to_string_pretty(&cex.schedule).expect("pretty"));
        }
    }
    print_table(
        &["ablation", "violation", "faults (orig -> min)", "witness", "net-level", "time"],
        &rows,
    );
    println!(
        "\nminimized no-R3 witness (replayable with `replay`):\n{}\n",
        example_json.expect("no-R3 is in the suite")
    );

    // 3. Degraded availability under a partition racing a reconfiguration.
    println!("degraded availability — majority/minority partition racing a reconfiguration\n");
    let schedule = partition_recovery_schedule();
    let report = run_schedule(&schedule, &params);
    assert!(report.is_safe(), "recovery schedule must stay safe");
    let mut rows = Vec::new();
    for (i, phase) in report.degraded.phases.iter().enumerate() {
        rows.push(vec![
            phase.fault.clone(),
            format!("{}/{}", phase.acked, phase.attempted),
            format!("{:.0}%", report.degraded.availability(i) * 100.0),
            if phase.acked > 0 {
                format!("{} us", phase.mean_latency_us)
            } else {
                "-".to_string()
            },
        ]);
    }
    print_table(&["phase", "acked/attempted", "availability", "mean latency"], &rows);
    let during = report.degraded.availability(3);
    let after = report.degraded.availability(8);
    assert!(
        during < after,
        "availability must recover after redirect + heal ({during} vs {after})"
    );
    println!(
        "\navailability {:.0}% behind the minority leader -> {:.0}% after redirect and heal;",
        during * 100.0,
        after * 100.0
    );
    println!(
        "committed prefix agreed across all replicas throughout ({} entries committed).",
        report.committed_entries
    );
}
