//! Experiment E11 — observability: tracing overhead and trace-certified
//! audit.
//!
//! Two sub-experiments:
//!
//! 1. **Tracing/profiling overhead**: the same workload with
//!    observability off and on — checker exploration (metrics profiling
//!    per [`ExploreParams::profile`]), the Fig. 16 reconfiguration
//!    workload, and a sound-guard nemesis campaign (full trace journal).
//!    Each pair self-asserts that observability is *invisible* to the
//!    run: identical states, latencies, and verdicts; the only cost is
//!    wall time.
//! 2. **Trace-certified audit**: each guard-ablation campaign runs
//!    traced; the journal is written to `target/obs/<name>.jsonl` and
//!    audited by [`adore_obs::audit_events`], which reconstructs
//!    protocol state purely from the trace. Every ablated run's audit
//!    must independently reproduce the live divergence verdict, and the
//!    sound-guard run's trace must certify clean. Each journal is also
//!    replayed through the streaming [`adore_obs::OnlineAuditor`],
//!    which must land on the identical verdict — batch ≡ online on
//!    every journal in `target/obs/`. `ci.sh` re-audits the written
//!    journals with the standalone `adore-obs --audit` binary.
//!
//! Usage: `cargo run -p adore-bench --bin obs_table --release`
//! (also writes `results/obs_table.txt` and `target/obs/*.jsonl`).

use std::path::PathBuf;
use std::time::Instant;

use adore_bench::{fmt_duration, render_table};
use adore_checker::{explore, ExploreParams, InvariantSuite};
use adore_core::ReconfigGuard;
use adore_kv::{run_fig16, Fig16Params};
use adore_nemesis::{
    ablation_suite, run_schedule, run_schedule_traced, EngineParams, ViolationKind,
};
use adore_obs::{audit_events, to_jsonl, OnlineAuditor};
use adore_schemes::SingleNode;

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut out = String::new();

    // 1. Overhead: observability off vs. on, same seeds, same workloads.
    out.push_str("tracing/profiling overhead — observability off vs. on, identical seeds\n\n");
    let mut rows = Vec::new();

    // Checker exploration, metrics profiling off/on.
    let conf0 = SingleNode::new([1, 2]);
    let base = ExploreParams {
        max_depth: 6,
        max_states: 2_000_000,
        with_reconfig: true,
        spare_nodes: 1,
        suite: InvariantSuite::Full,
        ..ExploreParams::default()
    };
    let plain = explore(&conf0, &base);
    let profiled = explore(
        &conf0,
        &ExploreParams {
            profile: true,
            ..base.clone()
        },
    );
    assert_eq!(plain.states, profiled.states, "profiling changed the walk");
    assert_eq!(plain.transitions, profiled.transitions);
    assert!(plain.is_safe() && profiled.is_safe());
    let prof = profiled.profile.as_ref().expect("profile requested");
    rows.push(vec![
        "explore (ADORE, depth 6)".into(),
        "profiling".into(),
        format!("{} states", plain.states),
        fmt_duration(plain.elapsed),
        fmt_duration(profiled.elapsed),
        format!(
            "{} invariant evals, hottest {}",
            prof.invariant_evals(),
            prof.hottest_invariants()
                .first()
                .map_or("-".to_string(), |(n, c)| format!("{n} ({c})")),
        ),
    ]);

    // Fig. 16 workload, trace journal off/on.
    let fig_params = Fig16Params {
        requests_per_phase: 300,
        ..Fig16Params::default()
    };
    let t0 = Instant::now();
    let fig_plain = run_fig16(&fig_params, 1).expect("loss-free run");
    let fig_plain_t = t0.elapsed();
    let t0 = Instant::now();
    let fig_traced = run_fig16(
        &Fig16Params {
            tracing: true,
            ..fig_params
        },
        1,
    )
    .expect("loss-free run");
    let fig_traced_t = t0.elapsed();
    assert_eq!(
        fig_plain.records, fig_traced.records,
        "tracing changed fig16 latencies"
    );
    rows.push(vec![
        "fig16 (300 req/phase)".into(),
        "trace journal".into(),
        format!("{} requests", fig_plain.records.len()),
        fmt_duration(fig_plain_t),
        fmt_duration(fig_traced_t),
        format!("{} events journaled", fig_traced.trace.len()),
    ]);

    // Sound-guard nemesis campaign, trace journal off/on.
    let (label0, ablated) = ablation_suite().remove(2);
    assert_eq!(label0, "no-R3");
    let sound = ablated.clone().with_guard(ReconfigGuard::all());
    let engine = EngineParams::default();
    let t0 = Instant::now();
    let nem_plain = run_schedule(&sound, &engine);
    let nem_plain_t = t0.elapsed();
    let t0 = Instant::now();
    let (nem_traced, nem_events) = run_schedule_traced(&sound, &engine);
    let nem_traced_t = t0.elapsed();
    assert_eq!(nem_plain.degraded, nem_traced.degraded);
    assert!(nem_plain.is_safe() && nem_traced.is_safe());
    rows.push(vec![
        "nemesis (R3 schedule, sound guard)".into(),
        "trace journal".into(),
        format!("{} faults", sound.faults.len()),
        fmt_duration(nem_plain_t),
        fmt_duration(nem_traced_t),
        format!("{} events journaled", nem_events.len()),
    ]);

    out.push_str(&render_table(
        &["workload", "instrument", "size", "off", "on", "captured"],
        &rows,
    ));
    out.push_str(
        "\nevery pair asserts bit-identical results (states, latencies, verdicts): \
         observability is invisible to the simulation\n\n",
    );

    // 2. Trace-certified audit: the auditor must reproduce each live
    // verdict from the journal alone.
    out.push_str("trace-certified audit — verdicts reconstructed from the journal alone\n\n");
    let obs_dir = root.join("target/obs");
    std::fs::create_dir_all(&obs_dir).expect("create target/obs");
    let mut rows = Vec::new();
    let mut campaigns: Vec<(String, String, _)> = ablation_suite()
        .into_iter()
        .map(|(l, s)| {
            (
                format!("{l} (ablated)"),
                format!("{}-ablated", l.replace('+', "plus")),
                s,
            )
        })
        .collect();
    campaigns.push(("no-R3 schedule, sound guard".into(), "r3-sound".into(), sound));
    for (label, name, schedule) in campaigns {
        let expect_divergence = label.contains("ablated");
        let (report, events) = run_schedule_traced(&schedule, &engine);
        let audit = audit_events(&events);
        let file = format!("{name}.jsonl");
        std::fs::write(obs_dir.join(&file), to_jsonl(&events)).expect("write journal");

        // The streaming auditor, fed the same journal one event at a
        // time, must land on the identical verdict as the batch pass.
        let mut streaming = OnlineAuditor::new();
        for ev in &events {
            let _ = streaming.ingest(ev);
        }
        let online = streaming.finish();
        assert_eq!(
            online.consistent, audit.consistent,
            "{label}: online/batch consistency disagree"
        );
        assert_eq!(
            online.divergence, audit.divergence,
            "{label}: online/batch divergence disagree"
        );
        assert_eq!(
            online.errors, audit.errors,
            "{label}: online/batch errors disagree"
        );

        assert!(audit.consistent, "{label}: audit errors {:?}", audit.errors);
        if expect_divergence {
            assert!(
                matches!(
                    report.violation,
                    Some((ViolationKind::LogDivergence { .. }, _))
                ),
                "{label}: expected a live divergence"
            );
            assert!(
                audit.divergence.is_some(),
                "{label}: auditor failed to reproduce the divergence"
            );
        } else {
            assert!(report.is_safe() && audit.divergence.is_none(), "{label}");
        }
        rows.push(vec![
            label,
            report.violation.as_ref().map_or("safe".to_string(), |(v, p)| {
                format!("phase {p}: {v}")
            }),
            audit
                .divergence
                .map_or("no divergence".to_string(), |d| d.to_string()),
            format!("{} events", audit.events),
            format!("target/obs/{file}"),
            if audit.consistent {
                "CERTIFIED".to_string()
            } else {
                "NOT CONSISTENT".to_string()
            },
        ]);
    }
    out.push_str(&render_table(
        &[
            "campaign",
            "live verdict",
            "audit verdict (from trace alone)",
            "journal",
            "written to",
            "audit",
        ],
        &rows,
    ));
    out.push_str(
        "\nevery ablated campaign's divergence is independently reproduced by the auditor; \
         the sound-guard trace certifies clean; the streaming OnlineAuditor, replaying each \
         journal event-by-event, reproduced every batch verdict exactly\n",
    );

    print!("{out}");
    let results = root.join("results");
    if std::fs::create_dir_all(&results).is_ok() {
        let path = results.join("obs_table.txt");
        if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("obs_table: cannot write {}: {e}", path.display());
        }
    }
}
