//! Experiment E3 — the §7 "Refinement" analogue: Raft → SRaft → ADORE,
//! executably.
//!
//! The paper's 13.8k-line Coq refinement is parameterized by the same
//! `isQuorum`/`R1⁺` predicates as ADORE, "which means the refinement proof
//! actually holds for a large family of protocols". The executable
//! counterpart: for each scheme, run adversarial asynchronous schedules,
//! normalize them (Lemmas C.3/C.7/C.9 with per-stage `ℝ_net` equivalence
//! checks), and mirror every step into a shadow ADORE state checking the
//! `logMatch` relation. The table reports events checked and violations
//! (zero) per scheme, plus how often delivery groups were perfectly atomic.
//!
//! Usage: `cargo run -p adore-bench --bin refinement_table --release [traces]`

use adore_bench::{fmt_duration, print_table};
use adore_core::{Configuration, ReconfigGuard};
use adore_raft::{check_refinement, random_trace, ScheduleParams};
use adore_schemes::{Joint, PrimaryBackup, ReconfigSpace, SingleNode};

struct Row {
    scheme: String,
    traces: u64,
    steps: u64,
    log_checks: u64,
    pulls: u64,
    pushes: u64,
    atomic_pct: f64,
    boundary: u64,
    violations: u64,
    elapsed: std::time::Duration,
}

fn run_scheme<C: Configuration + ReconfigSpace>(
    name: &str,
    conf0: C,
    guard: ReconfigGuard,
    check_safety: bool,
    traces: u64,
) -> Row {
    let start = std::time::Instant::now();
    let mut row = Row {
        scheme: name.to_string(),
        traces,
        steps: 0,
        log_checks: 0,
        pulls: 0,
        pushes: 0,
        atomic_pct: 0.0,
        boundary: 0,
        violations: 0,
        elapsed: std::time::Duration::ZERO,
    };
    let mut groups = 0u64;
    let mut atomic = 0u64;
    for seed in 0..traces {
        let trace = random_trace(
            &conf0,
            guard,
            &ScheduleParams {
                steps: 250,
                ..ScheduleParams::default()
            },
            2,
            seed,
        );
        let report = check_refinement(&conf0, guard, &trace, check_safety)
            .expect("normalization equivalence must hold");
        row.steps += report.checked_steps as u64;
        row.log_checks += report.log_checks;
        row.pulls += report.pulls as u64;
        row.pushes += report.pushes as u64;
        row.boundary += report.partial_adoption_elections as u64;
        row.violations += report.violations.len() as u64;
        groups += (report.atomic_groups + report.split_groups) as u64;
        atomic += report.atomic_groups as u64;
    }
    row.atomic_pct = if groups > 0 {
        100.0 * atomic as f64 / groups as f64
    } else {
        100.0
    };
    row.elapsed = start.elapsed();
    row
}

fn main() {
    let traces: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    let rows = [
        run_scheme(
            "Raft single-node",
            SingleNode::new([1, 2, 3, 4]),
            ReconfigGuard::all(),
            true,
            traces,
        ),
        run_scheme(
            "Raft joint consensus",
            Joint::stable([1, 2, 3]),
            ReconfigGuard::all(),
            true,
            traces,
        ),
        run_scheme(
            "primary-backup",
            PrimaryBackup::new(1, [2, 3]),
            ReconfigGuard::all(),
            true,
            traces,
        ),
        run_scheme(
            "single-node, NO R3 (flawed)",
            SingleNode::new([1, 2, 3, 4]),
            ReconfigGuard::all().without_r3(),
            false,
            traces,
        ),
    ];

    println!("§7 'Refinement' analogue — executable Raft → SRaft → ADORE simulation checking");
    println!("({traces} adversarial schedules per scheme, 250 events each, loss/duplication/reordering)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                r.traces.to_string(),
                r.steps.to_string(),
                r.log_checks.to_string(),
                r.pulls.to_string(),
                r.pushes.to_string(),
                format!("{:.1}%", r.atomic_pct),
                r.boundary.to_string(),
                r.violations.to_string(),
                fmt_duration(r.elapsed),
            ]
        })
        .collect();
    print_table(
        &[
            "scheme",
            "traces",
            "steps",
            "logMatch checks",
            "pulls",
            "pushes",
            "atomic groups",
            "boundary",
            "violations",
            "time",
        ],
        &table,
    );
    println!("\n'boundary' counts elections by partial adopters — the documented abstraction");
    println!("boundary at which checking stops (see EXPERIMENTS.md); 'violations' must be 0.");
    println!("The flawed no-R3 row is checked up to its (expected) safety violation.");

    assert!(
        rows.iter().all(|r| r.violations == 0),
        "refinement must hold on every checked step"
    );
}
