//! Experiment E4 — the §7 instantiation table: six reconfiguration schemes
//! validated against the REFLEXIVE and OVERLAP assumptions.
//!
//! The paper instantiates the `isQuorum`/`R1⁺` parameters six times
//! ("about 200 lines in total for both the definitions and proofs"). Here
//! each instantiation is certified **exhaustively** over a bounded
//! universe: every `R1⁺`-related configuration pair and every pair of
//! supporter subsets. The table reports how many instances each scheme's
//! obligations were checked on.
//!
//! Usage: `cargo run -p adore-bench --bin schemes_table --release`

use adore_bench::{fmt_duration, print_table};
use adore_core::{node_set, Configuration};
use adore_schemes::{
    powerset_configs, validate, ByzantineQuorum, DynamicQuorum, Joint, ManagedPrimary,
    PrimaryBackup, SingleNode, StaticMajority, ValidationReport, WeightedMajority,
};

fn row<C: Configuration>(
    name: &str,
    configs: Vec<C>,
) -> (String, ValidationReport, std::time::Duration) {
    let start = std::time::Instant::now();
    let report = validate(&configs);
    (name.to_string(), report, start.elapsed())
}

fn main() {
    let universe = node_set([1, 2, 3, 4]);

    let mut results = Vec::new();

    results.push(row(
        "Raft single-node",
        powerset_configs(&universe, SingleNode::from_set),
    ));

    // Joint consensus: all stable configs plus all joint phases between
    // non-empty subsets of the universe.
    let stable: Vec<Joint> = powerset_configs(&universe, Joint::stable_set);
    let mut joint_configs = stable.clone();
    for old in &stable {
        for new in powerset_configs(&universe, |s| s) {
            joint_configs.push(old.enter_joint(new));
        }
    }
    results.push(row("Raft joint consensus", joint_configs));

    // Primary-backup: every primary with every backup subset.
    let mut pb = Vec::new();
    for p in 1..=4u32 {
        for backups in powerset_configs(&universe, |s| s) {
            pb.push(PrimaryBackup::new(
                p,
                backups.iter().map(|n| n.0).collect::<Vec<_>>(),
            ));
        }
    }
    results.push(row("primary-backup", pb));

    // Dynamic quorum sizes: every member subset with every legal
    // (majority-or-larger) size.
    let mut dq = Vec::new();
    for members in powerset_configs(&universe, |s| s) {
        for q in (members.len() / 2 + 1)..=members.len() {
            dq.push(DynamicQuorum::new(
                q,
                members.iter().map(|n| n.0).collect::<Vec<_>>(),
            ));
        }
    }
    results.push(row("dynamic quorum sizes", dq));

    results.push(row(
        "static majority",
        powerset_configs(&universe, StaticMajority::from_set),
    ));

    // Weighted majority: weights 1..=3 over three nodes (the weighted
    // universe is the weight assignment space, not the node space).
    let mut wm = Vec::new();
    for w1 in 1..=3u64 {
        for w2 in 1..=3u64 {
            for w3 in 1..=3u64 {
                wm.push(WeightedMajority::new([(1, w1), (2, w2), (3, w3)]));
            }
        }
    }
    results.push(row("weighted majority", wm));

    // Managed primary set (the composition §6 suggests): every disjoint
    // primaries/backups split over the universe.
    let mut mp = Vec::new();
    for p_mask in 1u64..16 {
        for b_mask in 0u64..16 {
            if p_mask & b_mask != 0 {
                continue;
            }
            let prim: Vec<u32> = (0..4)
                .filter_map(|i| (p_mask & (1 << i) != 0).then_some(i as u32 + 1))
                .collect();
            let back: Vec<u32> = (0..4)
                .filter_map(|i| (b_mask & (1 << i) != 0).then_some(i as u32 + 1))
                .collect();
            mp.push(ManagedPrimary::new(prim, back));
        }
    }
    results.push(row("managed primary set", mp));

    // Byzantine-sized quorums (§9's direction): nested 3f+1 families.
    let bz = vec![
        ByzantineQuorum::new([1]),
        ByzantineQuorum::new([1, 2, 3, 4]),
        ByzantineQuorum::new(1..=7),
    ];
    results.push(row("byzantine 2f+1 of 3f+1", bz));

    println!("§7 instantiation analogue — exhaustive REFLEXIVE/OVERLAP certification");
    println!("(universe {{S1..S4}}; weighted majority over weight assignments 1..=3³)\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, r, t)| {
            vec![
                name.clone(),
                r.configs.to_string(),
                r.related_pairs.to_string(),
                r.overlap_instances.to_string(),
                if r.is_valid() { "✓" } else { "✗" }.to_string(),
                fmt_duration(*t),
            ]
        })
        .collect();
    print_table(
        &[
            "scheme",
            "configs",
            "R1+ pairs",
            "overlap instances",
            "valid",
            "time",
        ],
        &rows,
    );
    println!("\npaper: six instantiations, ~200 LoC of definitions+proofs (plus ~100 LoC of");
    println!("majority-overlap lemmas). Here the same obligations are discharged by exhaustion;");
    println!("'managed primary set' additionally realizes §6's suggested composition.");

    assert!(
        results.iter().all(|(_, r, _)| r.is_valid()),
        "every shipped scheme must satisfy the Fig. 7 assumptions"
    );
}
