//! Shared helpers for the experiment harnesses.
//!
//! Each `[[bin]]` in this crate regenerates one table or figure of the
//! paper's evaluation; see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Renders a fixed-width text table — a header row, a separator, and
/// rows — as a string (for harnesses that also write a results file).
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        format!("| {} |\n", line.join(" | "))
    };
    let mut out = fmt_row(&header.iter().map(|s| (*s).to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out
}

/// Prints a fixed-width text table: a header row, a separator, and rows.
///
/// # Examples
///
/// ```
/// adore_bench::print_table(
///     &["scheme", "configs"],
///     &[vec!["single-node".to_string(), "15".to_string()]],
/// );
/// ```
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(header, rows));
}

/// Formats a `Duration` compactly (`12.3ms`, `4.56s`).
#[must_use]
pub fn fmt_duration(d: std::time::Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(super::fmt_duration(Duration::from_millis(1500)), "1.50s");
        assert_eq!(super::fmt_duration(Duration::from_micros(2300)), "2.3ms");
    }
}
