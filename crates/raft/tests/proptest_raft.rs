//! Property-based tests for the network model and its normalization:
//! structured random traces replay deterministically, the normalization
//! stages preserve `ℝ_net`, and sound-guard runs keep log safety and the
//! refinement relation.

use adore_core::{NodeId, ReconfigGuard};
use adore_raft::{
    atomicize, check_refinement, filter_invalid, globally_order, normalize, segment_counts, MsgId,
    NetEvent, NetState, SraftStep,
};
use adore_schemes::SingleNode;
use proptest::prelude::*;

type Ev = NetEvent<SingleNode, u32>;

/// Strategy: raw event seeds decoded against the running state (message
/// ids modulo the sent count, node ids modulo the universe).
fn seeds() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..120)
}

fn decode(seeds: &[(u8, u8, u8)]) -> Vec<Ev> {
    let conf0 = SingleNode::new([1, 2, 3, 4]);
    let mut st: NetState<SingleNode, u32> = NetState::new(conf0, ReconfigGuard::all());
    let mut trace = Vec::new();
    let mut method = 0u32;
    for &(kind, a, b) in seeds {
        let nid = NodeId(u32::from(a % 4) + 1);
        let ev: Ev = match kind % 8 {
            0 => NetEvent::Elect { nid },
            1 | 2 => {
                method += 1;
                NetEvent::Invoke { nid, method }
            }
            3 => NetEvent::Reconfig {
                nid,
                config: if b % 2 == 0 {
                    SingleNode::new([1, 2, 3, 4, 5])
                } else {
                    SingleNode::new([1, 2, 3])
                },
            },
            4 | 5 => NetEvent::Commit { nid },
            _ => {
                let sent = st.messages().len();
                if sent == 0 {
                    continue;
                }
                NetEvent::Deliver {
                    msg: MsgId(u32::from(b) % sent as u32),
                    to: nid,
                }
            }
        };
        st.step(&ev);
        trace.push(ev);
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replay_is_deterministic(s in seeds()) {
        let trace = decode(&s);
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let mut a: NetState<SingleNode, u32> = NetState::new(conf0.clone(), ReconfigGuard::all());
        let mut b: NetState<SingleNode, u32> = NetState::new(conf0, ReconfigGuard::all());
        a.replay(&trace);
        b.replay(&trace);
        prop_assert_eq!(a.net_relation(), b.net_relation());
    }

    #[test]
    fn sound_guard_traces_keep_log_safety(s in seeds()) {
        let trace = decode(&s);
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let mut st: NetState<SingleNode, u32> = NetState::new(conf0, ReconfigGuard::all());
        st.replay(&trace);
        prop_assert!(st.check_log_safety().is_ok());
    }

    #[test]
    fn every_normalization_stage_preserves_r_net(s in seeds()) {
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let guard = ReconfigGuard::all();
        let trace = decode(&s);
        let mut orig: NetState<SingleNode, u32> = NetState::new(conf0.clone(), guard);
        orig.replay(&trace);
        let original = orig.net_relation();

        let filtered = filter_invalid(&conf0, guard, &trace);
        let mut st: NetState<SingleNode, u32> = NetState::new(conf0.clone(), guard);
        st.replay(&filtered);
        prop_assert_eq!(st.net_relation(), original.clone());

        let ordered = globally_order(&conf0, guard, &filtered);
        let mut st: NetState<SingleNode, u32> = NetState::new(conf0.clone(), guard);
        st.replay(&ordered);
        prop_assert_eq!(st.net_relation(), original.clone());

        let steps = atomicize(&ordered);
        let flat: Vec<Ev> = steps.iter().flat_map(SraftStep::events).collect();
        let mut st: NetState<SingleNode, u32> = NetState::new(conf0, guard);
        st.replay(&flat);
        prop_assert_eq!(st.net_relation(), original);
    }

    #[test]
    fn normalized_deliveries_are_in_time_order(s in seeds()) {
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let guard = ReconfigGuard::all();
        let trace = decode(&s);
        let filtered = filter_invalid(&conf0, guard, &trace);
        let ordered = globally_order(&conf0, guard, &filtered);
        // Reconstruct message metadata from the ordered replay.
        let mut st: NetState<SingleNode, u32> = NetState::new(conf0, guard);
        st.replay(&ordered);
        // Deliveries of different requests to the SAME recipient must be
        // in nondecreasing time order (Def. C.5 holds globally per C.7).
        let mut last_per_recipient = std::collections::BTreeMap::new();
        for ev in &ordered {
            if let NetEvent::Deliver { msg, to } = ev {
                if let Some(req) = st.message(*msg) {
                    let t = req.time();
                    if let Some(prev) = last_per_recipient.get(to) {
                        prop_assert!(t >= *prev, "out-of-order delivery at {to}");
                    }
                    last_per_recipient.insert(*to, t);
                }
            }
        }
    }

    #[test]
    fn most_groups_are_atomic(s in seeds()) {
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let guard = ReconfigGuard::all();
        let trace = decode(&s);
        let steps = normalize(&conf0, guard, &trace).expect("equivalence holds");
        let segs = segment_counts(&steps);
        // Splits exist only for genuine dependencies (stragglers behind a
        // sender's re-election); they are a small minority.
        let split: usize = segs.values().filter(|c| **c > 1).count();
        prop_assert!(split <= segs.len() / 2 + 1, "{split}/{} groups split", segs.len());
    }

    #[test]
    fn refinement_is_clean_on_structured_traces(s in seeds()) {
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let trace = decode(&s);
        let report = check_refinement(&conf0, ReconfigGuard::all(), &trace, true)
            .expect("equivalence holds");
        prop_assert!(report.is_clean(), "{:?}", report.violations.first());
    }
}
