//! The asynchronous network-based Raft-like specification (Fig. 13).
//!
//! State is a map of servers plus bags of sent and delivered requests.
//! Events ([`NetEvent`]) drive it: `elect`/`commit` broadcast requests,
//! `invoke`/`reconfig` are leader-local log appends, and `deliver` hands a
//! sent request to one recipient, which validates it, applies it, and
//! returns its acknowledgement synchronously (see the crate docs for why
//! acknowledgements are synchronous).
//!
//! The same state machine serves as "SRaft" when driven by a normalized
//! trace (valid deliveries only, globally ordered, atomically grouped) —
//! exactly the paper's "same specification with simplifying assumptions".

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use adore_core::{Configuration, NodeId, NodeSet, ReconfigGuard, Timestamp};

use crate::types::{
    effective_config, log_up_to_date, Command, Entry, Log, MsgId, NetEvent, Request,
};

/// A replica's role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Role {
    /// Passive replica.
    #[default]
    Follower,
    /// Election in progress.
    Candidate,
    /// Commit phase.
    Leader,
}

/// One replica's local state (Fig. 13's `Server`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Server<C, M> {
    /// Largest observed term.
    pub time: Timestamp,
    /// Local command log.
    pub log: Log<C, M>,
    /// Number of log entries known committed.
    pub commit_len: usize,
    /// Current role.
    pub role: Role,
    /// Votes received while a candidate at `time`.
    pub votes: NodeSet,
    /// Commit acknowledgements received per acked log length while leader
    /// at `time`.
    pub acks: BTreeMap<usize, NodeSet>,
    /// Whether the replica is currently crashed. At this level crashes
    /// are benign; what actually survives one is decided by the storage
    /// layer (`adore-storage`): the simulation rebuilds `(time, log,
    /// commit_len)` from a WAL replay on recovery, and injected disk
    /// faults can lose an unsynced tail, tear a record, corrupt a synced
    /// record, or wipe the media entirely.
    pub crashed: bool,
    /// Whether the replica has permanently renounced voting. Recovery
    /// from total WAL loss ([`adore-storage`'s `Recovery::DataLoss`])
    /// sets this: a replica that has forgotten which votes it granted
    /// must never vote (or campaign) again, or two leaders can win the
    /// same term. It still adopts logs and acknowledges commits, so it
    /// catches back up purely by retransmission.
    pub abstaining: bool,
}

impl<C, M> Server<C, M> {
    fn new() -> Self {
        Server {
            time: Timestamp(0),
            log: Vec::new(),
            commit_len: 0,
            role: Role::Follower,
            votes: NodeSet::new(),
            acks: BTreeMap::new(),
            crashed: false,
            abstaining: false,
        }
    }
}

/// Why a delivery was ignored by its recipient (invalid messages, Def. C.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rejection {
    /// The request's timestamp is too old.
    StaleTime,
    /// The candidate's log is not up-to-date with the voter's.
    OutdatedLog,
    /// The recipient is crashed.
    RecipientCrashed,
    /// The recipient has renounced voting (it recovered from total WAL
    /// loss and no longer remembers which votes it granted).
    Abstaining,
    /// The request id is unknown or was never sent.
    UnknownMessage,
    /// The link from the sender to the recipient is down (partitions are
    /// a property of the delivery attempt, not of the message: the same
    /// message can be re-delivered after the link heals).
    Unreachable,
}

/// The result of replaying one event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventOutcome {
    /// The event changed some replica's state.
    Applied,
    /// A local operation was a no-op (e.g. invoke by a non-leader).
    LocalNoOp,
    /// A delivery was ignored for the given reason.
    Rejected(Rejection),
}

impl EventOutcome {
    /// Whether the event had any effect.
    #[must_use]
    pub fn applied(&self) -> bool {
        matches!(self, EventOutcome::Applied)
    }
}

/// The network-based system state: servers plus sent/delivered request
/// bags (Fig. 13's `Σ_net`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetState<C, M> {
    conf0: C,
    guard: ReconfigGuard,
    servers: BTreeMap<NodeId, Server<C, M>>,
    /// All broadcast requests, indexed by [`MsgId`]; the "sent" bag.
    messages: Vec<Request<C, M>>,
    /// Requests delivered so far, as `(msg, recipient)` pairs.
    delivered: Vec<(MsgId, NodeId)>,
}

impl<C: Configuration, M: Clone + Eq> NetState<C, M> {
    /// Creates a cluster over `conf0`'s members with empty logs, enforcing
    /// `guard` on reconfigurations.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::ReconfigGuard;
    /// use adore_raft::NetState;
    /// use adore_schemes::SingleNode;
    ///
    /// let st: NetState<SingleNode, &str> =
    ///     NetState::new(SingleNode::new([1, 2, 3]), ReconfigGuard::all());
    /// assert_eq!(st.servers().count(), 3);
    /// ```
    #[must_use]
    pub fn new(conf0: C, guard: ReconfigGuard) -> Self {
        let servers = conf0
            .members()
            .into_iter()
            .map(|nid| (nid, Server::new()))
            .collect();
        NetState {
            conf0,
            guard,
            servers,
            messages: Vec::new(),
            delivered: Vec::new(),
        }
    }

    /// The initial configuration.
    #[must_use]
    pub fn conf0(&self) -> &C {
        &self.conf0
    }

    /// The reconfiguration guard in force.
    #[must_use]
    pub fn guard(&self) -> ReconfigGuard {
        self.guard
    }

    /// Iterates over `(nid, server)` pairs in id order.
    pub fn servers(&self) -> impl Iterator<Item = (NodeId, &Server<C, M>)> {
        self.servers.iter().map(|(n, s)| (*n, s))
    }

    /// The server with id `nid`, if it exists in the cluster.
    #[must_use]
    pub fn server(&self, nid: NodeId) -> Option<&Server<C, M>> {
        self.servers.get(&nid)
    }

    /// All broadcast requests so far (the "sent" bag), indexed by
    /// [`MsgId`] position.
    #[must_use]
    pub fn messages(&self) -> &[Request<C, M>] {
        &self.messages
    }

    /// The request with the given id.
    #[must_use]
    pub fn message(&self, id: MsgId) -> Option<&Request<C, M>> {
        self.messages.get(id.0 as usize)
    }

    /// The deliveries performed so far.
    #[must_use]
    pub fn delivered(&self) -> &[(MsgId, NodeId)] {
        &self.delivered
    }

    /// The configuration in effect at `nid` (from its log).
    #[must_use]
    pub fn config_of(&self, nid: NodeId) -> Option<C> {
        self.servers
            .get(&nid)
            .map(|s| effective_config(&self.conf0, &s.log))
    }

    /// Ensures a server object exists for `nid` (new members join with an
    /// empty log and learn state through commit requests).
    fn ensure_server(&mut self, nid: NodeId) -> &mut Server<C, M> {
        self.servers.entry(nid).or_insert_with(Server::new)
    }

    /// Applies one event, returning what happened.
    ///
    /// Invalid deliveries and unauthorized local operations are no-ops with
    /// a reported reason, never errors: the scheduler is free to try
    /// anything, like a real network.
    pub fn step(&mut self, event: &NetEvent<C, M>) -> EventOutcome {
        match event {
            NetEvent::Elect { nid } => self.elect(*nid),
            NetEvent::Invoke { nid, method } => self.invoke(*nid, method.clone()),
            NetEvent::Reconfig { nid, config } => self.reconfig(*nid, config.clone()),
            NetEvent::Commit { nid } => self.commit(*nid),
            NetEvent::Deliver { msg, to } => self.deliver(*msg, *to),
            NetEvent::Crash { nid } => self.set_crashed(*nid, true),
            NetEvent::Recover { nid } => self.set_crashed(*nid, false),
        }
    }

    /// Crashes or recovers a replica. Crashing demotes a leader/candidate
    /// to follower (it will have lost its volatile election bookkeeping by
    /// the time it returns). The bare [`NetEvent::Recover`] keeps the
    /// benign-crash reading — `(time, log, commit_len)` intact — which is
    /// what the certified refinement and the untimed harness model; the
    /// simulation layer instead rebuilds those fields from a WAL replay
    /// and installs the result with [`Self::install_recovery`], so what
    /// actually survives a crash is decided by the storage policy and any
    /// injected disk faults.
    fn set_crashed(&mut self, nid: NodeId, crashed: bool) -> EventOutcome {
        let s = self.ensure_server(nid);
        if s.crashed == crashed {
            return EventOutcome::LocalNoOp;
        }
        s.crashed = crashed;
        if crashed {
            s.role = Role::Follower;
            s.votes.clear();
            s.acks.clear();
        }
        EventOutcome::Applied
    }

    /// Replays a whole trace from this state.
    pub fn replay(&mut self, trace: &[NetEvent<C, M>]) -> Vec<EventOutcome> {
        trace.iter().map(|ev| self.step(ev)).collect()
    }

    /// Installs the state a crashed replica's WAL replay reconstructed
    /// and brings the replica back up. This is the simulation's recovery
    /// path; unlike [`NetEvent::Recover`] it does not assume the
    /// pre-crash volatile state survived — the storage layer decides
    /// what did.
    ///
    /// The replica returns as a follower with cleared election
    /// bookkeeping and `commit_len` clamped to the recovered log.
    /// `abstaining` marks a replica that lost its entire WAL
    /// (`Recovery::DataLoss`): it no longer remembers which votes it
    /// granted, so it must never vote or campaign again. Abstention is
    /// permanent — once promises are forgotten, no later recovery can
    /// restore trust in them.
    pub fn install_recovery(
        &mut self,
        nid: NodeId,
        time: Timestamp,
        log: Log<C, M>,
        commit_len: usize,
        abstaining: bool,
    ) -> EventOutcome {
        let s = self.ensure_server(nid);
        s.time = time;
        // Recovery installs the watermark Wal::recover already certified
        // by frame replay — the guard lives in another crate, outside
        // both L6's call-graph reach and L14's per-path IR dominance.
        // adore-lint: allow(L6, L14, reason = "installs the WAL-certified watermark; guarded by Wal::recover's replay one call level up")
        s.commit_len = commit_len.min(log.len());
        // adore-lint: allow(L6, L14, reason = "installs the WAL-certified log; guarded by Wal::recover's replay one call level up")
        s.log = log;
        s.role = Role::Follower;
        s.votes.clear();
        s.acks.clear();
        s.crashed = false;
        s.abstaining = s.abstaining || abstaining;
        EventOutcome::Applied
    }

    /// `elect(nid)`: become a candidate at a fresh term and broadcast
    /// election requests to the members of the candidate's configuration.
    ///
    /// A replica outside its own effective configuration does not campaign
    /// (it has been removed, or never added): the event is a no-op.
    fn elect(&mut self, nid: NodeId) -> EventOutcome {
        let conf0 = self.conf0.clone();
        {
            let s = self.ensure_server(nid);
            if s.crashed
                || s.abstaining
                || !effective_config(&conf0, &s.log).members().contains(&nid)
            {
                return EventOutcome::LocalNoOp;
            }
            s.time = s.time.next();
            s.role = Role::Candidate;
            s.votes = std::iter::once(nid).collect();
            s.acks.clear();
        }
        let s = &self.servers[&nid];
        let req = Request::Elect {
            from: nid,
            time: s.time,
            log: s.log.clone(),
        };
        self.messages.push(req);
        self.maybe_win(nid);
        EventOutcome::Applied
    }

    /// `invoke(nid, m)`: leaders append a method entry locally.
    fn invoke(&mut self, nid: NodeId, method: M) -> EventOutcome {
        let Some(s) = self.servers.get_mut(&nid) else {
            return EventOutcome::LocalNoOp;
        };
        if s.role != Role::Leader || s.crashed {
            return EventOutcome::LocalNoOp;
        }
        s.log.push(Entry {
            time: s.time,
            cmd: Command::Method(method),
        });
        EventOutcome::Applied
    }

    /// `reconfig(nid, cf)`: leaders append a config entry locally, subject
    /// to the guard's enabled subset of R1⁺/R2/R3 evaluated on the log.
    fn reconfig(&mut self, nid: NodeId, config: C) -> EventOutcome {
        let guard = self.guard;
        let conf0 = self.conf0.clone();
        let Some(s) = self.servers.get_mut(&nid) else {
            return EventOutcome::LocalNoOp;
        };
        if s.role != Role::Leader || s.crashed {
            return EventOutcome::LocalNoOp;
        }
        let current = effective_config(&conf0, &s.log);
        if guard.r1 && !current.r1_plus(&config) {
            return EventOutcome::LocalNoOp;
        }
        // R2: no uncommitted config entry in the log.
        if guard.r2
            && s.log[s.commit_len..]
                .iter()
                .any(|e| e.cmd.config().is_some())
        {
            return EventOutcome::LocalNoOp;
        }
        // R3: a committed entry with the current term.
        if guard.r3 && !s.log[..s.commit_len].iter().any(|e| e.time == s.time) {
            return EventOutcome::LocalNoOp;
        }
        s.log.push(Entry {
            time: s.time,
            cmd: Command::Config(config),
        });
        EventOutcome::Applied
    }

    /// `commit(nid)`: leaders broadcast their log for replication.
    ///
    /// Requires the log to end with an entry of the leader's own term
    /// (Raft's current-term commit rule); leaders in our workloads always
    /// invoke before committing.
    fn commit(&mut self, nid: NodeId) -> EventOutcome {
        let Some(s) = self.servers.get_mut(&nid) else {
            return EventOutcome::LocalNoOp;
        };
        if s.role != Role::Leader || s.crashed {
            return EventOutcome::LocalNoOp;
        }
        if s.log.last().map(|e| e.time) != Some(s.time) {
            return EventOutcome::LocalNoOp;
        }
        let time = s.time;
        let len = s.log.len();
        // The leader acknowledges its own log immediately.
        s.acks.entry(len).or_default().insert(nid);
        let req = Request::Commit {
            from: nid,
            time,
            log: s.log.clone(),
            commit_len: s.commit_len,
        };
        self.messages.push(req);
        self.maybe_advance_commit(nid, len);
        EventOutcome::Applied
    }

    /// [`NetEvent::Deliver`] gated by a reachability predicate over
    /// directed links: the delivery is rejected as
    /// [`Rejection::Unreachable`] — without touching the recipient — when
    /// the `sender → recipient` link is down, and the synchronous
    /// acknowledgement is suppressed when the reverse `recipient → sender`
    /// link is down (an asymmetric partition loses acks but not
    /// payloads).
    ///
    /// The message stays in the sent bag either way, so it can be
    /// re-delivered after the partition heals.
    pub fn deliver_via(
        &mut self,
        msg: MsgId,
        to: NodeId,
        reachable: &dyn Fn(NodeId, NodeId) -> bool,
    ) -> EventOutcome {
        let Some(req) = self.messages.get(msg.0 as usize) else {
            return EventOutcome::Rejected(Rejection::UnknownMessage);
        };
        let from = req.from();
        if !reachable(from, to) {
            return EventOutcome::Rejected(Rejection::Unreachable);
        }
        self.deliver_gated(msg, to, reachable(to, from))
    }

    /// `deliver(msg, to)`: the recipient validates and applies the request;
    /// the acknowledgement is processed by the sender synchronously.
    fn deliver(&mut self, msg: MsgId, to: NodeId) -> EventOutcome {
        self.deliver_gated(msg, to, true)
    }

    /// [`Self::deliver`] with the synchronous acknowledgement made
    /// conditional (`ack_ok`): the recipient's adoption always applies,
    /// but the sender only learns of it when the return path is up.
    fn deliver_gated(&mut self, msg: MsgId, to: NodeId, ack_ok: bool) -> EventOutcome {
        let Some(req) = self.messages.get(msg.0 as usize).cloned() else {
            return EventOutcome::Rejected(Rejection::UnknownMessage);
        };
        if self.servers.get(&to).is_some_and(|s| s.crashed) {
            return EventOutcome::Rejected(Rejection::RecipientCrashed);
        }
        self.delivered.push((msg, to));
        match req {
            Request::Elect { from, time, log } => {
                let recipient = self.ensure_server(to);
                if recipient.abstaining {
                    return EventOutcome::Rejected(Rejection::Abstaining);
                }
                if time <= recipient.time {
                    return EventOutcome::Rejected(Rejection::StaleTime);
                }
                if !log_up_to_date(&log, &recipient.log) {
                    return EventOutcome::Rejected(Rejection::OutdatedLog);
                }
                recipient.time = time;
                recipient.role = Role::Follower;
                // Synchronous acknowledgement: the candidate counts the vote
                // unless it has moved on — in which case the vote is wasted
                // but the recipient's state still changed, so the delivery
                // counts as applied (it is NOT an ignorable message).
                let candidate = self.ensure_server(from);
                if ack_ok
                    && !candidate.crashed
                    && candidate.role == Role::Candidate
                    && candidate.time == time
                {
                    candidate.votes.insert(to);
                    self.maybe_win(from);
                }
                EventOutcome::Applied
            }
            Request::Commit {
                from,
                time,
                log,
                commit_len,
            } => {
                let recipient = self.ensure_server(to);
                if time < recipient.time {
                    return EventOutcome::Rejected(Rejection::StaleTime);
                }
                // The shipped log must be at least as up-to-date as the
                // local one (Raft's consistency check, specialized to
                // full-log shipping): a leader's earlier, shorter broadcast
                // arriving late must not truncate newer entries.
                if !log_up_to_date(&log, &recipient.log) {
                    return EventOutcome::Rejected(Rejection::OutdatedLog);
                }
                recipient.time = time;
                if from != to {
                    recipient.role = Role::Follower;
                }
                let len = log.len();
                recipient.log = log;
                recipient.commit_len = recipient.commit_len.max(commit_len.min(len));
                // Synchronous acknowledgement: the leader counts the ack
                // unless it has moved on (the adoption above still counts).
                let leader = self.ensure_server(from);
                if ack_ok && !leader.crashed && leader.role == Role::Leader && leader.time == time {
                    leader.acks.entry(len).or_default().insert(to);
                    self.maybe_advance_commit(from, len);
                }
                EventOutcome::Applied
            }
        }
    }

    /// Promotes a candidate with a quorum of votes (per its own effective
    /// configuration) to leader.
    fn maybe_win(&mut self, nid: NodeId) {
        let conf0 = self.conf0.clone();
        let Some(s) = self.servers.get_mut(&nid) else {
            return;
        };
        if s.role != Role::Candidate {
            return;
        }
        let config = effective_config(&conf0, &s.log);
        adore_core::telemetry::count_quorum_check();
        if config.is_quorum(&s.votes) {
            s.role = Role::Leader;
        }
    }

    /// Advances the leader's commit index if a quorum (per the
    /// configuration effective at the acked prefix) acknowledged `len`.
    fn maybe_advance_commit(&mut self, nid: NodeId, len: usize) {
        let conf0 = self.conf0.clone();
        let Some(s) = self.servers.get_mut(&nid) else {
            return;
        };
        if s.role != Role::Leader {
            return;
        }
        let Some(ackers) = s.acks.get(&len) else {
            return;
        };
        let acked_prefix = s.log.get(..len.min(s.log.len())).unwrap_or(&[]);
        let config = effective_config(&conf0, acked_prefix);
        adore_core::telemetry::count_quorum_check();
        if config.is_quorum(ackers) && len > s.commit_len {
            s.commit_len = len;
        }
    }

    /// The `ℝ_net` projection (Fig. 18): each server's log, observed time,
    /// and commit length. Two runs are network-equivalent when these agree
    /// for every server.
    ///
    /// Pristine servers — never elected, never voted, empty log, not
    /// crashed — are omitted: they are observationally indistinguishable
    /// from servers that were never instantiated (a no-op event may still
    /// materialize a server object as an implementation detail).
    #[must_use]
    pub fn net_relation(&self) -> BTreeMap<NodeId, (Timestamp, Log<C, M>, usize)> {
        self.servers
            .iter()
            .filter(|(_, s)| {
                s.time != Timestamp(0) || !s.log.is_empty() || s.commit_len != 0 || s.crashed
            })
            .map(|(nid, s)| (*nid, (s.time, s.log.clone(), s.commit_len)))
            .collect()
    }

    /// The committed prefix agreed by the cluster: the longest committed
    /// prefix of any server (used by safety checks and the KV store).
    ///
    /// `commit_len` is clamped to the log length: in diverging runs under
    /// a flawed guard, a server can adopt a newer-but-shorter log over
    /// entries it had committed, leaving `commit_len` dangling past the
    /// end. [`Self::check_log_safety`] reports that state as a violation;
    /// this accessor must still be total so the checker can run at all.
    #[must_use]
    pub fn committed_prefix(&self) -> &[Entry<C, M>] {
        let Some(best) = self
            .servers
            .values()
            .max_by_key(|s| s.commit_len.min(s.log.len()))
        else {
            return &[]; // no servers yet: nothing is committed
        };
        best.log.get(..best.commit_len.min(best.log.len())).unwrap_or(&[])
    }

    /// Checks replicated state safety at the network level: every pair of
    /// committed prefixes must agree slot-by-slot.
    ///
    /// # Errors
    ///
    /// Returns the two servers whose committed prefixes disagree. A server
    /// whose `commit_len` exceeds its log length — committed entries were
    /// overwritten by an adopted log, which only a flawed guard permits —
    /// disagrees with its own history and is reported against itself.
    pub fn check_log_safety(&self) -> Result<(), (NodeId, NodeId)> {
        let ids: Vec<NodeId> = self.servers.keys().copied().collect();
        for &a in &ids {
            if self.servers[&a].commit_len > self.servers[&a].log.len() {
                return Err((a, a));
            }
        }
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                let sa = &self.servers[&a];
                let sb = &self.servers[&b];
                let common = sa.commit_len.min(sb.commit_len);
                if sa.log[..common] != sb.log[..common] {
                    return Err((a, b));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_schemes::SingleNode;

    type St = NetState<SingleNode, &'static str>;

    fn three() -> St {
        NetState::new(SingleNode::new([1, 2, 3]), ReconfigGuard::all())
    }

    fn ev_elect(nid: u32) -> NetEvent<SingleNode, &'static str> {
        NetEvent::Elect { nid: NodeId(nid) }
    }

    fn ev_deliver(msg: u32, to: u32) -> NetEvent<SingleNode, &'static str> {
        NetEvent::Deliver {
            msg: MsgId(msg),
            to: NodeId(to),
        }
    }

    #[test]
    fn election_needs_a_quorum_of_votes() {
        let mut st = three();
        st.step(&ev_elect(1));
        assert_eq!(st.server(NodeId(1)).unwrap().role, Role::Candidate);
        st.step(&ev_deliver(0, 2));
        assert_eq!(st.server(NodeId(1)).unwrap().role, Role::Leader);
    }

    #[test]
    fn stale_election_requests_are_rejected() {
        let mut st = three();
        st.step(&ev_elect(1)); // m0 at t1
        st.step(&ev_elect(2)); // m1 at t1 (S2's own term bump)
        st.step(&ev_deliver(1, 3)); // S3 votes for S2 at t1
                                    // S1's t1 request arrives at S3 after it voted at t1: stale.
        let out = st.step(&ev_deliver(0, 3));
        assert_eq!(out, EventOutcome::Rejected(Rejection::StaleTime));
    }

    #[test]
    fn voters_reject_outdated_candidate_logs() {
        let mut st = three();
        // S1 leads and replicates one entry to everyone.
        st.step(&ev_elect(1));
        st.step(&ev_deliver(0, 2));
        st.step(&NetEvent::Invoke {
            nid: NodeId(1),
            method: "a",
        });
        st.step(&NetEvent::Commit { nid: NodeId(1) });
        st.step(&ev_deliver(1, 2));
        st.step(&ev_deliver(1, 3));
        // S3 now has one entry; S2 starts a candidacy... with that entry
        // too, fine. Wipe the scenario: a fresh node S2 candidacy is fine;
        // instead check a candidate with an EMPTY log is rejected by S3.
        // S2 also has the entry, so use a hypothetical: deliver S1's OLD
        // election request (empty log, t1) to S3 — stale time AND outdated.
        let out = st.step(&ev_deliver(0, 3));
        assert_eq!(out, EventOutcome::Rejected(Rejection::StaleTime));
    }

    #[test]
    fn commit_replicates_and_advances_commit_len() {
        let mut st = three();
        st.step(&ev_elect(1));
        st.step(&ev_deliver(0, 2));
        st.step(&NetEvent::Invoke {
            nid: NodeId(1),
            method: "a",
        });
        let out = st.step(&NetEvent::Commit { nid: NodeId(1) });
        assert_eq!(out, EventOutcome::Applied);
        // Leader alone is not a quorum of three.
        assert_eq!(st.server(NodeId(1)).unwrap().commit_len, 0);
        st.step(&ev_deliver(1, 3));
        assert_eq!(st.server(NodeId(1)).unwrap().commit_len, 1);
        assert_eq!(st.server(NodeId(3)).unwrap().log.len(), 1);
        assert_eq!(st.committed_prefix().len(), 1);
        st.check_log_safety().unwrap();
    }

    #[test]
    fn non_leaders_cannot_invoke_or_commit() {
        let mut st = three();
        assert_eq!(
            st.step(&NetEvent::Invoke {
                nid: NodeId(1),
                method: "a"
            }),
            EventOutcome::LocalNoOp
        );
        assert_eq!(
            st.step(&NetEvent::Commit { nid: NodeId(1) }),
            EventOutcome::LocalNoOp
        );
    }

    #[test]
    fn reconfig_guards_apply_at_the_log_level() {
        let mut st = three();
        st.step(&ev_elect(1));
        st.step(&ev_deliver(0, 2));
        // R3: no committed entry at the current term yet.
        assert_eq!(
            st.step(&NetEvent::Reconfig {
                nid: NodeId(1),
                config: SingleNode::new([1, 2, 3, 4]),
            }),
            EventOutcome::LocalNoOp
        );
        // Commit a method at this term, then reconfigure.
        st.step(&NetEvent::Invoke {
            nid: NodeId(1),
            method: "a",
        });
        st.step(&NetEvent::Commit { nid: NodeId(1) });
        st.step(&ev_deliver(1, 2));
        assert_eq!(
            st.step(&NetEvent::Reconfig {
                nid: NodeId(1),
                config: SingleNode::new([1, 2, 3, 4]),
            }),
            EventOutcome::Applied
        );
        // R2 blocks a second, stacked reconfiguration.
        assert_eq!(
            st.step(&NetEvent::Reconfig {
                nid: NodeId(1),
                config: SingleNode::new([1, 2, 3, 4, 5]),
            }),
            EventOutcome::LocalNoOp
        );
        // R1 blocks multi-node jumps even after committing.
        st.step(&NetEvent::Invoke {
            nid: NodeId(1),
            method: "b",
        });
        st.step(&NetEvent::Commit { nid: NodeId(1) });
        st.step(&ev_deliver(2, 2));
        st.step(&ev_deliver(2, 3));
        assert_eq!(
            st.step(&NetEvent::Reconfig {
                nid: NodeId(1),
                config: SingleNode::new([1]),
            }),
            EventOutcome::LocalNoOp
        );
    }

    #[test]
    fn new_members_join_via_commit_requests() {
        let mut st = three();
        st.step(&ev_elect(1));
        st.step(&ev_deliver(0, 2));
        st.step(&NetEvent::Invoke {
            nid: NodeId(1),
            method: "a",
        });
        st.step(&NetEvent::Commit { nid: NodeId(1) });
        st.step(&ev_deliver(1, 2));
        // Add S4; it learns the log from the next commit broadcast.
        st.step(&NetEvent::Reconfig {
            nid: NodeId(1),
            config: SingleNode::new([1, 2, 3, 4]),
        });
        st.step(&NetEvent::Invoke {
            nid: NodeId(1),
            method: "b",
        });
        st.step(&NetEvent::Commit { nid: NodeId(1) });
        let msg = MsgId(st.messages().len() as u32 - 1);
        st.step(&NetEvent::Deliver { msg, to: NodeId(4) });
        assert_eq!(st.server(NodeId(4)).unwrap().log.len(), 3);
        st.check_log_safety().unwrap();
    }

    #[test]
    fn fig4_bug_reproduces_at_the_network_level() {
        // The flawed single-server algorithm (no R3) loses committed data
        // under the Fig. 4 schedule, at the network level this time.
        let mut st: St = NetState::new(
            SingleNode::new([1, 2, 3, 4]),
            ReconfigGuard::all().without_r3(),
        );
        // S1 leads with votes from S2, S3.
        st.step(&ev_elect(1)); // m0
        st.step(&ev_deliver(0, 2));
        st.step(&ev_deliver(0, 3));
        assert_eq!(st.server(NodeId(1)).unwrap().role, Role::Leader);
        // S1 proposes removing S4 but never replicates it.
        assert!(st
            .step(&NetEvent::Reconfig {
                nid: NodeId(1),
                config: SingleNode::new([1, 2, 3]),
            })
            .applied());
        // S2 is elected with S3 and S4.
        st.step(&ev_elect(2)); // m1
        st.step(&ev_deliver(1, 3));
        st.step(&ev_deliver(1, 4));
        assert_eq!(st.server(NodeId(2)).unwrap().role, Role::Leader);
        // S2 removes S3; its new config {1,2,4} commits once S4 acks.
        assert!(st
            .step(&NetEvent::Reconfig {
                nid: NodeId(2),
                config: SingleNode::new([1, 2, 4]),
            })
            .applied());
        st.step(&NetEvent::Commit { nid: NodeId(2) }); // m2
        st.step(&ev_deliver(2, 4));
        assert_eq!(st.server(NodeId(2)).unwrap().commit_len, 1);
        // S1 is re-elected with S3 using its own config {1,2,3}.
        st.step(&ev_elect(1)); // m3 at t3... S1's time is 1 -> t2? S3 is at t2.
                               // S1's new term is 2, but S3 already voted at t2; elect again to t3.
        st.step(&ev_elect(1)); // m4 at t3
        st.step(&ev_deliver(4, 3));
        assert_eq!(st.server(NodeId(1)).unwrap().role, Role::Leader);
        // S1 commits its own entry, overwriting S2's committed reconfig.
        st.step(&NetEvent::Invoke {
            nid: NodeId(1),
            method: "overwrite",
        });
        st.step(&NetEvent::Commit { nid: NodeId(1) }); // m5
        st.step(&ev_deliver(5, 3));
        assert!(st.server(NodeId(1)).unwrap().commit_len >= 1);
        // Committed prefixes now disagree: S1/S3 vs S2/S4.
        assert!(st.check_log_safety().is_err());
    }

    #[test]
    fn partitioned_links_reject_deliveries_without_side_effects() {
        let mut st = three();
        st.step(&ev_elect(1)); // m0 at t1
        let down = |from: NodeId, to: NodeId| !(from == NodeId(1) && to == NodeId(2));
        let out = st.deliver_via(MsgId(0), NodeId(2), &down);
        assert_eq!(out, EventOutcome::Rejected(Rejection::Unreachable));
        // The recipient was never touched, and the vote was not counted.
        assert_eq!(st.server(NodeId(2)).map(|s| s.time), Some(Timestamp(0)));
        assert_eq!(st.server(NodeId(1)).unwrap().role, Role::Candidate);
        // The message survives in the sent bag: after the heal, the same
        // delivery applies.
        let up = |_: NodeId, _: NodeId| true;
        assert_eq!(st.deliver_via(MsgId(0), NodeId(2), &up), EventOutcome::Applied);
        assert_eq!(st.server(NodeId(1)).unwrap().role, Role::Leader);
    }

    #[test]
    fn asymmetric_cut_loses_the_ack_but_not_the_payload() {
        let mut st = three();
        st.step(&ev_elect(1)); // m0 at t1
        st.step(&ev_deliver(0, 2)); // S1 leads
        st.step(&NetEvent::Invoke {
            nid: NodeId(1),
            method: "a",
        });
        st.step(&NetEvent::Commit { nid: NodeId(1) }); // m1
        // The return path S2 -> S1 is cut: S2 adopts the log, S1 never
        // hears the ack, so nothing commits.
        let ack_cut = |from: NodeId, to: NodeId| !(from == NodeId(2) && to == NodeId(1));
        assert_eq!(
            st.deliver_via(MsgId(1), NodeId(2), &ack_cut),
            EventOutcome::Applied
        );
        assert_eq!(st.server(NodeId(2)).unwrap().log.len(), 1);
        assert_eq!(st.server(NodeId(1)).unwrap().commit_len, 0);
        // Re-delivery after the heal completes the round.
        let up = |_: NodeId, _: NodeId| true;
        assert_eq!(st.deliver_via(MsgId(1), NodeId(2), &up), EventOutcome::Applied);
        assert_eq!(st.server(NodeId(1)).unwrap().commit_len, 1);
    }

    #[test]
    fn net_relation_projects_logs_and_times() {
        let mut st = three();
        st.step(&ev_elect(1));
        st.step(&ev_deliver(0, 2));
        let rel = st.net_relation();
        assert_eq!(rel[&NodeId(1)].0, Timestamp(1));
        assert_eq!(rel[&NodeId(2)].0, Timestamp(1));
        // S3 never acted: pristine servers are omitted from the projection.
        assert!(!rel.contains_key(&NodeId(3)));
    }

    #[test]
    fn install_recovery_clamps_the_watermark_and_resets_the_role() {
        let mut st = three();
        st.step(&ev_elect(1));
        st.step(&ev_deliver(0, 2)); // S1 leads at t1
        st.step(&NetEvent::Crash { nid: NodeId(1) });
        // The WAL replay came back with a shorter log and a commit
        // record that outlived the entries it covered.
        let log = vec![Entry {
            time: Timestamp(1),
            cmd: Command::Method("a"),
        }];
        let out = st.install_recovery(NodeId(1), Timestamp(1), log, 7, false);
        assert_eq!(out, EventOutcome::Applied);
        let s = st.server(NodeId(1)).unwrap();
        assert!(!s.crashed);
        assert!(!s.abstaining);
        assert_eq!(s.role, Role::Follower);
        assert_eq!(s.log.len(), 1);
        assert_eq!(s.commit_len, 1, "watermark clamped to the recovered log");
        assert!(s.votes.is_empty() && s.acks.is_empty());
    }

    #[test]
    fn abstaining_replicas_never_vote_or_campaign_but_still_replicate() {
        let mut st = three();
        // S3 lost its WAL entirely and rejoined without voting rights.
        st.install_recovery(NodeId(3), Timestamp::ZERO, Vec::new(), 0, true);
        st.step(&ev_elect(1)); // m0 at t1
        assert_eq!(
            st.step(&ev_deliver(0, 3)),
            EventOutcome::Rejected(Rejection::Abstaining)
        );
        assert_eq!(st.server(NodeId(3)).unwrap().time, Timestamp::ZERO);
        // It cannot campaign either.
        assert_eq!(st.step(&ev_elect(3)), EventOutcome::LocalNoOp);
        // A real voter still gets S1 elected, and the abstainer adopts
        // the replicated log and acks it like any follower.
        st.step(&ev_deliver(0, 2));
        st.step(&NetEvent::Invoke {
            nid: NodeId(1),
            method: "a",
        });
        st.step(&NetEvent::Commit { nid: NodeId(1) }); // m1
        assert_eq!(st.step(&ev_deliver(1, 3)), EventOutcome::Applied);
        let s3 = st.server(NodeId(3)).unwrap();
        assert_eq!(s3.log.len(), 1);
        assert!(s3.abstaining, "replication does not restore voting rights");
        let s3_log = s3.log.clone();
        // Abstention survives a later, intact recovery.
        st.step(&NetEvent::Crash { nid: NodeId(3) });
        st.install_recovery(NodeId(3), Timestamp(1), s3_log, 1, false);
        assert!(st.server(NodeId(3)).unwrap().abstaining);
    }
}
