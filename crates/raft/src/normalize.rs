//! Trace normalization: the executable content of Lemmas C.3, C.7 and C.9.
//!
//! Any asynchronous trace is rewritten — preserving `ℝ_net` — into an
//! equivalent "SRaft" trace in three steps:
//!
//! 1. [`filter_invalid`] (Lemma C.3): drop deliveries the recipient ignores
//!    and local no-ops; invalid events have no effect, so the final state
//!    is unchanged.
//! 2. [`globally_order`] (Lemma C.7): reorder deliveries into logical-time
//!    order. Only events touching disjoint server sets commute, so the
//!    reordering is a priority-driven topological sort over the
//!    "touches-intersect" dependency relation.
//! 3. [`atomicize`] (Lemma C.9): group the (now adjacent) deliveries of
//!    each request into one atomic step.
//!
//! Each step's equivalence claim is *checked*, not assumed:
//! [`normalize`] replays original and rewritten traces and compares
//! their [`NetState::net_relation`] projections.

use adore_core::{Configuration, NodeId, ReconfigGuard};

use crate::net::{EventOutcome, NetState};
use crate::types::{MsgId, NetEvent};

/// One step of a normalized ("SRaft") trace: a local operation, or the
/// atomic delivery of one request to a batch of recipients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SraftStep<C, M> {
    /// An `elect`/`invoke`/`reconfig`/`commit` local operation.
    Local(NetEvent<C, M>),
    /// All deliveries of request `msg`, applied back-to-back.
    Deliveries {
        /// The request being delivered.
        msg: MsgId,
        /// The recipients, in delivery order.
        recipients: Vec<NodeId>,
    },
}

impl<C: Clone, M: Clone> SraftStep<C, M> {
    /// Expands the step back into plain network events.
    #[must_use]
    pub fn events(&self) -> Vec<NetEvent<C, M>> {
        match self {
            SraftStep::Local(ev) => vec![ev.clone()],
            SraftStep::Deliveries { msg, recipients } => recipients
                .iter()
                .map(|to| NetEvent::Deliver { msg: *msg, to: *to })
                .collect(),
        }
    }
}

/// A normalization failure: one of the lemma-backed rewrites did not
/// preserve network equivalence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormalizeError {
    /// Replaying the rewritten trace produced a different `ℝ_net`
    /// projection than the original — the equivalence claim failed.
    NotEquivalent {
        /// Which rewrite broke it: "filter", "order", or "atomicize".
        stage: &'static str,
    },
}

impl std::fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalizeError::NotEquivalent { stage } => {
                write!(f, "normalization stage '{stage}' changed the final state")
            }
        }
    }
}

impl std::error::Error for NormalizeError {}

fn final_state<C: Configuration, M: Clone + Eq>(
    conf0: &C,
    guard: ReconfigGuard,
    trace: &[NetEvent<C, M>],
) -> NetState<C, M> {
    let mut st = NetState::new(conf0.clone(), guard);
    st.replay(trace);
    st
}

/// Lemma C.3: drops ignored deliveries and ineffective local operations.
///
/// Returns the filtered trace; every remaining event has an effect when
/// replayed in order.
#[must_use]
pub fn filter_invalid<C: Configuration, M: Clone + Eq>(
    conf0: &C,
    guard: ReconfigGuard,
    trace: &[NetEvent<C, M>],
) -> Vec<NetEvent<C, M>> {
    let mut st = NetState::new(conf0.clone(), guard);
    let mut out = Vec::with_capacity(trace.len());
    for ev in trace {
        if st.step(ev) == EventOutcome::Applied {
            out.push(ev.clone());
        }
    }
    out
}

/// Priority of an event for the global ordering: local events keep their
/// original order; deliveries sort by the request's logical time, then
/// elections before commits, then by shipped-log length (a leader's later
/// requests carry longer logs), then request id.
fn priority<C, M>(
    ev: &NetEvent<C, M>,
    orig_index: usize,
    msg_time: impl Fn(MsgId) -> (u64, u8, usize),
) -> (u8, u64, u8, usize, u32, usize) {
    match ev {
        NetEvent::Deliver { msg, .. } => {
            let (time, kind, len) = msg_time(*msg);
            // The request id keys before the original index so that
            // same-priority deliveries of one request stay contiguous.
            (1, time, kind, len, msg.0, orig_index)
        }
        _ => (0, orig_index as u64, 0, 0, 0, orig_index),
    }
}

/// Lemma C.7: reorders deliveries into global logical-time order via a
/// commutation-respecting topological sort.
///
/// Two events may swap only if they touch disjoint server sets (a delivery
/// touches its recipient and — through the synchronous acknowledgement —
/// its sender). Among the orderings respecting these dependencies, the
/// lexicographically smallest by the delivery priority (logical time, then
/// election-before-commit, then shipped-log length) is produced.
#[must_use]
pub fn globally_order<C: Configuration, M: Clone + Eq>(
    conf0: &C,
    guard: ReconfigGuard,
    trace: &[NetEvent<C, M>],
) -> Vec<NetEvent<C, M>> {
    // Replay once to learn each message's metadata.
    let st = final_state(conf0, guard, trace);
    let meta = |msg: MsgId| -> (u64, u8, usize) {
        st.message(msg)
            .map(|r| (r.time().0, r.kind_rank(), r.log_len()))
            .unwrap_or((u64::MAX, u8::MAX, usize::MAX))
    };
    let sender = |msg: MsgId| st.message(msg).map(|r| r.from());

    let touches: Vec<Vec<NodeId>> = trace
        .iter()
        .map(|ev| ev.touches(|m| sender(m).unwrap_or(NodeId(u32::MAX))))
        .collect();

    // Two events conflict (must keep their order) when they touch a common
    // server — EXCEPT a *commit* delivery against its own sender's
    // *invoke*: the commit acknowledgement only updates the leader's ack
    // counters and commit index, which a local method append neither reads
    // nor writes, so the pair commutes. The exception is deliberately
    // narrow: an *election* delivery may flip the sender to leader (read by
    // invoke's precondition), and a *reconfig* reads the commit index
    // (through R2/R3), so neither commutes. This rule is what lets a
    // commit's deliveries slide together past the leader's interleaved
    // invokes (Lemma C.9's key commutation).
    let is_commit = |m: MsgId| matches!(st.message(m), Some(crate::types::Request::Commit { .. }));
    let conflict = |i: usize, j: usize| -> bool {
        let commuting_pair = |a: &NetEvent<C, M>, b: &NetEvent<C, M>| match (a, b) {
            (NetEvent::Deliver { msg, to }, NetEvent::Invoke { nid, .. }) => {
                is_commit(*msg) && sender(*msg) == Some(*nid) && to != nid
            }
            _ => false,
        };
        if commuting_pair(&trace[i], &trace[j]) || commuting_pair(&trace[j], &trace[i]) {
            return false;
        }
        touches[i].iter().any(|a| touches[j].contains(a))
    };

    let n = trace.len();
    // deps[j] = indices i < j that must stay before j.
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)] // index pairs (i < j) are the point
    for j in 0..n {
        for i in 0..j {
            if conflict(i, j) {
                dependents[i].push(j);
                indegree[j] += 1;
            }
        }
    }

    let mut available: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut last_msg: Option<MsgId> = None;
    while !available.is_empty() {
        // Group-continuation rule: if the previous event delivered request
        // m and another delivery of m is available, emit it next so groups
        // stay contiguous; otherwise take the minimum-priority event.
        let continuation = last_msg.and_then(|m| {
            available
                .iter()
                .position(|&i| matches!(&trace[i], NetEvent::Deliver { msg, .. } if *msg == m))
        });
        let pos = continuation.unwrap_or_else(|| {
            available
                .iter()
                .enumerate()
                .min_by_key(|(_, &i)| priority(&trace[i], i, meta))
                .expect("available is non-empty")
                .0
        });
        let best = available.swap_remove(pos);
        last_msg = match &trace[best] {
            NetEvent::Deliver { msg, .. } => Some(*msg),
            _ => None,
        };
        order.push(best);
        for &j in &dependents[best] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                available.push(j);
            }
        }
    }

    // Message ids are assigned in creation order, so reordering the
    // generating `elect`/`commit` events re-binds the ids: renumber every
    // delivery to keep it pointing at the *same* request.
    let is_generator =
        |ev: &NetEvent<C, M>| matches!(ev, NetEvent::Elect { .. } | NetEvent::Commit { .. });
    // gen_pos[k] = trace index of the event that generated MsgId(k).
    let gen_pos: Vec<usize> = (0..n).filter(|&i| is_generator(&trace[i])).collect();
    // new_id[trace index of a generator] = its MsgId in the new order.
    let mut new_id = vec![u32::MAX; n];
    let mut count = 0u32;
    for &i in &order {
        if is_generator(&trace[i]) {
            new_id[i] = count;
            count += 1;
        }
    }
    order
        .into_iter()
        .map(|i| match &trace[i] {
            NetEvent::Deliver { msg, to } => NetEvent::Deliver {
                msg: MsgId(new_id[gen_pos[msg.0 as usize]]),
                to: *to,
            },
            ev => ev.clone(),
        })
        .collect()
}

/// Lemma C.9: groups maximal runs of deliveries of one request into atomic
/// steps.
///
/// After [`globally_order`], a request's deliveries are contiguous except
/// when a *genuine* dependency splits them — a straggler vote arriving
/// after its candidate already started a newer election cannot be commuted
/// past that election. Such splits yield multiple `Deliveries` steps for
/// the same request; [`segment_counts`] reports how many.
#[must_use]
pub fn atomicize<C: Clone, M: Clone>(trace: &[NetEvent<C, M>]) -> Vec<SraftStep<C, M>> {
    let mut steps: Vec<SraftStep<C, M>> = Vec::new();
    for ev in trace {
        match ev {
            NetEvent::Deliver { msg, to } => match steps.last_mut() {
                Some(SraftStep::Deliveries { msg: m, recipients }) if m == msg => {
                    recipients.push(*to);
                }
                _ => steps.push(SraftStep::Deliveries {
                    msg: *msg,
                    recipients: vec![*to],
                }),
            },
            other => steps.push(SraftStep::Local(other.clone())),
        }
    }
    steps
}

/// How many `Deliveries` segments each request was split into (1 for a
/// perfectly atomic group). Used by the refinement experiments to report
/// how often Lemma C.9's contiguity holds outright.
#[must_use]
pub fn segment_counts<C, M>(steps: &[SraftStep<C, M>]) -> std::collections::BTreeMap<MsgId, usize> {
    let mut counts = std::collections::BTreeMap::new();
    for step in steps {
        if let SraftStep::Deliveries { msg, .. } = step {
            *counts.entry(*msg).or_insert(0) += 1;
        }
    }
    counts
}

/// The full pipeline with equivalence checking at every stage: filter,
/// order, atomicize, verifying after each rewrite that the `ℝ_net`
/// projection of the final state is unchanged (Lemma C.10).
///
/// # Errors
///
/// Returns the first failed stage; on success the returned steps replay to
/// a state network-equivalent to the original trace's.
///
/// # Examples
///
/// ```
/// use adore_core::ReconfigGuard;
/// use adore_raft::{normalize, random_trace, ScheduleParams};
/// use adore_schemes::SingleNode;
///
/// let conf0 = SingleNode::new([1, 2, 3]);
/// let trace = random_trace(&conf0, ReconfigGuard::all(), &ScheduleParams::default(), 0, 3);
/// let steps = normalize(&conf0, ReconfigGuard::all(), &trace)?;
/// assert!(!steps.is_empty());
/// # Ok::<(), adore_raft::NormalizeError>(())
/// ```
pub fn normalize<C: Configuration, M: Clone + Eq>(
    conf0: &C,
    guard: ReconfigGuard,
    trace: &[NetEvent<C, M>],
) -> Result<Vec<SraftStep<C, M>>, NormalizeError> {
    let original = final_state(conf0, guard, trace).net_relation();

    let filtered = filter_invalid(conf0, guard, trace);
    if final_state(conf0, guard, &filtered).net_relation() != original {
        return Err(NormalizeError::NotEquivalent { stage: "filter" });
    }

    let ordered = globally_order(conf0, guard, &filtered);
    if final_state(conf0, guard, &ordered).net_relation() != original {
        return Err(NormalizeError::NotEquivalent { stage: "order" });
    }

    let steps = atomicize(&ordered);
    let flat: Vec<NetEvent<C, M>> = steps.iter().flat_map(SraftStep::events).collect();
    if final_state(conf0, guard, &flat).net_relation() != original {
        return Err(NormalizeError::NotEquivalent { stage: "atomicize" });
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{random_trace, ScheduleParams};
    use adore_schemes::SingleNode;

    #[test]
    fn filter_drops_rejected_and_noop_events() {
        let conf0 = SingleNode::new([1, 2, 3]);
        let trace: Vec<NetEvent<SingleNode, u32>> = vec![
            // Invoke by a non-leader: no-op.
            NetEvent::Invoke {
                nid: NodeId(1),
                method: 0,
            },
            NetEvent::Elect { nid: NodeId(1) },
            NetEvent::Deliver {
                msg: MsgId(0),
                to: NodeId(2),
            },
            // Duplicate delivery: stale, rejected.
            NetEvent::Deliver {
                msg: MsgId(0),
                to: NodeId(2),
            },
        ];
        let filtered = filter_invalid(&conf0, ReconfigGuard::all(), &trace);
        assert_eq!(filtered.len(), 2);
    }

    #[test]
    fn fig14_style_reordering_sorts_by_time() {
        // Two rival candidates; their requests arrive out of time order at
        // different servers (the Fig. 14 example shape).
        let conf0 = SingleNode::new([1, 2, 3, 4, 5]);
        let trace: Vec<NetEvent<SingleNode, u32>> = vec![
            NetEvent::Elect { nid: NodeId(1) }, // m0 at t1
            NetEvent::Elect { nid: NodeId(2) }, // m1 at t1 — S2 also picks t1
            NetEvent::Deliver {
                msg: MsgId(1),
                to: NodeId(4),
            },
            NetEvent::Deliver {
                msg: MsgId(0),
                to: NodeId(3),
            },
            NetEvent::Deliver {
                msg: MsgId(1),
                to: NodeId(5),
            },
            NetEvent::Deliver {
                msg: MsgId(0),
                to: NodeId(5),
            }, // stale at S5 (same t1): rejected -> filtered out
        ];
        let steps = normalize(&conf0, ReconfigGuard::all(), &trace).unwrap();
        // After normalization, m0's deliveries precede... both are t1;
        // tie-broken by id: m0's group first, then m1's.
        let groups: Vec<MsgId> = steps
            .iter()
            .filter_map(|s| match s {
                SraftStep::Deliveries { msg, .. } => Some(*msg),
                SraftStep::Local(_) => None,
            })
            .collect();
        assert_eq!(groups, vec![MsgId(0), MsgId(1)]);
    }

    #[test]
    fn normalization_preserves_equivalence_on_random_traces() {
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        for seed in 0..40 {
            let trace = random_trace(
                &conf0,
                ReconfigGuard::all(),
                &ScheduleParams {
                    steps: 150,
                    ..ScheduleParams::default()
                },
                1,
                seed,
            );
            normalize(&conf0, ReconfigGuard::all(), &trace)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn normalization_also_holds_for_flawed_guards() {
        // The rewrite lemmas are guard-independent: they hold for the
        // unsafe no-R3 variant too (safety is a different question).
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let guard = ReconfigGuard::all().without_r3();
        for seed in 0..20 {
            let trace = random_trace(&conf0, guard, &ScheduleParams::default(), 1, seed);
            normalize(&conf0, guard, &trace).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
