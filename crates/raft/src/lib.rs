//! Network-based Raft-like protocol, SRaft normalization, and executable
//! refinement to ADORE (Sections 5 and Appendix C of the paper).
//!
//! Three layers, mirroring the paper's refinement stack:
//!
//! 1. **Raft** ([`NetState`], [`NetEvent`]) — an asynchronous network-based
//!    specification: servers with local logs, bags of sent/delivered
//!    requests, and a scheduler-driven `deliver`. Parameterized by the same
//!    [`adore_core::Configuration`] (`isQuorum`/`R1⁺`) and
//!    [`adore_core::ReconfigGuard`] (R2/R3) as ADORE, so the whole family
//!    of reconfiguration schemes — including the historically flawed no-R3
//!    variant — runs at the network level too.
//! 2. **SRaft** ([`normalize`], [`SraftStep`]) — the same state machine
//!    driven by *normalized* traces: invalid deliveries dropped
//!    (Lemma C.3), deliveries globally ordered by logical time
//!    (Lemma C.7), and each request's deliveries grouped atomically
//!    (Lemma C.9). Every rewrite is checked to preserve the network
//!    equivalence `ℝ_net` (Fig. 18) by replaying both traces.
//! 3. **ADORE** ([`check_refinement`]) — each SRaft step is mirrored into a
//!    shadow [`adore_core::AdoreState`] and the refinement relation's
//!    `logMatch` component (Fig. 17) is asserted after every step.
//!
//! ## Modeling note: synchronous acknowledgements
//!
//! Acknowledgement messages are modeled as the synchronous return half of a
//! request delivery rather than as separate network objects: when a replica
//! accepts an election or commit request, the sender processes the
//! vote/acknowledgement in the same atomic step. The interesting
//! asynchrony — which requests reach which replicas, in which order, with
//! loss and duplication — is fully retained (it is also the only kind
//! exercised by the paper's Fig. 14 example); what is factored out is the
//! ack's independent flight time, which only delays the sender's
//! *knowledge* of an already-effective state change. This makes the
//! delivery-grouping rewrite exact and is recorded as a substitution in
//! `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod net;
mod normalize;
mod refine;
mod sched;
mod types;

pub use net::{EventOutcome, NetState, Rejection, Role, Server};
pub use normalize::{
    atomicize, filter_invalid, globally_order, normalize, segment_counts, NormalizeError, SraftStep,
};
pub use refine::{check_refinement, RefinementReport, RefinementViolation};
pub use sched::{random_trace, ScheduleParams};
pub use types::{effective_config, log_up_to_date, Command, Entry, Log, MsgId, NetEvent, Request};
