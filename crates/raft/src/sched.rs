//! Random schedulers producing adversarial asynchronous traces.
//!
//! A scheduler repeatedly picks one of: starting an election at a random
//! node, a leader invoking a method, a leader attempting a (guarded)
//! reconfiguration, a leader broadcasting a commit, or delivering a random
//! sent-but-undelivered (or even duplicate) request to a random node. The
//! resulting traces exercise message reordering, loss (never-delivered
//! requests), duplication, and rival leaders — the raw material for the
//! refinement experiments.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use adore_core::{Configuration, NodeId, ReconfigGuard};
use adore_schemes::ReconfigSpace;

use crate::net::NetState;
use crate::types::{MsgId, NetEvent};

/// Knobs for [`random_trace`].
#[derive(Debug, Clone)]
pub struct ScheduleParams {
    /// Number of events to generate.
    pub steps: usize,
    /// Relative weight of starting elections.
    pub elect_weight: u32,
    /// Relative weight of leader invokes.
    pub invoke_weight: u32,
    /// Relative weight of leader reconfiguration attempts.
    pub reconfig_weight: u32,
    /// Relative weight of leader commit broadcasts.
    pub commit_weight: u32,
    /// Relative weight of message deliveries.
    pub deliver_weight: u32,
    /// Probability (in percent) that a delivery re-delivers an
    /// already-delivered message (duplication).
    pub duplicate_pct: u32,
    /// Relative weight of crash events (recoveries are scheduled with the
    /// same weight so nodes keep coming back).
    pub crash_weight: u32,
}

impl Default for ScheduleParams {
    fn default() -> Self {
        ScheduleParams {
            steps: 120,
            elect_weight: 2,
            invoke_weight: 3,
            reconfig_weight: 1,
            commit_weight: 3,
            deliver_weight: 8,
            duplicate_pct: 10,
            crash_weight: 0,
        }
    }
}

/// Generates a random asynchronous trace over a cluster started from
/// `conf0`, returning the trace (the state it was built against is
/// discarded — replay it with [`NetState::replay`]).
///
/// Methods are numbered `0..` in invocation order. Reconfiguration targets
/// are drawn from the scheme's [`ReconfigSpace`] candidates over the
/// initial member universe extended by `spare_nodes`.
///
/// # Examples
///
/// ```
/// use adore_core::ReconfigGuard;
/// use adore_raft::{random_trace, NetState, ScheduleParams};
/// use adore_schemes::SingleNode;
///
/// let conf0 = SingleNode::new([1, 2, 3]);
/// let trace = random_trace(&conf0, ReconfigGuard::all(), &ScheduleParams::default(), 2, 42);
/// let mut st: NetState<SingleNode, u32> = NetState::new(conf0, ReconfigGuard::all());
/// st.replay(&trace);
/// st.check_log_safety().unwrap();
/// ```
#[must_use]
pub fn random_trace<C: Configuration + ReconfigSpace>(
    conf0: &C,
    guard: ReconfigGuard,
    params: &ScheduleParams,
    spare_nodes: u32,
    seed: u64,
) -> Vec<NetEvent<C, u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut st: NetState<C, u32> = NetState::new(conf0.clone(), guard);
    let mut universe = conf0.members();
    let max = universe.iter().map(|n| n.0).max().unwrap_or(0);
    for extra in 1..=spare_nodes {
        universe.insert(NodeId(max + extra));
    }
    let nodes: Vec<NodeId> = universe.iter().copied().collect();
    let mut trace = Vec::with_capacity(params.steps);
    let mut next_method = 0u32;

    let weights = [
        params.elect_weight,
        params.invoke_weight,
        params.reconfig_weight,
        params.commit_weight,
        params.deliver_weight,
        params.crash_weight,
        params.crash_weight,
    ];
    let total: u32 = weights.iter().sum();
    assert!(total > 0, "at least one weight must be positive");

    for _ in 0..params.steps {
        let mut pick = rng.gen_range(0..total);
        let mut kind = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                kind = i;
                break;
            }
            pick -= w;
        }
        let ev: NetEvent<C, u32> = match kind {
            0 => NetEvent::Elect {
                nid: *nodes.choose(&mut rng).expect("nodes non-empty"),
            },
            1 => {
                next_method += 1;
                NetEvent::Invoke {
                    nid: *nodes.choose(&mut rng).expect("nodes non-empty"),
                    method: next_method,
                }
            }
            2 => {
                let nid = *nodes.choose(&mut rng).expect("nodes non-empty");
                let current = st.config_of(nid).unwrap_or_else(|| st.conf0().clone());
                let cands = current.candidates(&universe);
                match cands.choose(&mut rng) {
                    Some(cf) => NetEvent::Reconfig {
                        nid,
                        config: cf.clone(),
                    },
                    None => continue,
                }
            }
            3 => NetEvent::Commit {
                nid: *nodes.choose(&mut rng).expect("nodes non-empty"),
            },
            4 => {
                let sent = st.messages().len();
                if sent == 0 {
                    continue;
                }
                let duplicate = rng.gen_range(0..100) < params.duplicate_pct;
                let msg = if duplicate || st.delivered().is_empty() {
                    MsgId(rng.gen_range(0..sent as u32))
                } else {
                    // Prefer recent messages so schedules make progress.
                    let lo = sent.saturating_sub(6);
                    MsgId(rng.gen_range(lo as u32..sent as u32))
                };
                NetEvent::Deliver {
                    msg,
                    to: *nodes.choose(&mut rng).expect("nodes non-empty"),
                }
            }
            5 => NetEvent::Crash {
                nid: *nodes.choose(&mut rng).expect("nodes non-empty"),
            },
            _ => NetEvent::Recover {
                nid: *nodes.choose(&mut rng).expect("nodes non-empty"),
            },
        };
        st.step(&ev);
        trace.push(ev);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_schemes::SingleNode;

    #[test]
    fn random_traces_replay_deterministically() {
        let conf0 = SingleNode::new([1, 2, 3]);
        let t1 = random_trace(
            &conf0,
            ReconfigGuard::all(),
            &ScheduleParams::default(),
            1,
            7,
        );
        let t2 = random_trace(
            &conf0,
            ReconfigGuard::all(),
            &ScheduleParams::default(),
            1,
            7,
        );
        assert_eq!(t1, t2);
        let mut a: NetState<SingleNode, u32> = NetState::new(conf0.clone(), ReconfigGuard::all());
        let mut b: NetState<SingleNode, u32> = NetState::new(conf0, ReconfigGuard::all());
        a.replay(&t1);
        b.replay(&t2);
        assert_eq!(a.net_relation(), b.net_relation());
    }

    #[test]
    fn guarded_random_traces_keep_log_safety() {
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        for seed in 0..30 {
            let trace = random_trace(
                &conf0,
                ReconfigGuard::all(),
                &ScheduleParams {
                    steps: 200,
                    ..ScheduleParams::default()
                },
                2,
                seed,
            );
            let mut st: NetState<SingleNode, u32> =
                NetState::new(conf0.clone(), ReconfigGuard::all());
            st.replay(&trace);
            st.check_log_safety()
                .unwrap_or_else(|(a, b)| panic!("seed {seed}: logs diverge between {a} and {b}"));
        }
    }

    #[test]
    fn crash_churn_preserves_log_safety_and_refinement() {
        use crate::refine::check_refinement;
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let params = ScheduleParams {
            steps: 250,
            crash_weight: 2,
            ..ScheduleParams::default()
        };
        for seed in 0..15 {
            let trace = random_trace(&conf0, ReconfigGuard::all(), &params, 1, seed);
            let mut st: NetState<SingleNode, u32> =
                NetState::new(conf0.clone(), ReconfigGuard::all());
            st.replay(&trace);
            st.check_log_safety()
                .unwrap_or_else(|(a, b)| panic!("seed {seed}: {a}/{b} diverge under churn"));
            let report = check_refinement(&conf0, ReconfigGuard::all(), &trace, true)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                report.is_clean(),
                "seed {seed}: {:?}",
                report.violations.first()
            );
        }
    }

    #[test]
    fn traces_make_progress() {
        // At least one seed out of a few should commit something.
        let conf0 = SingleNode::new([1, 2, 3]);
        let mut any_commit = false;
        for seed in 0..10 {
            let trace = random_trace(
                &conf0,
                ReconfigGuard::all(),
                &ScheduleParams {
                    steps: 300,
                    ..ScheduleParams::default()
                },
                0,
                seed,
            );
            let mut st: NetState<SingleNode, u32> =
                NetState::new(conf0.clone(), ReconfigGuard::all());
            st.replay(&trace);
            if !st.committed_prefix().is_empty() {
                any_commit = true;
                break;
            }
        }
        assert!(any_commit, "no schedule committed anything");
    }
}
