//! Shared protocol types: log entries, commands, messages, and events.

use serde::{Deserialize, Serialize};

use adore_core::{Configuration, NodeId, Timestamp};

/// A replicated command: an application method or a configuration change.
///
/// Configuration entries take effect **immediately upon entering a log**
/// ("hot" reconfiguration), before being committed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command<C, M> {
    /// An opaque application method.
    Method(M),
    /// A new configuration.
    Config(C),
}

impl<C, M> Command<C, M> {
    /// The configuration carried, if this is a config command.
    #[must_use]
    pub fn config(&self) -> Option<&C> {
        match self {
            Command::Config(c) => Some(c),
            Command::Method(_) => None,
        }
    }
}

/// One slot of a replica's local log (Fig. 13's
/// `List(N_time * Method * Config)` with the command folded into a sum).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Entry<C, M> {
    /// The leader term under which the entry was created.
    pub time: Timestamp,
    /// The replicated command.
    pub cmd: Command<C, M>,
}

/// A replica's local log.
pub type Log<C, M> = Vec<Entry<C, M>>;

/// The configuration in effect at the end of `log`, starting from `conf0`:
/// the last config entry wins, immediately (the hot-reconfiguration rule).
///
/// # Examples
///
/// ```
/// use adore_core::Timestamp;
/// use adore_raft::{effective_config, Command, Entry};
/// use adore_schemes::SingleNode;
///
/// let conf0 = SingleNode::new([1, 2, 3]);
/// let log = vec![Entry {
///     time: Timestamp(1),
///     cmd: Command::<SingleNode, &str>::Config(SingleNode::new([1, 2])),
/// }];
/// assert_eq!(effective_config(&conf0, &log), SingleNode::new([1, 2]));
/// assert_eq!(effective_config(&conf0, &log[..0]), conf0);
/// ```
#[must_use]
pub fn effective_config<C: Configuration, M>(conf0: &C, log: &[Entry<C, M>]) -> C {
    log.iter()
        .rev()
        .find_map(|e| e.cmd.config())
        .cloned()
        .unwrap_or_else(|| conf0.clone())
}

/// Whether a candidate's log is at least as up-to-date as a voter's:
/// compare the last entries' timestamps, then the lengths (Appendix A).
///
/// # Examples
///
/// ```
/// use adore_core::Timestamp;
/// use adore_raft::{log_up_to_date, Command, Entry};
/// use adore_schemes::SingleNode;
///
/// type E = Entry<SingleNode, &'static str>;
/// let old = vec![E { time: Timestamp(1), cmd: Command::Method("a") }];
/// let new = vec![E { time: Timestamp(2), cmd: Command::Method("b") }];
/// assert!(log_up_to_date(&new, &old));
/// assert!(!log_up_to_date(&old, &new));
/// assert!(log_up_to_date(&old, &old));
/// ```
#[must_use]
pub fn log_up_to_date<C, M>(candidate: &[Entry<C, M>], voter: &[Entry<C, M>]) -> bool {
    let key = |log: &[Entry<C, M>]| (log.last().map_or(Timestamp(0), |e| e.time), log.len());
    key(candidate) >= key(voter)
}

/// Identifier of a broadcast request in a run's message table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId(pub u32);

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A broadcast request (Fig. 13's `Msg`, request side).
///
/// Acknowledgements are modeled as the synchronous return half of a
/// delivery (see the crate docs for the justification), so only requests
/// appear in the network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request<C, M> {
    /// An election request carrying the candidate's log for the
    /// up-to-dateness check.
    Elect {
        /// The candidate.
        from: NodeId,
        /// The candidate's new term.
        time: Timestamp,
        /// The candidate's log at broadcast time.
        log: Log<C, M>,
    },
    /// A commit (log replication) request carrying the leader's log.
    Commit {
        /// The leader.
        from: NodeId,
        /// The leader's term.
        time: Timestamp,
        /// The leader's log at broadcast time.
        log: Log<C, M>,
        /// The leader's commit index at broadcast time.
        commit_len: usize,
    },
}

impl<C, M> Request<C, M> {
    /// The sender of the request.
    #[must_use]
    pub fn from(&self) -> NodeId {
        match self {
            Request::Elect { from, .. } | Request::Commit { from, .. } => *from,
        }
    }

    /// The logical timestamp of the request.
    #[must_use]
    pub fn time(&self) -> Timestamp {
        match self {
            Request::Elect { time, .. } | Request::Commit { time, .. } => *time,
        }
    }

    /// The length of the log shipped with the request (its "version": later
    /// requests of one leader ship longer logs).
    #[must_use]
    pub fn log_len(&self) -> usize {
        match self {
            Request::Elect { log, .. } | Request::Commit { log, .. } => log.len(),
        }
    }

    /// Rank used for global ordering: elections sort before commits at the
    /// same timestamp (a leader's commits follow its election).
    #[must_use]
    pub fn kind_rank(&self) -> u8 {
        match self {
            Request::Elect { .. } => 0,
            Request::Commit { .. } => 1,
        }
    }

    /// A short machine-readable name for the request kind, used by the
    /// observability layer to label message events.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Elect { .. } => "elect",
            Request::Commit { .. } => "commit",
        }
    }
}

/// A schedulable event of the network-based model (`Op_net`, Fig. 13).
///
/// `Deliver` names a request by id and a recipient; all other events are
/// local to one replica. A trace is a `Vec<NetEvent>` replayed by
/// [`crate::NetState::replay`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetEvent<C, M> {
    /// `elect(nid)`: start a candidacy and broadcast election requests.
    Elect {
        /// The candidate.
        nid: NodeId,
    },
    /// `invoke(nid, m)`: leader-local log append of a method.
    Invoke {
        /// The leader.
        nid: NodeId,
        /// The method.
        method: M,
    },
    /// `reconfig(nid, cf)`: leader-local log append of a configuration.
    Reconfig {
        /// The leader.
        nid: NodeId,
        /// The new configuration.
        config: C,
    },
    /// `commit(nid)`: broadcast commit requests with the leader's log.
    Commit {
        /// The leader.
        nid: NodeId,
    },
    /// `deliver(msg, to)`: deliver request `msg` to replica `to`.
    Deliver {
        /// The request being delivered.
        msg: MsgId,
        /// The recipient.
        to: NodeId,
    },
    /// A crash: the replica stops sending and receiving until it
    /// recovers. At this level the crash is benign — what actually
    /// survives it is the storage layer's business: the simulation
    /// journals every state change to a write-ahead log and rebuilds
    /// the replica from a replay, under injectable disk faults
    /// (lost unsynced tail, torn record, bit-flip corruption, total
    /// media loss).
    Crash {
        /// The crashing replica.
        nid: NodeId,
    },
    /// Recovery from a crash. As a bare network event this assumes the
    /// pre-crash state intact (the benign-crash reading used by the
    /// certified refinement); the simulation instead installs whatever
    /// the WAL replay reconstructed via `NetState::install_recovery`.
    Recover {
        /// The recovering replica.
        nid: NodeId,
    },
}

impl<C, M> NetEvent<C, M> {
    /// The replicas whose local state this event can touch (used by the
    /// commutation argument in trace normalization): local events touch
    /// their caller; a delivery touches the recipient *and* the sender
    /// (through the synchronous acknowledgement).
    #[must_use]
    pub fn touches(&self, sender_of: impl Fn(MsgId) -> NodeId) -> Vec<NodeId> {
        match self {
            NetEvent::Elect { nid }
            | NetEvent::Invoke { nid, .. }
            | NetEvent::Reconfig { nid, .. }
            | NetEvent::Commit { nid }
            | NetEvent::Crash { nid }
            | NetEvent::Recover { nid } => vec![*nid],
            NetEvent::Deliver { msg, to } => {
                let from = sender_of(*msg);
                if from == *to {
                    vec![*to]
                } else {
                    vec![*to, from]
                }
            }
        }
    }
}
