//! Executable refinement from (S)Raft to ADORE (Appendix C, Lemma C.1 /
//! Theorem C.11).
//!
//! [`check_refinement`] normalizes an asynchronous trace (Lemmas C.3–C.9),
//! replays the normalized steps against the network model, and mirrors each
//! protocol-level action into a **shadow ADORE state**:
//!
//! * an election's delivery group → one `pull` whose supporters are the
//!   replicas that actually granted their vote;
//! * a commit's delivery group → one `push` whose supporters are the
//!   replicas that actually adopted the leader's log;
//! * leader-local `invoke`/`reconfig` → the ADORE operations of the same
//!   name.
//!
//! After every step it asserts the essence of the refinement relation `ℝ`
//! (Fig. 17): **logMatch** — each replica's local log equals the
//! method/reconfiguration caches along its active branch of the cache tree
//! — plus replicated state safety of the shadow tree. Any discrepancy is
//! reported as a [`RefinementViolation`]; a clean report over adversarial
//! schedules is the executable counterpart of the simulation proof.

use std::collections::BTreeMap;

use adore_core::{
    invariants, AdoreState, Cache, CacheId, CacheKind, Configuration, LocalOutcome, NodeId,
    NodeSet, PullDecision, PullOutcome, PushDecision, PushOutcome, ReconfigGuard, Timestamp,
};

use crate::net::{EventOutcome, NetState};
use crate::normalize::{normalize, segment_counts, NormalizeError, SraftStep};
use crate::types::{Command, Entry, MsgId, NetEvent};

/// A discrepancy between the network run and its ADORE shadow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefinementViolation {
    /// An oracle decision derived from the network run was rejected by the
    /// ADORE semantics.
    OracleRejected {
        /// Index of the normalized step.
        step: usize,
        /// Which operation was being mirrored.
        op: &'static str,
        /// The rejection, rendered.
        error: String,
    },
    /// The network applied an operation that the ADORE shadow refused (or
    /// produced a different outcome).
    OutcomeMismatch {
        /// Index of the normalized step.
        step: usize,
        /// Human-readable description.
        detail: String,
    },
    /// `logMatch` failed: a replica's log diverged from its active branch.
    LogMismatch {
        /// Index of the normalized step.
        step: usize,
        /// The replica.
        nid: NodeId,
        /// Rendered expected (branch) vs actual (log).
        detail: String,
    },
    /// The shadow ADORE state violated replicated state safety while the
    /// guard was supposed to prevent it.
    ShadowUnsafe {
        /// Index of the normalized step.
        step: usize,
        /// The rendered violation.
        detail: String,
    },
}

impl std::fmt::Display for RefinementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefinementViolation::OracleRejected { step, op, error } => {
                write!(f, "step {step}: {op} decision rejected: {error}")
            }
            RefinementViolation::OutcomeMismatch { step, detail } => {
                write!(f, "step {step}: outcome mismatch: {detail}")
            }
            RefinementViolation::LogMismatch { step, nid, detail } => {
                write!(f, "step {step}: logMatch failed for {nid}: {detail}")
            }
            RefinementViolation::ShadowUnsafe { step, detail } => {
                write!(f, "step {step}: shadow state unsafe: {detail}")
            }
        }
    }
}

/// Statistics and violations from one refinement run.
#[derive(Debug, Clone, Default)]
pub struct RefinementReport {
    /// Normalized steps replayed.
    pub steps: usize,
    /// ADORE `pull`s applied.
    pub pulls: usize,
    /// ADORE `push`es applied.
    pub pushes: usize,
    /// ADORE `invoke`s applied.
    pub invokes: usize,
    /// ADORE `reconfig`s applied.
    pub reconfigs: usize,
    /// Individual `logMatch` checks performed (servers × steps).
    pub log_checks: u64,
    /// Delivery groups that were perfectly contiguous.
    pub atomic_groups: usize,
    /// Requests whose deliveries required more than one segment.
    pub split_groups: usize,
    /// Elections won by a candidate whose log carries an *uncommitted
    /// adopted suffix* — the one documented boundary of the ADORE
    /// abstraction: `mostRecent` ranges over observed (supported) caches,
    /// so a suffix adopted through a commit request that never reached a
    /// quorum is invisible to the election, and the shadow branch is a
    /// strict prefix of the leader's log. Checking stops at the first such
    /// election (see `EXPERIMENTS.md`); the run is still counted clean if
    /// no violation occurred before it.
    pub partial_adoption_elections: usize,
    /// Steps actually checked (less than `steps` if checking stopped at a
    /// partial-adoption election or, for flawed guards, at the safety
    /// violation itself).
    pub checked_steps: usize,
    /// The step at which network-level log safety first broke, if it did.
    /// With a flawed guard this is where both models go unsafe together
    /// and the refinement claim — stated for sound guards — ends.
    pub unsafe_at: Option<usize>,
    /// All discrepancies found (empty = refinement held).
    pub violations: Vec<RefinementViolation>,
}

impl RefinementReport {
    /// Whether the refinement held on every step.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Debug)]
enum MsgMeta {
    Elect {
        caller: NodeId,
        time: Timestamp,
        voters: NodeSet,
        applied: bool,
        segs_left: usize,
    },
    Commit {
        caller: NodeId,
        len: usize,
        branch_ids: Vec<CacheId>,
        ackers: NodeSet,
        applied: bool,
        segs_left: usize,
    },
}

struct Checker<C: Configuration, M: Clone + Eq + std::fmt::Debug> {
    net: NetState<C, M>,
    adore: AdoreState<C, M>,
    guard: ReconfigGuard,
    tip: BTreeMap<NodeId, CacheId>,
    branch: BTreeMap<NodeId, Vec<CacheId>>,
    meta: BTreeMap<MsgId, MsgMeta>,
    segments: BTreeMap<MsgId, usize>,
    report: RefinementReport,
    check_safety: bool,
    step: usize,
    stop: bool,
}

impl<C: Configuration, M: Clone + Eq + std::fmt::Debug> Checker<C, M> {
    fn new(
        conf0: C,
        guard: ReconfigGuard,
        segments: BTreeMap<MsgId, usize>,
        check_safety: bool,
    ) -> Self {
        let net = NetState::new(conf0.clone(), guard);
        let tip = conf0
            .members()
            .into_iter()
            .map(|n| (n, adore_core::Tree::<()>::ROOT))
            .collect();
        Checker {
            net,
            adore: AdoreState::new(conf0),
            guard,
            tip,
            branch: BTreeMap::new(),
            meta: BTreeMap::new(),
            segments,
            report: RefinementReport::default(),
            check_safety,
            step: 0,
            stop: false,
        }
    }

    /// `toLog` (Fig. 17): the method/reconfig payloads along the branch
    /// ending at `tip`, root-to-leaf.
    fn branch_log(&self, tip: CacheId) -> Vec<Entry<C, M>> {
        let mut out: Vec<Entry<C, M>> = self
            .adore
            .tree()
            .ancestors_inclusive(tip)
            .filter_map(|id| match self.adore.cache(id) {
                Cache::Method { time, method, .. } => Some(Entry {
                    time: *time,
                    cmd: Command::Method(method.clone()),
                }),
                Cache::Reconfig { time, config, .. } => Some(Entry {
                    time: *time,
                    cmd: Command::Config(config.clone()),
                }),
                _ => None,
            })
            .collect();
        out.reverse();
        out
    }

    /// The `logMatch` component of `ℝ`: every replica's local log equals
    /// the log of its tracked active branch.
    fn record_log_match(&mut self) {
        let pairs: Vec<(NodeId, Vec<Entry<C, M>>)> = self
            .net
            .servers()
            .map(|(nid, s)| (nid, s.log.clone()))
            .collect();
        for (nid, log) in pairs {
            self.report.log_checks += 1;
            let tip = self
                .tip
                .get(&nid)
                .copied()
                .unwrap_or(adore_core::Tree::<()>::ROOT);
            let branch = self.branch_log(tip);
            if branch != log {
                self.report
                    .violations
                    .push(RefinementViolation::LogMismatch {
                        step: self.step,
                        nid,
                        detail: format!("branch {branch:?} vs log {log:?}"),
                    });
            }
        }
        if self.check_safety {
            if let Err(v) = invariants::check_safety(&self.adore) {
                self.report
                    .violations
                    .push(RefinementViolation::ShadowUnsafe {
                        step: self.step,
                        detail: v.to_string(),
                    });
            }
        }
    }

    /// Filters a supporter set to the members admissible for a pull, by
    /// fixpoint over `mostRecent` (dropping outsiders can change which
    /// cache is the most recent).
    fn admissible_pull_supporters(&self, mut q: NodeSet) -> Option<NodeSet> {
        loop {
            let mr = self.adore.most_recent(&q)?;
            let members = self.adore.cache(mr).config().members();
            let filtered: NodeSet = q.intersection(&members).copied().collect();
            if filtered == q {
                return Some(q);
            }
            if filtered.is_empty() {
                return None;
            }
            q = filtered;
        }
    }

    fn apply_pull(&mut self, msg: MsgId) {
        let (caller, time, voters) = match self.meta.get_mut(&msg) {
            Some(MsgMeta::Elect {
                caller,
                time,
                voters,
                applied,
                ..
            }) if !*applied => {
                *applied = true;
                (*caller, *time, voters.clone())
            }
            _ => return,
        };
        // Prune voters whose ADORE-observed time already reached `time`:
        // their votes are logically wasted (they belong to a newer round
        // that, in the normalized order, has already been applied). The
        // oracle is free to choose the smaller supporter set.
        let live: NodeSet = voters
            .into_iter()
            .filter(|s| self.adore.observed_time(*s) < time)
            .collect();
        if !live.contains(&caller) {
            // The candidate itself has moved on; the election can only be
            // mirrored as a PullNoOp.
            return;
        }
        let Some(supporters) = self.admissible_pull_supporters(live) else {
            // No member of the supporter set has observed anything: the
            // pull oracle has no valid `Ok` decision, so this election can
            // only be a `PullNoOp` — e.g. an outside node campaigning with
            // no votes yet. Not a refinement failure.
            return;
        };
        if !supporters.contains(&caller) {
            // The caller itself is not admissible under the observed
            // configuration (an outsider whose voters are all members):
            // likewise only expressible as a `PullNoOp`. The network-side
            // election, if it succeeds, cannot lead to commits that ADORE
            // misses, because the outsider never counts toward quorums of
            // the configurations in the tree; the logMatch checks keep
            // guarding every log.
            return;
        }
        let decision = PullDecision::Ok { supporters, time };
        match self.adore.pull(caller, &decision) {
            Ok(PullOutcome::Elected(ecache)) => {
                self.report.pulls += 1;
                // Detect the partial-adoption boundary: the branch the
                // election lands on must reproduce the leader's log; if it
                // is a strict prefix, the leader won while holding a
                // suffix it adopted through a never-quorate commit, which
                // the ADORE state cannot see (module docs).
                let branch_log = self.branch_log(ecache);
                let net_log = self
                    .net
                    .server(caller)
                    .map(|s| s.log.clone())
                    .unwrap_or_default();
                if branch_log != net_log && net_log.starts_with(&branch_log) {
                    self.report.partial_adoption_elections += 1;
                    self.stop = true;
                    return;
                }
                // Rebuild the new leader's branch vector from the tree.
                let mut ids: Vec<CacheId> = self
                    .adore
                    .tree()
                    .ancestors_inclusive(ecache)
                    .filter(|id| {
                        matches!(
                            self.adore.cache(*id).kind(),
                            CacheKind::Method | CacheKind::Reconfig
                        )
                    })
                    .collect();
                ids.reverse();
                self.branch.insert(caller, ids);
                self.tip.insert(caller, ecache);
            }
            Ok(PullOutcome::NoQuorum) => {
                self.report.pulls += 1;
            }
            Ok(PullOutcome::Failed) => unreachable!("decision is Ok"),
            Err(e) => self
                .report
                .violations
                .push(RefinementViolation::OracleRejected {
                    step: self.step,
                    op: "pull",
                    error: e.to_string(),
                }),
        }
    }

    fn apply_push(&mut self, msg: MsgId) {
        let (caller, len, branch_ids, ackers) = match self.meta.get_mut(&msg) {
            Some(MsgMeta::Commit {
                caller,
                len,
                branch_ids,
                ackers,
                applied,
                ..
            }) if !*applied => {
                *applied = true;
                (*caller, *len, branch_ids.clone(), ackers.clone())
            }
            _ => return,
        };
        if len == 0 || branch_ids.len() < len {
            self.report
                .violations
                .push(RefinementViolation::OutcomeMismatch {
                    step: self.step,
                    detail: format!("commit of length {len} without a matching branch"),
                });
            return;
        }
        let target = branch_ids[len - 1];
        let time = self.adore.cache(target).time();
        if !self.adore.can_commit(target, caller) {
            // Two legitimate no-op cases: a re-broadcast of an
            // already-committed prefix (the matching push already
            // happened), and a leader that has been preempted in the shadow
            // state (the oracle can only answer Fail). Anything else is a
            // genuine refinement failure.
            let dup = self
                .adore
                .last_commit(caller)
                .is_some_and(|lc| self.adore.key_of(lc) >= self.adore.key_of(target));
            let preempted = !self.adore.is_leader(caller, time);
            if !dup && !preempted {
                self.report
                    .violations
                    .push(RefinementViolation::OracleRejected {
                        step: self.step,
                        op: "push",
                        error: format!("target {target} fails canCommit"),
                    });
            }
            return;
        }
        let members = self.adore.cache(target).config().members();
        // Prune ackers outside the committed configuration and ackers whose
        // ADORE-observed time has passed the target's (wasted acks).
        let supporters: NodeSet = ackers
            .intersection(&members)
            .copied()
            .filter(|s| self.adore.observed_time(*s) <= time)
            .collect();
        if !supporters.contains(&caller) {
            // The leader left the configuration it is committing under —
            // only expressible as a push failure.
            return;
        }
        let decision = PushDecision::Ok { supporters, target };
        match self.adore.push(caller, &decision) {
            Ok(PushOutcome::Committed(_) | PushOutcome::NoQuorum) => {
                self.report.pushes += 1;
            }
            Ok(PushOutcome::Failed) => unreachable!("decision is Ok"),
            Err(e) => self
                .report
                .violations
                .push(RefinementViolation::OracleRejected {
                    step: self.step,
                    op: "push",
                    error: e.to_string(),
                }),
        }
    }

    /// Applies the pending operation for `msg` if its supporters already
    /// form a quorum (the logical completion moment).
    fn maybe_apply_on_quorum(&mut self, msg: MsgId) {
        match self.meta.get(&msg) {
            Some(MsgMeta::Elect {
                voters,
                time,
                applied,
                ..
            }) if !*applied => {
                let live: NodeSet = voters
                    .iter()
                    .copied()
                    .filter(|s| self.adore.observed_time(*s) < *time)
                    .collect();
                if let Some(q) = self.admissible_pull_supporters(live) {
                    if let Some(mr) = self.adore.most_recent(&q) {
                        adore_core::telemetry::count_quorum_check();
                        if self.adore.cache(mr).config().is_quorum(&q) {
                            self.apply_pull(msg);
                        }
                    }
                }
            }
            Some(MsgMeta::Commit {
                len,
                branch_ids,
                ackers,
                applied,
                ..
            }) if !*applied && *len >= 1 && branch_ids.len() >= *len => {
                let target = branch_ids[*len - 1];
                let config = self.adore.cache(target).config().clone();
                adore_core::telemetry::count_quorum_check();
                if config.is_quorum(ackers) {
                    self.apply_push(msg);
                }
            }
            _ => {}
        }
    }

    fn end_segment(&mut self, msg: MsgId) {
        let finished = match self.meta.get_mut(&msg) {
            Some(MsgMeta::Elect { segs_left, .. } | MsgMeta::Commit { segs_left, .. }) => {
                *segs_left = segs_left.saturating_sub(1);
                *segs_left == 0
            }
            None => false,
        };
        if finished {
            match self.meta.get(&msg) {
                Some(MsgMeta::Elect { applied: false, .. }) => self.apply_pull(msg),
                Some(MsgMeta::Commit { applied: false, .. }) => self.apply_push(msg),
                _ => {}
            }
        }
    }

    fn on_local(&mut self, ev: &NetEvent<C, M>) {
        let msg_id = MsgId(self.net.messages().len() as u32);
        let outcome = self.net.step(ev);
        match ev {
            NetEvent::Elect { nid } => {
                let time = self
                    .net
                    .server(*nid)
                    .expect("elect creates the server")
                    .time;
                let segs = self.segments.get(&msg_id).copied().unwrap_or(0);
                self.meta.insert(
                    msg_id,
                    MsgMeta::Elect {
                        caller: *nid,
                        time,
                        voters: std::iter::once(*nid).collect(),
                        applied: false,
                        segs_left: segs,
                    },
                );
                // Never-delivered non-quorum elections are invisible to the
                // shadow state: applying them would advance the caller's
                // observed time past operations that are still completing
                // in logical-time order. Only a self-quorum applies here.
                self.maybe_apply_on_quorum(msg_id);
                let _ = segs;
            }
            NetEvent::Invoke { nid, method } => {
                if outcome != EventOutcome::Applied {
                    return;
                }
                match self.adore.invoke(*nid, method.clone()) {
                    LocalOutcome::Applied(id) => {
                        self.report.invokes += 1;
                        self.branch.entry(*nid).or_default().push(id);
                        self.tip.insert(*nid, id);
                    }
                    LocalOutcome::NoOp(reason) => {
                        self.report
                            .violations
                            .push(RefinementViolation::OutcomeMismatch {
                                step: self.step,
                                detail: format!("net invoked but ADORE refused: {reason}"),
                            });
                    }
                }
            }
            NetEvent::Reconfig { nid, config } => {
                if outcome != EventOutcome::Applied {
                    return;
                }
                match self.adore.reconfig(*nid, config.clone(), self.guard) {
                    LocalOutcome::Applied(id) => {
                        self.report.reconfigs += 1;
                        self.branch.entry(*nid).or_default().push(id);
                        self.tip.insert(*nid, id);
                    }
                    LocalOutcome::NoOp(reason) => {
                        self.report
                            .violations
                            .push(RefinementViolation::OutcomeMismatch {
                                step: self.step,
                                detail: format!("net reconfigured but ADORE refused: {reason}"),
                            });
                    }
                }
            }
            NetEvent::Commit { nid } => {
                if outcome != EventOutcome::Applied {
                    return;
                }
                let len = self.net.server(*nid).expect("leader exists").log.len();
                let branch_ids = self.branch.get(nid).cloned().unwrap_or_default();
                let segs = self.segments.get(&msg_id).copied().unwrap_or(0);
                self.meta.insert(
                    msg_id,
                    MsgMeta::Commit {
                        caller: *nid,
                        len,
                        branch_ids,
                        ackers: std::iter::once(*nid).collect(),
                        applied: false,
                        segs_left: segs,
                    },
                );
                // As for elections: a never-delivered commit either
                // self-commits (single-member quorum) or is invisible.
                self.maybe_apply_on_quorum(msg_id);
                let _ = segs;
            }
            // Crashes and recoveries have no ADORE counterpart: the
            // oracle's nondeterminism absorbs them (a crashed replica is
            // one the oracle never selects into a supporter set). The
            // logMatch relation is untouched because logs persist.
            NetEvent::Crash { .. } | NetEvent::Recover { .. } => {}
            NetEvent::Deliver { .. } => unreachable!("deliveries are grouped"),
        }
    }

    fn on_deliveries(&mut self, msg: MsgId, recipients: &[NodeId]) {
        for &to in recipients {
            let outcome = self.net.step(&NetEvent::Deliver { msg, to });
            if outcome != EventOutcome::Applied {
                continue;
            }
            match self.meta.get_mut(&msg) {
                Some(MsgMeta::Elect { voters, .. }) => {
                    voters.insert(to);
                }
                Some(MsgMeta::Commit {
                    ackers,
                    branch_ids,
                    len,
                    ..
                }) => {
                    ackers.insert(to);
                    // The adopter's log is now the shipped log; its active
                    // branch ends at the shipped log's last cache.
                    if *len >= 1 && branch_ids.len() >= *len {
                        self.tip.insert(to, branch_ids[*len - 1]);
                        self.branch.insert(to, branch_ids[..*len].to_vec());
                    } else {
                        self.tip.insert(to, adore_core::Tree::<()>::ROOT);
                        self.branch.insert(to, Vec::new());
                    }
                }
                None => {}
            }
            self.maybe_apply_on_quorum(msg);
        }
        self.end_segment(msg);
    }

    fn run(mut self, steps: &[SraftStep<C, M>]) -> RefinementReport {
        for step in steps {
            match step {
                SraftStep::Local(ev) => self.on_local(ev),
                SraftStep::Deliveries { msg, recipients } => self.on_deliveries(*msg, recipients),
            }
            if self.stop {
                break;
            }
            if self.report.unsafe_at.is_none() && self.net.check_log_safety().is_err() {
                self.report.unsafe_at = Some(self.step);
                if !self.check_safety {
                    // Flawed-guard mode: the simulation claim is only made
                    // up to the safety violation; past it the two models
                    // legitimately diverge.
                    break;
                }
            }
            self.record_log_match();
            self.step += 1;
        }
        self.report.steps = steps.len();
        self.report.checked_steps = self.step;
        self.report
    }
}

/// Normalizes `trace` and checks the SRaft→ADORE refinement step by step.
///
/// `check_shadow_safety` controls whether the shadow ADORE tree is also
/// checked for replicated state safety at every step — enable it for sound
/// guards (where a violation is a bug), disable it when deliberately
/// running flawed guards (where both models are expected to go unsafe
/// *together*; logMatch is still checked).
///
/// # Errors
///
/// Propagates [`NormalizeError`] if a normalization stage failed its
/// equivalence check.
///
/// # Examples
///
/// ```
/// use adore_core::ReconfigGuard;
/// use adore_raft::{check_refinement, random_trace, ScheduleParams};
/// use adore_schemes::SingleNode;
///
/// let conf0 = SingleNode::new([1, 2, 3]);
/// let trace = random_trace(&conf0, ReconfigGuard::all(), &ScheduleParams::default(), 0, 1);
/// let report = check_refinement(&conf0, ReconfigGuard::all(), &trace, true)?;
/// assert!(report.is_clean(), "{:?}", report.violations);
/// # Ok::<(), adore_raft::NormalizeError>(())
/// ```
pub fn check_refinement<C: Configuration, M: Clone + Eq + std::fmt::Debug>(
    conf0: &C,
    guard: ReconfigGuard,
    trace: &[NetEvent<C, M>],
    check_shadow_safety: bool,
) -> Result<RefinementReport, NormalizeError> {
    let steps = normalize(conf0, guard, trace)?;
    let segments = segment_counts(&steps);
    let mut checker = Checker::new(conf0.clone(), guard, segments.clone(), check_shadow_safety);
    checker.report.atomic_groups = segments.values().filter(|c| **c == 1).count();
    checker.report.split_groups = segments.values().filter(|c| **c > 1).count();
    Ok(checker.run(&steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{random_trace, ScheduleParams};
    use adore_schemes::SingleNode;

    #[test]
    fn refinement_holds_on_random_traces_with_sound_guard() {
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        for seed in 0..25 {
            let trace = random_trace(
                &conf0,
                ReconfigGuard::all(),
                &ScheduleParams {
                    steps: 150,
                    ..ScheduleParams::default()
                },
                1,
                seed,
            );
            let report = check_refinement(&conf0, ReconfigGuard::all(), &trace, true)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                report.is_clean(),
                "seed {seed}: {:?}",
                report.violations.first()
            );
            assert!(report.log_checks > 0);
        }
    }

    #[test]
    fn refinement_logmatch_holds_even_for_flawed_guards() {
        // The simulation relation is guard-independent: the flawed no-R3
        // variant refines the (equally flawed) ADORE configuration, with
        // both going unsafe together; logMatch never breaks.
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let guard = ReconfigGuard::all().without_r3();
        for seed in 0..15 {
            let trace = random_trace(&conf0, guard, &ScheduleParams::default(), 1, seed);
            let report = check_refinement(&conf0, guard, &trace, false)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                report.is_clean(),
                "seed {seed}: {:?}",
                report.violations.first()
            );
        }
    }

    #[test]
    fn directed_scenario_maps_ops_one_to_one() {
        let conf0 = SingleNode::new([1, 2, 3]);
        let trace: Vec<NetEvent<SingleNode, u32>> = vec![
            NetEvent::Elect { nid: NodeId(1) },
            NetEvent::Deliver {
                msg: MsgId(0),
                to: NodeId(2),
            },
            NetEvent::Invoke {
                nid: NodeId(1),
                method: 7,
            },
            NetEvent::Commit { nid: NodeId(1) },
            NetEvent::Deliver {
                msg: MsgId(1),
                to: NodeId(3),
            },
        ];
        let report = check_refinement(&conf0, ReconfigGuard::all(), &trace, true).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.pulls, 1);
        assert_eq!(report.invokes, 1);
        assert_eq!(report.pushes, 1);
    }
}
