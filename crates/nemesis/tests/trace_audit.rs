//! Trace-certified auditing of nemesis campaigns: every traced run's
//! journal must be accepted by the trace auditor, and the auditor —
//! reconstructing protocol state purely from the trace — must
//! independently reproduce the run's verdict.
//!
//! This is the observability layer's teeth: a guard-ablation campaign
//! that diverges live must yield a trace from which the auditor finds
//! the *same* committed-prefix divergence without ever touching the
//! simulation, and a sound-guard campaign's trace must certify clean.

use adore_core::ReconfigGuard;
use adore_nemesis::{
    ablation_suite, hunt, r3_ablation_schedule, random_schedule, run_schedule,
    run_schedule_traced, storage_ablation_suite, EngineParams, RandomScheduleParams,
    ViolationKind,
};
use adore_obs::{audit_events, audit_jsonl, to_jsonl};

#[test]
fn guard_ablation_traces_reproduce_their_divergence_verdicts() {
    for (label, schedule) in ablation_suite() {
        let (report, events) = run_schedule_traced(&schedule, &EngineParams::default());
        assert!(
            matches!(
                report.violation,
                Some((ViolationKind::LogDivergence { .. }, _))
            ),
            "{label}: expected a live divergence, got {:?}",
            report.violation
        );
        let audit = audit_events(&events);
        assert!(
            audit.consistent,
            "{label}: audit rejected the trace: {:?}",
            audit.errors
        );
        assert!(
            audit.divergence.is_some(),
            "{label}: auditor failed to reproduce the divergence from the trace alone"
        );
    }
}

#[test]
fn sound_guard_runs_of_the_same_schedules_audit_clean() {
    for (label, schedule) in ablation_suite() {
        let sound = schedule.with_guard(ReconfigGuard::all());
        let (report, events) = run_schedule_traced(&sound, &EngineParams::default());
        assert!(report.is_safe(), "{label}: sound guard must not diverge");
        let audit = audit_events(&events);
        assert!(
            audit.consistent && audit.divergence.is_none(),
            "{label}: clean run failed to certify: {:?}",
            audit.errors
        );
    }
}

#[test]
fn storage_ablation_traces_are_audit_consistent() {
    let engine = EngineParams {
        certify_storage: true,
        ..EngineParams::default()
    };
    for (label, schedule) in storage_ablation_suite() {
        let (report, events) = run_schedule_traced(&schedule, &engine);
        assert!(!report.is_safe(), "{label}: ablation must violate");
        let audit = audit_events(&events);
        assert!(
            audit.consistent,
            "{label}: audit rejected the trace: {:?}",
            audit.errors
        );
    }
}

#[test]
fn random_campaign_traces_audit_clean_and_tracing_is_invisible() {
    let params = RandomScheduleParams::default();
    let engine = EngineParams::default();
    for seed in 0..4 {
        let schedule = random_schedule(&params, seed);
        let plain = run_schedule(&schedule, &engine);
        let (traced, events) = run_schedule_traced(&schedule, &engine);
        // Tracing must not perturb the campaign.
        assert_eq!(plain.degraded, traced.degraded, "seed {seed}");
        assert_eq!(plain.committed_entries, traced.committed_entries);
        // The journal round-trips through JSONL and certifies.
        let audit = audit_jsonl(&to_jsonl(&events)).expect("journal parses");
        assert!(
            audit.consistent,
            "seed {seed}: audit rejected the trace: {:?}",
            audit.errors
        );
        assert!(audit.divergence.is_none(), "seed {seed}");
    }
}

#[test]
fn hunted_counterexamples_embed_an_auditable_trace() {
    let cx = hunt(&r3_ablation_schedule(), &EngineParams::default())
        .expect("the R3 ablation must be huntable");
    let trace = cx.trace.as_deref().expect("witness carries a trace");
    let audit = audit_jsonl(trace).expect("embedded trace parses");
    assert!(audit.consistent, "audit errors: {:?}", audit.errors);
    assert!(
        audit.divergence.is_some(),
        "the witness trace must reproduce the divergence"
    );
    // The counterexample (trace included) round-trips through JSON.
    let json = serde_json::to_string(&cx).unwrap();
    let back: adore_nemesis::Counterexample = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cx);
}
