//! Cross-crate adversarial integration tests: arbitrary bounded fault
//! schedules are safe under the sound guard, scripted ablations are
//! caught and minimized into portable witnesses, and availability
//! degrades and recovers the way a partition says it should.

use proptest::prelude::*;

use adore_core::ReconfigGuard;
use adore_nemesis::{
    hunt, r3_ablation_schedule, random_schedule, replay, run_schedule, Counterexample,
    DurabilityPolicy, EngineParams, Fault, FaultSchedule, RandomScheduleParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any bounded random campaign — partitions, crash storms, leader
    /// flaps, duplication, reordering, skew, reconfiguration churn racing
    /// client writes — completes without a safety violation when the
    /// full R1⁺∧R2∧R3 guard is in force.
    #[test]
    fn arbitrary_schedules_are_safe_under_the_sound_guard(
        seed in any::<u64>(),
        steps in 4usize..16,
        five_nodes in any::<bool>(),
    ) {
        let params = RandomScheduleParams {
            members: if five_nodes { vec![1, 2, 3, 4, 5] } else { vec![1, 2, 3] },
            steps,
            guard: ReconfigGuard::all(),
        };
        let schedule = random_schedule(&params, seed);
        let report = run_schedule(&schedule, &EngineParams::default());
        prop_assert!(
            report.is_safe(),
            "seed {}: {:?}",
            seed,
            report.violation
        );
    }

    /// Random campaigns are reproducible: the violation verdict (and the
    /// whole degraded report) is a pure function of the schedule.
    #[test]
    fn campaigns_replay_deterministically(seed in any::<u64>()) {
        let schedule = random_schedule(&RandomScheduleParams::default(), seed);
        let a = run_schedule(&schedule, &EngineParams::default());
        let b = run_schedule(&schedule, &EngineParams::default());
        prop_assert_eq!(a.degraded, b.degraded);
        prop_assert_eq!(a.violation, b.violation);
    }
}

/// With R3 disabled, the scripted Fig. 4 campaign is caught, minimized,
/// and survives a JSON round-trip as a deterministically replayable
/// witness.
#[test]
fn the_r3_ablation_is_found_minimized_and_portable() {
    let params = EngineParams::default();
    let schedule = r3_ablation_schedule();
    let cex = hunt(&schedule, &params).expect("the no-R3 schedule must violate");
    assert!(cex.schedule.faults.len() <= schedule.faults.len());

    let json = serde_json::to_string(&cex).expect("serializes");
    let back: Counterexample = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, cex);
    assert_eq!(
        replay(&back.schedule, &params),
        Some(cex.violation),
        "the deserialized witness must replay to the same violation"
    );

    // The witness depends on the ablation: restoring R3 defuses it.
    assert_eq!(
        replay(&back.schedule.with_guard(ReconfigGuard::all()), &params),
        None
    );
}

/// A majority/minority partition with a reconfiguration racing client
/// traffic: availability collapses while the client sits behind the
/// minority leader and recovers after redirect and heal, with the
/// committed prefix agreed throughout.
#[test]
fn availability_recovers_after_a_partition_heals() {
    let schedule = FaultSchedule {
        name: "partition-recovery".into(),
        seed: 42,
        members: vec![1, 2, 3, 4, 5],
        guard: ReconfigGuard::all(),
        durability: DurabilityPolicy::strict(),
        faults: vec![
            Fault::ClientBurst { writes: 3 },
            // Drain in-flight replication so every majority-side log is
            // up to date before the cut (otherwise the elected candidate
            // can legitimately lose the up-to-dateness vote check).
            Fault::Idle { us: 20_000 },
            Fault::Partition {
                groups: vec![vec![1, 2], vec![3, 4, 5]],
            },
            Fault::ClientBurst { writes: 3 },
            Fault::Elect { nid: 3 },
            Fault::ReconfigRemove { nid: 1 },
            Fault::ClientBurst { writes: 3 },
            Fault::HealAll,
            Fault::ClientBurst { writes: 3 },
        ],
    };
    let report = run_schedule(&schedule, &EngineParams::default());
    assert!(report.is_safe(), "{:?}", report.violation);

    // Phase 0: healthy. Phase 3: stuck behind the minority leader.
    // Phase 6: redirected to the majority. Phase 8: healed.
    assert!((report.degraded.availability(0) - 1.0).abs() < f64::EPSILON);
    assert!(report.degraded.availability(3) < 0.5, "minority should starve");
    assert!((report.degraded.availability(6) - 1.0).abs() < f64::EPSILON);
    assert!((report.degraded.availability(8) - 1.0).abs() < f64::EPSILON);
    assert!(report.committed_entries >= 10);
}
