//! The JSON schema of fault schedules is a compatibility surface: a
//! minimized counterexample saved by one release must replay under the
//! next. These tests pin the exact wire form of **every** [`Fault`]
//! variant (the network/process faults from the original engine and the
//! disk faults added with the storage subsystem) and of the schedule
//! envelope, and they keep pre-storage schedules — which carry no
//! `durability` key — loadable forever.
//!
//! If one of these tests fails, a serialization change has broken every
//! counterexample in the wild. Add a new variant with a new pinned form
//! instead of changing an existing one.

use adore_core::ReconfigGuard;
use adore_nemesis::{
    replay, Counterexample, DiskFault, DurabilityPolicy, EngineParams, Fault, FaultSchedule,
    ViolationKind,
};

/// Every fault variant, paired with its pinned wire form.
fn pinned_faults() -> Vec<(Fault, &'static str)> {
    vec![
        (
            Fault::CutOneWay { from: 1, to: 2 },
            r#"{"CutOneWay":{"from":1,"to":2}}"#,
        ),
        (
            Fault::CutBothWays { a: 1, b: 2 },
            r#"{"CutBothWays":{"a":1,"b":2}}"#,
        ),
        (
            Fault::Partition {
                groups: vec![vec![1, 2], vec![3]],
            },
            r#"{"Partition":{"groups":[[1,2],[3]]}}"#,
        ),
        (
            Fault::HealOneWay { from: 2, to: 1 },
            r#"{"HealOneWay":{"from":2,"to":1}}"#,
        ),
        (Fault::HealAll, r#""HealAll""#),
        (
            Fault::SetLinkLoss {
                from: 1,
                to: 3,
                pct: 40,
            },
            r#"{"SetLinkLoss":{"from":1,"to":3,"pct":40}}"#,
        ),
        (Fault::SetLoss { pct: 10 }, r#"{"SetLoss":{"pct":10}}"#),
        (Fault::Crash { nid: 2 }, r#"{"Crash":{"nid":2}}"#),
        (
            Fault::CrashDisk {
                nid: 2,
                fault: DiskFault::LoseTail,
            },
            r#"{"CrashDisk":{"nid":2,"fault":"LoseTail"}}"#,
        ),
        (
            Fault::CrashDisk {
                nid: 1,
                fault: DiskFault::TornTail { keep_bytes: 3 },
            },
            r#"{"CrashDisk":{"nid":1,"fault":{"TornTail":{"keep_bytes":3}}}}"#,
        ),
        (
            Fault::CrashDisk {
                nid: 3,
                fault: DiskFault::CorruptRecord { record: 2, bit: 17 },
            },
            r#"{"CrashDisk":{"nid":3,"fault":{"CorruptRecord":{"record":2,"bit":17}}}}"#,
        ),
        (
            Fault::CrashDisk {
                nid: 1,
                fault: DiskFault::WipeAll,
            },
            r#"{"CrashDisk":{"nid":1,"fault":"WipeAll"}}"#,
        ),
        (Fault::OrphanWrite, r#""OrphanWrite""#),
        (Fault::CrashLeader, r#""CrashLeader""#),
        (Fault::Recover { nid: 2 }, r#"{"Recover":{"nid":2}}"#),
        (Fault::Elect { nid: 3 }, r#"{"Elect":{"nid":3}}"#),
        (
            Fault::Reconfig {
                members: vec![1, 2, 3],
            },
            r#"{"Reconfig":{"members":[1,2,3]}}"#,
        ),
        (
            Fault::ReconfigAdd { nid: 4 },
            r#"{"ReconfigAdd":{"nid":4}}"#,
        ),
        (
            Fault::ReconfigRemove { nid: 4 },
            r#"{"ReconfigRemove":{"nid":4}}"#,
        ),
        (
            Fault::Duplicate { copies: 3 },
            r#"{"Duplicate":{"copies":3}}"#,
        ),
        (
            Fault::Reorder { window_us: 500 },
            r#"{"Reorder":{"window_us":500}}"#,
        ),
        (
            Fault::SkewTimeout { pct: 150 },
            r#"{"SkewTimeout":{"pct":150}}"#,
        ),
        (
            Fault::ClientBurst { writes: 2 },
            r#"{"ClientBurst":{"writes":2}}"#,
        ),
        (Fault::Idle { us: 1000 }, r#"{"Idle":{"us":1000}}"#),
    ]
}

#[test]
fn every_fault_variant_serializes_to_its_pinned_form() {
    for (fault, pinned) in pinned_faults() {
        assert_eq!(
            serde_json::to_string(&fault).unwrap(),
            pinned,
            "wire form of {fault:?} changed"
        );
    }
}

#[test]
fn every_fault_variant_round_trips_from_its_pinned_form() {
    for (fault, pinned) in pinned_faults() {
        let back: Fault = serde_json::from_str(pinned).unwrap();
        assert_eq!(back, fault, "pinned form {pinned} no longer parses back");
    }
}

#[test]
fn a_schedule_holding_every_variant_round_trips() {
    let schedule = FaultSchedule {
        name: "schema-pin".into(),
        seed: 7,
        members: vec![1, 2, 3, 4, 5],
        guard: ReconfigGuard::all().without_r2(),
        durability: DurabilityPolicy::keep_unsynced_tail(),
        faults: pinned_faults().into_iter().map(|(f, _)| f).collect(),
    };
    let json = serde_json::to_string(&schedule).unwrap();
    let back: FaultSchedule = serde_json::from_str(&json).unwrap();
    assert_eq!(back, schedule);
}

#[test]
fn the_schedule_envelope_is_pinned() {
    let schedule = FaultSchedule {
        name: "envelope".into(),
        seed: 9,
        members: vec![1, 2, 3],
        guard: ReconfigGuard::all(),
        durability: DurabilityPolicy::strict(),
        faults: vec![Fault::HealAll],
    };
    assert_eq!(
        serde_json::to_string(&schedule).unwrap(),
        concat!(
            r#"{"name":"envelope","seed":9,"members":[1,2,3],"#,
            r#""guard":{"r1":true,"r2":true,"r3":true},"#,
            r#""durability":{"sync_before_ack":true,"verify_checksums":true,"#,
            r#""truncate_invalid_tail":true},"faults":["HealAll"]}"#
        )
    );
}

/// A counterexample saved before the observability subsystem carries no
/// `trace` key: it must load with `trace: None`, and an untraced
/// counterexample must serialize without the key — byte-identical to
/// its legacy form.
#[test]
fn counterexamples_without_a_trace_key_keep_their_legacy_wire_form() {
    let legacy = concat!(
        r#"{"schedule":{"name":"w","seed":1,"members":[1,2],"#,
        r#""guard":{"r1":true,"r2":true,"r3":true},"#,
        r#""durability":{"sync_before_ack":true,"verify_checksums":true,"#,
        r#""truncate_invalid_tail":true},"faults":["HealAll"]},"#,
        r#""violation":{"LogDivergence":{"a":1,"b":2}},"original_faults":3}"#
    );
    let cx: Counterexample = serde_json::from_str(legacy).unwrap();
    assert_eq!(cx.trace, None, "a missing trace key must mean no trace");
    assert_eq!(cx.violation, ViolationKind::LogDivergence { a: 1, b: 2 });
    // Re-serializing an untraced counterexample reproduces the legacy
    // bytes exactly — no spurious "trace" key appears.
    assert_eq!(serde_json::to_string(&cx).unwrap(), legacy);
    // A traced counterexample round-trips with the trace intact.
    let traced = Counterexample {
        trace: Some("{\"seq\":0}\n".to_string()),
        ..cx
    };
    let json = serde_json::to_string(&traced).unwrap();
    assert!(json.contains("\"trace\":"));
    let back: Counterexample = serde_json::from_str(&json).unwrap();
    assert_eq!(back, traced);
}

/// A counterexample minimized before the storage subsystem existed has
/// no `durability` key. It must parse to the strict policy — exactly
/// the (perfect-durability) model it was minimized under — and still
/// replay.
#[test]
fn pre_storage_schedules_without_a_durability_key_still_load_and_replay() {
    // The r3-ablation witness as the PR 1 engine would have saved it.
    let legacy = concat!(
        r#"{"name":"r3-legacy","seed":4,"members":[1,2,3,4],"#,
        r#""guard":{"r1":true,"r2":true,"r3":false},"faults":["#,
        r#"{"Partition":{"groups":[[1],[2,3,4]]}},"#,
        r#"{"Reconfig":{"members":[1,2,3]}},"#,
        r#"{"Elect":{"nid":2}},"#,
        r#"{"Reconfig":{"members":[1,2,4]}},"#,
        r#"{"Partition":{"groups":[[1,3],[2,4]]}},"#,
        r#"{"Elect":{"nid":1}},"#,
        r#"{"ClientBurst":{"writes":1}}]}"#
    );
    let schedule: FaultSchedule = serde_json::from_str(legacy).unwrap();
    assert_eq!(
        schedule.durability,
        DurabilityPolicy::strict(),
        "a missing durability key must mean the strict policy"
    );
    // And the witness still witnesses: the guard-ablation divergence
    // reproduces under the strict storage model.
    assert!(
        replay(&schedule, &EngineParams::default()).is_some(),
        "the legacy counterexample no longer replays"
    );
}
