//! netmesis: compiling fault schedules onto the real wire.
//!
//! The nemesis engine interprets a [`FaultSchedule`] against the
//! discrete-event simulator. This module gives the *same* schedules a
//! second interpretation: a [`WireTimeline`] of timestamped
//! [`WireAction`]s that a live-cluster harness (the `adored hunt`
//! subcommand) enacts against real TCP links and real processes —
//! partitions become black-holed proxy links, crashes become `kill -9`,
//! gray pauses become `SIGSTOP`, frame corruption becomes real bit
//! flips that the receiver's crc must reject.
//!
//! Everything here is pure data transformation: [`compile_schedule`]
//! decides the *entire* fault timeline (which faults, against which
//! links, at which relative milliseconds) from the schedule alone — no
//! wall clock, no ambient randomness — so a timeline is as replayable
//! as the schedule it came from. Wall-clock time enters only in the
//! I/O shell that walks the timeline (see `adored`'s hunt driver),
//! which is exactly the determinism boundary adore-lint's L1 rule
//! enforces for this crate.
//!
//! The sim twin: every wire fault class maps back onto simulator
//! primitives (see [`Fault`]'s wire-level variants and DESIGN §12), so
//! a schedule that trips a safety audit on the wire can be re-run —
//! and ddmin-minimized — in the simulator via [`crate::hunt`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use adore_core::ReconfigGuard;
use adore_storage::DurabilityPolicy;

use crate::engine::Counterexample;
use crate::schedule::{Fault, FaultSchedule};

/// One enactable action against the live cluster.
///
/// Link-state actions (`Cut`/`Loss`/`Corrupt`/`Delay`/`Reorder`/`Slow`)
/// are *standing*: they persist until overwritten or cleared by
/// [`WireAction::HealAll`]. Process actions (`Kill`/`Restart`/`Pause`/
/// `Resume`) and cluster actions (`Reconfig*`/`AwaitElection`/`Burst`/
/// `Settle`) are momentary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireAction {
    /// Black-hole every frame on the directed link `from → to`.
    Cut {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
    /// Clear the cut (and only the cut) on `from → to`.
    Heal {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
    /// Clear all link state, then cut every cross-group link both ways.
    Partition {
        /// The partition groups.
        groups: Vec<Vec<u32>>,
    },
    /// Clear every standing link fault on every link.
    HealAll,
    /// Drop `pct`% of frames on `from → to`.
    Loss {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
        /// Drop percentage, clamped to 100 by the proxy.
        pct: u32,
    },
    /// Flip a payload bit in `pct`% of frames on `from → to`, leaving
    /// the original crc in place — the receiver must reject each one
    /// with a journaled `BadFrame` and drop the connection.
    Corrupt {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
        /// Corruption percentage, clamped to 100 by the proxy.
        pct: u32,
    },
    /// Add `ms` (±`jitter_ms`) of latency to every frame on `from → to`.
    Delay {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
        /// Base added latency in milliseconds.
        ms: u64,
        /// Uniform jitter bound in milliseconds.
        jitter_ms: u64,
    },
    /// Hold back `pct`% of frames and release them after a later frame
    /// (bounded reorder) on `from → to`.
    Reorder {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
        /// Percentage of frames held back.
        pct: u32,
    },
    /// Slow-loris `from → to`: stall mid-frame, trickling bytes.
    Slow {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
    /// Abruptly close the current connection carrying `from → to`.
    Reset {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
    /// `kill -9` the node's process (restartable into the same dir).
    Kill {
        /// The node.
        nid: u32,
    },
    /// `kill -9` whichever node currently leads (resolved at run time).
    KillLeader,
    /// Restart a killed node into its existing data directory.
    Restart {
        /// The node.
        nid: u32,
    },
    /// `SIGSTOP` the node's process: gray failure — connections stay
    /// open, nothing is processed.
    Pause {
        /// The node.
        nid: u32,
    },
    /// `SIGCONT` a paused node.
    Resume {
        /// The node.
        nid: u32,
    },
    /// Drive a membership change to an explicit set through the client.
    Reconfig {
        /// The target membership.
        members: Vec<u32>,
    },
    /// Add one node to the current membership.
    ReconfigAdd {
        /// The node to add.
        nid: u32,
    },
    /// Remove one node from the current membership.
    ReconfigRemove {
        /// The node to remove.
        nid: u32,
    },
    /// Wait until some node reports itself leader (elections on the
    /// wire happen through real timeouts; they cannot be commanded).
    AwaitElection,
    /// Drive a burst of client writes.
    Burst {
        /// Number of writes.
        writes: u32,
    },
    /// Let the cluster run undisturbed for `ms` milliseconds.
    Settle {
        /// Duration in milliseconds.
        ms: u64,
    },
}

/// One timestamped step of a wire campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStep {
    /// Milliseconds after campaign start at which to enact the action.
    pub at_ms: u64,
    /// What to enact.
    pub action: WireAction,
}

/// A compiled wire campaign: the live-cluster twin of a
/// [`FaultSchedule`], plus the budget the harness should allow for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireTimeline {
    /// The steps, in nondecreasing `at_ms` order.
    pub steps: Vec<WireStep>,
    /// Total campaign span in milliseconds (last step + its dwell).
    pub total_ms: u64,
}

/// How long (ms) the cluster is left running under a fault class before
/// the next step: long enough for heartbeats, elections, and client
/// retries to interact with the fault, short enough that a 25-seed
/// campaign stays minutes, not hours.
fn dwell_ms(fault: &Fault) -> u64 {
    match fault {
        // Link-state faults need a dwell for traffic to flow through
        // (or into) them.
        Fault::CutOneWay { .. }
        | Fault::CutBothWays { .. }
        | Fault::HealOneWay { .. }
        | Fault::SetLinkLoss { .. }
        | Fault::SetLoss { .. }
        | Fault::CorruptLink { .. }
        | Fault::SlowLink { .. }
        | Fault::Reorder { .. } => 400,
        Fault::Partition { .. } => 800,
        Fault::HealAll => 300,
        // Process faults: give the survivors time to notice.
        Fault::Crash { .. } | Fault::CrashDisk { .. } | Fault::CrashLeader => 600,
        Fault::Recover { .. } => 400,
        Fault::Pause { .. } => 700,
        Fault::Resume { .. } => 300,
        Fault::ResetLink { .. } => 200,
        // Cluster actions are driven to completion by the harness
        // itself; they need no extra dwell.
        Fault::Elect { .. } => 0,
        Fault::Reconfig { .. } | Fault::ReconfigAdd { .. } | Fault::ReconfigRemove { .. } => 0,
        Fault::ClientBurst { .. } => 0,
        Fault::Idle { us } => (us / 1000).max(1),
        // Not enactable on the wire (see `compile_fault`).
        Fault::Duplicate { .. } | Fault::OrphanWrite | Fault::SkewTimeout { .. } => 0,
    }
}

/// All ordered pairs of distinct members.
fn all_links(members: &[u32]) -> Vec<(u32, u32)> {
    let mut links = Vec::new();
    for &a in members {
        for &b in members {
            if a != b {
                links.push((a, b));
            }
        }
    }
    links
}

/// Compiles one fault into its wire actions. Returns an empty vector
/// for faults with no wire enactment: `Duplicate` (TCP delivers each
/// byte once), `OrphanWrite` (a WAL-buffer state the harness cannot
/// place from outside the process), and `SkewTimeout` (election timing
/// is compiled into the binary) — the timeline notes nothing and the
/// campaign simply proceeds.
fn compile_fault(fault: &Fault, members: &[u32]) -> Vec<WireAction> {
    match fault {
        Fault::CutOneWay { from, to } => vec![WireAction::Cut {
            from: *from,
            to: *to,
        }],
        Fault::CutBothWays { a, b } => vec![
            WireAction::Cut { from: *a, to: *b },
            WireAction::Cut { from: *b, to: *a },
        ],
        Fault::Partition { groups } => vec![WireAction::Partition {
            groups: groups.clone(),
        }],
        Fault::HealOneWay { from, to } => vec![WireAction::Heal {
            from: *from,
            to: *to,
        }],
        Fault::HealAll => vec![WireAction::HealAll],
        Fault::SetLinkLoss { from, to, pct } => vec![WireAction::Loss {
            from: *from,
            to: *to,
            pct: *pct,
        }],
        Fault::SetLoss { pct } => all_links(members)
            .into_iter()
            .map(|(from, to)| WireAction::Loss {
                from,
                to,
                pct: *pct,
            })
            .collect(),
        Fault::Crash { nid } => vec![WireAction::Kill { nid: *nid }],
        // The harness cannot reach inside the node's WAL to tear or
        // flip records; a disk-faulted crash degrades to a plain kill
        // (the storage faults keep their sim-only certification).
        Fault::CrashDisk { nid, .. } => vec![WireAction::Kill { nid: *nid }],
        Fault::CrashLeader => vec![WireAction::KillLeader],
        Fault::Recover { nid } => vec![WireAction::Restart { nid: *nid }],
        Fault::Elect { .. } => vec![WireAction::AwaitElection],
        Fault::Reconfig { members } => vec![WireAction::Reconfig {
            members: members.clone(),
        }],
        Fault::ReconfigAdd { nid } => vec![WireAction::ReconfigAdd { nid: *nid }],
        Fault::ReconfigRemove { nid } => vec![WireAction::ReconfigRemove { nid: *nid }],
        Fault::Reorder { .. } => all_links(members)
            .into_iter()
            .map(|(from, to)| WireAction::Reorder { from, to, pct: 30 })
            .collect(),
        Fault::ClientBurst { writes } => vec![WireAction::Burst { writes: *writes }],
        Fault::Idle { us } => vec![WireAction::Settle {
            ms: (us / 1000).max(1),
        }],
        Fault::Pause { nid } => vec![WireAction::Pause { nid: *nid }],
        Fault::Resume { nid } => vec![WireAction::Resume { nid: *nid }],
        Fault::CorruptLink { from, to, pct } => vec![WireAction::Corrupt {
            from: *from,
            to: *to,
            pct: *pct,
        }],
        Fault::ResetLink { from, to } => vec![WireAction::Reset {
            from: *from,
            to: *to,
        }],
        Fault::SlowLink { from, to } => vec![WireAction::Slow {
            from: *from,
            to: *to,
        }],
        Fault::Duplicate { .. } | Fault::OrphanWrite | Fault::SkewTimeout { .. } => vec![],
    }
}

/// Compiles a schedule into its wire timeline. Pure and total: the
/// timeline is a function of the schedule alone, faults keep their
/// order, and every fault's actions share one timestamp (the harness
/// enacts them back to back) followed by that fault's dwell.
#[must_use]
pub fn compile_schedule(schedule: &FaultSchedule) -> WireTimeline {
    let mut steps = Vec::new();
    let mut at_ms = 0u64;
    for fault in &schedule.faults {
        let actions = compile_fault(fault, &schedule.members);
        if actions.is_empty() {
            continue;
        }
        for action in actions {
            steps.push(WireStep { at_ms, action });
        }
        at_ms += dwell_ms(fault);
    }
    WireTimeline {
        steps,
        total_ms: at_ms,
    }
}

/// Renames node ids throughout a schedule by swapping labels `a` and
/// `b` (members, every fault's node references). Used by the live
/// harness to aim a canonical schedule (authored for sim boot, where
/// the lowest member always leads first) at whichever node actually
/// won the real cluster's first election; the *canonical* schedule is
/// what gets persisted, so the sim twin replays it unchanged.
#[must_use]
pub fn swap_labels(schedule: &FaultSchedule, a: u32, b: u32) -> FaultSchedule {
    let m = |n: u32| {
        if n == a {
            b
        } else if n == b {
            a
        } else {
            n
        }
    };
    let mv = |v: &[u32]| v.iter().map(|&n| m(n)).collect::<Vec<u32>>();
    let faults = schedule
        .faults
        .iter()
        .map(|f| match f {
            Fault::CutOneWay { from, to } => Fault::CutOneWay {
                from: m(*from),
                to: m(*to),
            },
            Fault::CutBothWays { a, b } => Fault::CutBothWays { a: m(*a), b: m(*b) },
            Fault::Partition { groups } => Fault::Partition {
                groups: groups.iter().map(|g| mv(g)).collect(),
            },
            Fault::HealOneWay { from, to } => Fault::HealOneWay {
                from: m(*from),
                to: m(*to),
            },
            Fault::SetLinkLoss { from, to, pct } => Fault::SetLinkLoss {
                from: m(*from),
                to: m(*to),
                pct: *pct,
            },
            Fault::Crash { nid } => Fault::Crash { nid: m(*nid) },
            Fault::CrashDisk { nid, fault } => Fault::CrashDisk {
                nid: m(*nid),
                fault: fault.clone(),
            },
            Fault::Recover { nid } => Fault::Recover { nid: m(*nid) },
            Fault::Elect { nid } => Fault::Elect { nid: m(*nid) },
            Fault::Reconfig { members } => Fault::Reconfig {
                members: mv(members),
            },
            Fault::ReconfigAdd { nid } => Fault::ReconfigAdd { nid: m(*nid) },
            Fault::ReconfigRemove { nid } => Fault::ReconfigRemove { nid: m(*nid) },
            Fault::Pause { nid } => Fault::Pause { nid: m(*nid) },
            Fault::Resume { nid } => Fault::Resume { nid: m(*nid) },
            Fault::CorruptLink { from, to, pct } => Fault::CorruptLink {
                from: m(*from),
                to: m(*to),
                pct: *pct,
            },
            Fault::ResetLink { from, to } => Fault::ResetLink {
                from: m(*from),
                to: m(*to),
            },
            Fault::SlowLink { from, to } => Fault::SlowLink {
                from: m(*from),
                to: m(*to),
            },
            other => other.clone(),
        })
        .collect();
    FaultSchedule {
        name: schedule.name.clone(),
        seed: schedule.seed,
        members: mv(&schedule.members),
        guard: schedule.guard,
        durability: schedule.durability,
        faults,
    }
}

/// Generates one seeded netmesis campaign schedule: a 5-node cluster
/// walking a live 5→3→5 reconfiguration while wire faults — minority
/// partitions, gray pauses, frame corruption, connection resets,
/// slow-loris stalls — land on top of it. Every schedule keeps a
/// majority of the *current* configuration connected and running, so a
/// sound-guard cluster must stay safe and eventually available; and
/// every schedule includes at least one corruption burst, so the
/// campaign-wide crc-rejection count is provably nonzero.
#[must_use]
pub fn netmesis_schedule(seed: u64) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6e65_746d_6573_6973); // "netmesis"
    let members: Vec<u32> = vec![1, 2, 3, 4, 5];
    let core = [1u32, 2, 3]; // survive the 5→3 walk; never paused/killed
    let fringe = [4u32, 5]; // removed on the way down, re-added on the way up
    let pick_core = |rng: &mut StdRng| core[rng.gen_range(0..core.len())];
    let mut faults: Vec<Fault> = Vec::new();

    // A wire disturbance that never threatens the {1,2,3} core quorum.
    let disturb = |rng: &mut StdRng, faults: &mut Vec<Fault>| {
        match rng.gen_range(0..5u32) {
            0 => {
                // Partition a fringe minority away.
                let lone = fringe[rng.gen_range(0..fringe.len())];
                let rest: Vec<u32> = members.iter().copied().filter(|&n| n != lone).collect();
                faults.push(Fault::Partition {
                    groups: vec![rest, vec![lone]],
                });
            }
            1 => {
                let (from, to) = (pick_core(rng), pick_core(rng));
                if from != to {
                    faults.push(Fault::SlowLink { from, to });
                }
            }
            2 => {
                let nid = fringe[rng.gen_range(0..fringe.len())];
                faults.push(Fault::Pause { nid });
                faults.push(Fault::ClientBurst {
                    writes: rng.gen_range(1..3),
                });
                faults.push(Fault::Resume { nid });
            }
            3 => {
                let (from, to) = (pick_core(rng), pick_core(rng));
                if from != to {
                    faults.push(Fault::ResetLink { from, to });
                }
            }
            _ => {
                let (from, to) = (pick_core(rng), pick_core(rng));
                if from != to {
                    faults.push(Fault::SetLinkLoss {
                        from,
                        to,
                        pct: rng.gen_range(20..60),
                    });
                }
            }
        }
    };

    faults.push(Fault::ClientBurst { writes: 3 });
    // Guaranteed corruption burst on core links while traffic flows:
    // the crc-rejection path must fire in every seed.
    let (ca, cb) = (core[rng.gen_range(0..3)], core[rng.gen_range(0..3)]);
    let (ca, cb) = if ca == cb { (1, 2) } else { (ca, cb) };
    faults.push(Fault::CorruptLink {
        from: ca,
        to: cb,
        pct: rng.gen_range(60..100),
    });
    faults.push(Fault::CorruptLink {
        from: cb,
        to: ca,
        pct: rng.gen_range(60..100),
    });
    faults.push(Fault::ClientBurst { writes: 3 });
    faults.push(Fault::HealAll);

    // Walk down 5 → 3 with a disturbance overlapping each removal.
    for &out in &fringe {
        disturb(&mut rng, &mut faults);
        faults.push(Fault::ReconfigRemove { nid: out });
        faults.push(Fault::ClientBurst {
            writes: rng.gen_range(1..3),
        });
    }
    faults.push(Fault::HealAll);

    // Disturb the shrunk cluster (core links only).
    match rng.gen_range(0..3u32) {
        0 => {
            let (from, to) = (1, 1 + rng.gen_range(1..3));
            faults.push(Fault::CorruptLink {
                from,
                to,
                pct: rng.gen_range(40..90),
            });
            faults.push(Fault::ClientBurst { writes: 2 });
        }
        1 => {
            faults.push(Fault::ResetLink { from: 1, to: 2 });
            faults.push(Fault::ResetLink { from: 2, to: 1 });
            faults.push(Fault::ClientBurst { writes: 2 });
        }
        _ => {
            faults.push(Fault::SlowLink { from: 2, to: 3 });
            faults.push(Fault::ClientBurst { writes: 2 });
        }
    }
    faults.push(Fault::HealAll);

    // Walk back up 3 → 5 with disturbances overlapping each add.
    for &back in &fringe {
        faults.push(Fault::ReconfigAdd { nid: back });
        disturb(&mut rng, &mut faults);
        faults.push(Fault::ClientBurst {
            writes: rng.gen_range(1..3),
        });
    }
    faults.push(Fault::HealAll);
    faults.push(Fault::ClientBurst { writes: 3 });

    FaultSchedule {
        name: format!("netmesis-{seed}"),
        seed,
        members,
        guard: ReconfigGuard::all(),
        durability: DurabilityPolicy::strict(),
        faults,
    }
}

/// The fixed 3-node CI gate schedule: one partition-during-reconfig
/// with a corruption burst and a connection reset, small enough to
/// complete (run + audit) inside the ci.sh 90-second budget.
#[must_use]
pub fn gate_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "netmesis-gate".into(),
        seed: 7,
        members: vec![1, 2, 3],
        guard: ReconfigGuard::all(),
        durability: DurabilityPolicy::strict(),
        faults: vec![
            Fault::ClientBurst { writes: 3 },
            // crc-rejection proof: corrupt a core link both ways while
            // traffic flows.
            Fault::CorruptLink {
                from: 1,
                to: 2,
                pct: 80,
            },
            Fault::CorruptLink {
                from: 2,
                to: 1,
                pct: 80,
            },
            Fault::ClientBurst { writes: 3 },
            Fault::HealAll,
            // The partition-during-reconfig heart of the gate: isolate
            // node 3, then shrink the config to the connected majority
            // while it is cut off, write through the new config, heal,
            // and grow back.
            Fault::Partition {
                groups: vec![vec![1, 2], vec![3]],
            },
            Fault::ClientBurst { writes: 2 },
            Fault::Reconfig {
                members: vec![1, 2],
            },
            Fault::ClientBurst { writes: 2 },
            Fault::HealAll,
            Fault::ReconfigAdd { nid: 3 },
            Fault::ClientBurst { writes: 2 },
            Fault::ResetLink { from: 1, to: 2 },
            Fault::ClientBurst { writes: 2 },
        ],
    }
}

/// A wire-campaign counterexample: the canonical schedule that tripped
/// a live safety/audit failure, the merged obs journal proving it, and
/// (when the sim twin reproduces a violation) the ddmin-minimized
/// simulator counterexample for the same schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetCounterexample {
    /// The schedule, in canonical (sim-replayable) labeling.
    pub schedule: FaultSchedule,
    /// What the live run/audit reported.
    pub violation: String,
    /// The merged JSONL obs journal of the live run.
    pub journal: String,
    /// The sim twin's minimized counterexample, when the simulator
    /// reproduces a violation from the same schedule.
    pub sim_twin: Option<Counterexample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compilation_is_deterministic_and_pure() {
        let s = netmesis_schedule(11);
        assert_eq!(compile_schedule(&s), compile_schedule(&s));
        assert_eq!(netmesis_schedule(11), netmesis_schedule(11));
        assert_ne!(netmesis_schedule(11).faults, netmesis_schedule(12).faults);
    }

    #[test]
    fn timelines_are_ordered_and_budgeted() {
        for seed in 0..25 {
            let timeline = compile_schedule(&netmesis_schedule(seed));
            let mut last = 0;
            for step in &timeline.steps {
                assert!(step.at_ms >= last, "seed {seed}: steps out of order");
                last = step.at_ms;
            }
            assert!(timeline.total_ms >= last);
            assert!(
                timeline.total_ms < 30_000,
                "seed {seed}: campaign span {}ms won't fit a bounded run",
                timeline.total_ms
            );
        }
    }

    #[test]
    fn every_campaign_seed_includes_corruption_and_the_reconfig_walk() {
        for seed in 0..25 {
            let s = netmesis_schedule(seed);
            assert!(
                s.faults.iter().any(|f| matches!(f, Fault::CorruptLink { .. })),
                "seed {seed}: no corruption burst"
            );
            let removes = s
                .faults
                .iter()
                .filter(|f| matches!(f, Fault::ReconfigRemove { .. }))
                .count();
            let adds = s
                .faults
                .iter()
                .filter(|f| matches!(f, Fault::ReconfigAdd { .. }))
                .count();
            assert_eq!((removes, adds), (2, 2), "seed {seed}: walk incomplete");
            // Paused or partitioned-away nodes are always in the fringe:
            // the {1,2,3} core keeps a live majority of every config the
            // walk passes through.
            for f in &s.faults {
                if let Fault::Pause { nid } = f {
                    assert!(*nid > 3, "seed {seed}: paused a core node");
                }
            }
        }
    }

    #[test]
    fn campaign_schedules_are_sim_safe_under_the_sound_guard() {
        // The sim twin of every campaign seed must pass: these
        // schedules certify the wire runtime, not the protocol.
        let params = crate::engine::EngineParams::default();
        for seed in 0..8 {
            let report = crate::engine::run_schedule(&netmesis_schedule(seed), &params);
            assert!(report.is_safe(), "seed {seed}: {:?}", report.violation);
        }
    }

    #[test]
    fn the_gate_schedule_is_sim_safe_and_compiles_small() {
        let s = gate_schedule();
        let report = crate::engine::run_schedule(&s, &crate::engine::EngineParams::default());
        assert!(report.is_safe(), "{:?}", report.violation);
        let timeline = compile_schedule(&s);
        assert!(
            timeline.total_ms < 10_000,
            "gate span {}ms too long for the 90s CI budget",
            timeline.total_ms
        );
    }

    #[test]
    fn label_swapping_is_an_involution_and_renames_everywhere() {
        let s = netmesis_schedule(3);
        let swapped = swap_labels(&s, 1, 4);
        assert_eq!(swap_labels(&swapped, 1, 4), s);
        assert!(swapped.members.contains(&1) && swapped.members.contains(&4));
        // The schedule's json must not mention structure-changing
        // differences beyond the labels: fault count identical.
        assert_eq!(s.faults.len(), swapped.faults.len());
    }

    #[test]
    fn wire_timelines_round_trip_through_json() {
        let timeline = compile_schedule(&gate_schedule());
        let json = serde_json::to_string(&timeline).unwrap();
        let back: WireTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, timeline);
    }

    #[test]
    fn net_counterexamples_round_trip_through_json() {
        let ce = NetCounterexample {
            schedule: gate_schedule(),
            violation: "acked write lost".into(),
            journal: "{}\n".into(),
            sim_twin: None,
        };
        let json = serde_json::to_string(&ce).unwrap();
        let back: NetCounterexample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ce);
    }
}
