//! Nemesis: a composable fault-injection engine with safety checking
//! under adversarial schedules.
//!
//! The crate turns the repository's deterministic simulation stack into a
//! robustness harness in four pieces:
//!
//! - [`FaultSchedule`] / [`Fault`] — the serializable language of
//!   adversarial campaigns: healable asymmetric and symmetric partitions,
//!   message duplication and bounded reordering, crash-restart storms,
//!   leader flapping, clock-skewed timeouts, reconfiguration churn racing
//!   client traffic. [`random_schedule`] generates bounded seeded
//!   campaigns; everything round-trips through JSON and replays
//!   deterministically.
//! - [`RobustClient`] — a production-shaped client driver (per-request
//!   timeout, capped exponential backoff with seeded jitter,
//!   leader-redirect retry) that records an operation history and a ghost
//!   state of what its acknowledgements oblige the cluster to return.
//! - [`run_schedule`] / [`hunt`] — the engine: boots an
//!   [`adore_kv::Cluster`], applies each fault, asserts
//!   committed-prefix agreement and read-your-committed-writes after
//!   every phase and at quiesce, reports per-phase availability in a
//!   [`DegradedReport`], and on violation minimizes the schedule with the
//!   checker's delta-debugging into a replayable [`Counterexample`].
//! - [`NetHarness`] — the same schedules against the untimed
//!   network-level model ([`adore_raft::NetState`]), for
//!   cross-validation that a violation is a protocol property, not a
//!   timing artifact.
//!
//! The scripted schedules in [`r1_ablation_schedule`],
//! [`r2_ablation_schedule`], and [`r3_ablation_schedule`] re-enact the
//! paper's guard-ablation bugs (Fig. 4/Fig. 12) purely as composable
//! faults: each diverges under its ablated guard at *both* simulation
//! levels and is harmless under [`adore_core::ReconfigGuard::all`].
//!
//! Since the durable-storage subsystem landed, schedules also carry a
//! [`DurabilityPolicy`] and can inject crash-time disk faults
//! ([`Fault::CrashDisk`] with a [`DiskFault`]: torn record, bit-flip
//! corruption, media wipe) and unacked orphan writes
//! ([`Fault::OrphanWrite`]). The storage counterparts of the guard
//! ablations — [`storage_no_fsync_schedule`],
//! [`storage_no_checksum_schedule`], [`storage_keep_tail_schedule`] —
//! each defeat one ablated storage discipline and are harmless under
//! [`DurabilityPolicy::strict`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod engine;
mod net_adapter;
mod netmesis;
mod schedule;
mod scripted;

pub use client::{ClientParams, OpOutcome, OpRecord, RobustClient, ViolationKind};
pub use engine::{
    hunt, replay, run_schedule, run_schedule_traced, Counterexample, DegradedReport, EngineParams,
    NemesisReport, PhaseStat,
};
pub use net_adapter::NetHarness;
pub use netmesis::{
    compile_schedule, gate_schedule, netmesis_schedule, swap_labels, NetCounterexample,
    WireAction, WireStep, WireTimeline,
};
pub use schedule::{random_schedule, Fault, FaultSchedule, RandomScheduleParams};
pub use scripted::{
    ablation_suite, r1_ablation_schedule, r2_ablation_schedule, r3_ablation_schedule,
    storage_ablation_suite, storage_keep_tail_schedule, storage_no_checksum_schedule,
    storage_no_fsync_schedule,
};

// Re-exported so schedule authors need not depend on `adore-storage`
// directly.
pub use adore_storage::{DiskFault, DurabilityPolicy};
