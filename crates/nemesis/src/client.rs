//! A fault-tolerant client driver with a linearizability ghost.
//!
//! [`RobustClient`] is what a production client library does in front of a
//! flaky replicated store: per-request timeouts (bounded retransmission
//! patience), capped exponential backoff with seeded jitter, and
//! leader-redirect retry after elections. Every operation is recorded in a
//! history, and a *ghost state* tracks what an acknowledged write obliges
//! the cluster to return — the basis for the engine's
//! read-your-committed-writes check.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use adore_kv::{Cluster, ClusterError, KvCommand};
use adore_schemes::SingleNode;

/// Client-side robustness knobs.
#[derive(Debug, Clone)]
pub struct ClientParams {
    /// Retransmission rounds granted to one attempt before it times out
    /// (the per-request timeout, in units of leader patience).
    pub request_rounds: u32,
    /// Attempts per operation (1 = no retry).
    pub max_attempts: u32,
    /// Base backoff before the second attempt, in virtual microseconds.
    pub backoff_base_us: u64,
    /// Backoff growth cap.
    pub backoff_cap_us: u64,
}

impl Default for ClientParams {
    fn default() -> Self {
        ClientParams {
            request_rounds: 4,
            max_attempts: 4,
            backoff_base_us: 800,
            backoff_cap_us: 12_000,
        }
    }
}

/// The terminal outcome of one client operation (after retries).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpOutcome {
    /// Committed and acknowledged within the attempt budget.
    Acked {
        /// End-to-end latency in virtual microseconds (all attempts).
        latency_us: u64,
    },
    /// Every attempt exhausted its round budget without a commit.
    TimedOut,
    /// No leader could be found to submit to.
    NoLeader,
    /// The protocol rejected the operation.
    Rejected,
}

impl OpOutcome {
    /// A short machine-readable name for the outcome, used by the
    /// observability layer to label client-operation trace events.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            OpOutcome::Acked { .. } => "acked",
            OpOutcome::TimedOut => "timed-out",
            OpOutcome::NoLeader => "no-leader",
            OpOutcome::Rejected => "rejected",
        }
    }
}

/// One entry of the recorded operation history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord {
    /// The written key.
    pub key: String,
    /// The written value.
    pub value: String,
    /// What happened.
    pub outcome: OpOutcome,
    /// Virtual time at which the operation completed (or gave up).
    pub at_us: u64,
}

/// A safety violation observed by the client-side checks.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Two servers' committed prefixes disagree (`check_log_safety`).
    LogDivergence {
        /// One offending server.
        a: u32,
        /// The other offending server.
        b: u32,
    },
    /// An acknowledged write is absent from the committed store.
    LostWrite {
        /// The written key.
        key: String,
        /// The acknowledged value that vanished.
        value: String,
    },
    /// The committed store returns a value the acknowledgement history
    /// cannot explain.
    StaleRead {
        /// The read key.
        key: String,
        /// The last acknowledged value.
        expected: String,
        /// What the committed store actually holds.
        got: String,
    },
    /// The committed store holds a value this client never wrote.
    PhantomWrite {
        /// The key.
        key: String,
        /// The inexplicable value.
        got: String,
    },
    /// A replica acknowledged state (a vote, an entry, a commit) that its
    /// synced WAL prefix does not justify — the sync-before-ack
    /// discipline was violated (storage certification).
    AckNotDurable {
        /// The offending replica.
        nid: u32,
    },
    /// A replica recovered to a state that is not the replay of its
    /// synced WAL — recovery invented or reordered history (storage
    /// certification).
    UnfaithfulRecovery {
        /// The offending replica.
        nid: u32,
    },
}

impl ViolationKind {
    /// The violation's variant name, used by the observability layer to
    /// label verdict events: the trace auditor keys its
    /// verdict-consistency rule on these tags.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            ViolationKind::LogDivergence { .. } => "LogDivergence",
            ViolationKind::LostWrite { .. } => "LostWrite",
            ViolationKind::StaleRead { .. } => "StaleRead",
            ViolationKind::PhantomWrite { .. } => "PhantomWrite",
            ViolationKind::AckNotDurable { .. } => "AckNotDurable",
            ViolationKind::UnfaithfulRecovery { .. } => "UnfaithfulRecovery",
        }
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::LogDivergence { a, b } if a == b => {
                write!(f, "committed entries of S{a} were overwritten")
            }
            ViolationKind::LogDivergence { a, b } => {
                write!(f, "committed prefixes of S{a} and S{b} diverge")
            }
            ViolationKind::LostWrite { key, value } => {
                write!(f, "acknowledged write {key}={value} lost")
            }
            ViolationKind::StaleRead { key, expected, got } => {
                write!(f, "read {key}: expected {expected}, got {got}")
            }
            ViolationKind::PhantomWrite { key, got } => {
                write!(f, "read {key}: phantom value {got}")
            }
            ViolationKind::AckNotDurable { nid } => {
                write!(f, "S{nid} acknowledged state its synced WAL does not hold")
            }
            ViolationKind::UnfaithfulRecovery { nid } => {
                write!(f, "S{nid} recovered to a state its WAL replay cannot produce")
            }
        }
    }
}

/// What one key's history obliges the committed store to return.
#[derive(Debug, Clone, Default)]
struct GhostKey {
    /// The last acknowledged value, if any.
    acked: Option<String>,
    /// Values written after the last acknowledgement whose fate is
    /// unknown (timed out or rejected mid-flight); any of them may
    /// legally surface.
    in_doubt: Vec<String>,
}

/// The retrying, redirecting client driver.
#[derive(Debug)]
pub struct RobustClient {
    params: ClientParams,
    rng: StdRng,
    ghost: BTreeMap<String, GhostKey>,
    /// This client's session id, embedded in every submitted write.
    client_id: u64,
    /// The next request sequence number. Allocated **once per
    /// operation**, before the first attempt, and reused verbatim by
    /// every retry — the client half of the exactly-once contract.
    next_seq: u64,
    /// Every completed operation, in order.
    pub history: Vec<OpRecord>,
}

impl RobustClient {
    /// Creates a client with its own jitter stream derived from `seed`.
    /// The seed doubles as the client's session id.
    #[must_use]
    pub fn new(params: ClientParams, seed: u64) -> Self {
        RobustClient {
            params,
            rng: StdRng::seed_from_u64(seed ^ 0xc11e_4475),
            ghost: BTreeMap::new(),
            client_id: seed,
            next_seq: 1,
            history: Vec::new(),
        }
    }

    /// Capped exponential backoff with seeded jitter, spent as idle
    /// virtual time (the network keeps draining meanwhile).
    fn backoff(&mut self, cluster: &mut Cluster<SingleNode>, attempt: u32) {
        let exp = self
            .params
            .backoff_base_us
            .saturating_mul(1 << attempt.min(10))
            .min(self.params.backoff_cap_us);
        let jitter = self.rng.gen_range(0..=exp / 4);
        cluster.run_idle(exp + jitter);
    }

    /// Writes `key = value` with timeout, backoff, and leader-redirect
    /// retry; records the operation and updates the ghost state.
    pub fn put(
        &mut self,
        cluster: &mut Cluster<SingleNode>,
        key: &str,
        value: &str,
    ) -> OpOutcome {
        let start = cluster.now_us();
        // The exactly-once discipline: one sequence number per logical
        // operation, shared by all of its retries. A retry of a write
        // whose first attempt stalled in some leader's log is then
        // recognized by the log scan in `submit_session_with_rounds`
        // and never appended a second time.
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut last = OpOutcome::NoLeader;
        for attempt in 0..self.params.max_attempts {
            if attempt > 0 {
                self.backoff(cluster, attempt - 1);
            }
            if cluster.leader().is_none() && cluster.adopt_leader().is_none() {
                last = OpOutcome::NoLeader;
                continue;
            }
            match cluster.submit_session_with_rounds(
                self.client_id,
                seq,
                KvCommand::put(key, value),
                self.params.request_rounds,
            ) {
                Ok(_) => {
                    let ghost = self.ghost.entry(key.to_string()).or_default();
                    ghost.acked = Some(value.to_string());
                    ghost.in_doubt.clear();
                    last = OpOutcome::Acked {
                        latency_us: cluster.now_us() - start,
                    };
                    break;
                }
                Err(ClusterError::NoLeader) => {
                    cluster.adopt_leader();
                    last = OpOutcome::NoLeader;
                }
                Err(ClusterError::Stalled) => {
                    // The entry sits in some leader's log with an unknown
                    // fate; it may commit behind our back.
                    self.note_in_doubt(key, value);
                    cluster.adopt_leader();
                    last = OpOutcome::TimedOut;
                }
                Err(ClusterError::Rejected) => {
                    // Conservatively in doubt: the rejection may have come
                    // after the invoke appended.
                    self.note_in_doubt(key, value);
                    last = OpOutcome::Rejected;
                }
            }
        }
        self.history.push(OpRecord {
            key: key.to_string(),
            value: value.to_string(),
            outcome: last.clone(),
            at_us: cluster.now_us(),
        });
        if cluster.tracing() {
            let latency_us = match &last {
                OpOutcome::Acked { latency_us } => Some(*latency_us),
                _ => None,
            };
            cluster.trace(adore_obs::EventKind::ClientOp {
                op: "put".to_string(),
                key: key.to_string(),
                outcome: last.tag().to_string(),
                latency_us,
            });
        }
        last
    }

    fn note_in_doubt(&mut self, key: &str, value: &str) {
        let ghost = self.ghost.entry(key.to_string()).or_default();
        if !ghost.in_doubt.iter().any(|v| v == value) {
            ghost.in_doubt.push(value.to_string());
        }
    }

    /// Read-your-committed-writes: for every key this client wrote, the
    /// cluster-wide committed store must hold either the last
    /// acknowledged value or one of the in-doubt values written after it
    /// — anything else is a lost, stale, or phantom result.
    ///
    /// # Errors
    ///
    /// The first violation found.
    pub fn check_reads(&self, cluster: &Cluster<SingleNode>) -> Result<(), ViolationKind> {
        let store = cluster.committed_store();
        for (key, ghost) in &self.ghost {
            let got = store.get(key);
            match (&ghost.acked, got) {
                (Some(expected), Some(got)) => {
                    if got != expected && !ghost.in_doubt.iter().any(|v| v == got) {
                        return Err(ViolationKind::StaleRead {
                            key: key.clone(),
                            expected: expected.clone(),
                            got: got.to_string(),
                        });
                    }
                }
                (Some(expected), None) => {
                    return Err(ViolationKind::LostWrite {
                        key: key.clone(),
                        value: expected.clone(),
                    });
                }
                (None, Some(got)) => {
                    if !ghost.in_doubt.iter().any(|v| v == got) {
                        return Err(ViolationKind::PhantomWrite {
                            key: key.clone(),
                            got: got.to_string(),
                        });
                    }
                }
                (None, None) => {}
            }
        }
        Ok(())
    }

    /// Number of acknowledged operations in the history.
    #[must_use]
    pub fn acked(&self) -> usize {
        self.history
            .iter()
            .filter(|r| matches!(r.outcome, OpOutcome::Acked { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_core::NodeId;
    use adore_kv::LatencyModel;

    #[test]
    fn healthy_cluster_acks_everything() {
        let mut cluster = Cluster::new(
            SingleNode::new([1, 2, 3]),
            LatencyModel::default(),
            21,
        );
        cluster.elect(NodeId(1)).unwrap();
        let mut client = RobustClient::new(ClientParams::default(), 21);
        for i in 0..10 {
            let out = client.put(&mut cluster, &format!("k{i}"), "v");
            assert!(matches!(out, OpOutcome::Acked { .. }));
        }
        assert_eq!(client.acked(), 10);
        client.check_reads(&cluster).unwrap();
    }

    #[test]
    fn client_redirects_to_a_new_leader_after_a_crash() {
        let mut cluster = Cluster::new(
            SingleNode::new([1, 2, 3, 4, 5]),
            LatencyModel::default(),
            22,
        );
        cluster.elect(NodeId(1)).unwrap();
        let mut client = RobustClient::new(ClientParams::default(), 22);
        assert!(matches!(
            client.put(&mut cluster, "a", "1"),
            OpOutcome::Acked { .. }
        ));
        cluster.fail(NodeId(1));
        // No leader exists; the put exhausts its attempts.
        assert_eq!(client.put(&mut cluster, "a", "2"), OpOutcome::NoLeader);
        // An election happens (the fault engine or the environment); the
        // client's adopt-leader redirect finds it without being told.
        cluster.elect(NodeId(2)).unwrap();
        cluster.fail(NodeId(3)); // leader() is Some(2); crash a bystander
        assert!(matches!(
            client.put(&mut cluster, "a", "3"),
            OpOutcome::Acked { .. }
        ));
        client.check_reads(&cluster).unwrap();
    }

    #[test]
    fn stalled_retries_append_one_entry_not_one_per_attempt() {
        let mut cluster = Cluster::new(
            SingleNode::new([1, 2, 3, 4, 5]),
            LatencyModel::default(),
            24,
        );
        cluster.elect(NodeId(1)).unwrap();
        let mut client = RobustClient::new(ClientParams::default(), 24);
        assert!(matches!(
            client.put(&mut cluster, "a", "1"),
            OpOutcome::Acked { .. }
        ));
        // Partition the leader into a minority: every attempt of the
        // next put stalls, and every retry reaches the same leader.
        let all: Vec<NodeId> = (1..=5).map(NodeId).collect();
        cluster.links_mut().isolate(NodeId(1), all);
        cluster.links_mut().heal_both_ways(NodeId(1), NodeId(2));
        assert_eq!(client.put(&mut cluster, "a", "2"), OpOutcome::TimedOut);
        // The regression: before sessioned submission, each of the 4
        // attempts invoked afresh, leaving 4 copies of the same logical
        // write in the leader's log — all of which would commit (and
        // apply) after the partition healed. With the `(client, seq)`
        // envelope, the retries recognize the in-flight entry instead.
        let copies = cluster
            .net()
            .server(NodeId(1))
            .unwrap()
            .log
            .iter()
            .filter(|e| {
                matches!(
                    &e.cmd,
                    adore_raft::Command::Method(m) if m.session_id().is_some()
                        && matches!(
                            m,
                            KvCommand::Session { cmd, .. }
                                if **cmd == KvCommand::put("a", "2")
                        )
                )
            })
            .count();
        assert_eq!(copies, 1, "retries must not re-append the stalled write");
        // Heal: the single in-flight copy commits exactly once.
        cluster.links_mut().heal_all();
        assert!(matches!(
            client.put(&mut cluster, "b", "x"),
            OpOutcome::Acked { .. }
        ));
        client.check_reads(&cluster).unwrap();
    }

    #[test]
    fn timed_out_writes_are_tracked_in_doubt_not_lost() {
        let mut cluster = Cluster::new(
            SingleNode::new([1, 2, 3, 4, 5]),
            LatencyModel::default(),
            23,
        );
        cluster.elect(NodeId(1)).unwrap();
        let mut client = RobustClient::new(ClientParams::default(), 23);
        client.put(&mut cluster, "a", "1");
        // Partition the leader into a minority; the write times out but
        // stays in the leader's log.
        let all: Vec<NodeId> = (1..=5).map(NodeId).collect();
        cluster.links_mut().isolate(NodeId(1), all.clone());
        cluster.links_mut().heal_both_ways(NodeId(1), NodeId(2));
        assert_eq!(client.put(&mut cluster, "a", "2"), OpOutcome::TimedOut);
        // Heal: the in-doubt write commits on the next successful round.
        cluster.links_mut().heal_all();
        assert!(matches!(
            client.put(&mut cluster, "b", "x"),
            OpOutcome::Acked { .. }
        ));
        // "a" may now read as "2" (the in-doubt write landed) — the ghost
        // accepts it; what it must NOT be is anything else.
        client.check_reads(&cluster).unwrap();
    }
}
