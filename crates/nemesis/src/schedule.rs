//! Fault schedules: the serializable language of adversarial campaigns.
//!
//! A [`FaultSchedule`] is a seed, an initial membership, a guard, and a
//! sequence of [`Fault`] steps. Everything is data — schedules round-trip
//! through JSON, replay deterministically, and shrink with the checker's
//! delta-debugging machinery, so a violating campaign is a *portable*
//! counterexample, not a flaky observation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{de, value, Deserialize, Serialize, Value};

use adore_core::ReconfigGuard;
use adore_storage::{DiskFault, DurabilityPolicy};

/// One composable fault-injection step.
///
/// Node ids are raw `u32`s (not [`adore_core::NodeId`]) so schedules stay
/// trivially readable in their JSON form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Cut the directed link `from → to` (asymmetric partition onset).
    CutOneWay {
        /// Sending side of the cut link.
        from: u32,
        /// Receiving side of the cut link.
        to: u32,
    },
    /// Cut both directions between `a` and `b`.
    CutBothWays {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// Replace the current link state with a clean partition into groups:
    /// all previous cuts heal, then every cross-group link is cut.
    Partition {
        /// The partition groups (nodes not listed keep all their links).
        groups: Vec<Vec<u32>>,
    },
    /// Heal the directed link `from → to`.
    HealOneWay {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
    /// Heal every link and clear every per-link loss override.
    HealAll,
    /// Override the loss percentage of the directed link `from → to`.
    SetLinkLoss {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
        /// Loss percentage, clamped to 100.
        pct: u32,
    },
    /// Set the scalar background loss percentage for all links.
    SetLoss {
        /// Loss percentage.
        pct: u32,
    },
    /// Crash a replica. At the disk this is a clean power loss
    /// ([`DiskFault::LoseTail`]): the WAL's synced prefix survives, the
    /// unsynced tail does not. Under the strict durability policy that
    /// is indistinguishable from the old benign-crash reading, because
    /// everything acked was synced.
    Crash {
        /// The replica to crash.
        nid: u32,
    },
    /// Crash a replica with an explicit crash-time disk fault: a torn
    /// record at the crash point, a bit-flip in a synced record, or
    /// total media loss.
    CrashDisk {
        /// The replica to crash.
        nid: u32,
        /// What happens to its WAL.
        fault: DiskFault,
    },
    /// Append one write at the leader without starting its replication
    /// round — a request caught in the leader's WAL buffer by whatever
    /// comes next. Never acked, so losing it is safe; it is the
    /// canonical unsynced tail for torn-write injection.
    OrphanWrite,
    /// Crash whichever node currently leads (leader-targeted nemesis).
    CrashLeader,
    /// Recover a crashed replica.
    Recover {
        /// The replica to recover.
        nid: u32,
    },
    /// Start an election for `nid` (retried once on a term collision).
    Elect {
        /// The candidate.
        nid: u32,
    },
    /// Reconfigure to an explicit member set through the current leader.
    Reconfig {
        /// The target membership.
        members: Vec<u32>,
    },
    /// Reconfigure by adding one node to the leader's current config.
    ReconfigAdd {
        /// The node to add.
        nid: u32,
    },
    /// Reconfigure by removing one node from the leader's current config.
    ReconfigRemove {
        /// The node to remove.
        nid: u32,
    },
    /// Duplicate up to `copies` random in-flight messages.
    Duplicate {
        /// Number of duplicates to inject.
        copies: u32,
    },
    /// Re-jitter every in-flight arrival by up to `window_us`.
    Reorder {
        /// Reordering window in virtual microseconds.
        window_us: u64,
    },
    /// Skew the leader's retransmission timeout (100 = nominal).
    SkewTimeout {
        /// Scale in percent, clamped to `[10, 1000]` by the cluster.
        pct: u32,
    },
    /// Drive a burst of client writes through the robust client.
    ClientBurst {
        /// Number of writes.
        writes: u32,
    },
    /// Let the network drain for a stretch of virtual time.
    Idle {
        /// Duration in virtual microseconds.
        us: u64,
    },
    /// Gray-failure pause: the process freezes (SIGSTOP on the wire)
    /// but its connections stay open. In the simulation a paused node
    /// is modeled as fully isolated — it neither sends nor receives —
    /// which over-approximates the pause at message granularity.
    Pause {
        /// The replica to pause.
        nid: u32,
    },
    /// Resume a paused replica (SIGCONT on the wire; heal its links in
    /// the simulation).
    Resume {
        /// The replica to resume.
        nid: u32,
    },
    /// Corrupt a fraction of frames on the directed link `from → to`.
    /// On the wire each corrupted frame fails the receiver's crc and is
    /// dropped with a journaled `BadFrame`; at message granularity
    /// corruption therefore refines to link loss, which is exactly how
    /// the simulation models it.
    CorruptLink {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
        /// Percentage of frames corrupted, clamped to 100.
        pct: u32,
    },
    /// Abruptly reset the connection carrying `from → to`. The wire
    /// runtime reconnects with backoff and retransmits full state, so
    /// at message granularity a reset refines to a transient cut that
    /// immediately heals (the simulation's model).
    ResetLink {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
    /// Slow-loris the directed link `from → to`: frames stall mid-frame
    /// (header delivered, payload trickling). Liveness-only in effect —
    /// the simulation models it as a reordering window.
    SlowLink {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
}

/// A complete, replayable adversarial campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Human-readable campaign name (carried through reports).
    pub name: String,
    /// Seed for every random choice in the run (latencies, jitter,
    /// duplication picks — the whole campaign is a function of this).
    pub seed: u64,
    /// Initial cluster membership.
    pub members: Vec<u32>,
    /// The reconfiguration guard in force (ablations turn bits off).
    pub guard: ReconfigGuard,
    /// The durability policy every replica's WAL runs under (storage
    /// ablations turn one discipline off).
    pub durability: DurabilityPolicy,
    /// The fault steps, applied in order.
    pub faults: Vec<Fault>,
}

// Hand-written serde: schedules from before the storage subsystem carry
// no "durability" key, and those counterexamples must stay replayable —
// a missing key deserializes to the strict policy, which is exactly the
// model they were minimized under. (The derive macro has no
// default-field support.)
impl Serialize for FaultSchedule {
    fn ser_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), self.name.ser_value()),
            ("seed".to_string(), self.seed.ser_value()),
            ("members".to_string(), self.members.ser_value()),
            ("guard".to_string(), self.guard.ser_value()),
            ("durability".to_string(), self.durability.ser_value()),
            ("faults".to_string(), self.faults.ser_value()),
        ])
    }
}

impl Deserialize for FaultSchedule {
    fn deser_value(v: &Value) -> Result<Self, de::Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| de::Error::custom(format!("expected object, found {}", v.kind())))?;
        let durability = match pairs.iter().find(|(k, _)| k == "durability") {
            Some((_, v)) => DurabilityPolicy::deser_value(v)?,
            None => DurabilityPolicy::strict(),
        };
        Ok(FaultSchedule {
            name: String::deser_value(value::get_field(pairs, "name")?)?,
            seed: u64::deser_value(value::get_field(pairs, "seed")?)?,
            members: Vec::deser_value(value::get_field(pairs, "members")?)?,
            guard: ReconfigGuard::deser_value(value::get_field(pairs, "guard")?)?,
            durability,
            faults: Vec::deser_value(value::get_field(pairs, "faults")?)?,
        })
    }
}

impl FaultSchedule {
    /// The same schedule under a different guard (e.g. to confirm that a
    /// violating ablation schedule is harmless under the sound guard).
    #[must_use]
    pub fn with_guard(mut self, guard: ReconfigGuard) -> Self {
        self.guard = guard;
        self
    }

    /// The same schedule with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same schedule under a different durability policy (e.g. to
    /// confirm that a violating storage-ablation schedule is harmless
    /// under the strict policy).
    #[must_use]
    pub fn with_durability(mut self, durability: DurabilityPolicy) -> Self {
        self.durability = durability;
        self
    }
}

/// Bounds for [`random_schedule`].
#[derive(Debug, Clone)]
pub struct RandomScheduleParams {
    /// Initial membership.
    pub members: Vec<u32>,
    /// Number of fault steps to generate.
    pub steps: usize,
    /// The guard the schedule will run under.
    pub guard: ReconfigGuard,
}

impl Default for RandomScheduleParams {
    fn default() -> Self {
        RandomScheduleParams {
            members: vec![1, 2, 3, 4, 5],
            steps: 12,
            guard: ReconfigGuard::all(),
        }
    }
}

/// Generates a seeded random [`FaultSchedule`]: a weighted mix of
/// partitions, asymmetric cuts, crash-restart churn, leader flaps,
/// message tampering, clock skew, reconfiguration churn, and client
/// traffic. The same `(params, seed)` always yields the same schedule.
///
/// Crash steps are bounded so that a majority of the initial membership
/// stays up: the generator explores degraded-but-live schedules, and the
/// quiesce phase the engine appends can always make progress.
#[must_use]
pub fn random_schedule(params: &RandomScheduleParams, seed: u64) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x006e_656d_6573_6973); // "nemesis"
    let n = params.members.len();
    let pick = |rng: &mut StdRng| params.members[rng.gen_range(0..n)];
    let mut crashed: Vec<u32> = Vec::new();
    // Leader-flap crashes target a node only known at runtime; they hold a
    // crash slot for the rest of the schedule (the engine's quiesce phase
    // recovers everyone). Disk damage (corruption, media wipe) holds a
    // slot permanently: a corrupted replica fail-stops and a wiped one
    // rejoins without voting rights, so either way it cannot help a
    // quorum again.
    let mut leader_crashes = 0usize;
    let mut permanent = 0usize;
    let max_crashed = (n - 1) / 2;
    let mut faults = Vec::with_capacity(params.steps + 1);
    for _ in 0..params.steps {
        match rng.gen_range(0..100u32) {
            // Partition into two random groups (always at least one node
            // per side).
            0..=11 => {
                let split = rng.gen_range(1..n);
                let mut shuffled = params.members.clone();
                use rand::seq::SliceRandom;
                shuffled.shuffle(&mut rng);
                faults.push(Fault::Partition {
                    groups: vec![shuffled[..split].to_vec(), shuffled[split..].to_vec()],
                });
            }
            12..=19 => {
                let (from, to) = (pick(&mut rng), pick(&mut rng));
                if from != to {
                    faults.push(Fault::CutOneWay { from, to });
                }
            }
            20..=29 => faults.push(Fault::HealAll),
            30..=35 => {
                let (from, to) = (pick(&mut rng), pick(&mut rng));
                if from != to {
                    faults.push(Fault::SetLinkLoss {
                        from,
                        to,
                        pct: rng.gen_range(10..80),
                    });
                }
            }
            36..=43 => {
                // Recoverable crash: plain (lose-tail) or an explicit
                // disk fault that still leaves the synced prefix usable.
                if crashed.len() + leader_crashes + permanent < max_crashed {
                    let nid = pick(&mut rng);
                    if !crashed.contains(&nid) {
                        crashed.push(nid);
                        faults.push(match rng.gen_range(0..3u32) {
                            0 => Fault::Crash { nid },
                            1 => Fault::CrashDisk {
                                nid,
                                fault: DiskFault::LoseTail,
                            },
                            _ => Fault::CrashDisk {
                                nid,
                                fault: DiskFault::TornTail {
                                    keep_bytes: rng.gen_range(1..64),
                                },
                            },
                        });
                    }
                }
            }
            44..=47 => {
                // Leader flap: kill the leader, elect a survivor.
                if crashed.len() + leader_crashes + permanent < max_crashed {
                    leader_crashes += 1;
                    faults.push(Fault::CrashLeader);
                    faults.push(Fault::Elect {
                        nid: pick(&mut rng),
                    });
                }
            }
            48..=55 => {
                if let Some(nid) = crashed.pop() {
                    faults.push(Fault::Recover { nid });
                }
            }
            56..=62 => faults.push(Fault::Elect {
                nid: pick(&mut rng),
            }),
            // Reconfiguration churn racing the client traffic below.
            63..=69 => faults.push(Fault::ReconfigRemove {
                nid: pick(&mut rng),
            }),
            70..=76 => faults.push(Fault::ReconfigAdd {
                nid: pick(&mut rng),
            }),
            77..=80 => faults.push(Fault::Duplicate {
                copies: rng.gen_range(1..6),
            }),
            81..=84 => faults.push(Fault::Reorder {
                window_us: rng.gen_range(500..8_000),
            }),
            85..=88 => faults.push(Fault::SkewTimeout {
                pct: rng.gen_range(25..400),
            }),
            89..=90 => {
                // Disk damage: silent corruption of a synced record, or
                // (rarely) total media loss. Either way the replica is
                // out of the voting population for good — corruption
                // fail-stops it, a wipe strips its voting rights — so it
                // holds a crash slot permanently.
                if crashed.len() + leader_crashes + permanent < max_crashed {
                    let nid = pick(&mut rng);
                    if !crashed.contains(&nid) {
                        permanent += 1;
                        let fault = if rng.gen_range(0..4u32) == 0 {
                            DiskFault::WipeAll
                        } else {
                            DiskFault::CorruptRecord {
                                record: rng.gen_range(0..12),
                                bit: rng.gen_range(0..256),
                            }
                        };
                        faults.push(Fault::CrashDisk { nid, fault });
                        faults.push(Fault::Recover { nid });
                    }
                }
            }
            91..=93 => faults.push(Fault::Idle {
                us: rng.gen_range(1_000..20_000),
            }),
            _ => faults.push(Fault::ClientBurst {
                writes: rng.gen_range(1..5),
            }),
        }
        // Keep traffic flowing through every campaign: a schedule with no
        // client ops exercises nothing. An occasional orphan write keeps
        // an unsynced tail in play for the disk faults above.
        if rng.gen_range(0..100) < 40 {
            faults.push(Fault::ClientBurst {
                writes: rng.gen_range(1..4),
            });
        }
        if rng.gen_range(0..100) < 8 {
            faults.push(Fault::OrphanWrite);
        }
    }
    FaultSchedule {
        name: format!("random-{seed}"),
        seed,
        members: params.members.clone(),
        guard: params.guard,
        durability: DurabilityPolicy::strict(),
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedules_are_deterministic_per_seed() {
        let params = RandomScheduleParams::default();
        assert_eq!(random_schedule(&params, 3), random_schedule(&params, 3));
        assert_ne!(
            random_schedule(&params, 3).faults,
            random_schedule(&params, 4).faults
        );
    }

    #[test]
    fn random_schedules_never_take_a_majority_out_of_action() {
        for seed in 0..50 {
            let schedule = random_schedule(&RandomScheduleParams::default(), seed);
            let mut down = std::collections::BTreeSet::new();
            // Leader flaps and disk damage never return to the voting
            // population within the schedule (the quiesce phase handles
            // flaps; corruption fail-stops; a wipe strips voting rights).
            let mut permanent = 0usize;
            let mut worst = 0usize;
            for fault in &schedule.faults {
                match fault {
                    Fault::Crash { nid } => {
                        down.insert(*nid);
                    }
                    Fault::CrashDisk { nid, fault } => match fault {
                        DiskFault::CorruptRecord { .. } | DiskFault::WipeAll => permanent += 1,
                        DiskFault::LoseTail | DiskFault::TornTail { .. } => {
                            down.insert(*nid);
                        }
                    },
                    Fault::CrashLeader => permanent += 1,
                    Fault::Recover { nid } => {
                        down.remove(nid);
                    }
                    _ => {}
                }
                worst = worst.max(down.len() + permanent);
            }
            assert!(worst <= 2, "seed {seed} took {worst} of 5 out of action");
        }
    }

    #[test]
    fn schedules_round_trip_through_json() {
        let schedule = random_schedule(&RandomScheduleParams::default(), 7);
        let json = serde_json::to_string(&schedule).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(schedule, back);
    }
}
