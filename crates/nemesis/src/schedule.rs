//! Fault schedules: the serializable language of adversarial campaigns.
//!
//! A [`FaultSchedule`] is a seed, an initial membership, a guard, and a
//! sequence of [`Fault`] steps. Everything is data — schedules round-trip
//! through JSON, replay deterministically, and shrink with the checker's
//! delta-debugging machinery, so a violating campaign is a *portable*
//! counterexample, not a flaky observation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use adore_core::ReconfigGuard;

/// One composable fault-injection step.
///
/// Node ids are raw `u32`s (not [`adore_core::NodeId`]) so schedules stay
/// trivially readable in their JSON form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Cut the directed link `from → to` (asymmetric partition onset).
    CutOneWay {
        /// Sending side of the cut link.
        from: u32,
        /// Receiving side of the cut link.
        to: u32,
    },
    /// Cut both directions between `a` and `b`.
    CutBothWays {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// Replace the current link state with a clean partition into groups:
    /// all previous cuts heal, then every cross-group link is cut.
    Partition {
        /// The partition groups (nodes not listed keep all their links).
        groups: Vec<Vec<u32>>,
    },
    /// Heal the directed link `from → to`.
    HealOneWay {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
    /// Heal every link and clear every per-link loss override.
    HealAll,
    /// Override the loss percentage of the directed link `from → to`.
    SetLinkLoss {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
        /// Loss percentage, clamped to 100.
        pct: u32,
    },
    /// Set the scalar background loss percentage for all links.
    SetLoss {
        /// Loss percentage.
        pct: u32,
    },
    /// Crash a replica (benign: its log persists).
    Crash {
        /// The replica to crash.
        nid: u32,
    },
    /// Crash whichever node currently leads (leader-targeted nemesis).
    CrashLeader,
    /// Recover a crashed replica.
    Recover {
        /// The replica to recover.
        nid: u32,
    },
    /// Start an election for `nid` (retried once on a term collision).
    Elect {
        /// The candidate.
        nid: u32,
    },
    /// Reconfigure to an explicit member set through the current leader.
    Reconfig {
        /// The target membership.
        members: Vec<u32>,
    },
    /// Reconfigure by adding one node to the leader's current config.
    ReconfigAdd {
        /// The node to add.
        nid: u32,
    },
    /// Reconfigure by removing one node from the leader's current config.
    ReconfigRemove {
        /// The node to remove.
        nid: u32,
    },
    /// Duplicate up to `copies` random in-flight messages.
    Duplicate {
        /// Number of duplicates to inject.
        copies: u32,
    },
    /// Re-jitter every in-flight arrival by up to `window_us`.
    Reorder {
        /// Reordering window in virtual microseconds.
        window_us: u64,
    },
    /// Skew the leader's retransmission timeout (100 = nominal).
    SkewTimeout {
        /// Scale in percent, clamped to `[10, 1000]` by the cluster.
        pct: u32,
    },
    /// Drive a burst of client writes through the robust client.
    ClientBurst {
        /// Number of writes.
        writes: u32,
    },
    /// Let the network drain for a stretch of virtual time.
    Idle {
        /// Duration in virtual microseconds.
        us: u64,
    },
}

/// A complete, replayable adversarial campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Human-readable campaign name (carried through reports).
    pub name: String,
    /// Seed for every random choice in the run (latencies, jitter,
    /// duplication picks — the whole campaign is a function of this).
    pub seed: u64,
    /// Initial cluster membership.
    pub members: Vec<u32>,
    /// The reconfiguration guard in force (ablations turn bits off).
    pub guard: ReconfigGuard,
    /// The fault steps, applied in order.
    pub faults: Vec<Fault>,
}

impl FaultSchedule {
    /// The same schedule under a different guard (e.g. to confirm that a
    /// violating ablation schedule is harmless under the sound guard).
    #[must_use]
    pub fn with_guard(mut self, guard: ReconfigGuard) -> Self {
        self.guard = guard;
        self
    }

    /// The same schedule with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Bounds for [`random_schedule`].
#[derive(Debug, Clone)]
pub struct RandomScheduleParams {
    /// Initial membership.
    pub members: Vec<u32>,
    /// Number of fault steps to generate.
    pub steps: usize,
    /// The guard the schedule will run under.
    pub guard: ReconfigGuard,
}

impl Default for RandomScheduleParams {
    fn default() -> Self {
        RandomScheduleParams {
            members: vec![1, 2, 3, 4, 5],
            steps: 12,
            guard: ReconfigGuard::all(),
        }
    }
}

/// Generates a seeded random [`FaultSchedule`]: a weighted mix of
/// partitions, asymmetric cuts, crash-restart churn, leader flaps,
/// message tampering, clock skew, reconfiguration churn, and client
/// traffic. The same `(params, seed)` always yields the same schedule.
///
/// Crash steps are bounded so that a majority of the initial membership
/// stays up: the generator explores degraded-but-live schedules, and the
/// quiesce phase the engine appends can always make progress.
#[must_use]
pub fn random_schedule(params: &RandomScheduleParams, seed: u64) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x006e_656d_6573_6973); // "nemesis"
    let n = params.members.len();
    let pick = |rng: &mut StdRng| params.members[rng.gen_range(0..n)];
    let mut crashed: Vec<u32> = Vec::new();
    // Leader-flap crashes target a node only known at runtime; they hold a
    // crash slot for the rest of the schedule (the engine's quiesce phase
    // recovers everyone).
    let mut leader_crashes = 0usize;
    let max_crashed = (n - 1) / 2;
    let mut faults = Vec::with_capacity(params.steps + 1);
    for _ in 0..params.steps {
        match rng.gen_range(0..100u32) {
            // Partition into two random groups (always at least one node
            // per side).
            0..=11 => {
                let split = rng.gen_range(1..n);
                let mut shuffled = params.members.clone();
                use rand::seq::SliceRandom;
                shuffled.shuffle(&mut rng);
                faults.push(Fault::Partition {
                    groups: vec![shuffled[..split].to_vec(), shuffled[split..].to_vec()],
                });
            }
            12..=19 => {
                let (from, to) = (pick(&mut rng), pick(&mut rng));
                if from != to {
                    faults.push(Fault::CutOneWay { from, to });
                }
            }
            20..=29 => faults.push(Fault::HealAll),
            30..=35 => {
                let (from, to) = (pick(&mut rng), pick(&mut rng));
                if from != to {
                    faults.push(Fault::SetLinkLoss {
                        from,
                        to,
                        pct: rng.gen_range(10..80),
                    });
                }
            }
            36..=43 => {
                if crashed.len() + leader_crashes < max_crashed {
                    let nid = pick(&mut rng);
                    if !crashed.contains(&nid) {
                        crashed.push(nid);
                        faults.push(Fault::Crash { nid });
                    }
                }
            }
            44..=47 => {
                // Leader flap: kill the leader, elect a survivor.
                if crashed.len() + leader_crashes < max_crashed {
                    leader_crashes += 1;
                    faults.push(Fault::CrashLeader);
                    faults.push(Fault::Elect {
                        nid: pick(&mut rng),
                    });
                }
            }
            48..=55 => {
                if let Some(nid) = crashed.pop() {
                    faults.push(Fault::Recover { nid });
                }
            }
            56..=62 => faults.push(Fault::Elect {
                nid: pick(&mut rng),
            }),
            // Reconfiguration churn racing the client traffic below.
            63..=69 => faults.push(Fault::ReconfigRemove {
                nid: pick(&mut rng),
            }),
            70..=76 => faults.push(Fault::ReconfigAdd {
                nid: pick(&mut rng),
            }),
            77..=80 => faults.push(Fault::Duplicate {
                copies: rng.gen_range(1..6),
            }),
            81..=84 => faults.push(Fault::Reorder {
                window_us: rng.gen_range(500..8_000),
            }),
            85..=88 => faults.push(Fault::SkewTimeout {
                pct: rng.gen_range(25..400),
            }),
            89..=93 => faults.push(Fault::Idle {
                us: rng.gen_range(1_000..20_000),
            }),
            _ => faults.push(Fault::ClientBurst {
                writes: rng.gen_range(1..5),
            }),
        }
        // Keep traffic flowing through every campaign: a schedule with no
        // client ops exercises nothing.
        if rng.gen_range(0..100) < 40 {
            faults.push(Fault::ClientBurst {
                writes: rng.gen_range(1..4),
            });
        }
    }
    FaultSchedule {
        name: format!("random-{seed}"),
        seed,
        members: params.members.clone(),
        guard: params.guard,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedules_are_deterministic_per_seed() {
        let params = RandomScheduleParams::default();
        assert_eq!(random_schedule(&params, 3), random_schedule(&params, 3));
        assert_ne!(
            random_schedule(&params, 3).faults,
            random_schedule(&params, 4).faults
        );
    }

    #[test]
    fn random_schedules_never_crash_a_majority() {
        for seed in 0..50 {
            let schedule = random_schedule(&RandomScheduleParams::default(), seed);
            let mut down = 0usize;
            let mut worst = 0usize;
            for fault in &schedule.faults {
                match fault {
                    Fault::Crash { .. } | Fault::CrashLeader => down += 1,
                    Fault::Recover { .. } => down = down.saturating_sub(1),
                    _ => {}
                }
                worst = worst.max(down);
            }
            assert!(worst <= 2, "seed {seed} crashed {worst} of 5");
        }
    }

    #[test]
    fn schedules_round_trip_through_json() {
        let schedule = random_schedule(&RandomScheduleParams::default(), 7);
        let json = serde_json::to_string(&schedule).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(schedule, back);
    }
}
