//! A thin nemesis harness over the network-level model.
//!
//! [`NetHarness`] drives [`adore_raft::NetState`] directly — no virtual
//! clock, no latency model — delivering every broadcast request to the
//! members of its shipped configuration through a [`LinkMatrix`]-gated
//! [`NetState::deliver_via`] fixpoint pump. It understands the
//! *structural* subset of [`Fault`]s (partitions, crashes, elections,
//! reconfigurations, client traffic); timing faults (loss percentages,
//! duplication, reordering, clock skew, idling) are no-ops here, because
//! the untimed model already quantifies over all delivery orders.
//!
//! The point of the adapter is cross-validation: an ablation schedule
//! that diverges in the latency-simulated [`adore_kv::Cluster`] should
//! diverge at the network level too, and the sound guard should protect
//! both. Running the same `FaultSchedule` against both backends keeps the
//! nemesis honest about which layer a violation lives in.

use std::collections::BTreeSet;

use adore_core::{Configuration, NodeId, ReconfigGuard};
use adore_kv::LinkMatrix;
use adore_raft::{
    effective_config, EventOutcome, MsgId, NetEvent, NetState, Rejection, Request, Role,
};
use adore_schemes::SingleNode;

use crate::schedule::{Fault, FaultSchedule};

/// The network-level fault harness: a [`NetState`] plus a link matrix and
/// the delivery bookkeeping that turns the sent-message bag into a
/// broadcast network.
#[derive(Debug)]
pub struct NetHarness {
    st: NetState<SingleNode, String>,
    links: LinkMatrix,
    /// Every node id the harness has ever seen (initial members plus
    /// reconfiguration targets): the candidate recipient set.
    nodes: BTreeSet<NodeId>,
    /// Deliveries that are finished: applied with the ack path up, or
    /// rejected for a reason that cannot heal (stale term, outdated log).
    /// Unreachable and crashed-recipient deliveries stay retryable.
    done: BTreeSet<(u32, NodeId)>,
    /// Client write sequence for burst payloads.
    seq: u32,
}

impl NetHarness {
    /// Creates a harness over `members` with `guard` in force.
    #[must_use]
    pub fn new(members: &[u32], guard: ReconfigGuard) -> Self {
        let nodes: BTreeSet<NodeId> = members.iter().map(|&n| NodeId(n)).collect();
        NetHarness {
            st: NetState::new(SingleNode::from_set(nodes.iter().copied().collect()), guard),
            links: LinkMatrix::new(),
            nodes,
            done: BTreeSet::new(),
            seq: 0,
        }
    }

    /// The underlying network state.
    #[must_use]
    pub fn state(&self) -> &NetState<SingleNode, String> {
        &self.st
    }

    /// The link matrix (mutable, for direct experiments).
    pub fn links_mut(&mut self) -> &mut LinkMatrix {
        &mut self.links
    }

    /// The acting leader: the non-crashed leader with the largest term.
    #[must_use]
    pub fn leader(&self) -> Option<NodeId> {
        self.st
            .servers()
            .filter(|(_, s)| !s.crashed && s.role == Role::Leader)
            .max_by_key(|(_, s)| s.time)
            .map(|(nid, _)| nid)
    }

    /// Network-level log safety over all servers.
    ///
    /// # Errors
    ///
    /// The pair of servers whose committed prefixes disagree.
    pub fn check(&self) -> Result<(), (NodeId, NodeId)> {
        self.st.check_log_safety()
    }

    /// Delivers every sent request to every member of its shipped
    /// configuration, through the link matrix, to a fixpoint. Finished
    /// deliveries are remembered; ack-suppressed and unreachable ones are
    /// retried by later pumps (the model's stand-in for retransmission).
    ///
    /// Returns the number of applied deliveries.
    pub fn pump(&mut self) -> usize {
        let mut applied = 0;
        loop {
            let mut progress = false;
            let links = self.links.clone();
            let reach = |a: NodeId, b: NodeId| !links.is_cut(a, b);
            for m in 0..self.st.messages().len() {
                let msg = MsgId(u32::try_from(m).expect("message table fits in u32"));
                let (from, targets) = {
                    let req = self.st.message(msg).expect("indexed");
                    (req.from(), self.targets_of(req))
                };
                for to in targets {
                    if to == from || self.done.contains(&(msg.0, to)) {
                        continue;
                    }
                    match self.st.deliver_via(msg, to, &reach) {
                        EventOutcome::Applied => {
                            applied += 1;
                            // An applied delivery whose ack path was down
                            // stays open: the sender retransmits until it
                            // hears back.
                            if reach(to, from) {
                                self.done.insert((msg.0, to));
                                progress = true;
                            }
                        }
                        EventOutcome::Rejected(
                            Rejection::StaleTime | Rejection::OutdatedLog,
                        ) => {
                            // Terms and log up-to-dateness only grow:
                            // these rejections cannot heal.
                            self.done.insert((msg.0, to));
                        }
                        _ => {}
                    }
                }
            }
            if !progress {
                break;
            }
        }
        applied
    }

    /// The recipients of a request: the members of the configuration in
    /// effect at the end of its shipped log (what the sender believed its
    /// cluster was at broadcast time).
    fn targets_of(&self, req: &Request<SingleNode, String>) -> Vec<NodeId> {
        let (Request::Elect { log, .. } | Request::Commit { log, .. }) = req;
        effective_config(self.st.conf0(), log).members().into_iter().collect()
    }

    /// Applies one fault at the network level. Returns `false` for faults
    /// that have no meaning in the untimed model (loss percentages,
    /// duplication, reordering, skew, idling) — the delivery pump already
    /// quantifies over those behaviors.
    pub fn apply(&mut self, fault: &Fault) -> bool {
        match fault {
            Fault::CutOneWay { from, to } => {
                self.links.cut_one_way(NodeId(*from), NodeId(*to));
            }
            Fault::CutBothWays { a, b } => {
                self.links.cut_both_ways(NodeId(*a), NodeId(*b));
            }
            Fault::Partition { groups } => {
                self.links.heal_all();
                let groups: Vec<Vec<NodeId>> = groups
                    .iter()
                    .map(|g| g.iter().map(|&n| NodeId(n)).collect())
                    .collect();
                let refs: Vec<&[NodeId]> = groups.iter().map(Vec::as_slice).collect();
                self.links.partition(&refs);
            }
            Fault::HealOneWay { from, to } => {
                self.links.heal_one_way(NodeId(*from), NodeId(*to));
                self.pump();
            }
            Fault::HealAll => {
                self.links.heal_all();
                self.pump();
            }
            Fault::Crash { nid } => {
                self.st.step(&NetEvent::Crash { nid: NodeId(*nid) });
            }
            Fault::CrashLeader => {
                if let Some(nid) = self.leader() {
                    self.st.step(&NetEvent::Crash { nid });
                }
            }
            Fault::Recover { nid } => {
                self.st.step(&NetEvent::Recover { nid: NodeId(*nid) });
                self.pump();
            }
            Fault::Elect { nid } => self.elect(NodeId(*nid)),
            Fault::Reconfig { members } => {
                self.reconfig(SingleNode::new(members.iter().copied()));
            }
            Fault::ReconfigAdd { nid } => {
                if let Some(leader) = self.leader() {
                    if let Some(config) = self.st.config_of(leader) {
                        self.reconfig(config.with(NodeId(*nid)));
                    }
                }
            }
            Fault::ReconfigRemove { nid } => {
                if let Some(leader) = self.leader() {
                    if let Some(config) = self.st.config_of(leader) {
                        if config.members().len() > 1 {
                            self.reconfig(config.without(NodeId(*nid)));
                        }
                    }
                }
            }
            Fault::ClientBurst { writes } => {
                for _ in 0..*writes {
                    self.put();
                }
            }
            // A paused node is fully isolated at the untimed level; a
            // resume heals its links (and pumps the retransmissions).
            Fault::Pause { nid } => {
                let nid = NodeId(*nid);
                let peers: Vec<NodeId> =
                    self.nodes.iter().copied().filter(|m| *m != nid).collect();
                self.links.isolate(nid, peers);
            }
            Fault::Resume { nid } => {
                let nid = NodeId(*nid);
                let peers: Vec<NodeId> =
                    self.nodes.iter().copied().filter(|m| *m != nid).collect();
                for m in peers {
                    self.links.heal_both_ways(nid, m);
                }
                self.pump();
            }
            // Disk faults and orphan writes are storage-layer behaviors:
            // the untimed model has no WAL (its crashes are benign), so
            // they have no meaning here — like the timing faults below.
            // Wire-level corruption/reset/stall faults refine to loss,
            // transient cuts, and delay, which the delivery pump already
            // quantifies over.
            Fault::CrashDisk { .. }
            | Fault::OrphanWrite
            | Fault::SetLinkLoss { .. }
            | Fault::SetLoss { .. }
            | Fault::Duplicate { .. }
            | Fault::Reorder { .. }
            | Fault::SkewTimeout { .. }
            | Fault::Idle { .. }
            | Fault::CorruptLink { .. }
            | Fault::ResetLink { .. }
            | Fault::SlowLink { .. } => return false,
        }
        true
    }

    /// Starts an election for `nid` and pumps; retries once at a fresh
    /// term if the candidacy loses to a term collision (the same
    /// randomized-timeout re-candidacy the engine grants).
    fn elect(&mut self, nid: NodeId) {
        for _ in 0..2 {
            self.st.step(&NetEvent::Elect { nid });
            self.pump();
            if self.st.server(nid).is_some_and(|s| s.role == Role::Leader) {
                break;
            }
        }
    }

    /// Proposes `config` through the acting leader and replicates.
    fn reconfig(&mut self, config: SingleNode) {
        self.nodes.extend(config.members());
        let Some(leader) = self.leader() else {
            return;
        };
        if self
            .st
            .step(&NetEvent::Reconfig { nid: leader, config })
            .applied()
        {
            self.st.step(&NetEvent::Commit { nid: leader });
            self.pump();
        }
    }

    /// One client write through the acting leader.
    fn put(&mut self) {
        let Some(leader) = self.leader() else {
            return;
        };
        self.seq += 1;
        let method = format!("w{}", self.seq);
        if self
            .st
            .step(&NetEvent::Invoke {
                nid: leader,
                method,
            })
            .applied()
        {
            self.st.step(&NetEvent::Commit { nid: leader });
            self.pump();
        }
    }

    /// Heals everything, recovers everyone, drains the network, and
    /// pushes one committed write through a (re-elected if necessary)
    /// leader — the net-level quiesce phase.
    pub fn quiesce(&mut self) {
        self.links.heal_all();
        let nodes: Vec<NodeId> = self.nodes.iter().copied().collect();
        for nid in &nodes {
            self.st.step(&NetEvent::Recover { nid: *nid });
        }
        self.pump();
        if self.leader().is_none() {
            for nid in nodes {
                self.elect(nid);
                if self.leader().is_some() {
                    break;
                }
            }
        }
        self.put();
    }

    /// Runs a whole schedule: boot-elects the lowest member, applies every
    /// fault with a safety check after each, then quiesces and checks one
    /// last time.
    ///
    /// # Errors
    ///
    /// The first committed-prefix divergence found.
    pub fn run(schedule: &FaultSchedule) -> Result<(), (NodeId, NodeId)> {
        let mut harness = NetHarness::new(&schedule.members, schedule.guard);
        if let Some(&first) = schedule.members.iter().min() {
            harness.elect(NodeId(first));
        }
        for fault in &schedule.faults {
            harness.apply(fault);
            harness.check()?;
        }
        harness.quiesce();
        harness.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scripted::ablation_suite;

    #[test]
    fn a_healthy_run_commits_through_the_pump() {
        let mut h = NetHarness::new(&[1, 2, 3], ReconfigGuard::all());
        h.elect(NodeId(1));
        assert_eq!(h.leader(), Some(NodeId(1)));
        h.apply(&Fault::ClientBurst { writes: 3 });
        assert_eq!(h.state().committed_prefix().len(), 3);
        h.check().unwrap();
    }

    #[test]
    fn ablation_schedules_diverge_at_the_network_level_too() {
        for (label, schedule) in ablation_suite() {
            assert!(
                NetHarness::run(&schedule).is_err(),
                "{label}: no net-level divergence"
            );
        }
    }

    #[test]
    fn the_sound_guard_protects_the_network_level_too() {
        for (label, schedule) in ablation_suite() {
            let sound = schedule.with_guard(ReconfigGuard::all());
            assert!(
                NetHarness::run(&sound).is_ok(),
                "{label}: net-level divergence under the sound guard"
            );
        }
    }

    #[test]
    fn asymmetric_cuts_suppress_acks_but_not_payloads() {
        let mut h = NetHarness::new(&[1, 2, 3], ReconfigGuard::all());
        h.elect(NodeId(1));
        // Cut every ack path back to the leader: payloads land, acks die.
        h.links_mut().cut_one_way(NodeId(2), NodeId(1));
        h.links_mut().cut_one_way(NodeId(3), NodeId(1));
        h.apply(&Fault::ClientBurst { writes: 1 });
        let s1 = h.state().server(NodeId(1)).unwrap();
        assert_eq!(s1.commit_len, 0, "no quorum without ack paths");
        assert_eq!(
            h.state().server(NodeId(2)).unwrap().log.len(),
            1,
            "the payload still landed"
        );
        // Healing and pumping lets retransmission finish the commit.
        h.apply(&Fault::HealAll);
        assert_eq!(h.state().server(NodeId(1)).unwrap().commit_len, 1);
        h.check().unwrap();
    }
}
