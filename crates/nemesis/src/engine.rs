//! The fault-injection engine: schedules in, verdicts out.
//!
//! [`run_schedule`] interprets a [`FaultSchedule`] against a simulated
//! [`Cluster`], driving client traffic through the [`RobustClient`] and
//! running the safety suite — committed-prefix agreement
//! (`check_log_safety`) and read-your-committed-writes — after **every
//! phase** and again after a final quiesce (heal everything, recover
//! everyone, drain the network). A campaign that survives quiesce-time
//! checks is genuinely safe for that schedule, not merely
//! not-yet-caught.
//!
//! When a check fails, [`hunt`] turns the run into a [`Counterexample`]:
//! the schedule is minimized with the checker's delta-debugging core
//! ([`adore_checker::shrink_sequence`]) and serialized — a portable,
//! deterministically replayable witness.

use serde::{de, value, Deserialize, Serialize, Value};

use adore_core::NodeId;
use adore_kv::{Cluster, KvCommand, LatencyModel};
use adore_obs::{EventKind, TraceEvent};
use adore_schemes::SingleNode;
use adore_storage::StorageViolation;

use crate::client::{ClientParams, OpOutcome, RobustClient, ViolationKind};
use crate::schedule::{Fault, FaultSchedule};

/// Engine knobs (everything else comes from the schedule).
#[derive(Debug, Clone, Default)]
pub struct EngineParams {
    /// The simulated network's latency model.
    pub latency: LatencyModel,
    /// Client-side robustness parameters.
    pub client: ClientParams,
    /// Run the storage certification checker: at every ack point, assert
    /// the acked state is a projection of the synced WAL mirror; at every
    /// recovery, assert the installed state is exactly the replay.
    pub certify_storage: bool,
}

/// Per-phase client statistics — one row per fault step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Debug rendering of the fault applied in this phase.
    pub fault: String,
    /// Client operations attempted during the phase.
    pub attempted: u32,
    /// Operations acknowledged.
    pub acked: u32,
    /// Operations that timed out.
    pub timed_out: u32,
    /// Operations that found no leader.
    pub no_leader: u32,
    /// Operations rejected by the protocol.
    pub rejected: u32,
    /// Mean acknowledged latency in virtual microseconds (0 if none).
    pub mean_latency_us: u64,
}

/// The client's-eye view of the campaign: how availability degraded and
/// recovered, phase by phase.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedReport {
    /// One stat row per phase (fault step), in order.
    pub phases: Vec<PhaseStat>,
}

impl DegradedReport {
    /// Fraction of attempted operations acknowledged in phase `i`
    /// (1.0 for a phase with no traffic).
    #[must_use]
    pub fn availability(&self, i: usize) -> f64 {
        let p = &self.phases[i];
        if p.attempted == 0 {
            1.0
        } else {
            f64::from(p.acked) / f64::from(p.attempted)
        }
    }

    /// Total acknowledged operations across the campaign.
    #[must_use]
    pub fn total_acked(&self) -> u32 {
        self.phases.iter().map(|p| p.acked).sum()
    }

    /// Total attempted operations across the campaign.
    #[must_use]
    pub fn total_attempted(&self) -> u32 {
        self.phases.iter().map(|p| p.attempted).sum()
    }
}

/// Outcome of one campaign.
#[derive(Debug, Clone)]
pub struct NemesisReport {
    /// Per-phase availability and latency.
    pub degraded: DegradedReport,
    /// The first safety violation and the phase index where the checks
    /// caught it (`phases.len()` means the quiesce-time check).
    pub violation: Option<(ViolationKind, usize)>,
    /// Entries in the cluster-wide committed prefix at the end.
    pub committed_entries: usize,
    /// Total client operations recorded.
    pub history_len: usize,
    /// WAL records journaled across all replicas.
    pub wal_records: usize,
    /// WAL syncs issued across all replicas.
    pub wal_syncs: usize,
    /// WAL bytes written across all replicas.
    pub wal_bytes: usize,
}

impl NemesisReport {
    /// Whether the campaign completed with every check passing.
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.violation.is_none()
    }
}

/// A minimized, serializable, deterministically replayable witness of a
/// safety violation.
#[must_use]
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The minimized schedule — replaying it reproduces the violation.
    pub schedule: FaultSchedule,
    /// The violation the replay produces.
    pub violation: ViolationKind,
    /// Fault count of the schedule before minimization.
    pub original_faults: usize,
    /// JSONL trace journal of the witness replay, when one was captured
    /// — feed it to `adore-obs --audit` to certify that the trace alone
    /// reproduces the violation verdict.
    pub trace: Option<String>,
}

// Hand-written serde: counterexamples minted before the observability
// subsystem carry no "trace" key, and those witnesses must stay
// loadable — a missing key deserializes to `None`, and `None`
// serializes to no key at all, so untraced counterexamples keep their
// exact legacy JSON form.
impl Serialize for Counterexample {
    fn ser_value(&self) -> Value {
        let mut fields = vec![
            ("schedule".to_string(), self.schedule.ser_value()),
            ("violation".to_string(), self.violation.ser_value()),
            (
                "original_faults".to_string(),
                self.original_faults.ser_value(),
            ),
        ];
        if let Some(trace) = &self.trace {
            fields.push(("trace".to_string(), trace.ser_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for Counterexample {
    fn deser_value(v: &Value) -> Result<Self, de::Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| de::Error::custom(format!("expected object, found {}", v.kind())))?;
        let trace = match pairs.iter().find(|(k, _)| k == "trace") {
            Some((_, v)) => Some(String::deser_value(v)?),
            None => None,
        };
        Ok(Counterexample {
            schedule: FaultSchedule::deser_value(value::get_field(pairs, "schedule")?)?,
            violation: ViolationKind::deser_value(value::get_field(pairs, "violation")?)?,
            original_faults: usize::deser_value(value::get_field(pairs, "original_faults")?)?,
            trace,
        })
    }
}

fn members_of(schedule: &FaultSchedule) -> Vec<NodeId> {
    schedule.members.iter().map(|&n| NodeId(n)).collect()
}

/// Applies one fault step; client traffic goes through `client`.
/// `members` is the schedule's initial membership (used to enumerate a
/// paused node's links).
fn apply_fault(
    cluster: &mut Cluster<SingleNode>,
    client: &mut RobustClient,
    fault: &Fault,
    members: &[NodeId],
    write_seq: &mut u64,
) {
    match fault {
        Fault::CutOneWay { from, to } => {
            cluster.links_mut().cut_one_way(NodeId(*from), NodeId(*to));
        }
        Fault::CutBothWays { a, b } => {
            cluster.links_mut().cut_both_ways(NodeId(*a), NodeId(*b));
        }
        Fault::Partition { groups } => {
            cluster.links_mut().heal_all();
            let groups: Vec<Vec<NodeId>> = groups
                .iter()
                .map(|g| g.iter().map(|&n| NodeId(n)).collect())
                .collect();
            let refs: Vec<&[NodeId]> = groups.iter().map(Vec::as_slice).collect();
            cluster.links_mut().partition(&refs);
        }
        Fault::HealOneWay { from, to } => {
            cluster.links_mut().heal_one_way(NodeId(*from), NodeId(*to));
        }
        Fault::HealAll => cluster.links_mut().heal_all(),
        Fault::SetLinkLoss { from, to, pct } => {
            cluster
                .links_mut()
                .set_drop_pct(NodeId(*from), NodeId(*to), *pct);
        }
        Fault::SetLoss { pct } => cluster.latency_mut().drop_pct = (*pct).min(100),
        Fault::Crash { nid } => cluster.fail(NodeId(*nid)),
        Fault::CrashDisk { nid, fault } => cluster.fail_with(NodeId(*nid), fault),
        Fault::OrphanWrite => {
            // Never acked and never replicated: the canonical unsynced
            // WAL tail for the torn-write faults to bite on. The value
            // shares the global sequence so it stays unique, but the key
            // lives outside the client's rotating key space — the ghost
            // must never be obliged to explain it.
            let value = format!("orphan{}", *write_seq);
            *write_seq += 1;
            cluster.orphan_append(KvCommand::put("orphan", &value));
        }
        Fault::CrashLeader => {
            if let Some(leader) = cluster.leader() {
                cluster.fail(leader);
            }
        }
        Fault::Recover { nid } => cluster.recover(NodeId(*nid)),
        Fault::Elect { nid } => {
            // One retry absorbs a term collision (a voter that already
            // voted at the candidate's new term).
            if cluster.elect(NodeId(*nid)).is_err() && cluster.leader() != Some(NodeId(*nid)) {
                let _ = cluster.elect(NodeId(*nid));
            }
        }
        Fault::Reconfig { members } => {
            let _ = cluster.reconfigure(SingleNode::new(members.iter().copied()));
        }
        Fault::ReconfigAdd { nid } => {
            if let Some(current) = cluster.leader().and_then(|l| cluster.net().config_of(l)) {
                let _ = cluster.reconfigure(current.with(NodeId(*nid)));
            }
        }
        Fault::ReconfigRemove { nid } => {
            if let Some(current) = cluster.leader().and_then(|l| cluster.net().config_of(l)) {
                use adore_core::Configuration;
                // Never shrink to an empty configuration (no quorum could
                // ever form again — a dead campaign, not an interesting one).
                if current.members().len() > 1 {
                    let _ = cluster.reconfigure(current.without(NodeId(*nid)));
                }
            }
        }
        Fault::Duplicate { copies } => cluster.duplicate_in_flight(*copies as usize),
        Fault::Reorder { window_us } => cluster.reorder_in_flight(*window_us),
        Fault::SkewTimeout { pct } => cluster.set_timeout_scale_pct(*pct),
        Fault::ClientBurst { writes } => {
            for _ in 0..*writes {
                // A small rotating key space exercises overwrites; values
                // are globally unique so the ghost can tell writes apart.
                let key = format!("key{}", *write_seq % 8);
                let value = format!("v{}", *write_seq);
                *write_seq += 1;
                client.put(cluster, &key, &value);
            }
        }
        Fault::Idle { us } => cluster.run_idle(*us),
        // The sim twins of the wire-level faults (see DESIGN §12 for
        // the refinement argument fault by fault).
        Fault::Pause { nid } => {
            // A paused process neither sends nor receives: full
            // isolation at message granularity.
            cluster
                .links_mut()
                .isolate(NodeId(*nid), members.iter().copied().filter(|m| m.0 != *nid));
        }
        Fault::Resume { nid } => {
            for m in members.iter().filter(|m| m.0 != *nid) {
                cluster.links_mut().heal_both_ways(NodeId(*nid), *m);
            }
        }
        Fault::CorruptLink { from, to, pct } => {
            // Every corrupted frame fails the receiver's crc and is
            // dropped, so corruption refines to link loss.
            cluster
                .links_mut()
                .set_drop_pct(NodeId(*from), NodeId(*to), *pct);
        }
        Fault::ResetLink { from, to } => {
            // The wire runtime reconnects and retransmits full state: a
            // reset is a cut that immediately heals.
            cluster.links_mut().cut_one_way(NodeId(*from), NodeId(*to));
            cluster.links_mut().heal_one_way(NodeId(*from), NodeId(*to));
        }
        Fault::SlowLink { .. } => {
            // Mid-frame stalls delay whole messages: a reordering
            // window (liveness-only; safety is delay-oblivious).
            cluster.reorder_in_flight(2_000);
        }
    }
}

/// Runs the safety suite: committed-prefix agreement first, then the
/// storage certification ledger, then the client's
/// read-your-committed-writes obligation. When the cluster is tracing,
/// every check's outcome is journaled as an invariant-evaluation event
/// (the trace auditor cross-checks these against its own reconstruction).
fn check_safety(cluster: &mut Cluster<SingleNode>, client: &RobustClient) -> Option<ViolationKind> {
    let log = cluster.verify().err();
    let storage = cluster.storage_violations().first().cloned();
    let reads = client.check_reads(cluster).err();
    if cluster.tracing() {
        for (name, ok) in [
            ("committed-prefix-agreement", log.is_none()),
            ("storage-certification", storage.is_none()),
            ("read-your-writes", reads.is_none()),
        ] {
            cluster.trace(EventKind::InvariantEval {
                name: name.to_string(),
                ok,
            });
        }
    }
    if let Some((a, b)) = log {
        return Some(ViolationKind::LogDivergence { a: a.0, b: b.0 });
    }
    if let Some(v) = storage {
        return Some(match v {
            StorageViolation::AckNotDurable { nid } => ViolationKind::AckNotDurable { nid },
            StorageViolation::UnfaithfulRecovery { nid } => {
                ViolationKind::UnfaithfulRecovery { nid }
            }
        });
    }
    reads
}

fn phase_stat(fault: &Fault, client: &RobustClient, history_mark: usize) -> PhaseStat {
    let ops = &client.history[history_mark..];
    let mut stat = PhaseStat {
        fault: format!("{fault:?}"),
        attempted: ops.len() as u32,
        acked: 0,
        timed_out: 0,
        no_leader: 0,
        rejected: 0,
        mean_latency_us: 0,
    };
    let mut total_latency = 0u64;
    for op in ops {
        match &op.outcome {
            OpOutcome::Acked { latency_us } => {
                stat.acked += 1;
                total_latency += latency_us;
            }
            OpOutcome::TimedOut => stat.timed_out += 1,
            OpOutcome::NoLeader => stat.no_leader += 1,
            OpOutcome::Rejected => stat.rejected += 1,
        }
    }
    if stat.acked > 0 {
        stat.mean_latency_us = total_latency / u64::from(stat.acked);
    }
    stat
}

/// Interprets `schedule` from a fresh cluster and returns the campaign
/// report. Deterministic: the same schedule (and engine parameters)
/// always produces the same report.
#[must_use]
pub fn run_schedule(schedule: &FaultSchedule, params: &EngineParams) -> NemesisReport {
    run_campaign(schedule, params, false).0
}

/// [`run_schedule`] with the observability layer on: the whole campaign
/// is journaled as a causal trace (run/phase markers, fault injections,
/// every message and state delta of the simulation, client operations,
/// invariant evaluations, and the final verdict). The trace is the
/// input to `adore-obs --audit`, which must reproduce the report's
/// verdict from the journal alone. Tracing never perturbs the run: the
/// report equals [`run_schedule`]'s bit for bit.
#[must_use]
pub fn run_schedule_traced(
    schedule: &FaultSchedule,
    params: &EngineParams,
) -> (NemesisReport, Vec<TraceEvent>) {
    run_campaign(schedule, params, true)
}

fn run_campaign(
    schedule: &FaultSchedule,
    params: &EngineParams,
    traced: bool,
) -> (NemesisReport, Vec<TraceEvent>) {
    let members = members_of(schedule);
    let conf0 = SingleNode::new(schedule.members.iter().copied());
    let mut cluster = Cluster::with_guard(
        conf0,
        schedule.guard,
        params.latency.clone(),
        schedule.seed,
    );
    cluster.set_durability(schedule.durability);
    cluster.set_certify_storage(params.certify_storage);
    cluster.set_tracing(traced);
    if traced {
        cluster.trace(EventKind::RunStart {
            name: schedule.name.clone(),
            members: schedule.members.clone(),
        });
    }
    let mut client = RobustClient::new(params.client.clone(), schedule.seed);
    let mut write_seq = 0u64;

    // Boot: elect the lowest member so every schedule starts from a
    // serving cluster.
    if let Some(&first) = members.first() {
        let _ = cluster.elect(first);
    }

    let mut degraded = DegradedReport::default();
    let mut violation = None;
    for (i, fault) in schedule.faults.iter().enumerate() {
        if traced {
            cluster.trace(EventKind::PhaseStart {
                index: i as u32,
                label: format!("{fault:?}"),
            });
            cluster.trace(EventKind::FaultInject {
                fault: serde_json::to_string(fault).unwrap_or_default(),
            });
        }
        let mark = client.history.len();
        apply_fault(&mut cluster, &mut client, fault, &members, &mut write_seq);
        degraded.phases.push(phase_stat(fault, &client, mark));
        if let Some(v) = check_safety(&mut cluster, &client) {
            violation = Some((v, i));
            break;
        }
    }

    // Quiesce: heal everything, recover everyone, re-establish a leader,
    // drain, push a final burst through, and check once more. Violations
    // that only manifest after the partition heals (the classic
    // reconfiguration bugs) surface here.
    if violation.is_none() {
        if traced {
            cluster.trace(EventKind::PhaseStart {
                index: schedule.faults.len() as u32,
                label: "quiesce".to_string(),
            });
            cluster.trace(EventKind::Heal);
        }
        cluster.links_mut().heal_all();
        cluster.latency_mut().drop_pct = 0;
        cluster.set_timeout_scale_pct(100);
        for &nid in &members {
            cluster.recover(nid);
        }
        cluster.run_idle(50_000);
        if cluster.adopt_leader().is_none() {
            for &nid in &members {
                if cluster.elect(nid).is_ok() {
                    break;
                }
            }
        }
        let mark = client.history.len();
        for _ in 0..3 {
            let key = format!("key{}", write_seq % 8);
            let value = format!("v{write_seq}");
            write_seq += 1;
            client.put(&mut cluster, &key, &value);
        }
        cluster.run_idle(50_000);
        let mut stat = phase_stat(&Fault::HealAll, &client, mark);
        stat.fault = "quiesce".into();
        degraded.phases.push(stat);
        violation = check_safety(&mut cluster, &client).map(|v| (v, schedule.faults.len()));
    }

    let (wal_records, wal_syncs, wal_bytes) = cluster.wal_traffic();
    let committed_entries = cluster.net().committed_prefix().len();
    if traced {
        cluster.trace(EventKind::Verdict {
            safe: violation.is_none(),
            kind: violation.as_ref().map(|(v, _)| v.tag().to_string()),
            detail: violation.as_ref().map(|(v, _)| v.to_string()),
            phase: violation
                .as_ref()
                .map_or(schedule.faults.len() as u32, |(_, i)| *i as u32),
        });
        cluster.trace(EventKind::RunEnd {
            committed: committed_entries as u64,
        });
    }
    let report = NemesisReport {
        degraded,
        violation,
        committed_entries,
        history_len: client.history.len(),
        wal_records,
        wal_syncs,
        wal_bytes,
    };
    (report, cluster.take_trace())
}

/// Replays a schedule and returns the violation it produces, if any —
/// the predicate behind minimization and the round-trip tests.
#[must_use]
pub fn replay(schedule: &FaultSchedule, params: &EngineParams) -> Option<ViolationKind> {
    run_schedule(schedule, params).violation.map(|(v, _)| v)
}

/// Runs a campaign and, on violation, minimizes the schedule with the
/// checker's delta-debugging core into a replayable [`Counterexample`].
///
/// Minimization preserves the violation's *kind*: a witness of a
/// committed-prefix divergence stays one, rather than drifting to
/// whatever smaller violation some sub-schedule happens to produce.
#[must_use]
pub fn hunt(schedule: &FaultSchedule, params: &EngineParams) -> Option<Counterexample> {
    let (original, _) = run_schedule(schedule, params).violation?;
    let kind = std::mem::discriminant(&original);
    let minimal_faults = adore_checker::shrink_sequence(&schedule.faults, &mut |faults| {
        let candidate = FaultSchedule {
            faults: faults.to_vec(),
            ..schedule.clone()
        };
        replay(&candidate, params).is_some_and(|v| std::mem::discriminant(&v) == kind)
    });
    let minimized = FaultSchedule {
        faults: minimal_faults,
        ..schedule.clone()
    };
    // The shrinker's predicate accepted every kept sub-schedule, so the
    // minimized schedule replays the violation — but a hunt must not
    // panic on that assumption (L2): if it somehow fails to replay,
    // fall back to the unminimized schedule, which is known to violate.
    let (witness, violation) = match replay(&minimized, params) {
        Some(v) => (minimized, v),
        None => (schedule.clone(), original),
    };
    // Replay the witness once more with the observability layer on: the
    // embedded trace lets `adore-obs --audit` certify, from the journal
    // alone, that the witness really produces its claimed verdict.
    let (_, events) = run_schedule_traced(&witness, params);
    let trace = if events.is_empty() {
        None
    } else {
        Some(adore_obs::to_jsonl(&events))
    };
    Some(Counterexample {
        schedule: witness,
        violation,
        original_faults: schedule.faults.len(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{random_schedule, RandomScheduleParams};
    use adore_core::ReconfigGuard;
    use adore_storage::DurabilityPolicy;

    #[test]
    fn a_quiet_schedule_is_safe_and_available() {
        let schedule = FaultSchedule {
            name: "quiet".into(),
            seed: 1,
            members: vec![1, 2, 3],
            guard: ReconfigGuard::all(),
            durability: DurabilityPolicy::strict(),
            faults: vec![Fault::ClientBurst { writes: 5 }],
        };
        let report = run_schedule(&schedule, &EngineParams::default());
        assert!(report.is_safe());
        assert_eq!(report.degraded.phases[0].acked, 5);
        assert!((report.degraded.availability(0) - 1.0).abs() < f64::EPSILON);
        assert!(report.committed_entries >= 5);
    }

    #[test]
    fn random_campaigns_under_the_sound_guard_stay_safe() {
        let params = RandomScheduleParams::default();
        let engine = EngineParams {
            certify_storage: true,
            ..EngineParams::default()
        };
        for seed in 0..8 {
            let schedule = random_schedule(&params, seed);
            let report = run_schedule(&schedule, &engine);
            assert!(
                report.is_safe(),
                "seed {seed}: {:?}",
                report.violation
            );
        }
    }

    #[test]
    fn campaign_reports_are_deterministic() {
        let schedule = random_schedule(&RandomScheduleParams::default(), 17);
        let a = run_schedule(&schedule, &EngineParams::default());
        let b = run_schedule(&schedule, &EngineParams::default());
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.committed_entries, b.committed_entries);
    }
}
