//! Hand-crafted adversarial schedules targeting each guard ablation.
//!
//! Each schedule is safe under the sound guard (`ReconfigGuard::all()`)
//! and drives the corresponding flawed variant into a committed-prefix
//! divergence — the network-and-latency-level re-enactments of the
//! paper's Fig. 4/Fig. 12 violations, expressed purely as composable
//! faults against the simulated cluster.

use adore_core::{ReconfigGuard, Timestamp};
use adore_kv::KvCommand;
use adore_raft::{Command, Entry};
use adore_schemes::SingleNode;
use adore_storage::{DiskFault, DurabilityPolicy, WalRecord};

use crate::schedule::{Fault, FaultSchedule};

/// The Fig. 4/Fig. 12 schedule against a guard missing **R3** ("commit a
/// current-term entry before reconfiguring" — the Raft single-server
/// membership-change bug).
///
/// Shape: S1 proposes a removal while partitioned away (never
/// replicated); S2 is elected by the majority and commits a *different*
/// removal through the shrunk quorum `{2, 4}`; the partition then flips
/// so S1 and S3 form a quorum of S1's stale effective configuration
/// `{1, 2, 3}` and commit on top of the unreplicated entry. Two disjoint
/// quorums have now committed incompatible prefixes.
#[must_use]
pub fn r3_ablation_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "r3-ablation-fig4".into(),
        seed: 4,
        members: vec![1, 2, 3, 4],
        guard: ReconfigGuard::all().without_r3(),
        durability: DurabilityPolicy::strict(),
        faults: vec![
            // S1 (the boot leader) is cut off and proposes removing S4;
            // with R3 off nothing requires a committed entry of its term
            // first, so the config entry sits unreplicated in its log.
            Fault::Partition {
                groups: vec![vec![1], vec![2, 3, 4]],
            },
            Fault::Reconfig {
                members: vec![1, 2, 3],
            },
            // The majority side elects S2, which removes S3. The new
            // configuration {1,2,4} commits with acks from just {2,4} —
            // S3 is not a member and never hears about it.
            Fault::Elect { nid: 2 },
            Fault::Reconfig {
                members: vec![1, 2, 4],
            },
            // The partition flips: S1 rejoins exactly S3. Under S1's
            // *effective* configuration {1,2,3} (its own uncommitted
            // entry), {1,3} is a quorum — S1 wins an election and commits
            // a client write that diverges from S2's committed prefix.
            Fault::Partition {
                groups: vec![vec![1, 3], vec![2, 4]],
            },
            Fault::Elect { nid: 1 },
            Fault::ClientBurst { writes: 1 },
        ],
    }
}

/// A schedule against a guard missing **R2** ("no stacked uncommitted
/// configuration entries").
///
/// A partitioned leader stacks shrinking reconfigurations
/// `{1..5} → {1,2,3,4} → {1,2,3} → {1,2} → {1}`; once the effective
/// configuration is `{1}` its own ack is a quorum and everything
/// commits unilaterally, while the healthy majority elects S2 and
/// commits its own writes under the original configuration.
#[must_use]
pub fn r2_ablation_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "r2-ablation-stacked".into(),
        seed: 2,
        members: vec![1, 2, 3, 4, 5],
        guard: ReconfigGuard::all().without_r2(),
        durability: DurabilityPolicy::strict(),
        faults: vec![
            // A committed write at the leader's term satisfies R3, so R2
            // is the only guard standing between S1 and the stack.
            Fault::ClientBurst { writes: 1 },
            Fault::Partition {
                groups: vec![vec![1], vec![2, 3, 4, 5]],
            },
            Fault::Reconfig {
                members: vec![1, 2, 3, 4],
            },
            Fault::Reconfig {
                members: vec![1, 2, 3],
            },
            Fault::Reconfig {
                members: vec![1, 2],
            },
            Fault::Reconfig { members: vec![1] },
            // Effective config {1}: this write "commits" with S1's own ack.
            Fault::ClientBurst { writes: 1 },
            // The majority, which never saw any of it, commits its own.
            Fault::Elect { nid: 2 },
            Fault::ClientBurst { writes: 1 },
        ],
    }
}

/// A schedule against a guard missing **R1⁺** (quorum-overlapping
/// consecutive configurations; for the single-node scheme, at most one
/// membership change at a time).
///
/// The leader jumps straight from `{1..5}` to `{1,2}` — a three-node
/// change whose quorums do not overlap the old configuration's. The
/// minority pair commits through the new tiny quorum while the untouched
/// majority `{3,4,5}` elects S3 and commits under the old one.
#[must_use]
pub fn r1_ablation_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "r1-ablation-disjoint-quorums".into(),
        seed: 1,
        members: vec![1, 2, 3, 4, 5],
        guard: ReconfigGuard::all().without_r1(),
        durability: DurabilityPolicy::strict(),
        faults: vec![
            Fault::ClientBurst { writes: 1 },
            Fault::Partition {
                groups: vec![vec![1, 2], vec![3, 4, 5]],
            },
            // The illegal multi-node jump: {1,2,3,4,5} -> {1,2}.
            Fault::Reconfig {
                members: vec![1, 2],
            },
            Fault::ClientBurst { writes: 1 },
            Fault::Elect { nid: 3 },
            Fault::ClientBurst { writes: 1 },
        ],
    }
}

/// All three ablation schedules, labeled by the guard bit they defeat.
#[must_use]
pub fn ablation_suite() -> Vec<(&'static str, FaultSchedule)> {
    vec![
        ("no-R1+", r1_ablation_schedule()),
        ("no-R2", r2_ablation_schedule()),
        ("no-R3", r3_ablation_schedule()),
    ]
}

/// A schedule against the **sync-before-ack** discipline.
///
/// With fsync decoupled from acknowledgement, a follower's votes and
/// appends live only in volatile memory: a clean power loss returns it
/// as a fully amnesiac *voter*. Here S2 acks a write that the majority
/// `{1, 2}` commits, crashes cleanly, recovers empty, and then hands its
/// (forgotten-state) vote to S3 — whose log never held the committed
/// entry. S3 overwrites the committed slot through the quorum `{2, 3}`.
///
/// Under the strict policy the same crash forgets nothing that was
/// acked: S2 recovers with the committed entry and rejects S3's
/// candidacy as outdated.
#[must_use]
pub fn storage_no_fsync_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "storage-no-fsync".into(),
        seed: 101,
        members: vec![1, 2, 3],
        guard: ReconfigGuard::all(),
        durability: DurabilityPolicy::no_fsync_before_ack(),
        faults: vec![
            Fault::ClientBurst { writes: 1 },
            Fault::Idle { us: 20_000 },
            // S3 is cut off; the next write commits through {1, 2} and is
            // acked to the client — but with fsync ablated, S2's ack is
            // backed by nothing on disk.
            Fault::Partition {
                groups: vec![vec![1, 2], vec![3]],
            },
            Fault::ClientBurst { writes: 1 },
            // A *clean* crash — no torn writes, no corruption — and S2
            // recovers with an empty log and term 0, still a voter.
            Fault::Crash { nid: 2 },
            Fault::Recover { nid: 2 },
            // The partition flips; S3 (which never saw the committed
            // write) campaigns and wins with S2's amnesiac vote, then
            // commits a different entry into the committed slot.
            Fault::Partition {
                groups: vec![vec![2, 3], vec![1]],
            },
            Fault::Elect { nid: 3 },
            Fault::ClientBurst { writes: 1 },
        ],
    }
}

/// The payload bit whose flip turns the first client write's value
/// `"v0"` into the equally well-formed `"w0"` inside S2's third WAL
/// frame (`Boot`, `Term`, then this `Append`): low bit of the ASCII
/// `'v'` (`0x76 → 0x77`). The frame still parses, so only the checksum
/// stands between the corruption and the replayed state.
fn first_write_value_bit() -> u32 {
    // The client wraps every write in its exactly-once session
    // envelope: client id = the schedule's seed (102), and the first
    // operation carries sequence number 1. The record serialized here
    // must match the engine's byte-for-byte for the bit offset to land
    // inside the value.
    let record: WalRecord<SingleNode, KvCommand> = WalRecord::Append {
        entry: Entry {
            time: Timestamp(1),
            cmd: Command::Method(KvCommand::session(102, 1, KvCommand::put("key0", "v0"))),
        },
    };
    // adore-lint: allow(L2, reason = "serializing a compile-time-constant record cannot fail")
    let payload = serde_json::to_string(&record).expect("record serializes");
    // adore-lint: allow(L2, reason = "the record was just built around the literal \"v0\"")
    let pos = payload.find("v0").expect("value appears in the payload");
    // adore-lint: allow(L2, reason = "a one-record payload is far below 2^29 bytes")
    u32::try_from(pos * 8).expect("payload fits")
}

/// A schedule against **checksum verification** at replay.
///
/// A bit flips in a *synced, committed* record of S2's WAL — media
/// corruption, not a lost write. The flip is chosen so the frame still
/// parses: the entry's value silently reads `"w0"` instead of `"v0"`.
/// Without checksum verification the replay installs the corrupted
/// entry below the commit watermark, and S2's committed prefix diverges
/// from the cluster's the moment it recovers.
///
/// Under the strict policy the CRC catches the flip and the replica
/// fail-stops — unavailable, never wrong.
#[must_use]
pub fn storage_no_checksum_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "storage-no-checksum".into(),
        seed: 102,
        members: vec![1, 2, 3],
        guard: ReconfigGuard::all(),
        durability: DurabilityPolicy::no_checksum_verify(),
        faults: vec![
            // Two committed writes so S2's commit watermark covers the
            // slot the corruption lands in.
            Fault::ClientBurst { writes: 2 },
            Fault::Idle { us: 20_000 },
            Fault::CrashDisk {
                nid: 2,
                fault: DiskFault::CorruptRecord {
                    record: 2,
                    bit: first_write_value_bit(),
                },
            },
            Fault::Recover { nid: 2 },
        ],
    }
}

/// A schedule against **truncate-invalid-tail** at recovery.
///
/// A torn write leaves three garbage bytes of a never-acked orphan
/// frame on S1's device. Recovery that keeps the garbage leaves a wall
/// mid-WAL: everything S1 writes *after* it — including a synced vote
/// for S2's term and a committed entry — is invisible to the next
/// replay. After a second, perfectly clean crash S1 forgets that vote
/// and hands a fresh one to S3, splitting the cluster into two leaders
/// that commit different entries into the same slot.
///
/// Under the strict policy the first recovery truncates the garbage, so
/// the second replay sees the vote and the entry, and S3 stays a
/// follower.
#[must_use]
pub fn storage_keep_tail_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "storage-keep-tail".into(),
        seed: 103,
        members: vec![1, 2, 3],
        guard: ReconfigGuard::all(),
        durability: DurabilityPolicy::keep_unsynced_tail(),
        faults: vec![
            Fault::ClientBurst { writes: 1 },
            Fault::Idle { us: 20_000 },
            // An unacked write parked in the leader's WAL buffer...
            Fault::OrphanWrite,
            // ...torn mid-header by the crash: three bytes of garbage
            // that decode as nothing.
            Fault::CrashDisk {
                nid: 1,
                fault: DiskFault::TornTail { keep_bytes: 3 },
            },
            Fault::Recover { nid: 1 },
            // S1 (amnesiac about nothing yet) votes for S2 and acks a
            // committed write — all journaled *after* the garbage.
            Fault::Partition {
                groups: vec![vec![1, 2], vec![3]],
            },
            Fault::Elect { nid: 2 },
            Fault::ClientBurst { writes: 1 },
            // A clean crash. Replay stops at the garbage: the synced
            // vote and the committed entry are forgotten.
            Fault::Crash { nid: 1 },
            Fault::Recover { nid: 1 },
            // S3 campaigns at the same term S1 already voted in — and
            // S1, having forgotten, votes again. Two leaders, one term.
            Fault::Partition {
                groups: vec![vec![1, 3], vec![2]],
            },
            Fault::Elect { nid: 3 },
            Fault::ClientBurst { writes: 1 },
        ],
    }
}

/// All three storage-ablation schedules, labeled by the discipline they
/// defeat.
#[must_use]
pub fn storage_ablation_suite() -> Vec<(&'static str, FaultSchedule)> {
    vec![
        ("no-fsync-before-ack", storage_no_fsync_schedule()),
        ("no-checksum-verify", storage_no_checksum_schedule()),
        ("keep-unsynced-tail", storage_keep_tail_schedule()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{replay, run_schedule, EngineParams};
    use crate::client::ViolationKind;

    #[test]
    fn every_ablation_schedule_finds_its_violation() {
        for (label, schedule) in ablation_suite() {
            let report = run_schedule(&schedule, &EngineParams::default());
            let (violation, _) = report
                .violation
                .unwrap_or_else(|| panic!("{label}: no violation found"));
            assert!(
                matches!(violation, ViolationKind::LogDivergence { .. }),
                "{label}: unexpected violation {violation:?}"
            );
        }
    }

    #[test]
    fn every_ablation_schedule_is_safe_under_the_sound_guard() {
        for (label, schedule) in ablation_suite() {
            let sound = schedule.with_guard(adore_core::ReconfigGuard::all());
            assert!(
                replay(&sound, &EngineParams::default()).is_none(),
                "{label}: violation under the sound guard"
            );
        }
    }

    #[test]
    fn every_storage_ablation_schedule_finds_its_violation() {
        for (label, schedule) in storage_ablation_suite() {
            let report = run_schedule(&schedule, &EngineParams::default());
            let (violation, _) = report
                .violation
                .unwrap_or_else(|| panic!("{label}: no violation found"));
            assert!(
                matches!(violation, ViolationKind::LogDivergence { .. }),
                "{label}: unexpected violation {violation:?}"
            );
        }
    }

    #[test]
    fn every_storage_ablation_schedule_is_safe_under_the_strict_policy() {
        for (label, schedule) in storage_ablation_suite() {
            let strict = schedule.with_durability(DurabilityPolicy::strict());
            assert!(
                replay(&strict, &EngineParams::default()).is_none(),
                "{label}: violation under the strict durability policy"
            );
        }
    }

    #[test]
    fn the_strict_runs_of_the_storage_suite_pass_certification_too() {
        // The flip side of the ablation hunts: the same adversarial
        // schedules under the strict policy not only preserve the
        // committed prefix, they satisfy the per-ack storage
        // certification checker.
        let params = EngineParams {
            certify_storage: true,
            ..EngineParams::default()
        };
        for (label, schedule) in storage_ablation_suite() {
            let strict = schedule.with_durability(DurabilityPolicy::strict());
            assert!(
                replay(&strict, &params).is_none(),
                "{label}: certification failure under the strict policy"
            );
        }
    }
}
