//! Hand-crafted adversarial schedules targeting each guard ablation.
//!
//! Each schedule is safe under the sound guard (`ReconfigGuard::all()`)
//! and drives the corresponding flawed variant into a committed-prefix
//! divergence — the network-and-latency-level re-enactments of the
//! paper's Fig. 4/Fig. 12 violations, expressed purely as composable
//! faults against the simulated cluster.

use adore_core::ReconfigGuard;

use crate::schedule::{Fault, FaultSchedule};

/// The Fig. 4/Fig. 12 schedule against a guard missing **R3** ("commit a
/// current-term entry before reconfiguring" — the Raft single-server
/// membership-change bug).
///
/// Shape: S1 proposes a removal while partitioned away (never
/// replicated); S2 is elected by the majority and commits a *different*
/// removal through the shrunk quorum `{2, 4}`; the partition then flips
/// so S1 and S3 form a quorum of S1's stale effective configuration
/// `{1, 2, 3}` and commit on top of the unreplicated entry. Two disjoint
/// quorums have now committed incompatible prefixes.
#[must_use]
pub fn r3_ablation_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "r3-ablation-fig4".into(),
        seed: 4,
        members: vec![1, 2, 3, 4],
        guard: ReconfigGuard::all().without_r3(),
        faults: vec![
            // S1 (the boot leader) is cut off and proposes removing S4;
            // with R3 off nothing requires a committed entry of its term
            // first, so the config entry sits unreplicated in its log.
            Fault::Partition {
                groups: vec![vec![1], vec![2, 3, 4]],
            },
            Fault::Reconfig {
                members: vec![1, 2, 3],
            },
            // The majority side elects S2, which removes S3. The new
            // configuration {1,2,4} commits with acks from just {2,4} —
            // S3 is not a member and never hears about it.
            Fault::Elect { nid: 2 },
            Fault::Reconfig {
                members: vec![1, 2, 4],
            },
            // The partition flips: S1 rejoins exactly S3. Under S1's
            // *effective* configuration {1,2,3} (its own uncommitted
            // entry), {1,3} is a quorum — S1 wins an election and commits
            // a client write that diverges from S2's committed prefix.
            Fault::Partition {
                groups: vec![vec![1, 3], vec![2, 4]],
            },
            Fault::Elect { nid: 1 },
            Fault::ClientBurst { writes: 1 },
        ],
    }
}

/// A schedule against a guard missing **R2** ("no stacked uncommitted
/// configuration entries").
///
/// A partitioned leader stacks shrinking reconfigurations
/// `{1..5} → {1,2,3,4} → {1,2,3} → {1,2} → {1}`; once the effective
/// configuration is `{1}` its own ack is a quorum and everything
/// commits unilaterally, while the healthy majority elects S2 and
/// commits its own writes under the original configuration.
#[must_use]
pub fn r2_ablation_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "r2-ablation-stacked".into(),
        seed: 2,
        members: vec![1, 2, 3, 4, 5],
        guard: ReconfigGuard::all().without_r2(),
        faults: vec![
            // A committed write at the leader's term satisfies R3, so R2
            // is the only guard standing between S1 and the stack.
            Fault::ClientBurst { writes: 1 },
            Fault::Partition {
                groups: vec![vec![1], vec![2, 3, 4, 5]],
            },
            Fault::Reconfig {
                members: vec![1, 2, 3, 4],
            },
            Fault::Reconfig {
                members: vec![1, 2, 3],
            },
            Fault::Reconfig {
                members: vec![1, 2],
            },
            Fault::Reconfig { members: vec![1] },
            // Effective config {1}: this write "commits" with S1's own ack.
            Fault::ClientBurst { writes: 1 },
            // The majority, which never saw any of it, commits its own.
            Fault::Elect { nid: 2 },
            Fault::ClientBurst { writes: 1 },
        ],
    }
}

/// A schedule against a guard missing **R1⁺** (quorum-overlapping
/// consecutive configurations; for the single-node scheme, at most one
/// membership change at a time).
///
/// The leader jumps straight from `{1..5}` to `{1,2}` — a three-node
/// change whose quorums do not overlap the old configuration's. The
/// minority pair commits through the new tiny quorum while the untouched
/// majority `{3,4,5}` elects S3 and commits under the old one.
#[must_use]
pub fn r1_ablation_schedule() -> FaultSchedule {
    FaultSchedule {
        name: "r1-ablation-disjoint-quorums".into(),
        seed: 1,
        members: vec![1, 2, 3, 4, 5],
        guard: ReconfigGuard::all().without_r1(),
        faults: vec![
            Fault::ClientBurst { writes: 1 },
            Fault::Partition {
                groups: vec![vec![1, 2], vec![3, 4, 5]],
            },
            // The illegal multi-node jump: {1,2,3,4,5} -> {1,2}.
            Fault::Reconfig {
                members: vec![1, 2],
            },
            Fault::ClientBurst { writes: 1 },
            Fault::Elect { nid: 3 },
            Fault::ClientBurst { writes: 1 },
        ],
    }
}

/// All three ablation schedules, labeled by the guard bit they defeat.
#[must_use]
pub fn ablation_suite() -> Vec<(&'static str, FaultSchedule)> {
    vec![
        ("no-R1+", r1_ablation_schedule()),
        ("no-R2", r2_ablation_schedule()),
        ("no-R3", r3_ablation_schedule()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{replay, run_schedule, EngineParams};
    use crate::client::ViolationKind;

    #[test]
    fn every_ablation_schedule_finds_its_violation() {
        for (label, schedule) in ablation_suite() {
            let report = run_schedule(&schedule, &EngineParams::default());
            let (violation, _) = report
                .violation
                .unwrap_or_else(|| panic!("{label}: no violation found"));
            assert!(
                matches!(violation, ViolationKind::LogDivergence { .. }),
                "{label}: unexpected violation {violation:?}"
            );
        }
    }

    #[test]
    fn every_ablation_schedule_is_safe_under_the_sound_guard() {
        for (label, schedule) in ablation_suite() {
            let sound = schedule.with_guard(adore_core::ReconfigGuard::all());
            assert!(
                replay(&sound, &EngineParams::default()).is_none(),
                "{label}: violation under the sound guard"
            );
        }
    }
}
