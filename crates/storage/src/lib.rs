//! Durable storage for Adore replicas: a write-ahead log over a
//! simulated disk, with injectable crash faults and certified recovery.
//!
//! The paper's network model (and PR 1's nemesis engine on top of it)
//! treats crashes as benign: a crashed replica's `(term, vote, log)`
//! simply waits, intact, for `recover`. That makes the entire
//! durability half of the fault model a free axiom. This crate makes it
//! a *theorem with a mechanism*:
//!
//! - [`SimDisk`] — a deterministic byte device with an explicit
//!   synced/unsynced boundary and crash faults: lose the unsynced tail,
//!   tear a record at the crash point, flip a bit in a synced record,
//!   or wipe the media entirely ([`DiskFault`]).
//! - [`Wal`] — length-prefixed, CRC-32-checked records
//!   ([`WalRecord`]) encoding every durable transition of a replica:
//!   boot, term adoption (which *is* the vote in this protocol), log
//!   truncation, entry append, commit watermark, and an optional
//!   compaction snapshot.
//! - [`DurabilityPolicy`] — the three storage disciplines that make
//!   recovery sound, each individually ablatable so the nemesis hunts
//!   can demonstrate necessity: sync-before-ack, checksum verification
//!   on replay, and truncation of the invalid tail after replay.
//! - [`StorageViolation`] — what the recovery-invariant checker
//!   reports when an ack outruns the durable state or a recovery
//!   resurrects a state the WAL cannot justify.
//!
//! The simulation layer (`adore-kv`) journals every volatile state
//! change into the WAL, syncs at exactly the ack points, and rebuilds
//! replicas from [`Wal::recover`]; the nemesis engine drives
//! [`DiskFault`]s through schedules and checks committed-prefix
//! agreement on top.

mod disk;
mod wal;

pub use disk::SimDisk;
pub use wal::{crc32, DurableState, Recovery, Wal, WalRecord, WalStats};

use serde::{Deserialize, Serialize};
use std::fmt;

/// The storage disciplines a replica runs with. The strict policy (all
/// three on) is the certified model; each knob exists to be ablated by
/// a nemesis hunt, which must then find a committed-prefix violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DurabilityPolicy {
    /// Sync the WAL before any acknowledgement leaves the replica (vote
    /// grants, replication acks, leader self-acks). Ablated: acks can
    /// promise state that a crash then forgets.
    pub sync_before_ack: bool,
    /// Verify frame checksums during replay and fail-stop on mismatch.
    /// Ablated: a bit-flipped record is replayed as truth.
    pub verify_checksums: bool,
    /// After replay, truncate the device past the last valid frame.
    /// Ablated: records appended after crash garbage are silently
    /// invisible to every future replay.
    pub truncate_invalid_tail: bool,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy::strict()
    }
}

impl DurabilityPolicy {
    /// The full certified discipline: all three knobs on.
    #[must_use]
    pub fn strict() -> Self {
        DurabilityPolicy {
            sync_before_ack: true,
            verify_checksums: true,
            truncate_invalid_tail: true,
        }
    }

    /// Ablation: acks no longer wait for `fsync`.
    #[must_use]
    pub fn no_fsync_before_ack() -> Self {
        DurabilityPolicy {
            sync_before_ack: false,
            ..DurabilityPolicy::strict()
        }
    }

    /// Ablation: replay trusts payloads without checking checksums.
    #[must_use]
    pub fn no_checksum_verify() -> Self {
        DurabilityPolicy {
            verify_checksums: false,
            ..DurabilityPolicy::strict()
        }
    }

    /// Ablation: replay leaves the invalid tail on the device.
    #[must_use]
    pub fn keep_unsynced_tail() -> Self {
        DurabilityPolicy {
            truncate_invalid_tail: false,
            ..DurabilityPolicy::strict()
        }
    }
}

impl fmt::Display for DurabilityPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == DurabilityPolicy::strict() {
            return write!(f, "strict");
        }
        let mut off = Vec::new();
        if !self.sync_before_ack {
            off.push("no-fsync-before-ack");
        }
        if !self.verify_checksums {
            off.push("no-checksum-verify");
        }
        if !self.truncate_invalid_tail {
            off.push("keep-unsynced-tail");
        }
        write!(f, "{}", off.join("+"))
    }
}

/// A crash-time disk fault, applied to one replica's WAL at the moment
/// it goes down. Serializable so nemesis schedules (and minimized
/// counterexamples) can carry them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskFault {
    /// Clean power loss: the unsynced tail vanishes, synced bytes
    /// survive. (This is what a plain process crash now means.)
    LoseTail,
    /// The crash catches the device mid-flush: `keep_bytes` of the
    /// unsynced tail survive, typically ending inside a frame.
    TornTail {
        /// How many bytes of the unsynced tail survive the crash.
        keep_bytes: u32,
    },
    /// Silent media corruption: one payload bit of the
    /// `record`-th synced frame (modulo frame count) is flipped.
    CorruptRecord {
        /// Index (modulo frame count) of the synced frame to corrupt.
        record: u32,
        /// Which payload bit (modulo payload length in bits) to flip.
        bit: u32,
    },
    /// Total media loss: every byte, including the boot record, is
    /// gone. Recovery reports [`Recovery::DataLoss`] and the replica
    /// must rejoin without voting rights.
    WipeAll,
}

impl DiskFault {
    /// A short machine-readable name for the fault kind (no
    /// parameters), used by the observability layer to label crash
    /// events: the trace auditor keys its recovery-faithfulness checks
    /// on these names.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            DiskFault::LoseTail => "lose-tail",
            DiskFault::TornTail { .. } => "torn-tail",
            DiskFault::CorruptRecord { .. } => "corrupt-record",
            DiskFault::WipeAll => "wipe-all",
        }
    }
}

impl fmt::Display for DiskFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskFault::LoseTail => write!(f, "lose-tail"),
            DiskFault::TornTail { keep_bytes } => write!(f, "torn-tail(keep {keep_bytes} B)"),
            DiskFault::CorruptRecord { record, bit } => {
                write!(f, "corrupt(record {record}, bit {bit})")
            }
            DiskFault::WipeAll => write!(f, "wipe-all"),
        }
    }
}

/// A violation found by the recovery-invariant checker: the durable
/// storage failed to justify what the replica told the outside world.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageViolation {
    /// At an ack point (vote grant, replication ack, leader self-ack)
    /// the replica's volatile `(term, log, commit_len)` was not fully
    /// durable: a crash at that instant would forget a promise.
    AckNotDurable {
        /// The replica that acked without durable backing.
        nid: u32,
    },
    /// A recovered replica's state differs from the strict replay of
    /// its synced WAL: recovery resurrected (or dropped) state the
    /// device cannot justify.
    UnfaithfulRecovery {
        /// The replica whose recovered state diverged from its WAL.
        nid: u32,
    },
}

impl fmt::Display for StorageViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageViolation::AckNotDurable { nid } => {
                write!(f, "S{nid} acked state that was not yet durable")
            }
            StorageViolation::UnfaithfulRecovery { nid } => {
                write!(f, "S{nid} recovered state its WAL does not justify")
            }
        }
    }
}
