//! A deterministic simulated disk: an append-only byte device with an
//! explicit synced/unsynced boundary and injectable crash faults.
//!
//! [`SimDisk`] models exactly what a write-ahead log needs from a block
//! device and nothing more: `write` appends into a volatile tail,
//! `sync` makes everything written so far durable, and a crash discards
//! some suffix of the volatile tail — possibly mid-record (a torn
//! write) — or flips a bit in the durable region (media corruption).
//! Framing, checksums, and recovery semantics live one layer up, in
//! [`crate::Wal`]; the disk knows only bytes.

/// An in-memory byte device with a durability boundary.
///
/// Bytes below `synced` survive any crash; bytes at or above it are a
/// volatile write cache that a crash truncates (entirely, or to an
/// arbitrary prefix for a torn write). Deterministic: no entropy of its
/// own — fault injection decides what is lost.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimDisk {
    data: Vec<u8>,
    synced: usize,
}

impl SimDisk {
    /// An empty disk.
    #[must_use]
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// Appends bytes to the volatile write cache.
    pub fn write(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Makes everything written so far durable (`fsync`).
    pub fn sync(&mut self) {
        self.synced = self.data.len();
    }

    /// Total bytes on the device (durable + volatile cache).
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the device holds no bytes at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes guaranteed to survive a clean crash.
    #[must_use]
    pub fn synced_len(&self) -> usize {
        self.synced
    }

    /// Bytes sitting in the volatile write cache.
    #[must_use]
    pub fn unsynced_len(&self) -> usize {
        self.data.len() - self.synced
    }

    /// The full device contents (durable prefix + volatile tail).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// The durable prefix only.
    #[must_use]
    pub fn synced_bytes(&self) -> &[u8] {
        &self.data[..self.synced]
    }

    /// Truncates the device to `len` bytes (used by recovery to discard
    /// an invalid tail). The surviving prefix is marked durable.
    pub fn truncate_to(&mut self, len: usize) {
        self.data.truncate(len);
        self.synced = self.data.len();
    }

    /// A clean power loss: the volatile write cache vanishes, the
    /// durable prefix survives.
    pub fn crash_lose_tail(&mut self) {
        self.data.truncate(self.synced);
        self.synced = self.data.len();
    }

    /// A torn write: the crash catches the device mid-flush, so an
    /// arbitrary prefix (`keep` bytes) of the volatile cache survives —
    /// possibly ending in the middle of a record.
    pub fn crash_torn(&mut self, keep: usize) {
        let keep = keep.min(self.unsynced_len());
        self.data.truncate(self.synced + keep);
        self.synced = self.data.len();
    }

    /// Total media loss: every byte is gone.
    pub fn crash_wipe(&mut self) {
        self.data.clear();
        self.synced = 0;
    }

    /// Flips one bit of a durable byte (silent media corruption). Out of
    /// range indices are a no-op — there is nothing durable to corrupt.
    pub fn flip_bit(&mut self, byte: usize, bit: u8) {
        if byte < self.synced {
            self.data[byte] ^= 1 << (bit % 8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_moves_the_durability_boundary() {
        let mut d = SimDisk::new();
        d.write(b"abc");
        assert_eq!(d.synced_len(), 0);
        assert_eq!(d.unsynced_len(), 3);
        d.sync();
        assert_eq!(d.synced_len(), 3);
        d.write(b"de");
        assert_eq!(d.unsynced_len(), 2);
    }

    #[test]
    fn clean_crash_loses_exactly_the_unsynced_tail() {
        let mut d = SimDisk::new();
        d.write(b"durable");
        d.sync();
        d.write(b"volatile");
        d.crash_lose_tail();
        assert_eq!(d.bytes(), b"durable");
        assert_eq!(d.unsynced_len(), 0);
    }

    #[test]
    fn torn_crash_keeps_a_partial_tail() {
        let mut d = SimDisk::new();
        d.write(b"durable");
        d.sync();
        d.write(b"volatile");
        d.crash_torn(3);
        assert_eq!(d.bytes(), b"durablevol");
        // Asking to keep more than exists clamps.
        let mut d2 = SimDisk::new();
        d2.write(b"x");
        d2.crash_torn(100);
        assert_eq!(d2.bytes(), b"x");
    }

    #[test]
    fn wipe_loses_everything_and_flip_targets_only_durable_bytes() {
        let mut d = SimDisk::new();
        d.write(b"ab");
        d.sync();
        d.write(b"c");
        d.flip_bit(0, 0);
        assert_eq!(d.bytes()[0], b'a' ^ 1);
        // The unsynced byte is not addressable by corruption.
        d.flip_bit(2, 0);
        assert_eq!(d.bytes()[2], b'c');
        d.crash_wipe();
        assert!(d.is_empty());
        assert_eq!(d.synced_len(), 0);
    }
}
