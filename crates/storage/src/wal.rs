//! The write-ahead log: length-prefixed, CRC-checked records over a
//! [`SimDisk`], with crash-fault injection and replay-based recovery.
//!
//! # Record framing
//!
//! Every record is one frame on disk:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes of JSON]
//! ```
//!
//! The checksum is CRC-32 (IEEE) over the payload only. The payload is
//! the JSON encoding of a [`WalRecord`] — human-readable on purpose, so
//! counterexample traces can quote WAL contents directly.
//!
//! # Recovery
//!
//! [`Wal::recover`] replays frames from the start of the device and
//! folds them into a [`DurableState`]. The walk stops at the first
//! incomplete frame (a torn write at the crash point) and, under the
//! strict [`DurabilityPolicy`], fail-stops on a checksum mismatch and
//! truncates any invalid tail so a later replay cannot read past it.
//! Each of those three duties is a policy knob precisely so the
//! storage-ablation hunts can turn one off and watch committed-prefix
//! agreement break.
//!
//! # The mirror
//!
//! Alongside the device, the WAL maintains a *mirror*: the state a
//! strict replay would recover if the process crashed right now (i.e. a
//! strict decode of the synced region). The mirror is the certification
//! ghost behind [`crate::StorageViolation::AckNotDurable`] — after every
//! sync it is advanced incrementally, and after every injected fault it
//! is recomputed from the surviving bytes.

use adore_core::{NodeId, Timestamp};
use adore_raft::{Entry, Log};
use serde::{de, Deserialize, Serialize};

use crate::disk::SimDisk;
use crate::{DiskFault, DurabilityPolicy};

/// Frame header size: 4-byte length + 4-byte CRC.
const HEADER: usize = 8;

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven. Computed
/// at compile time — the workspace vendors no checksum crate.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One durable record. Everything a replica acks must be reconstructible
/// from a replay of these.
///
/// There is no separate `voted_for` record: in this protocol adopting a
/// timestamp *is* the vote (an `Elect` delivery at a time the recipient
/// has already adopted is rejected as stale), so persisting [`Term`]
/// covers both the current term and the vote within it.
///
/// [`Term`]: WalRecord::Term
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalRecord<C, M> {
    /// Written (and synced) once at WAL creation; its absence on replay
    /// means total media loss, not an empty-but-intact log.
    Boot {
        /// The replica this WAL belongs to.
        nid: u32,
    },
    /// The replica adopted this timestamp — by campaigning or by
    /// granting a vote. This *is* the vote record (see the enum docs).
    Term {
        /// The adopted logical timestamp.
        time: u64,
    },
    /// The log was cut back to `len` entries (divergent suffix replaced
    /// during a full-log adoption).
    Truncate {
        /// Surviving log length after the cut.
        len: u64,
    },
    /// One log entry appended at the current end.
    Append {
        /// The appended entry.
        entry: Entry<C, M>,
    },
    /// The commit watermark advanced to `len`.
    CommitLen {
        /// The new commit watermark.
        len: u64,
    },
    /// Compaction: replaces everything folded so far with this state.
    Snapshot {
        /// Logical timestamp at the snapshot point.
        time: u64,
        /// Commit watermark at the snapshot point.
        commit_len: u64,
        /// The full log at the snapshot point.
        log: Log<C, M>,
    },
}

/// The state a WAL replay reconstructs: the durable projection of a
/// replica's `(time, log, commit_len)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableState<C, M> {
    /// Whether a [`WalRecord::Boot`] record was seen (distinguishes an
    /// empty log from a wiped device).
    pub booted: bool,
    /// Last adopted timestamp (term + vote; see [`WalRecord::Term`]).
    pub time: Timestamp,
    /// The replayed log.
    pub log: Log<C, M>,
    /// The replayed commit watermark (clamped to `log.len()` by
    /// recovery: a commit record may survive a crash that its entries,
    /// written later in a different batch, did not).
    pub commit_len: usize,
}

impl<C, M> Default for DurableState<C, M> {
    fn default() -> Self {
        DurableState {
            booted: false,
            time: Timestamp::ZERO,
            log: Vec::new(),
            commit_len: 0,
        }
    }
}

impl<C: Clone, M: Clone> DurableState<C, M> {
    /// Folds one record into the state.
    fn apply(&mut self, rec: &WalRecord<C, M>) {
        // The guard (split_frame's CRC walk) sits one call level up in
        // Wal::recover, outside L6's one-level same-file summary reach.
        match rec {
            // adore-lint: allow(L6, reason = "apply folds records already CRC-certified by the caller's split_frame walk")
            WalRecord::Boot { .. } => self.booted = true,
            WalRecord::Term { time } => self.time = Timestamp(*time),
            WalRecord::Truncate { len } => self.log.truncate(*len as usize),
            WalRecord::Append { entry } => self.log.push(entry.clone()),
            // adore-lint: allow(L6, reason = "apply folds records already CRC-certified by the caller's split_frame walk")
            WalRecord::CommitLen { len } => self.commit_len = *len as usize,
            WalRecord::Snapshot { time, commit_len, log } => {
                // adore-lint: allow(L6, reason = "apply folds records already CRC-certified by the caller's split_frame walk")
                self.commit_len = *commit_len as usize;
                // adore-lint: allow(L6, reason = "apply folds records already CRC-certified by the caller's split_frame walk")
                self.log = log.clone();
                self.time = Timestamp(*time);
            }
        }
    }
}

/// What [`Wal::recover`] found on the device.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery<C, M> {
    /// Replay succeeded; rejoin with this state.
    Intact(DurableState<C, M>),
    /// No boot record survived: the media is gone. The caller must not
    /// let this replica vote — it has forgotten promises it made.
    DataLoss,
    /// A synced record failed its checksum (index of the bad frame).
    /// Fail-stop: silent corruption cannot be repaired locally.
    Corrupt {
        /// Index of the frame that failed its checksum.
        record: usize,
    },
}

impl<C, M> Recovery<C, M> {
    /// A short machine-readable name for the recovery outcome, used by
    /// the observability layer to label recovery events.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Recovery::Intact(_) => "intact",
            Recovery::DataLoss => "data-loss",
            Recovery::Corrupt { .. } => "corrupt",
        }
    }
}

/// Counters for the E10 table: how much WAL traffic the discipline costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended over the WAL's lifetime.
    pub records: usize,
    /// `sync` calls (each models one `fsync`).
    pub syncs: usize,
    /// Total framed bytes written.
    pub bytes_written: usize,
}

/// A parsed frame: payload slice, checksum verdict, offset of the next
/// frame. `None` from [`split_frame`] means the bytes end mid-frame.
struct Frame<'a> {
    payload: &'a [u8],
    crc_ok: bool,
    next: usize,
}

/// Splits the frame starting at `off`, if one is fully present.
fn split_frame(bytes: &[u8], off: usize) -> Option<Frame<'_>> {
    let rest = bytes.get(off..)?;
    if rest.len() < HEADER {
        return None;
    }
    let word = |range: std::ops::Range<usize>| -> Option<u32> {
        let bytes: [u8; 4] = rest.get(range)?.try_into().ok()?;
        Some(u32::from_le_bytes(bytes))
    };
    let len = word(0..4)? as usize;
    let crc = word(4..8)?;
    let payload = rest.get(HEADER..HEADER + len)?;
    Some(Frame {
        payload,
        crc_ok: crc32(payload) == crc,
        next: off + HEADER + len,
    })
}

fn parse_payload<C, M>(payload: &[u8]) -> Option<WalRecord<C, M>>
where
    C: Serialize + de::DeserializeOwned,
    M: Serialize + de::DeserializeOwned,
{
    let s = std::str::from_utf8(payload).ok()?;
    serde_json::from_str(s).ok()
}

/// A write-ahead log for one replica, over a fault-injectable
/// [`SimDisk`]. See the module docs for framing, recovery, and the
/// mirror.
#[derive(Debug, Clone)]
pub struct Wal<C, M> {
    nid: u32,
    disk: SimDisk,
    /// Strict decode of the synced region: what a crash-now would leave.
    mirror: DurableState<C, M>,
    /// Byte offset up to which `mirror` has folded the synced region.
    mirror_off: usize,
    /// Set when the strict decode hit an invalid frame; the mirror never
    /// advances past it (a real replay would stop there too).
    mirror_frozen: bool,
    stats: WalStats,
}

impl<C, M> Wal<C, M>
where
    C: Clone + Serialize + de::DeserializeOwned,
    M: Clone + Serialize + de::DeserializeOwned,
{
    /// Creates the WAL for `nid`, writing and syncing the boot record.
    #[must_use]
    pub fn new(nid: NodeId) -> Self {
        let mut wal = Wal {
            nid: nid.0,
            disk: SimDisk::new(),
            mirror: DurableState::default(),
            mirror_off: 0,
            mirror_frozen: false,
            stats: WalStats::default(),
        };
        wal.append(&WalRecord::Boot { nid: nid.0 });
        wal.sync();
        wal
    }

    /// Rebuilds a WAL from raw device bytes previously persisted to a
    /// real file (the networked runtime mirrors the synced region of
    /// the [`SimDisk`] to its data directory). Empty bytes behave like
    /// a fresh [`Wal::new`]; otherwise the bytes are installed as the
    /// synced region and the caller runs [`Wal::recover`] next, exactly
    /// as after a simulated crash.
    #[must_use]
    pub fn from_bytes(nid: NodeId, bytes: &[u8]) -> Self {
        if bytes.is_empty() {
            return Wal::new(nid);
        }
        let mut disk = SimDisk::new();
        disk.write(bytes);
        disk.sync();
        let mut wal = Wal {
            nid: nid.0,
            disk,
            mirror: DurableState::default(),
            mirror_off: 0,
            mirror_frozen: false,
            stats: WalStats::default(),
        };
        wal.rebuild_mirror();
        wal
    }

    /// Appends one framed record to the volatile tail (no sync).
    pub fn append(&mut self, rec: &WalRecord<C, M>) {
        let payload = serde_json::to_string(rec).expect("WAL records serialize").into_bytes();
        let len = u32::try_from(payload.len()).expect("record fits a u32 frame");
        self.disk.write(&len.to_le_bytes());
        self.disk.write(&crc32(&payload).to_le_bytes());
        self.disk.write(&payload);
        self.stats.records += 1;
        self.stats.bytes_written += HEADER + payload.len();
    }

    /// Makes everything appended so far durable and advances the mirror.
    pub fn sync(&mut self) {
        self.disk.sync();
        self.stats.syncs += 1;
        self.advance_mirror();
    }

    /// Injects a crash-time disk fault. All surviving bytes count as
    /// synced afterwards (the crash flushed whatever it kept), and the
    /// mirror is recomputed from the survivors.
    pub fn crash(&mut self, fault: &DiskFault) {
        match fault {
            DiskFault::LoseTail => self.disk.crash_lose_tail(),
            DiskFault::TornTail { keep_bytes } => self.disk.crash_torn(*keep_bytes as usize),
            DiskFault::WipeAll => self.disk.crash_wipe(),
            DiskFault::CorruptRecord { record, bit } => {
                self.disk.crash_lose_tail();
                self.flip_record_bit(*record as usize, *bit as usize);
            }
        }
        self.rebuild_mirror();
    }

    /// Flips one payload bit of the `record % frames`-th synced frame
    /// (no-op on a frameless device). `bit` indexes into the payload
    /// bits, modulo the payload size.
    fn flip_record_bit(&mut self, record: usize, bit: usize) {
        let bytes = self.disk.synced_bytes();
        let mut frames = Vec::new();
        let mut off = 0;
        while let Some(f) = split_frame(bytes, off) {
            frames.push((off + HEADER, f.payload.len()));
            off = f.next;
        }
        if frames.is_empty() {
            return;
        }
        let (start, len) = frames[record % frames.len()];
        if len == 0 {
            return;
        }
        let bit = bit % (len * 8);
        self.disk.flip_bit(start + bit / 8, (bit % 8) as u8);
    }

    /// Replays the device into a [`Recovery`] under `policy`.
    ///
    /// The walk stops at the first incomplete frame. A checksum mismatch
    /// fail-stops ([`Recovery::Corrupt`]) when `verify_checksums` is on;
    /// with it ablated the payload is trusted if it still parses — the
    /// injected bug. When `truncate_invalid_tail` is on, bytes past the
    /// last accepted frame are cut so the next replay cannot stop early
    /// at stale garbage; with it ablated, records appended after the
    /// garbage are silently lost to every future replay.
    pub fn recover(&mut self, policy: &DurabilityPolicy) -> Recovery<C, M> {
        let bytes = self.disk.bytes().to_vec();
        let mut state = DurableState::default();
        let mut off = 0;
        let mut index = 0usize;
        // The walk ends at the first incomplete frame: a torn write, or
        // the clean end of the log.
        while let Some(frame) = split_frame(&bytes, off) {
            if !frame.crc_ok && policy.verify_checksums {
                self.rebuild_mirror();
                return Recovery::Corrupt { record: index };
            }
            // Checksum ok, or verification ablated: trust the payload if
            // it still parses; otherwise treat the frame as torn.
            let Some(rec) = parse_payload::<C, M>(frame.payload) else {
                break;
            };
            state.apply(&rec);
            off = frame.next;
            index += 1;
        }
        if !state.booted {
            // Total loss: restart the WAL from a fresh boot record.
            self.disk = SimDisk::new();
            self.mirror = DurableState::default();
            self.mirror_off = 0;
            self.mirror_frozen = false;
            self.append(&WalRecord::Boot { nid: self.nid });
            self.sync();
            return Recovery::DataLoss;
        }
        if policy.truncate_invalid_tail {
            self.disk.truncate_to(off);
        }
        state.commit_len = state.commit_len.min(state.log.len());
        self.rebuild_mirror();
        Recovery::Intact(state)
    }

    /// Compacts the WAL: rewrites the device as boot + one snapshot of
    /// the current mirror state. Off the simulation hot path; kept as
    /// the growth point for log truncation.
    pub fn compact(&mut self) {
        let snap = WalRecord::Snapshot {
            time: self.mirror.time.0,
            commit_len: self.mirror.commit_len as u64,
            log: self.mirror.log.clone(),
        };
        self.disk = SimDisk::new();
        self.append(&WalRecord::Boot { nid: self.nid });
        self.append(&snap);
        self.sync();
        self.rebuild_mirror();
    }

    /// The certification ghost: what a strict replay would recover if
    /// the replica crashed right now.
    #[must_use]
    pub fn mirror(&self) -> &DurableState<C, M> {
        &self.mirror
    }

    /// Lifetime WAL traffic counters.
    #[must_use]
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The underlying device (tests and table reporting).
    #[must_use]
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Advances the mirror over newly synced frames; freezes at the
    /// first invalid one.
    fn advance_mirror(&mut self) {
        while !self.mirror_frozen && self.mirror_off < self.disk.synced_len() {
            match split_frame(self.disk.synced_bytes(), self.mirror_off) {
                Some(f) if f.crc_ok => match parse_payload::<C, M>(f.payload) {
                    Some(rec) => {
                        self.mirror.apply(&rec);
                        self.mirror_off = f.next;
                    }
                    None => self.mirror_frozen = true,
                },
                _ => self.mirror_frozen = true,
            }
        }
    }

    /// Recomputes the mirror from scratch (after any injected fault or
    /// recovery rewrote the device).
    fn rebuild_mirror(&mut self) {
        self.mirror = DurableState::default();
        self.mirror_off = 0;
        self.mirror_frozen = false;
        self.advance_mirror();
    }
}
