//! Recovery semantics of the WAL under every durability policy and
//! every injected disk fault, at the storage layer in isolation (the
//! cluster-level consequences are exercised by `adore-nemesis`).

use adore_core::{NodeId, Timestamp};
use adore_raft::{Command, Entry};
use adore_schemes::SingleNode;
use adore_storage::{DiskFault, DurabilityPolicy, Recovery, Wal, WalRecord};

type Rec = WalRecord<SingleNode, String>;
type TestWal = Wal<SingleNode, String>;

fn entry(time: u64, m: &str) -> Entry<SingleNode, String> {
    Entry {
        time: Timestamp(time),
        cmd: Command::Method(m.to_string()),
    }
}

/// A WAL with a synced prefix: Boot, Term{1}, Append(m1), CommitLen{1}.
fn synced_wal() -> TestWal {
    let mut wal = TestWal::new(NodeId(1));
    wal.append(&Rec::Term { time: 1 });
    wal.append(&Rec::Append { entry: entry(1, "m1") });
    wal.append(&Rec::CommitLen { len: 1 });
    wal.sync();
    wal
}

#[test]
fn replay_reconstructs_the_synced_state() {
    let mut wal = synced_wal();
    let Recovery::Intact(state) = wal.recover(&DurabilityPolicy::strict()) else {
        panic!("intact WAL must recover");
    };
    assert!(state.booted);
    assert_eq!(state.time, Timestamp(1));
    assert_eq!(state.log, vec![entry(1, "m1")]);
    assert_eq!(state.commit_len, 1);
    // And recovery is idempotent: replaying the recovered device again
    // yields the same state.
    let Recovery::Intact(again) = wal.recover(&DurabilityPolicy::strict()) else {
        panic!("recovered WAL must stay intact");
    };
    assert_eq!(again, state);
}

#[test]
fn a_clean_crash_loses_exactly_the_unsynced_records() {
    let mut wal = synced_wal();
    wal.append(&Rec::Term { time: 2 });
    wal.append(&Rec::Append { entry: entry(2, "m2") });
    wal.crash(&DiskFault::LoseTail);
    let Recovery::Intact(state) = wal.recover(&DurabilityPolicy::strict()) else {
        panic!("synced prefix must survive");
    };
    assert_eq!(state.time, Timestamp(1), "unsynced term adoption is forgotten");
    assert_eq!(state.log, vec![entry(1, "m1")], "unsynced append is forgotten");
}

#[test]
fn the_mirror_tracks_only_synced_frames() {
    let mut wal = synced_wal();
    assert_eq!(wal.mirror().log, vec![entry(1, "m1")]);
    wal.append(&Rec::Append { entry: entry(1, "m2") });
    assert_eq!(wal.mirror().log.len(), 1, "unsynced append not in the mirror");
    wal.sync();
    assert_eq!(wal.mirror().log.len(), 2, "sync advances the mirror");
    assert_eq!(wal.mirror().time, Timestamp(1));
}

#[test]
fn a_torn_tail_is_cut_by_strict_recovery() {
    let mut wal = synced_wal();
    wal.append(&Rec::Append { entry: entry(1, "m2") });
    // Keep 3 bytes of the new frame: a torn header, decodable by nobody.
    wal.crash(&DiskFault::TornTail { keep_bytes: 3 });
    let before = wal.disk().len();
    let Recovery::Intact(state) = wal.recover(&DurabilityPolicy::strict()) else {
        panic!("the valid prefix must survive a torn write");
    };
    assert_eq!(state.log, vec![entry(1, "m1")]);
    assert!(wal.disk().len() < before, "strict recovery truncates the torn tail");

    // Because the garbage is gone, later appends are visible to replay.
    wal.append(&Rec::Append { entry: entry(1, "m3") });
    wal.sync();
    let Recovery::Intact(state) = wal.recover(&DurabilityPolicy::strict()) else {
        panic!("post-truncation appends must replay");
    };
    assert_eq!(state.log, vec![entry(1, "m1"), entry(1, "m3")]);
}

#[test]
fn keeping_the_torn_tail_silently_loses_later_appends() {
    // The keep-unsynced-tail ablation: recovery leaves the torn garbage
    // on the device, so records appended *after* it are invisible to
    // every subsequent replay — the replica forgets promises it makes
    // post-recovery, even though each one is dutifully synced.
    let ablated = DurabilityPolicy::keep_unsynced_tail();
    let mut wal = synced_wal();
    wal.append(&Rec::Append { entry: entry(1, "m2") });
    wal.crash(&DiskFault::TornTail { keep_bytes: 3 });
    let Recovery::Intact(state) = wal.recover(&ablated) else {
        panic!("first recovery still sees the valid prefix");
    };
    assert_eq!(state.log, vec![entry(1, "m1")]);

    wal.append(&Rec::Term { time: 5 }); // a vote, written after garbage
    wal.sync();
    wal.crash(&DiskFault::LoseTail); // a second, perfectly clean crash
    let Recovery::Intact(state) = wal.recover(&ablated) else {
        panic!("replay still stops at the garbage");
    };
    assert_eq!(state.time, Timestamp(1), "the synced vote at time 5 is forgotten");
}

#[test]
fn checksum_verification_fail_stops_on_a_flipped_bit() {
    let mut wal = synced_wal();
    // Frame 2 is Append(m1); flip an arbitrary payload bit.
    wal.crash(&DiskFault::CorruptRecord { record: 2, bit: 7 });
    match wal.recover(&DurabilityPolicy::strict()) {
        Recovery::Corrupt { record } => assert_eq!(record, 2),
        other => panic!("corruption must fail-stop, got {other:?}"),
    }
}

#[test]
fn without_checksum_verification_a_parseable_corruption_is_replayed_as_truth() {
    // Flip the low bit of the '1' in "m1": 0x31 -> 0x30, so the payload
    // still parses as JSON but the entry now reads "m0".
    let payload = serde_json::to_string(&Rec::Append { entry: entry(1, "m1") }).unwrap();
    let pos = payload.find("m1").unwrap() + 1;
    let mut wal = synced_wal();
    let bit = u32::try_from(pos * 8).unwrap();
    wal.crash(&DiskFault::CorruptRecord { record: 2, bit });

    // Strict replay catches it...
    let mut strict = wal.clone();
    assert!(matches!(
        strict.recover(&DurabilityPolicy::strict()),
        Recovery::Corrupt { record: 2 }
    ));
    // ...the ablated replay swallows it.
    let Recovery::Intact(state) = wal.recover(&DurabilityPolicy::no_checksum_verify()) else {
        panic!("ablated replay accepts the parseable corruption");
    };
    assert_eq!(state.log, vec![entry(1, "m0")], "the corrupted entry became truth");
    assert_eq!(state.commit_len, 1, "and it sits below the commit watermark");
}

#[test]
fn without_checksum_verification_an_unparseable_corruption_ends_the_replay() {
    // Flip a structural byte instead: the payload no longer parses, so
    // even the ablated replay must stop there (treated as torn).
    let payload = serde_json::to_string(&Rec::Append { entry: entry(1, "m1") }).unwrap();
    let pos = payload.find('{').unwrap();
    let mut wal = synced_wal();
    let bit = u32::try_from(pos * 8).unwrap();
    wal.crash(&DiskFault::CorruptRecord { record: 2, bit });
    let Recovery::Intact(state) = wal.recover(&DurabilityPolicy::no_checksum_verify()) else {
        panic!("replay stops before the unparseable frame");
    };
    assert_eq!(state.log, Vec::new(), "the append and everything after it are lost");
    assert_eq!(state.commit_len, 0, "commit watermark clamped to the shorter log");
}

#[test]
fn a_wiped_device_reports_data_loss_and_reboots() {
    let mut wal = synced_wal();
    wal.crash(&DiskFault::WipeAll);
    assert!(matches!(
        wal.recover(&DurabilityPolicy::strict()),
        Recovery::DataLoss
    ));
    // The WAL restarts from a fresh boot record and is usable again.
    wal.append(&Rec::Term { time: 9 });
    wal.sync();
    let Recovery::Intact(state) = wal.recover(&DurabilityPolicy::strict()) else {
        panic!("rebooted WAL must recover");
    };
    assert_eq!(state.time, Timestamp(9));
    assert_eq!(state.log, Vec::new());
}

#[test]
fn a_stale_commit_watermark_is_clamped_to_the_log() {
    // A commit record can survive a crash that the entries it covers,
    // written in a later batch, did not.
    let mut wal = TestWal::new(NodeId(1));
    wal.append(&Rec::CommitLen { len: 5 });
    wal.sync();
    let Recovery::Intact(state) = wal.recover(&DurabilityPolicy::strict()) else {
        panic!("intact WAL must recover");
    };
    assert_eq!(state.log, Vec::new());
    assert_eq!(state.commit_len, 0, "watermark clamped to log length");
}

#[test]
fn compaction_preserves_the_recovered_state_and_shrinks_the_device() {
    let mut wal = TestWal::new(NodeId(1));
    wal.append(&Rec::Term { time: 1 });
    for i in 0..20 {
        wal.append(&Rec::Append { entry: entry(1, &format!("m{i}")) });
        wal.append(&Rec::CommitLen { len: i + 1 });
    }
    wal.sync();
    let before = wal.disk().len();
    let mirror_before = wal.mirror().clone();
    wal.compact();
    assert!(wal.disk().len() < before, "snapshot replaces the record stream");
    assert_eq!(*wal.mirror(), mirror_before, "compaction changes no state");
    let Recovery::Intact(state) = wal.recover(&DurabilityPolicy::strict()) else {
        panic!("compacted WAL must recover");
    };
    assert_eq!(state.time, mirror_before.time);
    assert_eq!(state.log, mirror_before.log);
    assert_eq!(state.commit_len, mirror_before.commit_len);
}

#[test]
fn wal_records_round_trip_through_json() {
    let records: Vec<Rec> = vec![
        Rec::Boot { nid: 3 },
        Rec::Term { time: 7 },
        Rec::Truncate { len: 2 },
        Rec::Append { entry: entry(7, "m") },
        Rec::Append {
            entry: Entry {
                time: Timestamp(8),
                cmd: Command::Config(SingleNode::new([1, 2, 3])),
            },
        },
        Rec::CommitLen { len: 3 },
        Rec::Snapshot {
            time: 7,
            commit_len: 1,
            log: vec![entry(7, "m")],
        },
    ];
    for rec in &records {
        let json = serde_json::to_string(rec).unwrap();
        let back: Rec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, *rec, "round-trip changed {json}");
    }
}

#[test]
fn crc32_matches_the_ieee_reference_vector() {
    // The canonical check vector for CRC-32/IEEE.
    assert_eq!(adore_storage::crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(adore_storage::crc32(b""), 0);
}
