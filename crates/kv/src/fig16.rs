//! The Fig. 16 workload: latency under live reconfiguration.
//!
//! "The experiment reconfigures after every 1000 client requests, starting
//! with five nodes, dropping to three, then increasing back to five" (§7).
//! [`run_fig16`] reproduces that schedule on the simulated cluster; the
//! bench binary aggregates max/mean/min over eight seeded runs, exactly the
//! series the paper plots.

use adore_core::NodeId;
use adore_schemes::SingleNode;

use crate::command::KvCommand;
use crate::sim::{Cluster, ClusterError, LatencyModel};

/// Parameters for a Fig. 16 run.
#[derive(Debug, Clone)]
pub struct Fig16Params {
    /// Client requests per configuration phase (the paper uses 1000).
    pub requests_per_phase: usize,
    /// The latency model of the simulated network.
    pub latency: LatencyModel,
}

impl Default for Fig16Params {
    fn default() -> Self {
        Fig16Params {
            requests_per_phase: 1000,
            latency: LatencyModel::default(),
        }
    }
}

/// One client request's measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Global request index (0-based).
    pub index: usize,
    /// Latency in virtual microseconds.
    pub latency_us: u64,
    /// Cluster size while the request was served.
    pub cluster_size: usize,
}

/// A complete Fig. 16 run.
#[derive(Debug, Clone)]
pub struct Fig16Run {
    /// Per-request measurements, in submission order.
    pub records: Vec<RequestRecord>,
    /// `(request index, description)` of each reconfiguration step.
    pub reconfigs: Vec<(usize, String)>,
}

/// Runs the 5 → 3 → 5 reconfiguration workload with a seeded simulated
/// network and returns per-request latencies.
///
/// The 5→3 and 3→5 transitions each take two single-node steps (the
/// single-node membership-change algorithm changes one server at a time).
///
/// # Errors
///
/// Propagates [`ClusterError`] if the simulation cannot make progress —
/// which does not happen for a loss-free latency model.
///
/// # Examples
///
/// ```
/// use adore_kv::{run_fig16, Fig16Params};
///
/// let run = run_fig16(&Fig16Params { requests_per_phase: 50, ..Fig16Params::default() }, 1)?;
/// assert_eq!(run.records.len(), 150);
/// assert_eq!(run.reconfigs.len(), 4);
/// # Ok::<(), adore_kv::ClusterError>(())
/// ```
pub fn run_fig16(params: &Fig16Params, seed: u64) -> Result<Fig16Run, ClusterError> {
    let mut cluster = Cluster::new(
        SingleNode::new([1, 2, 3, 4, 5]),
        params.latency.clone(),
        seed,
    );
    cluster.elect(NodeId(1))?;

    let mut run = Fig16Run {
        records: Vec::with_capacity(3 * params.requests_per_phase),
        reconfigs: Vec::new(),
    };
    let mut index = 0usize;
    let serve_phase = |cluster: &mut Cluster<SingleNode>,
                       run: &mut Fig16Run,
                       index: &mut usize|
     -> Result<(), ClusterError> {
        for i in 0..params.requests_per_phase {
            let latency_us = cluster.submit(KvCommand::put(
                format!("key{}", *index % 64),
                format!("v{i}"),
            ))?;
            run.records.push(RequestRecord {
                index: *index,
                latency_us,
                cluster_size: cluster.size(),
            });
            *index += 1;
        }
        Ok(())
    };

    // Phase 1: five nodes.
    serve_phase(&mut cluster, &mut run, &mut index)?;
    // Drop to three, one node at a time.
    cluster.reconfigure(SingleNode::new([1, 2, 3, 4]))?;
    run.reconfigs.push((index, "5→4: remove S5".to_string()));
    cluster.reconfigure(SingleNode::new([1, 2, 3]))?;
    run.reconfigs.push((index, "4→3: remove S4".to_string()));
    // Phase 2: three nodes.
    serve_phase(&mut cluster, &mut run, &mut index)?;
    // Grow back to five.
    cluster.reconfigure(SingleNode::new([1, 2, 3, 4]))?;
    run.reconfigs.push((index, "3→4: add S4".to_string()));
    cluster.reconfigure(SingleNode::new([1, 2, 3, 4, 5]))?;
    run.reconfigs.push((index, "4→5: add S5".to_string()));
    // Phase 3: five nodes again.
    serve_phase(&mut cluster, &mut run, &mut index)?;

    debug_assert!(cluster.verify().is_ok());
    Ok(run)
}

/// Aggregates several runs into per-request `(min, mean, max)` series —
/// the three curves of Fig. 16.
///
/// # Panics
///
/// Panics if `runs` is empty or the runs have different lengths.
#[must_use]
pub fn aggregate(runs: &[Fig16Run]) -> Vec<(u64, u64, u64)> {
    let n = runs.first().expect("at least one run").records.len();
    assert!(
        runs.iter().all(|r| r.records.len() == n),
        "runs must have equal length"
    );
    (0..n)
        .map(|i| {
            let lats: Vec<u64> = runs.iter().map(|r| r.records[i].latency_us).collect();
            let min = *lats.iter().min().expect("non-empty");
            let max = *lats.iter().max().expect("non-empty");
            let mean = lats.iter().sum::<u64>() / lats.len() as u64;
            (min, mean, max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig16Params {
        Fig16Params {
            requests_per_phase: 120,
            ..Fig16Params::default()
        }
    }

    #[test]
    fn phases_have_the_right_sizes() {
        let run = run_fig16(&small(), 3).unwrap();
        assert_eq!(run.records.len(), 360);
        assert!(run.records[..120].iter().all(|r| r.cluster_size == 5));
        assert!(run.records[120..240].iter().all(|r| r.cluster_size == 3));
        assert!(run.records[240..].iter().all(|r| r.cluster_size == 5));
        assert_eq!(
            run.reconfigs.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![120, 120, 240, 240]
        );
    }

    #[test]
    fn growth_spike_is_visible_at_the_3_to_5_transition() {
        let run = run_fig16(&small(), 7).unwrap();
        // The first request after growing back to five waits behind the
        // catch-up transfer on the leader's egress link.
        let spike = run.records[240].latency_us;
        let steady: u64 = run.records[300..360]
            .iter()
            .map(|r| r.latency_us)
            .sum::<u64>()
            / 60;
        assert!(
            spike > 2 * steady,
            "growth spike {spike}us vs steady {steady}us"
        );
    }

    #[test]
    fn aggregation_orders_min_mean_max() {
        let runs: Vec<Fig16Run> = (0..4).map(|s| run_fig16(&small(), s).unwrap()).collect();
        let agg = aggregate(&runs);
        assert_eq!(agg.len(), 360);
        for (min, mean, max) in agg {
            assert!(min <= mean && mean <= max);
        }
    }
}
