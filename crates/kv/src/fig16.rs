//! The Fig. 16 workload: latency under live reconfiguration.
//!
//! "The experiment reconfigures after every 1000 client requests, starting
//! with five nodes, dropping to three, then increasing back to five" (§7).
//! [`run_fig16`] reproduces that schedule on the simulated cluster; the
//! bench binary aggregates max/mean/min over eight seeded runs, exactly the
//! series the paper plots.

use adore_core::NodeId;
use adore_obs::HistogramSnapshot;
use adore_schemes::SingleNode;

use crate::command::KvCommand;
use crate::sim::{Cluster, ClusterError, LatencyModel};

/// Parameters for a Fig. 16 run.
#[derive(Debug, Clone)]
pub struct Fig16Params {
    /// Client requests per configuration phase (the paper uses 1000).
    pub requests_per_phase: usize,
    /// The latency model of the simulated network.
    pub latency: LatencyModel,
    /// Whether to record a trace journal of the run (off by default;
    /// tracing never perturbs the simulation, only costs wall time).
    pub tracing: bool,
}

impl Default for Fig16Params {
    fn default() -> Self {
        Fig16Params {
            requests_per_phase: 1000,
            latency: LatencyModel::default(),
            tracing: false,
        }
    }
}

/// One client request's measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Global request index (0-based).
    pub index: usize,
    /// Latency in virtual microseconds.
    pub latency_us: u64,
    /// Cluster size while the request was served.
    pub cluster_size: usize,
}

/// A complete Fig. 16 run.
#[derive(Debug, Clone)]
pub struct Fig16Run {
    /// Per-request measurements, in submission order.
    pub records: Vec<RequestRecord>,
    /// `(request index, description)` of each reconfiguration step.
    pub reconfigs: Vec<(usize, String)>,
    /// Per-phase request-latency histograms, harvested from the
    /// cluster's metrics registry after each phase: `(label, snapshot)`.
    pub phase_latency: Vec<(String, HistogramSnapshot)>,
    /// The run's trace journal (empty unless [`Fig16Params::tracing`]).
    pub trace: Vec<adore_obs::TraceEvent>,
}

/// Runs the 5 → 3 → 5 reconfiguration workload with a seeded simulated
/// network and returns per-request latencies.
///
/// The 5→3 and 3→5 transitions each take two single-node steps (the
/// single-node membership-change algorithm changes one server at a time).
///
/// # Errors
///
/// Propagates [`ClusterError`] if the simulation cannot make progress —
/// which does not happen for a loss-free latency model.
///
/// # Examples
///
/// ```
/// use adore_kv::{run_fig16, Fig16Params};
///
/// let run = run_fig16(&Fig16Params { requests_per_phase: 50, ..Fig16Params::default() }, 1)?;
/// assert_eq!(run.records.len(), 150);
/// assert_eq!(run.reconfigs.len(), 4);
/// # Ok::<(), adore_kv::ClusterError>(())
/// ```
pub fn run_fig16(params: &Fig16Params, seed: u64) -> Result<Fig16Run, ClusterError> {
    let mut cluster = Cluster::new(
        SingleNode::new([1, 2, 3, 4, 5]),
        params.latency.clone(),
        seed,
    );
    cluster.set_tracing(params.tracing);
    cluster.trace(adore_obs::EventKind::RunStart {
        name: format!("fig16-seed{seed}"),
        members: vec![1, 2, 3, 4, 5],
    });
    cluster.elect(NodeId(1))?;

    let mut run = Fig16Run {
        records: Vec::with_capacity(3 * params.requests_per_phase),
        reconfigs: Vec::new(),
        phase_latency: Vec::new(),
        trace: Vec::new(),
    };
    let mut index = 0usize;
    let serve_phase = |cluster: &mut Cluster<SingleNode>,
                       run: &mut Fig16Run,
                       index: &mut usize|
     -> Result<(), ClusterError> {
        for i in 0..params.requests_per_phase {
            let latency_us = cluster.submit(KvCommand::put(
                format!("key{}", *index % 64),
                format!("v{i}"),
            ))?;
            run.records.push(RequestRecord {
                index: *index,
                latency_us,
                cluster_size: cluster.size(),
            });
            *index += 1;
        }
        Ok(())
    };

    let harvest = |cluster: &mut Cluster<SingleNode>, run: &mut Fig16Run, label: &str| {
        let snap = cluster
            .metrics_mut()
            .take_histogram("request_latency_us")
            .unwrap_or_default()
            .snapshot();
        run.phase_latency.push((label.to_string(), snap));
    };

    // Phase 1: five nodes.
    serve_phase(&mut cluster, &mut run, &mut index)?;
    harvest(&mut cluster, &mut run, "phase 1 (5 nodes)");
    // Drop to three, one node at a time.
    cluster.reconfigure(SingleNode::new([1, 2, 3, 4]))?;
    run.reconfigs.push((index, "5→4: remove S5".to_string()));
    cluster.reconfigure(SingleNode::new([1, 2, 3]))?;
    run.reconfigs.push((index, "4→3: remove S4".to_string()));
    // Phase 2: three nodes.
    serve_phase(&mut cluster, &mut run, &mut index)?;
    harvest(&mut cluster, &mut run, "phase 2 (3 nodes)");
    // Grow back to five.
    cluster.reconfigure(SingleNode::new([1, 2, 3, 4]))?;
    run.reconfigs.push((index, "3→4: add S4".to_string()));
    cluster.reconfigure(SingleNode::new([1, 2, 3, 4, 5]))?;
    run.reconfigs.push((index, "4→5: add S5".to_string()));
    // Phase 3: five nodes again.
    serve_phase(&mut cluster, &mut run, &mut index)?;
    harvest(&mut cluster, &mut run, "phase 3 (5 nodes)");

    debug_assert!(cluster.verify().is_ok());
    if params.tracing {
        let committed = cluster.net().committed_prefix().len() as u64;
        cluster.trace(adore_obs::EventKind::Verdict {
            safe: cluster.verify().is_ok(),
            kind: None,
            detail: None,
            phase: 2,
        });
        cluster.trace(adore_obs::EventKind::RunEnd { committed });
        run.trace = cluster.take_trace();
    }
    Ok(run)
}

/// Aggregates several runs into per-request `(min, mean, max)` series —
/// the three curves of Fig. 16.
///
/// # Panics
///
/// Panics if `runs` is empty or the runs have different lengths.
#[must_use]
pub fn aggregate(runs: &[Fig16Run]) -> Vec<(u64, u64, u64)> {
    let n = runs.first().expect("at least one run").records.len();
    assert!(
        runs.iter().all(|r| r.records.len() == n),
        "runs must have equal length"
    );
    (0..n)
        .map(|i| {
            let lats: Vec<u64> = runs.iter().map(|r| r.records[i].latency_us).collect();
            let min = *lats.iter().min().expect("non-empty");
            let max = *lats.iter().max().expect("non-empty");
            let mean = lats.iter().sum::<u64>() / lats.len() as u64;
            (min, mean, max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig16Params {
        Fig16Params {
            requests_per_phase: 120,
            ..Fig16Params::default()
        }
    }

    #[test]
    fn phases_have_the_right_sizes() {
        let run = run_fig16(&small(), 3).unwrap();
        assert_eq!(run.records.len(), 360);
        assert!(run.records[..120].iter().all(|r| r.cluster_size == 5));
        assert!(run.records[120..240].iter().all(|r| r.cluster_size == 3));
        assert!(run.records[240..].iter().all(|r| r.cluster_size == 5));
        assert_eq!(
            run.reconfigs.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![120, 120, 240, 240]
        );
    }

    #[test]
    fn growth_spike_is_visible_at_the_3_to_5_transition() {
        let run = run_fig16(&small(), 7).unwrap();
        // The first request after growing back to five waits behind the
        // catch-up transfer on the leader's egress link.
        let spike = run.records[240].latency_us;
        let steady: u64 = run.records[300..360]
            .iter()
            .map(|r| r.latency_us)
            .sum::<u64>()
            / 60;
        assert!(
            spike > 2 * steady,
            "growth spike {spike}us vs steady {steady}us"
        );
    }

    #[test]
    fn phase_histograms_cover_every_request() {
        let run = run_fig16(&small(), 3).unwrap();
        assert_eq!(run.phase_latency.len(), 3);
        for (phase, (label, hist)) in run.phase_latency.iter().enumerate() {
            assert_eq!(
                hist.count, 120,
                "{label}: every request of the phase is sampled"
            );
            let records = &run.records[phase * 120..(phase + 1) * 120];
            let max = records.iter().map(|r| r.latency_us).max().unwrap();
            let min = records.iter().map(|r| r.latency_us).min().unwrap();
            assert_eq!((hist.min, hist.max), (min, max), "{label}");
            // Quantiles resolve to bucket upper bounds (so p99 may sit
            // above the exact max); only q = 1.0 is exact.
            assert!(hist.quantile(0.5) > 0);
            assert!(hist.quantile(0.99) >= hist.quantile(0.5));
            assert_eq!(hist.quantile(1.0), hist.max, "{label}");
        }
    }

    #[test]
    fn traced_runs_match_untraced_runs_and_audit_clean() {
        let plain = run_fig16(&small(), 5).unwrap();
        let traced = run_fig16(
            &Fig16Params {
                tracing: true,
                ..small()
            },
            5,
        )
        .unwrap();
        // Tracing is invisible to the simulation.
        assert_eq!(plain.records, traced.records);
        assert_eq!(plain.phase_latency, traced.phase_latency);
        assert!(plain.trace.is_empty());
        assert!(!traced.trace.is_empty());
        // The journal certifies: no structural errors, no divergence,
        // and the recorded verdict matches the audit's.
        let report = adore_obs::audit_events(&traced.trace);
        assert!(report.consistent, "errors: {:?}", report.errors);
        assert!(report.divergence.is_none());
        assert_eq!(report.live_safe, Some(true));
    }

    #[test]
    fn aggregation_orders_min_mean_max() {
        let runs: Vec<Fig16Run> = (0..4).map(|s| run_fig16(&small(), s).unwrap()).collect();
        let agg = aggregate(&runs);
        assert_eq!(agg.len(), 360);
        for (min, mean, max) in agg {
            assert!(min <= mean && mean <= max);
        }
    }
}
