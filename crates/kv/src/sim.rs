//! A discrete-event cluster simulation over the executable Raft model.
//!
//! The paper evaluates an OCaml extraction of its Raft specification on an
//! EC2 cluster (Fig. 16). This module is the simulated-testbed substitute:
//! the same protocol logic (`adore_raft::NetState`) driven by a virtual
//! clock, with per-message latencies drawn from a configurable
//! [`LatencyModel`] — base network delay, uniform jitter, sporadic spikes
//! (the "normal range of sporadic latency spikes" visible in the paper's
//! plot), and a per-missing-entry state-transfer cost that makes adding a
//! fresh replica measurably more expensive than removing one, exactly the
//! asymmetry Fig. 16 reports.
//!
//! Determinism: everything (latencies included) derives from the seed, so
//! experiment runs are exactly reproducible.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{de, Serialize};

use adore_core::{Configuration, NodeId, ReconfigGuard, Timestamp};
use adore_obs::{EventKind, Metrics, TraceEvent, Tracer};
use adore_raft::{EventOutcome, Log, MsgId, NetEvent, NetState, Role};
use adore_storage::{DiskFault, DurabilityPolicy, Recovery, StorageViolation, Wal, WalRecord};

use crate::command::{KvCommand, KvStore};
use crate::links::LinkMatrix;

/// Canonical compact-JSON rendering of a value, for embedding protocol
/// payloads in trace events. Total (no panic): a value the vendored
/// serde cannot render becomes an empty string, which the trace
/// auditor will surface as a mismatch rather than silently pass.
fn json_of<T: Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap_or_default()
}

/// Microsecond virtual-time latency distribution for one message hop.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Base one-way request-plus-acknowledgement cost.
    pub base_us: u64,
    /// Uniform jitter added on top, `[0, jitter_us)`.
    pub jitter_us: u64,
    /// Percent chance of a sporadic spike.
    pub spike_pct: u32,
    /// Spike magnitude range (uniform), added on top.
    pub spike_us: (u64, u64),
    /// Leader-side serialization cost per log entry the recipient is
    /// missing: large catch-up transfers occupy the leader's egress link
    /// and delay subsequent broadcasts (the growth spike of Fig. 16).
    pub per_missing_entry_us: u64,
    /// Fixed leader-side serialization cost per message.
    pub send_us: u64,
    /// Percent chance that a message copy is lost in flight (recovered by
    /// the sender's retransmission).
    pub drop_pct: u32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_us: 400,
            jitter_us: 150,
            spike_pct: 1,
            spike_us: (3_000, 12_000),
            per_missing_entry_us: 12,
            send_us: 20,
            drop_pct: 0,
        }
    }
}

impl LatencyModel {
    /// Flight latency of one message (network only).
    fn flight(&self, rng: &mut StdRng) -> u64 {
        let mut lat = self.base_us;
        if self.jitter_us > 0 {
            lat += rng.gen_range(0..self.jitter_us);
        }
        if self.spike_pct > 0 && rng.gen_range(0..100) < self.spike_pct {
            lat += rng.gen_range(self.spike_us.0..=self.spike_us.1);
        }
        lat
    }

    /// Leader-side serialization cost of one message.
    fn send_cost(&self, missing_entries: usize) -> u64 {
        self.send_us + self.per_missing_entry_us * missing_entries as u64
    }
}

/// Why a cluster operation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No leader is established.
    NoLeader,
    /// The protocol rejected the operation (e.g. a guard).
    Rejected,
    /// The event queue drained before the operation completed.
    Stalled,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ClusterError::NoLeader => "no leader established",
            ClusterError::Rejected => "operation rejected by the protocol",
            ClusterError::Stalled => "simulation stalled before completion",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ClusterError {}

/// A simulated replicated KV cluster with a virtual clock.
///
/// # Examples
///
/// ```
/// use adore_core::NodeId;
/// use adore_kv::{Cluster, KvCommand, LatencyModel};
/// use adore_schemes::SingleNode;
///
/// let mut cluster = Cluster::new(SingleNode::new([1, 2, 3]), LatencyModel::default(), 7);
/// cluster.elect(NodeId(1))?;
/// let latency = cluster.submit(KvCommand::put("a", "1"))?;
/// assert!(latency > 0);
/// assert_eq!(cluster.committed_store().get("a"), Some("1"));
/// # Ok::<(), adore_kv::ClusterError>(())
/// ```
#[derive(Debug)]
pub struct Cluster<C: Configuration> {
    net: NetState<C, KvCommand>,
    now_us: u64,
    queue: BinaryHeap<Reverse<(u64, u64, MsgId, NodeId)>>,
    seq: u64,
    rng: StdRng,
    latency: LatencyModel,
    leader: Option<NodeId>,
    /// Virtual time at which each sender's egress link becomes free.
    egress_free: std::collections::BTreeMap<NodeId, u64>,
    /// Per-link fault state (partitions and loss overrides).
    links: LinkMatrix,
    /// Retransmission-timeout scale in percent (100 = nominal). Fault
    /// injection skews it to model clock drift between the leader's
    /// timer and the network.
    timeout_scale_pct: u32,
    /// Per-replica durable storage: the WALs, the policy they run
    /// under, and the recovery-invariant checker's findings.
    storage: Storage<C>,
    /// The structured trace journal (disabled by default). Recording
    /// never touches `rng` or the clock, so a traced run is
    /// bit-identical to an untraced one.
    tracer: Tracer,
    /// The metrics registry: message/WAL traffic counters and the
    /// per-request latency histogram the experiments report.
    metrics: Metrics,
    /// Queue-sequence → trace event id of the matching `MsgSend`, so a
    /// delivery can causally link its `MsgRecv` to the exact copy that
    /// arrived. Populated only while tracing.
    send_ids: BTreeMap<u64, u64>,
}

/// The cluster's durable-storage state: one write-ahead log per
/// replica, journaled by state diff around every protocol event.
///
/// Under [`DurabilityPolicy::strict`] every acknowledgement — a vote
/// grant, a replication ack, a leader's self-ack — is preceded by a WAL
/// sync of the acking replica (the sync-before-ack rule), so recovery
/// replays exactly what was promised. The ablated policies relax one
/// rule each; the nemesis storage hunts demonstrate that each
/// relaxation breaks committed-prefix agreement.
#[derive(Debug)]
struct Storage<C: Configuration> {
    policy: DurabilityPolicy,
    /// When set, the recovery-invariant checker runs: at every ack
    /// point the acking replica's volatile `(time, log, commit_len)`
    /// must equal the strict replay of its synced WAL, and every
    /// recovery must install exactly that replay.
    certify: bool,
    wals: BTreeMap<NodeId, Wal<C, KvCommand>>,
    violations: Vec<StorageViolation>,
    /// Replicas that fail-stopped on a checksum mismatch: they stay
    /// down for the rest of the run (corruption is not locally
    /// repairable).
    wrecked: BTreeSet<NodeId>,
}

impl<C: Configuration> Default for Storage<C> {
    fn default() -> Self {
        Storage {
            policy: DurabilityPolicy::strict(),
            certify: false,
            wals: BTreeMap::new(),
            violations: Vec::new(),
            wrecked: BTreeSet::new(),
        }
    }
}

// The serde bounds ship configurations through the WAL record format
// (every scheme in `adore-schemes` satisfies them).
impl<C> Cluster<C>
where
    C: Configuration + Serialize + de::DeserializeOwned,
{
    /// Creates a cluster over `conf0` with the full reconfiguration guard.
    #[must_use]
    pub fn new(conf0: C, latency: LatencyModel, seed: u64) -> Self {
        Cluster::with_guard(conf0, ReconfigGuard::all(), latency, seed)
    }

    /// Creates a cluster with an explicit [`ReconfigGuard`] — the hook
    /// the fault-injection engine uses for guard-ablation campaigns.
    #[must_use]
    pub fn with_guard(conf0: C, guard: ReconfigGuard, latency: LatencyModel, seed: u64) -> Self {
        Cluster {
            net: NetState::new(conf0, guard),
            now_us: 0,
            queue: BinaryHeap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            latency,
            leader: None,
            egress_free: BTreeMap::new(),
            links: LinkMatrix::new(),
            timeout_scale_pct: 100,
            storage: Storage::default(),
            tracer: Tracer::disabled(),
            metrics: Metrics::new(),
            send_ids: BTreeMap::new(),
        }
    }

    /// Current virtual time in microseconds.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// The current leader, if one is established.
    #[must_use]
    pub fn leader(&self) -> Option<NodeId> {
        self.leader
    }

    /// The protocol state (for inspection and verification).
    #[must_use]
    pub fn net(&self) -> &NetState<C, KvCommand> {
        &self.net
    }

    /// Turns trace recording on or off. Off (the default) costs
    /// nothing: no events, no payload serialization, no RNG or clock
    /// use either way.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// The trace journal recorded so far.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Takes the recorded trace events, resetting the journal.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.send_ids.clear();
        self.tracer.take()
    }

    /// Records a root trace event stamped with the current virtual
    /// time. Returns its sequence number, or `None` when tracing is
    /// off. Exposed so drivers (the nemesis engine, experiments) can
    /// interleave run-level events with the cluster's own.
    pub fn trace(&mut self, kind: EventKind) -> Option<u64> {
        self.tracer.record(self.now_us, kind)
    }

    /// Whether trace recording is on (callers should gate expensive
    /// event-payload construction on this).
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics registry (e.g. for an experiment
    /// to snapshot and reset a phase's latency histogram).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The current cluster size (members of the leader's configuration).
    #[must_use]
    pub fn size(&self) -> usize {
        self.leader
            .and_then(|l| self.net.config_of(l))
            .map_or(0, |c| c.members().len())
    }

    /// Materializes the store from the committed log prefix.
    #[must_use]
    pub fn committed_store(&self) -> KvStore {
        let mut store = KvStore::new();
        for entry in self.net.committed_prefix() {
            if let adore_raft::Command::Method(cmd) = &entry.cmd {
                store.apply(cmd);
            }
        }
        store
    }

    /// Broadcasts the newest message to the given recipients: each copy is
    /// first serialized on the sender's (shared) egress link — so a large
    /// catch-up transfer delays everything the sender broadcasts next —
    /// then flies with a sampled network latency.
    fn broadcast(&mut self, msg: MsgId, recipients: impl IntoIterator<Item = NodeId>) {
        let Some(request) = self.net.message(msg) else {
            return;
        };
        let from = request.from();
        let shipped_len = request.log_len();
        let msg_kind = request.kind_name();
        // Wire-byte accounting serializes the request, so it only runs
        // while tracing (the overhead shows up in the E11 table).
        let wire_bytes = if self.tracer.is_enabled() {
            json_of(request).len() as u64
        } else {
            0
        };
        let mut link_free = *self.egress_free.get(&from).unwrap_or(&0);
        link_free = link_free.max(self.now_us);
        for to in recipients {
            let missing =
                shipped_len.saturating_sub(self.net.server(to).map_or(0, |s| s.log.len()));
            link_free += self.latency.send_cost(missing);
            if self.links.is_cut(from, to) {
                self.metrics.inc("net.msgs_dropped");
                if self.tracer.is_enabled() {
                    self.trace(EventKind::MsgDrop {
                        msg: msg.0,
                        from: from.0,
                        to: to.0,
                        reason: "cut".to_string(),
                    });
                }
                continue; // link down at send time; the sender will retransmit
            }
            // Per-link loss decision: the link override, else the scalar
            // model default. With no override active this consumes the RNG
            // exactly like the pre-matrix scalar gate did.
            let drop_pct = self
                .links
                .drop_pct(from, to)
                .unwrap_or(self.latency.drop_pct);
            if drop_pct > 0 && self.rng.gen_range(0..100) < drop_pct {
                self.metrics.inc("net.msgs_dropped");
                if self.tracer.is_enabled() {
                    self.trace(EventKind::MsgDrop {
                        msg: msg.0,
                        from: from.0,
                        to: to.0,
                        reason: "loss".to_string(),
                    });
                }
                continue; // lost in flight; the sender will retransmit
            }
            let arrival = link_free + self.latency.flight(&mut self.rng);
            self.seq += 1;
            self.queue.push(Reverse((arrival, self.seq, msg, to)));
            self.metrics.inc("net.msgs_sent");
            self.metrics.add("net.entries_shipped", shipped_len as u64);
            self.metrics.add("net.msg_bytes", wire_bytes);
            if self.tracer.is_enabled() {
                if let Some(id) = self.trace(EventKind::MsgSend {
                    msg: msg.0,
                    from: from.0,
                    to: to.0,
                    kind: msg_kind.to_string(),
                    dup: false,
                }) {
                    self.send_ids.insert(self.seq, id);
                }
            }
        }
        self.egress_free.insert(from, link_free);
    }

    /// Pops and applies one delivery; returns `false` when the queue is
    /// empty.
    ///
    /// Reachability is re-checked at delivery time: a message sent while
    /// a link was up is lost if the link is cut when it would arrive, and
    /// an asymmetric cut of the return path loses the acknowledgement
    /// (see [`NetState::deliver_via`]).
    fn step_event(&mut self) -> bool {
        let Some(Reverse((t, qseq, msg, to))) = self.queue.pop() else {
            return false;
        };
        self.now_us = self.now_us.max(t);
        let send_id = self.send_ids.remove(&qseq);
        let _ = self.deliver_logged(msg, to, send_id);
        true
    }

    /// Delivers one message through the link matrix, journaling the
    /// durable consequences: the recipient's adoption is written to its
    /// WAL and synced *before* the synchronous acknowledgement counts
    /// (the sync-before-ack rule — the ack already happened inside the
    /// atomic step, but a crash between the two is impossible in this
    /// model, so syncing here is equivalent); if the ack advanced the
    /// sender's commit watermark, that advance is journaled and synced
    /// too, so a later leader crash cannot roll the watermark back
    /// below acknowledged writes.
    fn deliver_logged(&mut self, msg: MsgId, to: NodeId, send_id: Option<u64>) -> EventOutcome {
        let from = self.net.message(msg).map(|r| r.from());
        let before_to = self.snapshot(to);
        let before_from = from.filter(|f| *f != to).map(|f| (f, self.snapshot(f)));
        let outcome = if self.links.is_quiet() {
            self.net.step(&NetEvent::Deliver { msg, to })
        } else {
            let links = &self.links;
            self.net
                .deliver_via(msg, to, &|from, to| !links.is_cut(from, to))
        };
        self.metrics.inc("net.msgs_delivered");
        let recv_id = self.tracer.record_linked(
            self.now_us,
            send_id,
            EventKind::MsgRecv {
                msg: msg.0,
                to: to.0,
                applied: outcome == EventOutcome::Applied,
            },
        );
        if outcome != EventOutcome::Applied {
            return outcome; // rejected deliveries change no durable state
        }
        // The recipient adopted state and acknowledged: journal, sync,
        // and (when certifying) check the ack against the mirror.
        self.journal_diff(to, before_to, recv_id);
        self.sync_wal(to);
        self.audit_ack_durability(to);
        // The sender's watermark may have advanced on the ack. Not an
        // ack point itself, but left unsynced it would regress across a
        // leader crash, silently forgetting acked commits.
        if let Some((f, before)) = before_from {
            if self.journal_diff(f, before, recv_id) {
                self.sync_wal(f);
            }
        }
        outcome
    }

    /// Applies one local protocol event, journaling its durable
    /// consequences. `Elect` (the candidate's self-vote) and `Commit`
    /// (the leader's self-ack) are ack points: the WAL is synced and,
    /// when certifying, checked. `Invoke`/`Reconfig` appends are
    /// journaled but *not* synced — nothing was promised yet; the sync
    /// rides on the commit broadcast that follows.
    fn step_logged(&mut self, event: &NetEvent<C, KvCommand>) -> EventOutcome {
        let touched = event.touches(|m| self.net.message(m).expect("sent message").from());
        let before: Vec<_> = touched.iter().map(|&n| (n, self.snapshot(n))).collect();
        let outcome = self.net.step(event);
        let (op, step_nid) = match event {
            NetEvent::Elect { nid } => ("step.elect", nid.0),
            NetEvent::Commit { nid } => ("step.commit", nid.0),
            NetEvent::Invoke { nid, .. } => ("step.invoke", nid.0),
            NetEvent::Reconfig { nid, .. } => ("step.reconfig", nid.0),
            NetEvent::Crash { nid } => ("step.crash", nid.0),
            NetEvent::Recover { nid } => ("step.recover", nid.0),
            NetEvent::Deliver { to, .. } => ("step.deliver", to.0),
        };
        self.metrics.inc(op);
        let step_id = if self.tracer.is_enabled() {
            self.trace(EventKind::LocalStep {
                op: op["step.".len()..].to_string(),
                nid: step_nid,
                applied: outcome == EventOutcome::Applied,
            })
        } else {
            None
        };
        if outcome != EventOutcome::Applied {
            return outcome;
        }
        let is_ack_point = matches!(event, NetEvent::Elect { .. } | NetEvent::Commit { .. });
        for (nid, prev) in before {
            self.journal_diff(nid, prev, step_id);
            if is_ack_point {
                self.sync_wal(nid);
                self.audit_ack_durability(nid);
            }
        }
        outcome
    }

    /// The durable projection of a replica's volatile state.
    #[allow(clippy::type_complexity)]
    fn snapshot(&self, nid: NodeId) -> Option<(Timestamp, Log<C, KvCommand>, usize)> {
        self.net
            .server(nid)
            .map(|s| (s.time, s.log.clone(), s.commit_len))
    }

    /// The WAL of `nid`, created (with a synced boot record) on first use.
    fn wal(&mut self, nid: NodeId) -> &mut Wal<C, KvCommand> {
        self.storage.wals.entry(nid).or_insert_with(|| Wal::new(nid))
    }

    /// Appends the difference between `before` and the replica's current
    /// durable projection to its WAL (term adoption, truncation of a
    /// divergent suffix, new entries, watermark advance). Returns
    /// whether anything was written. When tracing, the diff is also
    /// emitted as a [`EventKind::StateDelta`] (the auditor's
    /// reconstruction source) and a [`EventKind::WalAppend`] carrying the
    /// WAL traffic it caused, both causally linked to `parent` (the
    /// delivery or local step that produced the change).
    fn journal_diff(
        &mut self,
        nid: NodeId,
        before: Option<(Timestamp, Log<C, KvCommand>, usize)>,
        parent: Option<u64>,
    ) -> bool {
        let Some(s) = self.net.server(nid) else {
            return false;
        };
        let (b_time, b_log, b_commit) = before.unwrap_or((Timestamp::ZERO, Vec::new(), 0));
        let mut records: Vec<WalRecord<C, KvCommand>> = Vec::new();
        if s.time != b_time {
            records.push(WalRecord::Term { time: s.time.0 });
        }
        let prefix = s
            .log
            .iter()
            .zip(b_log.iter())
            .take_while(|(a, b)| a == b)
            .count();
        if b_log.len() > prefix {
            records.push(WalRecord::Truncate {
                len: prefix as u64,
            });
        }
        for entry in &s.log[prefix..] {
            records.push(WalRecord::Append {
                entry: entry.clone(),
            });
        }
        if s.commit_len != b_commit {
            records.push(WalRecord::CommitLen {
                len: s.commit_len as u64,
            });
        }
        if records.is_empty() {
            return false;
        }
        let delta = if self.tracer.is_enabled() {
            let mut term = None;
            let mut truncate = None;
            let mut append = Vec::new();
            let mut commit_len = None;
            for rec in &records {
                match rec {
                    WalRecord::Term { time } => term = Some(*time),
                    WalRecord::Truncate { len } => truncate = Some(*len),
                    WalRecord::Append { entry } => append.push(json_of(entry)),
                    WalRecord::CommitLen { len } => commit_len = Some(*len),
                    _ => {}
                }
            }
            Some(EventKind::StateDelta {
                nid: nid.0,
                term,
                truncate,
                append,
                commit_len,
            })
        } else {
            None
        };
        let wal = self.wal(nid);
        let before_stats = wal.stats();
        for rec in &records {
            wal.append(rec);
        }
        let after_stats = wal.stats();
        let wrote_records = (after_stats.records - before_stats.records) as u64;
        let wrote_bytes = (after_stats.bytes_written - before_stats.bytes_written) as u64;
        self.metrics.add("wal.records", wrote_records);
        self.metrics.add("wal.bytes", wrote_bytes);
        if let Some(kind) = delta {
            let delta_id = self.tracer.record_linked(self.now_us, parent, kind);
            self.tracer.record_linked(
                self.now_us,
                delta_id,
                EventKind::WalAppend {
                    nid: nid.0,
                    records: wrote_records,
                    bytes: wrote_bytes,
                },
            );
        }
        true
    }

    /// Syncs a replica's WAL — unless the sync-before-ack rule is
    /// ablated, in which case acknowledgements outrun durability and a
    /// crash forgets them.
    fn sync_wal(&mut self, nid: NodeId) {
        if self.storage.policy.sync_before_ack {
            self.wal(nid).sync();
            self.metrics.inc("wal.syncs");
            if self.tracer.is_enabled() {
                self.trace(EventKind::WalSync { nid: nid.0 });
            }
        }
    }

    /// The recovery invariant at an ack point: the acking replica's
    /// volatile `(time, log, commit_len)` must equal the strict replay
    /// of its synced WAL (the mirror) — otherwise a crash at this very
    /// instant would forget the promise just made.
    fn audit_ack_durability(&mut self, nid: NodeId) {
        if !self.storage.certify {
            return;
        }
        let Some(s) = self.net.server(nid) else {
            return;
        };
        let Some(wal) = self.storage.wals.get(&nid) else {
            return;
        };
        let m = wal.mirror();
        if s.time != m.time || s.log != m.log || s.commit_len != m.commit_len.min(m.log.len()) {
            self.storage
                .violations
                .push(StorageViolation::AckNotDurable { nid: nid.0 });
        }
    }

    /// Runs deliveries until `done` holds or the queue drains.
    fn run_until(&mut self, mut done: impl FnMut(&NetState<C, KvCommand>) -> bool) -> bool {
        while !done(&self.net) {
            if !self.step_event() {
                return done(&self.net);
            }
        }
        true
    }

    /// Elects `nid` leader: starts a candidacy and plays deliveries until
    /// it wins.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Rejected`] if the candidacy is refused (non-member),
    /// [`ClusterError::Stalled`] if the votes cannot elect it.
    pub fn elect(&mut self, nid: NodeId) -> Result<(), ClusterError> {
        let msg = MsgId(self.net.messages().len() as u32);
        if self.step_logged(&NetEvent::Elect { nid }) != EventOutcome::Applied {
            return Err(ClusterError::Rejected);
        }
        let members: Vec<NodeId> = self
            .net
            .config_of(nid)
            .map(|c| c.members().into_iter().filter(|m| *m != nid).collect())
            .unwrap_or_default();
        self.broadcast(msg, members);
        let elected = self.run_until(|net| net.server(nid).is_some_and(|s| s.role == Role::Leader));
        if elected {
            self.leader = Some(nid);
            self.metrics.inc("cluster.elections_won");
            if self.tracer.is_enabled() {
                let term = self.net.server(nid).map_or(0, |s| s.time.0);
                self.trace(EventKind::LeaderElected { nid: nid.0, term });
            }
            Ok(())
        } else {
            Err(ClusterError::Stalled)
        }
    }

    /// Replicates the leader's current log and waits until `target_len`
    /// entries are committed, retransmitting (with a timeout penalty) when
    /// message loss starves the quorum; returns the virtual time taken.
    fn replicate_until_committed(&mut self, target_len: usize) -> Result<u64, ClusterError> {
        self.replicate_rounds(target_len, 32)
    }

    /// [`Self::replicate_until_committed`] with an explicit round budget
    /// — the per-request timeout hook: a caller that bounds the rounds
    /// gets a prompt [`ClusterError::Stalled`] under a partition instead
    /// of 32 fruitless retransmissions.
    fn replicate_rounds(
        &mut self,
        target_len: usize,
        max_rounds: u32,
    ) -> Result<u64, ClusterError> {
        let leader = self.leader.ok_or(ClusterError::NoLeader)?;
        let start = self.now_us;
        // With any drop rate below 100% this converges long before the
        // default 32-round budget.
        for round in 0..max_rounds {
            let msg = MsgId(self.net.messages().len() as u32);
            let outcome = self.step_logged(&NetEvent::Commit { nid: leader });
            if outcome != EventOutcome::Applied {
                return Err(ClusterError::Rejected);
            }
            let members: Vec<NodeId> = self
                .net
                .config_of(leader)
                .map(|c| c.members().into_iter().filter(|m| *m != leader).collect())
                .unwrap_or_default();
            self.broadcast(msg, members);
            let committed = self.run_until(|net| {
                net.server(leader)
                    .is_some_and(|s| s.commit_len >= target_len)
            });
            if committed {
                return Ok(self.now_us - start);
            }
            // Retransmission timeout: the leader notices the missing acks.
            // The scale models clock skew between its timer and the net.
            self.now_us += self.latency.base_us * 4 * u64::from(self.timeout_scale_pct) / 100;
            let _ = round;
        }
        Err(ClusterError::Stalled)
    }

    /// Submits one client command through the leader and waits for its
    /// commit; returns the request latency in virtual microseconds.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoLeader`] without an established leader;
    /// [`ClusterError::Rejected`]/[`ClusterError::Stalled`] on protocol or
    /// quorum failures.
    pub fn submit(&mut self, cmd: KvCommand) -> Result<u64, ClusterError> {
        let leader = self.leader.ok_or(ClusterError::NoLeader)?;
        if self.step_logged(&NetEvent::Invoke {
            nid: leader,
            method: cmd,
        }) != EventOutcome::Applied
        {
            return Err(ClusterError::Rejected);
        }
        let target = self.net.server(leader).expect("leader exists").log.len();
        let res = self.replicate_until_committed(target);
        self.note_request(&res);
        res
    }

    /// Records the outcome of one client request in the metrics registry:
    /// success/failure counters plus the per-request latency histogram
    /// that backs the Fig. 16 percentile report.
    fn note_request(&mut self, res: &Result<u64, ClusterError>) {
        match res {
            Ok(lat) => {
                self.metrics.inc("requests.ok");
                self.metrics.observe("request_latency_us", *lat);
            }
            Err(_) => {
                self.metrics.inc("requests.failed");
            }
        }
    }

    /// Crashes a replica: it stops receiving until [`Cluster::recover`].
    /// If it was the leader, the cluster has no leader until the next
    /// [`Cluster::elect`].
    ///
    /// In-flight deliveries addressed to the crashed node are purged from
    /// the event queue: a crashed process's NIC does not buffer packets
    /// for its resurrection, and the sender's retransmission loop covers
    /// redelivery after [`Cluster::recover`]. (Before this purge, stale
    /// queued deliveries would land the instant the node recovered,
    /// bypassing the retransmission path entirely.)
    pub fn fail(&mut self, nid: NodeId) {
        // A plain process crash is a clean power loss at the disk level:
        // the WAL's unsynced tail is gone, synced bytes survive. (Under
        // the strict policy everything acked was synced, so this is
        // exactly the benign crash the certified model assumes.)
        self.fail_with(nid, &DiskFault::LoseTail);
    }

    /// [`Cluster::fail`] with an explicit crash-time [`DiskFault`]: the
    /// replica goes down and its WAL suffers the given fault — a torn
    /// record at the crash point, a bit-flip in a synced record, or
    /// total media loss. What the replica remembers when it
    /// [`Cluster::recover`]s is whatever a replay of the surviving
    /// bytes reconstructs.
    pub fn fail_with(&mut self, nid: NodeId, fault: &DiskFault) {
        let _ = self.net.step(&NetEvent::Crash { nid });
        self.wal(nid).crash(fault);
        self.metrics.inc("cluster.crashes");
        if self.tracer.is_enabled() {
            self.trace(EventKind::Crash {
                nid: nid.0,
                disk: fault.kind_name().to_string(),
            });
        }
        if self.leader == Some(nid) {
            self.leader = None;
        }
        let drained = std::mem::take(&mut self.queue);
        let send_ids = &mut self.send_ids;
        self.queue = drained
            .into_iter()
            .filter(|Reverse((_, qseq, _, to))| {
                let keep = *to != nid;
                if !keep {
                    send_ids.remove(qseq);
                }
                keep
            })
            .collect();
    }

    /// Recovers a crashed replica by replaying its write-ahead log:
    /// volatile `(term, log, commit watermark)` are rebuilt from the
    /// surviving records under the cluster's [`DurabilityPolicy`] —
    /// nothing is assumed to have persisted beyond what was synced.
    ///
    /// - An intact replay rejoins the replica as a follower with the
    ///   replayed state.
    /// - Total WAL loss ([`Recovery::DataLoss`]) rejoins it as a
    ///   permanently *abstaining* follower: it has forgotten which votes
    ///   it granted, so it may never vote or campaign again, but it
    ///   still catches up through ordinary retransmission.
    /// - A checksum mismatch ([`Recovery::Corrupt`]) fail-stops the
    ///   replica for the remainder of the run.
    ///
    /// When the recovery invariant is being certified, the installed
    /// state is checked against the strict replay of the synced WAL; a
    /// mismatch is recorded as [`StorageViolation::UnfaithfulRecovery`].
    pub fn recover(&mut self, nid: NodeId) {
        if self.storage.wrecked.contains(&nid) {
            return; // fail-stopped on corruption: stays down
        }
        if !self.net.server(nid).is_some_and(|s| s.crashed) {
            return; // nothing to recover
        }
        let policy = self.storage.policy;
        let recovery = self.wal(nid).recover(&policy);
        let outcome_name = recovery.kind_name();
        match recovery {
            Recovery::Intact(state) => {
                let _ = self.net.install_recovery(
                    nid,
                    state.time,
                    state.log,
                    state.commit_len,
                    false,
                );
                self.metrics.inc("recover.intact");
                if self.storage.certify {
                    // Certification must not panic mid-recovery (L2): a
                    // replica or WAL that vanished between install and
                    // audit is itself an unfaithful recovery, recorded
                    // as a violation rather than aborting the run.
                    let faithful = match (self.net.server(nid), self.storage.wals.get(&nid)) {
                        (Some(s), Some(wal)) => {
                            let m = wal.mirror();
                            s.time == m.time
                                && s.log == m.log
                                && s.commit_len == m.commit_len.min(m.log.len())
                        }
                        _ => false,
                    };
                    if !faithful {
                        self.storage
                            .violations
                            .push(StorageViolation::UnfaithfulRecovery { nid: nid.0 });
                    }
                }
            }
            Recovery::DataLoss => {
                let _ = self
                    .net
                    .install_recovery(nid, Timestamp::ZERO, Vec::new(), 0, true);
                self.metrics.inc("recover.data_loss");
            }
            Recovery::Corrupt { .. } => {
                self.storage.wrecked.insert(nid);
                self.metrics.inc("recover.corrupt");
            }
        }
        if self.tracer.is_enabled() {
            // The event carries the *installed* state (what the replica
            // actually woke up with), so the trace auditor can check
            // recovery faithfulness without re-reading any disk. A
            // fail-stopped replica installs nothing; its event records
            // the empty state.
            let (term, log, commit_len) = match self.net.server(nid) {
                Some(s) if outcome_name != "corrupt" => (
                    s.time.0,
                    s.log.iter().map(json_of).collect(),
                    s.commit_len as u64,
                ),
                _ => (0, Vec::new(), 0),
            };
            // adore-lint: allow(L8, reason = "trace() returns the event's journal sequence number; recovery links no children to it")
            self.trace(EventKind::WalRecover {
                nid: nid.0,
                outcome: outcome_name.to_string(),
                term,
                log,
                commit_len,
            });
        }
    }

    /// Performs a live ("hot") reconfiguration to `new_config` and waits
    /// for the configuration entry to commit; returns the virtual time
    /// taken.
    ///
    /// The leader keeps serving requests before and after — this is the
    /// paper's hot-reconfiguration path, guarded by R1⁺/R2/R3.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Rejected`] if a guard refuses the change (e.g. R3
    /// before the first commit of the term).
    pub fn reconfigure(&mut self, new_config: C) -> Result<u64, ClusterError> {
        let leader = self.leader.ok_or(ClusterError::NoLeader)?;
        if self.step_logged(&NetEvent::Reconfig {
            nid: leader,
            config: new_config,
        }) != EventOutcome::Applied
        {
            return Err(ClusterError::Rejected);
        }
        let target = self.net.server(leader).expect("leader exists").log.len();
        let took = self.replicate_until_committed(target)?;
        self.metrics.inc("cluster.reconfigs_committed");
        if self.tracer.is_enabled() {
            let members = self
                .net
                .config_of(leader)
                .map(|c| c.members().into_iter().map(|n| n.0).collect())
                .unwrap_or_default();
            self.trace(EventKind::ReconfigCommitted {
                nid: leader.0,
                members,
            });
        }
        Ok(took)
    }

    /// Performs a **stop-the-world** reconfiguration (the Stoppable
    /// Paxos / WormSpace style of §8): after the configuration entry
    /// commits, the cluster refuses further client requests until *every*
    /// member of the new configuration holds the leader's full log — the
    /// "copy the logs to the new configuration" barrier. Returns the total
    /// virtual time the world was stopped.
    ///
    /// Contrast with [`Cluster::reconfigure`], which returns as soon as a
    /// quorum commits and keeps serving throughout — the paper's hot path.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::reconfigure`], plus [`ClusterError::Stalled`] if
    /// stragglers cannot be brought up to date.
    pub fn reconfigure_stop_the_world(&mut self, new_config: C) -> Result<u64, ClusterError> {
        let start = self.now_us;
        self.reconfigure(new_config)?;
        let leader = self.leader.ok_or(ClusterError::NoLeader)?;
        // Barrier: re-broadcast until every (non-crashed) member matches
        // the leader's log.
        for _ in 0..32 {
            let target_len = self.net.server(leader).expect("leader exists").log.len();
            let members: Vec<NodeId> = self
                .net
                .config_of(leader)
                .map(|c| c.members().into_iter().collect())
                .unwrap_or_default();
            let all_synced = |net: &NetState<C, KvCommand>| {
                members.iter().all(|m| {
                    net.server(*m)
                        .is_some_and(|s| s.crashed || s.log.len() >= target_len)
                })
            };
            if all_synced(self.net()) {
                return Ok(self.now_us - start);
            }
            let msg = MsgId(self.net.messages().len() as u32);
            if self.step_logged(&NetEvent::Commit { nid: leader }) != EventOutcome::Applied {
                return Err(ClusterError::Rejected);
            }
            let recipients: Vec<NodeId> =
                members.iter().copied().filter(|m| *m != leader).collect();
            self.broadcast(msg, recipients);
            self.run_until(all_synced);
        }
        Err(ClusterError::Stalled)
    }

    /// Serves a read through the leader's committed prefix.
    ///
    /// Linearizable under a stable leader: the leader's `commit_len` only
    /// covers entries acknowledged by a quorum of its configuration, and a
    /// competing leader would first have to preempt this one through a
    /// quorum that the read's leader would learn about on its next commit
    /// round. (A production system adds leases or a read-index round; the
    /// simulation's virtual clock makes the stable-leader assumption
    /// exact within a run.)
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoLeader`] without an established leader.
    pub fn get(&self, key: &str) -> Result<Option<String>, ClusterError> {
        let leader = self.leader.ok_or(ClusterError::NoLeader)?;
        let server = self.net.server(leader).ok_or(ClusterError::NoLeader)?;
        let mut store = KvStore::new();
        for entry in &server.log[..server.commit_len] {
            if let adore_raft::Command::Method(cmd) = &entry.cmd {
                store.apply(cmd);
            }
        }
        Ok(store.get(key).map(str::to_string))
    }

    /// Checks network-level replicated state safety.
    ///
    /// # Errors
    ///
    /// The pair of servers whose committed prefixes disagree.
    pub fn verify(&self) -> Result<(), (NodeId, NodeId)> {
        self.net.check_log_safety()
    }
}

impl<C: Configuration> Cluster<C> {
    /// The model's base per-hop latency (exposed for tests/benches).
    #[must_use]
    pub fn latency_base(&self) -> u64 {
        self.latency.base_us
    }
}

/// Fault-injection hooks (the `adore-nemesis` surface).
///
/// These methods expose the simulation's network to an external fault
/// engine: link-state manipulation, in-flight message tampering
/// (duplication, reordering), timeout skew, and bounded-patience request
/// submission. None of them are used by the normal-path API above, and a
/// cluster that never calls them behaves bit-identically to one built
/// before these hooks existed.
impl<C> Cluster<C>
where
    C: Configuration + Serialize + de::DeserializeOwned,
{
    /// Read access to the per-link fault state.
    #[must_use]
    pub fn links(&self) -> &LinkMatrix {
        &self.links
    }

    /// Mutable access to the per-link fault state (cut/heal/override).
    pub fn links_mut(&mut self) -> &mut LinkMatrix {
        &mut self.links
    }

    /// Mutable access to the latency model (e.g. to raise `drop_pct`
    /// mid-run).
    pub fn latency_mut(&mut self) -> &mut LatencyModel {
        &mut self.latency
    }

    /// Scales the leader's retransmission timeout, in percent of nominal
    /// (100). Values below 100 model an impatient (fast) clock, above 100
    /// a slow one — the clock-skew axis of the fault space. Clamped to
    /// `[10, 1000]` so a schedule cannot zero the timeout out.
    pub fn set_timeout_scale_pct(&mut self, pct: u32) {
        self.timeout_scale_pct = pct.clamp(10, 1_000);
    }

    /// Number of queued (undelivered) messages addressed to `nid`.
    #[must_use]
    pub fn in_flight_to(&self, nid: NodeId) -> usize {
        self.queue
            .iter()
            .filter(|Reverse((_, _, _, to))| *to == nid)
            .count()
    }

    /// Total number of queued (undelivered) messages.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Processes queued deliveries for `duration_us` of virtual time,
    /// then advances the clock to the deadline. Used between fault phases
    /// to let the network settle (or demonstrably fail to).
    pub fn run_idle(&mut self, duration_us: u64) {
        let deadline = self.now_us + duration_us;
        while let Some(Reverse((t, _, _, _))) = self.queue.peek() {
            if *t > deadline {
                break;
            }
            self.step_event();
        }
        self.now_us = self.now_us.max(deadline);
    }

    /// Duplicates up to `copies` randomly chosen in-flight messages: each
    /// duplicate is re-enqueued to the same recipient with a freshly
    /// sampled flight latency. Models a duplicating network path; the
    /// protocol's `UnknownMessage`/idempotent-delivery handling must make
    /// this a no-op at the state level.
    pub fn duplicate_in_flight(&mut self, copies: usize) {
        let snapshot: Vec<(MsgId, NodeId)> = self
            .queue
            .iter()
            .map(|Reverse((_, _, msg, to))| (*msg, *to))
            .collect();
        if snapshot.is_empty() {
            return;
        }
        for _ in 0..copies {
            let (msg, to) = snapshot[self.rng.gen_range(0..snapshot.len())];
            let arrival = self.now_us + self.latency.flight(&mut self.rng);
            self.seq += 1;
            self.queue.push(Reverse((arrival, self.seq, msg, to)));
            self.metrics.inc("net.msgs_duplicated");
            if self.tracer.is_enabled() {
                let (from, kind) = self
                    .net
                    .message(msg)
                    .map_or((0, "unknown"), |r| (r.from().0, r.kind_name()));
                if let Some(id) = self.trace(EventKind::MsgSend {
                    msg: msg.0,
                    from,
                    to: to.0,
                    kind: kind.to_string(),
                    dup: true,
                }) {
                    self.send_ids.insert(self.seq, id);
                }
            }
        }
    }

    /// Reorders the in-flight queue: every queued arrival time is
    /// re-jittered by a uniform amount in `[0, window_us)`, so deliveries
    /// that were ordered may now race. With FIFO-free protocols this must
    /// be invisible at the state level.
    pub fn reorder_in_flight(&mut self, window_us: u64) {
        if window_us == 0 {
            return;
        }
        let drained = std::mem::take(&mut self.queue);
        for Reverse((t, old_seq, msg, to)) in drained.into_iter() {
            let arrival = t + self.rng.gen_range(0..window_us);
            self.seq += 1;
            // Keep the causal send→recv link alive across the re-keying.
            if let Some(id) = self.send_ids.remove(&old_seq) {
                self.send_ids.insert(self.seq, id);
            }
            self.queue.push(Reverse((arrival, self.seq, msg, to)));
        }
    }

    /// Adopts whichever non-crashed server currently holds the `Leader`
    /// role at the newest term as this driver's submission target.
    /// Returns the adopted leader, or `None` (and clears the target) if no
    /// live leader exists. This is the client-side leader-redirect step:
    /// after crashes and elections run by a fault schedule, the driver
    /// re-discovers where to send requests.
    pub fn adopt_leader(&mut self) -> Option<NodeId> {
        let best = self
            .net
            .servers()
            .filter(|(_, s)| s.role == Role::Leader && !s.crashed)
            .max_by_key(|(_, s)| s.time)
            .map(|(n, _)| n);
        self.leader = best;
        best
    }

    /// The log index of the session entry carrying `(client, seq)` in
    /// the current leader's log, if any.
    fn find_session(&self, leader: NodeId, client: u64, seq: u64) -> Option<usize> {
        let server = self.net.server(leader)?;
        server.log.iter().position(|e| {
            matches!(
                &e.cmd,
                adore_raft::Command::Method(m) if m.session_id() == Some((client, seq))
            )
        })
    }

    /// Submits a command wrapped in an exactly-once session envelope.
    ///
    /// This is the retry-safe submission path: before invoking, the
    /// leader's log is scanned for an entry already carrying
    /// `(client, seq)`. A committed hit is acknowledged immediately
    /// without appending anything (the retried write applied exactly
    /// once); an uncommitted hit waits for *that* entry to commit
    /// instead of appending a second copy — the duplicate-apply hazard
    /// of retrying a [`ClusterError::Stalled`] submission raw.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::submit`].
    pub fn submit_session(
        &mut self,
        client: u64,
        seq: u64,
        cmd: KvCommand,
    ) -> Result<u64, ClusterError> {
        self.submit_session_with_rounds(client, seq, cmd, 32)
    }

    /// [`Cluster::submit_session`] with a bounded retransmission budget.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::submit`].
    pub fn submit_session_with_rounds(
        &mut self,
        client: u64,
        seq: u64,
        cmd: KvCommand,
        max_rounds: u32,
    ) -> Result<u64, ClusterError> {
        let leader = self.leader.ok_or(ClusterError::NoLeader)?;
        if let Some(idx) = self.find_session(leader, client, seq) {
            self.metrics.inc("requests.deduped");
            let commit = self.net.server(leader).expect("leader exists").commit_len;
            if idx < commit {
                // Already committed: the retry is acknowledged, the
                // operation is not applied again.
                return Ok(0);
            }
            // In the log but uncommitted: drive that entry to commit
            // rather than appending a second copy.
            let res = self.replicate_rounds(idx + 1, max_rounds);
            self.note_request(&res);
            return res;
        }
        if self.step_logged(&NetEvent::Invoke {
            nid: leader,
            method: KvCommand::session(client, seq, cmd),
        }) != EventOutcome::Applied
        {
            return Err(ClusterError::Rejected);
        }
        let target = self.net.server(leader).expect("leader exists").log.len();
        let res = self.replicate_rounds(target, max_rounds);
        self.note_request(&res);
        res
    }

    /// [`Cluster::submit`] with a bounded retransmission budget: after
    /// `max_rounds` rounds without commit the request fails with
    /// [`ClusterError::Stalled`] instead of burning the full default
    /// budget — the per-request timeout of a client under partition.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::submit`].
    pub fn submit_with_rounds(
        &mut self,
        cmd: KvCommand,
        max_rounds: u32,
    ) -> Result<u64, ClusterError> {
        let leader = self.leader.ok_or(ClusterError::NoLeader)?;
        if self.step_logged(&NetEvent::Invoke {
            nid: leader,
            method: cmd,
        }) != EventOutcome::Applied
        {
            return Err(ClusterError::Rejected);
        }
        let target = self.net.server(leader).expect("leader exists").log.len();
        let res = self.replicate_rounds(target, max_rounds);
        self.note_request(&res);
        res
    }

    /// Sets the durability policy every replica's WAL runs under. The
    /// storage-ablation hook: schedules carry a policy, and each
    /// non-strict policy must be huntable to a committed-prefix
    /// violation. Takes effect for subsequent syncs and recoveries.
    pub fn set_durability(&mut self, policy: DurabilityPolicy) {
        self.storage.policy = policy;
    }

    /// The active durability policy.
    #[must_use]
    pub fn durability(&self) -> DurabilityPolicy {
        self.storage.policy
    }

    /// Turns the recovery-invariant checker on or off (off by default:
    /// ablation hunts want the *protocol-level* divergence to surface,
    /// not the storage-level early warning).
    pub fn set_certify_storage(&mut self, on: bool) {
        self.storage.certify = on;
    }

    /// Violations the recovery-invariant checker has recorded so far.
    pub fn storage_violations(&self) -> &[StorageViolation] {
        &self.storage.violations
    }

    /// Whether `nid` fail-stopped on WAL corruption (permanently down).
    #[must_use]
    pub fn is_wrecked(&self, nid: NodeId) -> bool {
        self.storage.wrecked.contains(&nid)
    }

    /// Summed WAL traffic across all replicas:
    /// `(records, syncs, bytes_written)`.
    #[must_use]
    pub fn wal_traffic(&self) -> (usize, usize, usize) {
        self.storage
            .wals
            .values()
            .map(Wal::stats)
            .fold((0, 0, 0), |(r, s, b), st| {
                (r + st.records, s + st.syncs, b + st.bytes_written)
            })
    }

    /// Appends a command at the leader *without* starting a replication
    /// round: the command sits in the leader's log (and WAL buffer)
    /// exactly as a request caught by a crash mid-flight would. Under
    /// the strict policy it was never acked, so losing it is safe; it
    /// is the canonical unsynced tail for torn-write fault injection.
    /// Returns whether the append applied.
    pub fn orphan_append(&mut self, cmd: KvCommand) -> bool {
        let Some(leader) = self.leader else {
            return false;
        };
        self.step_logged(&NetEvent::Invoke {
            nid: leader,
            method: cmd,
        }) == EventOutcome::Applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_schemes::SingleNode;

    fn cluster(seed: u64) -> Cluster<SingleNode> {
        Cluster::new(
            SingleNode::new([1, 2, 3, 4, 5]),
            LatencyModel::default(),
            seed,
        )
    }

    #[test]
    fn elect_then_serve_requests() {
        let mut c = cluster(1);
        c.elect(NodeId(1)).unwrap();
        assert_eq!(c.leader(), Some(NodeId(1)));
        assert_eq!(c.size(), 5);
        for i in 0..20 {
            let lat = c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap();
            assert!(lat >= c.latency_base());
        }
        assert_eq!(c.committed_store().len(), 20);
        c.verify().unwrap();
    }

    #[test]
    fn hot_reconfiguration_shrink_and_grow() {
        let mut c = cluster(2);
        c.elect(NodeId(1)).unwrap();
        c.submit(KvCommand::put("warm", "up")).unwrap();
        // Shrink 5 -> 4 -> 3, one node at a time (single-node scheme).
        c.reconfigure(SingleNode::new([1, 2, 3, 4])).unwrap();
        c.reconfigure(SingleNode::new([1, 2, 3])).unwrap();
        assert_eq!(c.size(), 3);
        c.submit(KvCommand::put("small", "cluster")).unwrap();
        // Grow back 3 -> 4 -> 5.
        c.reconfigure(SingleNode::new([1, 2, 3, 4])).unwrap();
        c.reconfigure(SingleNode::new([1, 2, 3, 4, 5])).unwrap();
        assert_eq!(c.size(), 5);
        c.submit(KvCommand::put("big", "again")).unwrap();
        c.verify().unwrap();
        let store = c.committed_store();
        assert_eq!(store.get("warm"), Some("up"));
        assert_eq!(store.get("small"), Some("cluster"));
        assert_eq!(store.get("big"), Some("again"));
    }

    /// Session entries in `nid`'s log carrying `(client, seq)`.
    fn session_copies(c: &Cluster<SingleNode>, nid: u32, client: u64, seq: u64) -> usize {
        c.net()
            .server(NodeId(nid))
            .map(|s| {
                s.log
                    .iter()
                    .filter(|e| {
                        matches!(
                            &e.cmd,
                            adore_raft::Command::Method(m)
                                if m.session_id() == Some((client, seq))
                        )
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    #[test]
    fn raw_resubmission_double_applies_but_sessioned_does_not() {
        let mut c = cluster(31);
        c.elect(NodeId(1)).unwrap();
        // The hazard: re-submitting after an ambiguous outcome with the
        // raw path appends (and applies) the command a second time.
        c.submit(KvCommand::put("raw", "1")).unwrap();
        c.submit(KvCommand::put("raw", "1")).unwrap();
        let raw_copies = c
            .net()
            .server(NodeId(1))
            .unwrap()
            .log
            .iter()
            .filter(|e| {
                matches!(&e.cmd, adore_raft::Command::Method(KvCommand::Put { key, .. }) if key == "raw")
            })
            .count();
        assert_eq!(raw_copies, 2, "raw retry is the duplicate-apply hazard");
        // The sessioned path recognizes the retry of a committed write
        // and acknowledges without appending.
        c.submit_session(9, 1, KvCommand::put("s", "1")).unwrap();
        let lat = c.submit_session(9, 1, KvCommand::put("s", "1")).unwrap();
        assert_eq!(lat, 0, "dedup hit acks instantly");
        assert_eq!(session_copies(&c, 1, 9, 1), 1);
        assert_eq!(c.metrics().counter("requests.deduped"), 1);
        c.verify().unwrap();
    }

    #[test]
    fn sessioned_retry_waits_for_the_inflight_entry() {
        let mut c = cluster(33);
        c.elect(NodeId(1)).unwrap();
        c.submit(KvCommand::put("warm", "up")).unwrap();
        // Partition the leader away: the submission appends to its log
        // but cannot commit — the ambiguous outcome a client retries.
        let all: Vec<NodeId> = (1..=5).map(NodeId).collect();
        c.links_mut().isolate(NodeId(1), all);
        let err = c
            .submit_session_with_rounds(9, 4, KvCommand::put("a", "1"), 2)
            .unwrap_err();
        assert_eq!(err, ClusterError::Stalled);
        assert_eq!(session_copies(&c, 1, 9, 4), 1);
        // Heal and retry with the same (client, seq): the in-flight
        // entry is driven to commit; no second copy is appended.
        c.links_mut().heal_all();
        c.submit_session_with_rounds(9, 4, KvCommand::put("a", "1"), 8)
            .unwrap();
        assert_eq!(session_copies(&c, 1, 9, 4), 1);
        assert_eq!(c.committed_store().get("a"), Some("1"));
        c.verify().unwrap();
    }

    #[test]
    fn r3_rejects_reconfig_before_first_commit_of_term() {
        let mut c = cluster(3);
        c.elect(NodeId(1)).unwrap();
        let err = c.reconfigure(SingleNode::new([1, 2, 3, 4])).unwrap_err();
        assert_eq!(err, ClusterError::Rejected);
    }

    #[test]
    fn lossy_network_recovers_by_retransmission() {
        let mut c = Cluster::new(
            SingleNode::new([1, 2, 3]),
            LatencyModel {
                drop_pct: 40,
                ..LatencyModel::default()
            },
            8,
        );
        // Elections may need retries under loss; retry until elected.
        let mut elected = false;
        for _ in 0..20 {
            if c.elect(NodeId(1)).is_ok() {
                elected = true;
                break;
            }
        }
        assert!(elected, "leader election under 40% loss");
        for i in 0..30 {
            c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap();
        }
        assert_eq!(c.committed_store().len(), 30);
        c.verify().unwrap();
    }

    #[test]
    fn reads_see_exactly_the_committed_writes() {
        let mut c = cluster(5);
        c.elect(NodeId(1)).unwrap();
        assert_eq!(c.get("a").unwrap(), None);
        c.submit(KvCommand::put("a", "1")).unwrap();
        assert_eq!(c.get("a").unwrap(), Some("1".to_string()));
        c.submit(KvCommand::put("a", "2")).unwrap();
        c.submit(KvCommand::delete("a")).unwrap();
        assert_eq!(c.get("a").unwrap(), None);
        c.fail(NodeId(1));
        assert_eq!(c.get("a"), Err(ClusterError::NoLeader));
    }

    #[test]
    fn leader_failover_preserves_the_store() {
        let mut c = cluster(6);
        c.elect(NodeId(1)).unwrap();
        for i in 0..40 {
            c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap();
        }
        // The leader crashes; requests fail until a failover election.
        c.fail(NodeId(1));
        assert_eq!(
            c.submit(KvCommand::put("lost", "x")),
            Err(ClusterError::NoLeader)
        );
        c.elect(NodeId(2)).unwrap();
        c.submit(KvCommand::put("after", "failover")).unwrap();
        let store = c.committed_store();
        assert_eq!(store.get("k0"), Some("v"));
        assert_eq!(store.get("after"), Some("failover"));
        assert_eq!(store.get("lost"), None);
        c.verify().unwrap();
        // The old leader recovers as a follower and catches up with the
        // next replication round.
        c.recover(NodeId(1));
        c.submit(KvCommand::put("rejoin", "ok")).unwrap();
        c.verify().unwrap();
    }

    #[test]
    fn wiped_replica_rejoins_abstaining_and_catches_up_by_retransmission() {
        let mut c = Cluster::new(SingleNode::new([1, 2, 3]), LatencyModel::default(), 11);
        c.set_certify_storage(true);
        c.elect(NodeId(1)).unwrap();
        for i in 0..5 {
            c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap();
        }
        // S3's disk is wiped: even the boot record is gone.
        c.fail_with(NodeId(3), &DiskFault::WipeAll);
        c.recover(NodeId(3));
        let s3 = c.net().server(NodeId(3)).unwrap();
        assert!(s3.abstaining, "total WAL loss renounces voting");
        assert!(s3.log.is_empty(), "everything it knew is gone");
        // It must never campaign with forgotten state...
        assert_eq!(c.elect(NodeId(3)).unwrap_err(), ClusterError::Rejected);
        // ...and its vote must not count: with S2 down, S1 + the
        // abstainer cannot form a quorum of {1,2,3}.
        c.fail(NodeId(2));
        assert_eq!(c.elect(NodeId(1)).unwrap_err(), ClusterError::Stalled);
        // With a real voter back, elections work again.
        c.recover(NodeId(2));
        c.elect(NodeId(1)).unwrap();
        c.submit(KvCommand::put("after", "wipe")).unwrap();
        c.run_idle(100_000);
        // The wiped replica caught up purely by replication traffic.
        let leader_log = c.net().server(NodeId(1)).unwrap().log.clone();
        let s3 = c.net().server(NodeId(3)).unwrap();
        assert_eq!(s3.log, leader_log, "full catch-up by retransmission");
        assert!(s3.abstaining, "catch-up does not restore voting rights");
        c.verify().unwrap();
        assert!(c.storage_violations().is_empty(), "strict policy certifies clean");
    }

    #[test]
    fn stop_the_world_waits_for_every_member() {
        let mut c = cluster(7);
        c.elect(NodeId(1)).unwrap();
        for i in 0..200 {
            c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap();
        }
        c.reconfigure(SingleNode::new([1, 2, 3, 4])).unwrap();
        let hot = {
            // Hot growth: back to 5; returns at quorum.
            let mut h = cluster(7);
            h.elect(NodeId(1)).unwrap();
            for i in 0..200 {
                h.submit(KvCommand::put(format!("k{i}"), "v")).unwrap();
            }
            h.reconfigure(SingleNode::new([1, 2, 3, 4])).unwrap();
            h.submit(KvCommand::put("x", "y")).unwrap();
            h.reconfigure(SingleNode::new([1, 2, 3, 4, 5])).unwrap()
        };
        c.submit(KvCommand::put("x", "y")).unwrap();
        let stw = c
            .reconfigure_stop_the_world(SingleNode::new([1, 2, 3, 4, 5]))
            .unwrap();
        // The barrier waits for the fresh node's full catch-up transfer,
        // which the hot path overlaps with serving.
        assert!(stw > hot, "stop-the-world {stw}us vs hot {hot}us");
        // Every member of the final configuration holds the full log.
        let len = c.net().server(NodeId(1)).unwrap().log.len();
        for n in 1..=5 {
            assert_eq!(c.net().server(NodeId(n)).unwrap().log.len(), len);
        }
        c.verify().unwrap();
    }

    #[test]
    fn determinism_under_a_fixed_seed() {
        let run = |seed| {
            let mut c = cluster(seed);
            c.elect(NodeId(1)).unwrap();
            (0..10)
                .map(|i| c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn crash_purges_in_flight_messages_to_the_crashed_node() {
        let mut c = Cluster::new(
            SingleNode::new([1, 2, 3, 4, 5]),
            LatencyModel {
                // Heavy loss keeps stragglers: commits return at quorum
                // while retransmissions to slow members stay queued.
                drop_pct: 30,
                ..LatencyModel::default()
            },
            11,
        );
        let mut elected = false;
        for _ in 0..20 {
            if c.elect(NodeId(1)).is_ok() {
                elected = true;
                break;
            }
        }
        assert!(elected);
        let mut saw_straggler = false;
        for i in 0..60 {
            c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap();
            if c.in_flight_to(NodeId(4)) > 0 {
                saw_straggler = true;
                c.fail(NodeId(4));
                break;
            }
        }
        assert!(saw_straggler, "no straggler delivery ever queued for node 4");
        // The purge: nothing remains addressed to the crashed node, and
        // deliveries to other nodes are untouched.
        assert_eq!(c.in_flight_to(NodeId(4)), 0);
        // Recovery gets its state from retransmission, not stale queue
        // entries; the cluster keeps working and stays safe.
        c.recover(NodeId(4));
        c.submit(KvCommand::put("after", "crash")).unwrap();
        assert_eq!(c.get("after").unwrap(), Some("crash".to_string()));
        c.verify().unwrap();
    }

    #[test]
    fn symmetric_partition_blocks_commit_until_heal() {
        let mut c = cluster(12);
        c.elect(NodeId(1)).unwrap();
        c.submit(KvCommand::put("pre", "partition")).unwrap();
        // Leader in the minority: {1, 2} | {3, 4, 5}.
        let groups: [&[NodeId]; 2] = [&[NodeId(1), NodeId(2)], &[NodeId(3), NodeId(4), NodeId(5)]];
        c.links_mut().partition(&groups);
        let err = c
            .submit_with_rounds(KvCommand::put("during", "partition"), 3)
            .unwrap_err();
        assert_eq!(err, ClusterError::Stalled);
        // Heal: the next round's retransmission commits both the stuck
        // entry and a fresh one.
        c.links_mut().heal_all();
        c.submit(KvCommand::put("post", "heal")).unwrap();
        let store = c.committed_store();
        assert_eq!(store.get("pre"), Some("partition"));
        assert_eq!(store.get("during"), Some("partition"));
        assert_eq!(store.get("post"), Some("heal"));
        c.verify().unwrap();
    }

    #[test]
    fn asymmetric_ack_cut_starves_quorum_until_heal() {
        let mut c = cluster(13);
        c.elect(NodeId(1)).unwrap();
        c.submit(KvCommand::put("pre", "cut")).unwrap();
        // Payloads still flow 1 -> {2..5}; only the ack paths back to the
        // leader are severed. Followers keep appending, the leader starves.
        for n in 2..=5 {
            c.links_mut().cut_one_way(NodeId(n), NodeId(1));
        }
        let err = c
            .submit_with_rounds(KvCommand::put("during", "cut"), 3)
            .unwrap_err();
        assert_eq!(err, ClusterError::Stalled);
        // Followers actually hold the entry (the cut is ack-only).
        assert!(c.net().server(NodeId(2)).unwrap().log.len() >= 2);
        c.links_mut().heal_all();
        c.submit(KvCommand::put("post", "heal")).unwrap();
        let store = c.committed_store();
        assert_eq!(store.get("during"), Some("cut"));
        assert_eq!(store.get("post"), Some("heal"));
        c.verify().unwrap();
    }

    #[test]
    fn quiet_link_matrix_preserves_the_rng_stream() {
        // A cluster whose LinkMatrix is never touched must behave
        // bit-identically to the pre-matrix code path: same latencies,
        // same RNG consumption. Guarded by comparing a run against one
        // that cuts and fully heals a link before starting (heal_all
        // restores quiet, so both must match).
        let run = |touch: bool| {
            let mut c = cluster(14);
            if touch {
                c.links_mut().cut_both_ways(NodeId(1), NodeId(2));
                c.links_mut().heal_all();
            }
            c.elect(NodeId(1)).unwrap();
            (0..10)
                .map(|i| c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn tracing_is_invisible_to_the_simulation() {
        // The observability layer must never perturb the run: a traced
        // cluster and an untraced one on the same seed must produce the
        // same latencies (same RNG stream, same schedule).
        let run = |traced: bool| {
            let mut c = cluster(14);
            c.set_tracing(traced);
            c.elect(NodeId(1)).unwrap();
            let lats: Vec<u64> = (0..10)
                .map(|i| c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap())
                .collect();
            c.fail(NodeId(1));
            c.recover(NodeId(1));
            (lats, c.take_trace())
        };
        let (plain, empty) = run(false);
        let (traced, events) = run(true);
        assert_eq!(plain, traced);
        assert!(empty.is_empty());
        assert!(!events.is_empty());
        // The journal round-trips through JSONL and certifies clean.
        let text = adore_obs::to_jsonl(&events);
        let parsed = adore_obs::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), events.len());
        let report = adore_obs::audit_events(&events);
        assert!(report.consistent, "audit failed: {:?}", report.errors);
        assert!(report.divergence.is_none());
    }

    #[test]
    fn metrics_count_protocol_work() {
        let mut c = cluster(14);
        c.elect(NodeId(1)).unwrap();
        for i in 0..5 {
            c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap();
        }
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("cluster.elections_won"), 1);
        assert_eq!(snap.counter("requests.ok"), 5);
        assert!(snap.counter("net.msgs_sent") > 0);
        assert!(snap.counter("wal.syncs") > 0);
        let lat = snap.histogram("request_latency_us").unwrap();
        assert_eq!(lat.count, 5);
        assert!(lat.quantile(0.5) >= c.latency_base());
    }

    #[test]
    fn duplicates_and_reordering_are_invisible_to_the_state() {
        let mut c = cluster(15);
        c.elect(NodeId(1)).unwrap();
        for i in 0..10 {
            c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap();
        }
        // Inject duplicates and reorderings while a commit round is in
        // flight, then let everything drain.
        c.submit(KvCommand::put("x", "1")).unwrap();
        c.duplicate_in_flight(8);
        c.reorder_in_flight(5_000);
        c.run_idle(100_000);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.get("x").unwrap(), Some("1".to_string()));
        c.submit(KvCommand::put("y", "2")).unwrap();
        c.verify().unwrap();
    }

    #[test]
    fn adopt_leader_finds_the_newest_live_leader() {
        let mut c = cluster(16);
        c.elect(NodeId(1)).unwrap();
        c.submit(KvCommand::put("a", "1")).unwrap();
        c.fail(NodeId(1));
        assert_eq!(c.adopt_leader(), None);
        c.elect(NodeId(2)).unwrap();
        c.recover(NodeId(1));
        // Node 1 still has role Leader at the older term; adoption must
        // pick the newer leader.
        assert_eq!(c.adopt_leader(), Some(NodeId(2)));
        c.submit(KvCommand::put("b", "2")).unwrap();
        c.verify().unwrap();
    }

    #[test]
    fn growth_delays_nearby_requests_more_than_shrink() {
        // Adding a fresh node ships it the whole log over the leader's
        // egress link, delaying the broadcasts right after — the Fig. 16
        // growth spike. Removal has no such transfer. The margin is of
        // the same order as the jitter, so this asserts on a fixed seed
        // (runs are exactly reproducible per seed).
        let mut c = cluster(3);
        c.elect(NodeId(1)).unwrap();
        for i in 0..800 {
            c.submit(KvCommand::put(format!("k{i}"), "v")).unwrap();
        }
        c.reconfigure(SingleNode::new([1, 2, 3, 4])).unwrap();
        let after_shrink = c.submit(KvCommand::put("s", "v")).unwrap();
        for i in 0..5 {
            c.submit(KvCommand::put(format!("x{i}"), "v")).unwrap();
        }
        c.reconfigure(SingleNode::new([1, 2, 3, 4, 5])).unwrap();
        let after_grow = c.submit(KvCommand::put("g", "v")).unwrap();
        assert!(
            after_grow > after_shrink,
            "post-grow {after_grow}us should exceed post-shrink {after_shrink}us"
        );
    }
}
