//! The replicated key-value application: commands and the deterministic
//! state machine they drive.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A client command against the replicated store.
///
/// # Examples
///
/// ```
/// use adore_kv::{KvCommand, KvStore};
///
/// let mut store = KvStore::new();
/// store.apply(&KvCommand::put("a", "1"));
/// assert_eq!(store.get("a"), Some("1"));
/// store.apply(&KvCommand::delete("a"));
/// assert_eq!(store.get("a"), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KvCommand {
    /// Insert or replace a mapping.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: String,
    },
    /// Remove a mapping.
    Delete {
        /// The key.
        key: String,
    },
    /// A command wrapped in an exactly-once session envelope. The
    /// `(client, seq)` pair travels inside the replicated entry, so any
    /// replica — including a freshly elected leader — can recognize a
    /// retry of an operation that already sits in its log and
    /// acknowledge it without appending a second copy.
    Session {
        /// The issuing client's id.
        client: u64,
        /// The client's per-session request sequence number.
        seq: u64,
        /// The wrapped command.
        cmd: Box<KvCommand>,
    },
}

impl KvCommand {
    /// Builds a `Put` command.
    #[must_use]
    pub fn put(key: impl Into<String>, value: impl Into<String>) -> Self {
        KvCommand::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Builds a `Delete` command.
    #[must_use]
    pub fn delete(key: impl Into<String>) -> Self {
        KvCommand::Delete { key: key.into() }
    }

    /// Wraps a command in an exactly-once session envelope.
    #[must_use]
    pub fn session(client: u64, seq: u64, cmd: KvCommand) -> Self {
        KvCommand::Session {
            client,
            seq,
            cmd: Box::new(cmd),
        }
    }

    /// The `(client, seq)` pair of a session envelope, if this is one.
    #[must_use]
    pub fn session_id(&self) -> Option<(u64, u64)> {
        match self {
            KvCommand::Session { client, seq, .. } => Some((*client, *seq)),
            _ => None,
        }
    }
}

/// The deterministic key-value state machine.
///
/// Applying the same command sequence always yields the same store — the
/// application-level consequence of replicated state safety.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KvStore {
    map: BTreeMap<String, String>,
}

impl KvStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Applies one committed command.
    pub fn apply(&mut self, cmd: &KvCommand) {
        match cmd {
            KvCommand::Put { key, value } => {
                self.map.insert(key.clone(), value.clone());
            }
            KvCommand::Delete { key } => {
                self.map.remove(key);
            }
            KvCommand::Session { cmd, .. } => {
                // The envelope carries identity, not semantics: dedup
                // happens at submission time, before a command enters
                // the log, so applying simply unwraps.
                self.apply(cmd);
            }
        }
    }

    /// Applies a whole committed log.
    pub fn apply_all<'a, I: IntoIterator<Item = &'a KvCommand>>(&mut self, cmds: I) {
        for cmd in cmds {
            self.apply(cmd);
        }
    }

    /// Reads a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Number of live mappings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no mappings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_round_trip() {
        let mut store = KvStore::new();
        store.apply(&KvCommand::put("k", "v1"));
        store.apply(&KvCommand::put("k", "v2"));
        assert_eq!(store.get("k"), Some("v2"));
        assert_eq!(store.len(), 1);
        store.apply(&KvCommand::delete("k"));
        assert!(store.is_empty());
    }

    #[test]
    fn session_envelope_applies_its_payload() {
        let mut store = KvStore::new();
        let cmd = KvCommand::session(7, 1, KvCommand::put("k", "v"));
        assert_eq!(cmd.session_id(), Some((7, 1)));
        assert_eq!(KvCommand::put("k", "v").session_id(), None);
        store.apply(&cmd);
        assert_eq!(store.get("k"), Some("v"));
    }

    #[test]
    fn same_log_same_store() {
        let log = vec![
            KvCommand::put("a", "1"),
            KvCommand::put("b", "2"),
            KvCommand::delete("a"),
        ];
        let mut s1 = KvStore::new();
        let mut s2 = KvStore::new();
        s1.apply_all(&log);
        s2.apply_all(&log);
        assert_eq!(s1, s2);
    }
}
