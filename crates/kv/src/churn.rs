//! Availability under replica churn: why reconfiguration exists.
//!
//! The paper's opening motivation: "server failures are inevitable in
//! distributed settings, so a method for safely and efficiently adjusting
//! the membership is essential" (§1). This module makes that claim
//! measurable: replicas crash permanently one by one while a closed-loop
//! client keeps writing. **Without** reconfiguration the cluster dies as
//! soon as a majority of the *original* membership is gone; **with** hot
//! reconfiguration the leader votes crashed members out and spares in,
//! and service continues indefinitely.

use adore_core::{Configuration, NodeId};
use adore_schemes::SingleNode;

use crate::command::KvCommand;
use crate::sim::{Cluster, ClusterError, LatencyModel};

/// Parameters for a churn run.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// Requests between permanent crashes.
    pub crash_every: usize,
    /// Whether the leader repairs the membership (votes the crashed node
    /// out and a spare in) after each crash.
    pub repair: bool,
    /// Spare node ids available for repair.
    pub spares: Vec<u32>,
    /// Requests to attempt in total.
    pub total_requests: usize,
    /// The latency model.
    pub latency: LatencyModel,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            crash_every: 50,
            repair: true,
            spares: (6..=20).collect(),
            total_requests: 400,
            latency: LatencyModel::default(),
        }
    }
}

/// Outcome of a churn run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnReport {
    /// Requests committed before the run ended.
    pub completed: usize,
    /// Crashes injected.
    pub crashes: usize,
    /// Leader failovers performed.
    pub failovers: usize,
    /// Membership repairs (remove + add pairs) performed.
    pub repairs: usize,
    /// The request index at which the cluster became permanently
    /// unavailable, if it did.
    pub unavailable_at: Option<usize>,
}

/// Runs the churn workload on a five-node cluster.
///
/// Crashes strike the highest-numbered live member (periodically the
/// leader itself, forcing a failover). With `repair`, the leader removes
/// the crashed node and adds a spare, one single-node step each.
///
/// # Examples
///
/// ```
/// use adore_kv::{run_churn, ChurnParams};
///
/// let params = ChurnParams { crash_every: 30, total_requests: 150, ..ChurnParams::default() };
/// let with_repair = run_churn(&params, 1);
/// assert_eq!(with_repair.unavailable_at, None);
///
/// let without = run_churn(&ChurnParams { repair: false, ..params }, 1);
/// assert!(without.unavailable_at.is_some());
/// ```
#[must_use]
pub fn run_churn(params: &ChurnParams, seed: u64) -> ChurnReport {
    let mut cluster = Cluster::new(SingleNode::new(1..=5), params.latency.clone(), seed);
    let mut report = ChurnReport {
        completed: 0,
        crashes: 0,
        failovers: 0,
        repairs: 0,
        unavailable_at: None,
    };
    let mut crashed: Vec<NodeId> = Vec::new();
    let mut spares: Vec<u32> = params.spares.clone();
    if cluster.elect(NodeId(1)).is_err() {
        report.unavailable_at = Some(0);
        return report;
    }

    /// Elects any live member as leader; `None` if nobody can win.
    fn failover(cluster: &mut Cluster<SingleNode>, crashed: &[NodeId]) -> Option<NodeId> {
        let members = cluster.net().servers().map(|(n, _)| n).collect::<Vec<_>>();
        for candidate in members {
            if crashed.contains(&candidate) {
                continue;
            }
            // Up to a few timestamp bumps: votes can be split briefly.
            for _ in 0..4 {
                if cluster.elect(candidate).is_ok() {
                    return Some(candidate);
                }
            }
        }
        None
    }

    for i in 0..params.total_requests {
        // Inject a permanent crash every `crash_every` requests.
        if i > 0 && i % params.crash_every == 0 {
            let leader = cluster.leader();
            let victim = cluster
                .net()
                .servers()
                .map(|(n, _)| n)
                .filter(|n| !crashed.contains(n))
                .filter(|n| {
                    cluster
                        .net()
                        .config_of(leader.unwrap_or(*n))
                        .is_some_and(|c| c.members().contains(n))
                })
                .max();
            if let Some(victim) = victim {
                cluster.fail(victim);
                crashed.push(victim);
                report.crashes += 1;
                if Some(victim) == leader {
                    match failover(&mut cluster, &crashed) {
                        Some(_) => report.failovers += 1,
                        None => {
                            report.unavailable_at = Some(i);
                            return report;
                        }
                    }
                }
                if params.repair {
                    // Vote the victim out, then a spare in. R3 holds: the
                    // current term has committed entries (or we commit one).
                    if cluster.submit(KvCommand::put("repair", "barrier")).is_err() {
                        report.unavailable_at = Some(i);
                        return report;
                    }
                    report.completed += 1;
                    let current = cluster
                        .leader()
                        .and_then(|l| cluster.net().config_of(l))
                        .expect("leader has a configuration");
                    let without = SingleNode::from_set(
                        current
                            .members()
                            .into_iter()
                            .filter(|n| *n != victim)
                            .collect(),
                    );
                    if cluster.reconfigure(without.clone()).is_err() {
                        report.unavailable_at = Some(i);
                        return report;
                    }
                    if let Some(spare) = spares.pop() {
                        if cluster.reconfigure(without.with(NodeId(spare))).is_err() {
                            report.unavailable_at = Some(i);
                            return report;
                        }
                    }
                    report.repairs += 1;
                }
            }
        }
        match cluster.submit(KvCommand::put(format!("k{i}"), "v")) {
            Ok(_) => report.completed += 1,
            Err(ClusterError::NoLeader) => match failover(&mut cluster, &crashed) {
                Some(_) => {
                    report.failovers += 1;
                    if cluster.submit(KvCommand::put(format!("k{i}"), "v")).is_ok() {
                        report.completed += 1;
                    } else {
                        report.unavailable_at = Some(i);
                        return report;
                    }
                }
                None => {
                    report.unavailable_at = Some(i);
                    return report;
                }
            },
            Err(_) => {
                report.unavailable_at = Some(i);
                return report;
            }
        }
    }
    debug_assert!(cluster.verify().is_ok());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_keeps_the_cluster_available_through_many_crashes() {
        let report = run_churn(
            &ChurnParams {
                crash_every: 40,
                total_requests: 400,
                ..ChurnParams::default()
            },
            7,
        );
        assert_eq!(report.unavailable_at, None, "{report:?}");
        assert!(report.crashes >= 5, "{report:?}");
        assert_eq!(report.repairs, report.crashes);
        assert!(report.completed >= 400);
    }

    #[test]
    fn without_repair_the_third_crash_is_fatal() {
        let report = run_churn(
            &ChurnParams {
                crash_every: 40,
                repair: false,
                total_requests: 400,
                ..ChurnParams::default()
            },
            7,
        );
        // Five nodes tolerate two crashes; the third starves every quorum.
        assert_eq!(report.crashes, 3, "{report:?}");
        assert!(report.unavailable_at.is_some(), "{report:?}");
        assert!(report.completed < 400);
    }

    #[test]
    fn leader_crashes_trigger_failovers() {
        // Crash victims are the highest-numbered members; make the leader
        // the victim by electing S5 first.
        let params = ChurnParams {
            crash_every: 30,
            total_requests: 200,
            ..ChurnParams::default()
        };
        let report = run_churn(&params, 3);
        assert_eq!(report.unavailable_at, None, "{report:?}");
    }
}
