//! A replicated key-value store on the executable Raft protocol, with a
//! simulated-network cluster driver.
//!
//! This crate is the application layer of the reproduction — the analogue
//! of the paper's OCaml extraction evaluated on EC2 (§7, Fig. 16). It
//! provides:
//!
//! * [`KvCommand`]/[`KvStore`] — the replicated application,
//! * [`Cluster`] — a deterministic discrete-event simulation of a cluster
//!   running the `adore-raft` protocol over a latency-injecting network
//!   ([`LatencyModel`]), supporting live ("hot") reconfiguration while
//!   serving requests,
//! * [`run_fig16`] — the exact 5 → 3 → 5 reconfiguration workload of
//!   Fig. 16, producing per-request latency series.
//!
//! # Examples
//!
//! ```
//! use adore_core::NodeId;
//! use adore_kv::{Cluster, KvCommand, LatencyModel};
//! use adore_schemes::SingleNode;
//!
//! let mut cluster = Cluster::new(SingleNode::new([1, 2, 3]), LatencyModel::default(), 42);
//! cluster.elect(NodeId(1))?;
//! cluster.submit(KvCommand::put("lang", "rust"))?;
//! // Live reconfiguration while the store keeps serving:
//! cluster.reconfigure(SingleNode::new([1, 2, 3, 4]))?;
//! cluster.submit(KvCommand::put("nodes", "4"))?;
//! assert_eq!(cluster.committed_store().get("lang"), Some("rust"));
//! cluster.verify().expect("committed prefixes agree");
//! # Ok::<(), adore_kv::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod command;
mod fig16;
mod links;
mod sim;

pub use churn::{run_churn, ChurnParams, ChurnReport};
pub use command::{KvCommand, KvStore};
pub use fig16::{aggregate, run_fig16, Fig16Params, Fig16Run, RequestRecord};
pub use links::LinkMatrix;
pub use sim::{Cluster, ClusterError, LatencyModel};
