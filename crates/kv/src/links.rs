//! A directed link-state matrix for fault injection.
//!
//! The scalar [`LatencyModel::drop_pct`](crate::LatencyModel) models
//! uniform background loss; partitions are different — they are a
//! property of specific *links*, they are usually asymmetric at onset,
//! and they heal. [`LinkMatrix`] captures both: a set of cut directed
//! links plus per-link loss overrides, layered over the scalar default.

use std::collections::{BTreeMap, BTreeSet};

use adore_core::NodeId;

/// Per-link network fault state: cut links and loss overrides.
///
/// A link is directed: `(from, to)` covers messages from `from` to
/// `to`; the reverse direction is a separate link, so asymmetric
/// partitions (payloads flow, acks don't) are expressible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkMatrix {
    cut: BTreeSet<(NodeId, NodeId)>,
    drop_override: BTreeMap<(NodeId, NodeId), u32>,
}

impl LinkMatrix {
    /// A matrix with every link up and no overrides.
    #[must_use]
    pub fn new() -> Self {
        LinkMatrix::default()
    }

    /// Whether the directed link `from → to` is cut.
    #[must_use]
    pub fn is_cut(&self, from: NodeId, to: NodeId) -> bool {
        self.cut.contains(&(from, to))
    }

    /// Whether no fault is active (no cuts, no overrides). The hot paths
    /// use this to keep the no-fault behavior — including the RNG
    /// consumption pattern — identical to the pre-matrix code.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.cut.is_empty() && self.drop_override.is_empty()
    }

    /// Cuts the directed link `from → to`.
    pub fn cut_one_way(&mut self, from: NodeId, to: NodeId) {
        self.cut.insert((from, to));
    }

    /// Cuts both directions between `a` and `b`.
    pub fn cut_both_ways(&mut self, a: NodeId, b: NodeId) {
        self.cut.insert((a, b));
        self.cut.insert((b, a));
    }

    /// Partitions the nodes into groups: every link between nodes of
    /// *different* groups is cut (both directions); links within a group
    /// are left untouched.
    pub fn partition(&mut self, groups: &[&[NodeId]]) {
        for (i, ga) in groups.iter().enumerate() {
            for gb in groups.iter().skip(i + 1) {
                for &a in *ga {
                    for &b in *gb {
                        self.cut_both_ways(a, b);
                    }
                }
            }
        }
    }

    /// Isolates `nid` from every node in `peers` (both directions).
    pub fn isolate(&mut self, nid: NodeId, peers: impl IntoIterator<Item = NodeId>) {
        for peer in peers {
            if peer != nid {
                self.cut_both_ways(nid, peer);
            }
        }
    }

    /// Heals the directed link `from → to` (cut and override).
    pub fn heal_one_way(&mut self, from: NodeId, to: NodeId) {
        self.cut.remove(&(from, to));
        self.drop_override.remove(&(from, to));
    }

    /// Heals both directions between `a` and `b`.
    pub fn heal_both_ways(&mut self, a: NodeId, b: NodeId) {
        self.heal_one_way(a, b);
        self.heal_one_way(b, a);
    }

    /// Heals everything: all links up, all overrides dropped.
    pub fn heal_all(&mut self) {
        self.cut.clear();
        self.drop_override.clear();
    }

    /// Overrides the loss percentage of the directed link `from → to`
    /// (otherwise the scalar model default applies).
    pub fn set_drop_pct(&mut self, from: NodeId, to: NodeId, pct: u32) {
        self.drop_override.insert((from, to), pct.min(100));
    }

    /// The loss-percentage override for `from → to`, if any.
    #[must_use]
    pub fn drop_pct(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.drop_override.get(&(from, to)).copied()
    }

    /// The currently cut directed links, for reporting.
    pub fn cut_links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.cut.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn partition_cuts_exactly_the_cross_group_links() {
        let mut links = LinkMatrix::new();
        links.partition(&[&[n(1), n(2)], &[n(3)], &[n(4)]]);
        // Cross-group: cut both ways.
        assert!(links.is_cut(n(1), n(3)) && links.is_cut(n(3), n(1)));
        assert!(links.is_cut(n(2), n(4)) && links.is_cut(n(4), n(2)));
        assert!(links.is_cut(n(3), n(4)));
        // Within-group: untouched.
        assert!(!links.is_cut(n(1), n(2)) && !links.is_cut(n(2), n(1)));
    }

    #[test]
    fn asymmetric_cut_and_heal() {
        let mut links = LinkMatrix::new();
        links.cut_one_way(n(1), n(2));
        assert!(links.is_cut(n(1), n(2)));
        assert!(!links.is_cut(n(2), n(1)));
        links.heal_one_way(n(1), n(2));
        assert!(links.is_quiet());
    }

    #[test]
    fn isolate_and_heal_all() {
        let mut links = LinkMatrix::new();
        links.isolate(n(2), [n(1), n(2), n(3)]);
        assert!(links.is_cut(n(2), n(1)) && links.is_cut(n(3), n(2)));
        assert!(!links.is_cut(n(2), n(2)));
        links.set_drop_pct(n(1), n(3), 250);
        assert_eq!(links.drop_pct(n(1), n(3)), Some(100));
        assert!(!links.is_quiet());
        links.heal_all();
        assert!(links.is_quiet());
        assert_eq!(links.drop_pct(n(1), n(3)), None);
    }
}
