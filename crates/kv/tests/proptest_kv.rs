//! Property-based tests for the simulated cluster: arbitrary interleavings
//! of client commands and guarded reconfigurations keep the store
//! consistent, deterministic, and loss-tolerant.

use adore_core::NodeId;
use adore_kv::{Cluster, KvCommand, KvStore, LatencyModel};
use adore_schemes::SingleNode;
use proptest::prelude::*;

/// One scripted client action.
#[derive(Debug, Clone)]
enum Action {
    Put(u8, u8),
    Delete(u8),
    Shrink,
    Grow,
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            6 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Action::Put(k, v)),
            2 => any::<u8>().prop_map(Action::Delete),
            1 => Just(Action::Shrink),
            1 => Just(Action::Grow),
        ],
        1..60,
    )
}

/// Drives a cluster through the script; returns the committed store and a
/// reference store computed client-side.
fn drive(script: &[Action], seed: u64, drop_pct: u32) -> (KvStore, KvStore) {
    let mut cluster = Cluster::new(
        SingleNode::new([1, 2, 3, 4, 5]),
        LatencyModel {
            drop_pct,
            ..LatencyModel::default()
        },
        seed,
    );
    // Elections can fail under loss; retry.
    for _ in 0..50 {
        if cluster.elect(NodeId(1)).is_ok() {
            break;
        }
    }
    assert!(
        cluster.leader().is_some(),
        "no leader under {drop_pct}% loss"
    );

    let mut reference = KvStore::new();
    // R3 requires a committed current-term entry before any
    // reconfiguration: warm the term up like a real system's no-op entry.
    let warmup = KvCommand::put("warmup", "done");
    cluster.submit(warmup.clone()).expect("warmup commits");
    reference.apply(&warmup);
    let mut size = 5usize;
    for action in script {
        match action {
            Action::Put(k, v) => {
                let cmd = KvCommand::put(format!("k{k}"), format!("v{v}"));
                cluster.submit(cmd.clone()).expect("commit succeeds");
                reference.apply(&cmd);
            }
            Action::Delete(k) => {
                let cmd = KvCommand::delete(format!("k{k}"));
                cluster.submit(cmd.clone()).expect("commit succeeds");
                reference.apply(&cmd);
            }
            Action::Shrink if size > 3 => {
                size -= 1;
                cluster
                    .reconfigure(SingleNode::new(1..=(size as u32)))
                    .expect("shrink succeeds");
            }
            Action::Grow if size < 5 => {
                size += 1;
                cluster
                    .reconfigure(SingleNode::new(1..=(size as u32)))
                    .expect("grow succeeds");
            }
            _ => {}
        }
    }
    cluster.verify().expect("log safety");
    (cluster.committed_store(), reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn committed_store_matches_the_client_view(script in actions(), seed in 0u64..1000) {
        let (committed, reference) = drive(&script, seed, 0);
        prop_assert_eq!(committed, reference);
    }

    #[test]
    fn runs_are_deterministic_per_seed(script in actions(), seed in 0u64..1000) {
        let a = drive(&script, seed, 0);
        let b = drive(&script, seed, 0);
        prop_assert_eq!(a.0, b.0);
    }

    #[test]
    fn loss_does_not_change_the_outcome(script in actions(), seed in 0u64..1000) {
        // Retransmission makes the committed result independent of loss.
        let (lossless, reference) = drive(&script, seed, 0);
        let (lossy, _) = drive(&script, seed, 25);
        prop_assert_eq!(&lossy, &lossless);
        prop_assert_eq!(lossy, reference);
    }
}
