//! CLI entry point: `cargo run -p adore-lint [-- --format json]`.
//!
//! Exits non-zero when any unsuppressed finding (or a configuration /
//! IO error) is present, so `ci.sh` can gate on it with `-D` semantics.

use std::path::PathBuf;
use std::process::ExitCode;

use adore_lint::config::Config;

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut dump_ir = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut only: Option<Vec<String>> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--only" => match args.next() {
                Some(list) => {
                    let rules: Vec<String> = list
                        .split(',')
                        .map(|r| r.trim().to_ascii_uppercase())
                        .filter(|r| !r.is_empty())
                        .collect();
                    if rules.is_empty()
                        || rules
                            .iter()
                            .any(|r| !adore_lint::explain::RULE_IDS.contains(&r.as_str()))
                    {
                        eprintln!(
                            "adore-lint: --only expects a comma-separated rule list \
                             (known: {})",
                            adore_lint::explain::RULE_IDS.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                    only = Some(rules);
                }
                None => {
                    eprintln!("adore-lint: --only expects a rule list (e.g. L9,L10,L11,L12)");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" || f == "sarif" => format = f,
                other => {
                    eprintln!(
                        "adore-lint: --format expects `text`, `json`, or `sarif`, got {other:?}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--dump-ir" => dump_ir = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("adore-lint: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--config" => match args.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("adore-lint: --config expects a path");
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next() {
                Some(rule) => match adore_lint::explain::explain(&rule) {
                    Some(text) => {
                        println!("{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "adore-lint: unknown rule `{rule}` (known: {})",
                            adore_lint::explain::RULE_IDS.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("adore-lint: --explain expects a rule id (e.g. L6)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "adore-lint: certify protocol discipline at the source level\n\
                     \n\
                     USAGE: adore-lint [--format text|json|sarif] [--root DIR]\n\
                     \n                  [--config FILE] [--only RULE[,RULE...]]\n\
                     \n       adore-lint --explain RULE\n\
                     \n       adore-lint --dump-ir\n\
                     \n\
                     Scans the workspace for violations of rules L1 (determinism),\n\
                     L2 (panic-free recovery), L3 (mutation/construction\n\
                     encapsulation), L4 (certificate hygiene), L5 (no stray console\n\
                     output), the flow-sensitive rules L6 (guard-before-mutation),\n\
                     L7 (nondeterminism taint), and L8 (discarded fallible results\n\
                     in recovery scopes), the concurrency-discipline rules L9\n\
                     (lock-order cycles), L10 (no-panic lock acquisition), L11 (no\n\
                     lock held across blocking calls), and L12 (bounded-channel\n\
                     discipline), and the spec-conformance rules L13 (differential\n\
                     drift against the checker's transition system), L14 (semantic\n\
                     guard sufficiency on IR paths), and L15 (durable-before-\n\
                     outbound emission order). `--only L9,L10` narrows the report\n\
                     (and the exit status) to the listed rules; P0/E0 always\n\
                     count. `--explain RULE` prints a rule's rationale, the paper\n\
                     invariant it guards, and a minimal violating example.\n\
                     `--format sarif` emits a SARIF 2.1.0 log for code-scanning\n\
                     upload. `--dump-ir` prints the guarded-command IR extracted\n\
                     from the configured conformance scopes and exits.\n\
                     Configuration: adore-lint.toml at the workspace root.\n\
                     \n\
                     EXIT STATUS:\n\
                     \n  0  clean (no unsuppressed findings)\n\
                     \n  1  ordinary unsuppressed findings (L1-L15)\n\
                     \n  2  integrity errors: malformed pragma (P0), unparsable\n\
                     \n     file (E0), bad configuration, IO failure, or usage"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("adore-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // Default to the workspace root this binary was built in.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    let config_path = config_path.unwrap_or_else(|| root.join("adore-lint.toml"));

    let cfg = match std::fs::read_to_string(&config_path) {
        Ok(text) => match Config::from_toml(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("adore-lint: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!(
                "adore-lint: cannot read {}: {e}",
                config_path.display()
            );
            return ExitCode::from(2);
        }
    };

    if dump_ir {
        match adore_lint::render_ir_dump(&root, &cfg) {
            Ok(dump) => {
                print!("{dump}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("adore-lint: IR dump failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut report = match adore_lint::run_lint(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("adore-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    // `--only` narrows the report to the listed rules, e.g. the ci.sh
    // L9-L12 concurrency gate. P0/E0 stay: a malformed pragma or an
    // unparsable file undermines whichever rules were requested.
    if let Some(only) = &only {
        report
            .findings
            .retain(|f| f.rule == "P0" || f.rule == "E0" || only.contains(&f.rule));
    }

    match format.as_str() {
        "json" => print!("{}", adore_lint::render_json(&report)),
        "sarif" => print!("{}", adore_lint::render_sarif(&report)),
        _ => print!("{}", adore_lint::render_text(&report)),
    }

    // Three-way exit: 2 = the lint's own inputs are compromised (a
    // malformed pragma can silently waive anything; an unparsable file
    // was not checked at all), 1 = ordinary findings, 0 = clean.
    let integrity = report
        .findings
        .iter()
        .any(|f| !f.suppressed && (f.rule == "P0" || f.rule == "E0"));
    if integrity {
        ExitCode::from(2)
    } else if report.active_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
