//! Guarded-command IR extraction (the model half of L13–L15).
//!
//! Lowers protocol handlers through the CFG ([`crate::cfg`]) into a
//! guarded-command IR: each handler becomes a set of *paths*, and each
//! path is an ordered interleaving of **guard clauses** (CNF over
//! semantic atoms — quorum tests, log-consistency checks, R1⁺/R2/R3
//! probes, comparisons) and **actions** (binds, field mutations, message
//! emissions). The interleaving is load-bearing: `commit` inserts the
//! leader's self-ack *before* `maybe_advance_commit` reads it, so guards
//! must be evaluated against the progressively mutated state, not the
//! pre-state.
//!
//! The extraction is *structural*, not stringly: branch polarity comes
//! from [`cfg::BranchRole`] (an `if` cond's first successor is its true
//! branch; taking a `MatchArm` edge means that pattern matched), and
//! expressions are recognized by tree-matching token templates. Anything
//! the templates do not cover becomes an [`Ex::Opaque`] leaf / an
//! [`Action::Opaque`] step — opacity is recorded on the handler and is
//! fatal only for rules that need full fidelity (L13 conformance);
//! emission-order checking (L15) tolerates it.
//!
//! Known soundness caveats (see DESIGN §15): `?`-bearing conditions are
//! opaque (the CFG wires their early exit before the branch edges, which
//! breaks successor polarity); loop back edges are dropped, so loop
//! bodies are modeled as executing at most once; CNF conversion caps the
//! clause blowup and degrades to an opaque clause beyond it.

use std::collections::BTreeMap;

use proc_macro2::{Delimiter, Group, TokenTree};

use crate::cfg::{self, BranchRole, NodeKind, ENTRY, EXIT};

/// Cap on enumerated paths per handler (post-inlining); beyond this the
/// handler is marked opaque.
const MAX_PATHS: usize = 256;
/// Cap on CNF clauses per condition before degrading to opaque.
const MAX_CNF: usize = 16;
/// Inlining depth bound.
const MAX_INLINE: usize = 3;

/// Comparison operators recognized in guard conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn sym(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// The expression vocabulary of the IR. Everything a handler reads or
/// writes is spelled in this small language; the conformance
/// interpreter ([`crate::conform`]) evaluates it against the checker's
/// mirror state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ex {
    /// A local binding or parameter.
    Var(String),
    /// `self.<field>` (conf0, guard, servers, messages, delivered).
    SelfField(String),
    /// `<base>.<field>` — includes tuple fields like `msg.0`.
    Field(Box<Ex>, String),
    /// `<base>.<method>(args)` for interpreted builtins: `next`, `len`,
    /// `min`, `max`, `members`, `contains`, `is_quorum`, `r1_plus`,
    /// `get`, `last_time`, `any_config`, `any_time_eq`.
    Method(Box<Ex>, String, Vec<Ex>),
    /// Free/self-function builtins: `effective_config`,
    /// `log_up_to_date`, `has_msg`, `msg_at`, `server_exists`,
    /// `server_crashed`, `acks_has`, `acks_at`.
    Call(String, Vec<Ex>),
    /// A comparison; evaluates to a boolean.
    Cmp(CmpOp, Box<Ex>, Box<Ex>),
    /// An enum-variant test produced by a `match` arm pattern.
    IsVariant(String, Box<Ex>),
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Num(i128),
    /// `Role::<name>`.
    RoleLit(String),
    /// `Some(<e>)`.
    SomeOf(Box<Ex>),
    /// `<log>[<from>..]`.
    SliceFrom(Box<Ex>, Box<Ex>),
    /// `<log>[..<to>]` (also `.get(..n).unwrap_or(&[])`).
    SliceTo(Box<Ex>, Box<Ex>),
    /// `<base>[<index>]`.
    Index(Box<Ex>, Box<Ex>),
    /// `Request::Elect { from, time, log }` literal.
    MsgElect {
        /// Sender.
        from: Box<Ex>,
        /// Term.
        time: Box<Ex>,
        /// Shipped log.
        log: Box<Ex>,
    },
    /// `Request::Commit { from, time, log, commit_len }` literal.
    MsgCommit {
        /// Sender.
        from: Box<Ex>,
        /// Term.
        time: Box<Ex>,
        /// Shipped log.
        log: Box<Ex>,
        /// Shipped watermark.
        commit_len: Box<Ex>,
    },
    /// `Entry { time, cmd: Command::Method(m) }` literal.
    EntryMethod {
        /// Entry term.
        time: Box<Ex>,
        /// Method payload.
        m: Box<Ex>,
    },
    /// `Entry { time, cmd: Command::Config(c) }` literal.
    EntryConfig {
        /// Entry term.
        time: Box<Ex>,
        /// New configuration.
        c: Box<Ex>,
    },
    /// `std::iter::once(n).collect()` — a fresh one-element vote set.
    VotesOnce(Box<Ex>),
    /// Anything the templates did not recognize (carries source text).
    Opaque(String),
}

impl Ex {
    /// Whether this expression tree contains an opaque leaf.
    #[must_use]
    pub fn has_opaque(&self) -> bool {
        match self {
            Ex::Opaque(_) => true,
            Ex::Var(_)
            | Ex::SelfField(_)
            | Ex::Bool(_)
            | Ex::Num(_)
            | Ex::RoleLit(_) => false,
            Ex::Field(b, _) | Ex::SomeOf(b) | Ex::VotesOnce(b) | Ex::IsVariant(_, b) => {
                b.has_opaque()
            }
            Ex::Method(b, _, args) => b.has_opaque() || args.iter().any(Ex::has_opaque),
            Ex::Call(_, args) => args.iter().any(Ex::has_opaque),
            Ex::Cmp(_, a, b)
            | Ex::SliceFrom(a, b)
            | Ex::SliceTo(a, b)
            | Ex::Index(a, b) => a.has_opaque() || b.has_opaque(),
            Ex::MsgElect { from, time, log } => {
                from.has_opaque() || time.has_opaque() || log.has_opaque()
            }
            Ex::MsgCommit {
                from,
                time,
                log,
                commit_len,
            } => {
                from.has_opaque()
                    || time.has_opaque()
                    || log.has_opaque()
                    || commit_len.has_opaque()
            }
            Ex::EntryMethod { time, m } => time.has_opaque() || m.has_opaque(),
            Ex::EntryConfig { time, c } => time.has_opaque() || c.has_opaque(),
        }
    }
}

/// Semantic classification of a guard atom, derived from its expression.
/// L14 keys its "required guard kind" config on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomKind {
    /// `config.is_quorum(set)`.
    Quorum,
    /// `log_up_to_date(a, b)`.
    LogUpToDate,
    /// `current.r1_plus(&next)`.
    R1Plus,
    /// `log.iter().any(|e| e.cmd.config().is_some())` — R2's probe.
    HasConfigEntry,
    /// `log.iter().any(|e| e.time == t)` — R3's probe.
    HasEntryWithTime,
    /// `set.contains(&x)` — membership.
    Contains,
    /// `self.servers.get_mut(&n)` succeeded.
    ServerExists,
    /// `self.messages.get(i)` succeeded.
    MsgExists,
    /// `s.acks.get(&len)` succeeded.
    AcksHas,
    /// A `match` arm variant test.
    VariantTest,
    /// An ordinary comparison.
    Compare,
    /// A bare boolean probe (e.g. `s.crashed`, `guard.r1`, `ack_ok`).
    BoolProbe,
    /// Unrecognized condition.
    Opaque,
}

/// One literal in a guard clause: a (possibly negated) boolean
/// expression, with its source position for blame.
#[derive(Debug, Clone)]
pub struct Atom {
    /// Whether the atom is negated.
    pub negated: bool,
    /// Semantic classification (derived from `ex`).
    pub kind: AtomKind,
    /// The condition itself.
    pub ex: Ex,
    /// 1-based source line.
    pub line: usize,
    /// 0-based source column.
    pub col: usize,
    /// Source text (for findings and the JSON dump).
    pub text: String,
}

/// A disjunction of atoms. A path's guard is the conjunction of its
/// clauses (CNF).
#[derive(Debug, Clone)]
pub struct Clause {
    /// The disjuncts; the clause holds when any atom evaluates true.
    pub atoms: Vec<Atom>,
}

impl Clause {
    fn opaque(text: String, line: usize, col: usize) -> Self {
        Clause {
            atoms: vec![Atom {
                negated: false,
                kind: AtomKind::Opaque,
                ex: Ex::Opaque(text.clone()),
                line,
                col,
                text,
            }],
        }
    }
}

/// Emission class for L15's ordering rule: durable effects
/// (persist/journal) must not follow externally visible ones
/// (send/reply) on any path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitClass {
    /// `Output::Persist` — durable WAL bytes.
    Persist,
    /// `Output::Journal` — durable trace record.
    Journal,
    /// `Output::Send` — a peer message leaves the node.
    Send,
    /// `Output::Reply` — a client reply leaves the node.
    Reply,
}

impl EmitClass {
    /// Whether the class is a durability effect (persist/journal).
    #[must_use]
    pub fn durable(self) -> bool {
        matches!(self, EmitClass::Persist | EmitClass::Journal)
    }
    /// Whether the class is externally visible (send/reply).
    #[must_use]
    pub fn outbound(self) -> bool {
        matches!(self, EmitClass::Send | EmitClass::Reply)
    }
}

/// One state-changing (or book-keeping) step.
#[derive(Debug, Clone)]
pub enum Action {
    /// `let <var> = <value>;`
    Bind {
        /// Bound name.
        var: String,
        /// Bound value.
        value: Ex,
    },
    /// Bind a server handle: `ensure` inserts a default server when
    /// absent (`servers.entry(n).or_insert_with(Server::new)`).
    BindServer {
        /// Bound name.
        var: String,
        /// Node id expression.
        nid: Ex,
        /// Whether the binding inserts a default entry when absent.
        ensure: bool,
    },
    /// `<base>.<field> = <value>;`
    Assign {
        /// Server handle (or `self` field path).
        base: Ex,
        /// Mutated field.
        field: String,
        /// New value.
        value: Ex,
    },
    /// `<base>.<field>.clear();`
    FieldClear {
        /// Server handle.
        base: Ex,
        /// Cleared collection field.
        field: String,
    },
    /// `<base>.<field>.insert(<value>);`
    FieldInsert {
        /// Server handle.
        base: Ex,
        /// Set field.
        field: String,
        /// Inserted value.
        value: Ex,
    },
    /// `<base>.<field>.push(<value>);`
    FieldPush {
        /// Server handle.
        base: Ex,
        /// Vec field.
        field: String,
        /// Pushed value.
        value: Ex,
    },
    /// `<base>.acks.entry(<len>).or_default().insert(<node>);`
    AcksInsert {
        /// Server handle.
        base: Ex,
        /// Acked length.
        len: Ex,
        /// Acking node.
        node: Ex,
    },
    /// `self.messages.push(<value>);`
    EmitMsg {
        /// The message literal or binding.
        value: Ex,
    },
    /// An `Output::<class>` emission (det engine, L15).
    Emit {
        /// Emission class.
        class: EmitClass,
    },
    /// `self.delivered.push(..)` — telemetry, excluded from post-state.
    Delivered,
    /// A call to another extracted function; resolved by inlining.
    CallFn {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Ex>,
    },
    /// The path's outcome (`EventOutcome::Applied` vs
    /// `LocalNoOp`/`Rejected`).
    SetOutcome {
        /// Whether the transition reports applied.
        applied: bool,
    },
    /// A whitelisted effect-free statement (e.g. telemetry counters).
    Noop {
        /// What was whitelisted.
        what: String,
    },
    /// Anything unrecognized.
    Opaque {
        /// Source text.
        text: String,
    },
}

/// An [`Action`] with its source position.
#[derive(Debug, Clone)]
pub struct Act {
    /// The operation.
    pub action: Action,
    /// 1-based source line.
    pub line: usize,
    /// 0-based source column.
    pub col: usize,
}

/// One step of a path: a guard clause to check or an action to apply,
/// in execution order.
#[derive(Debug, Clone)]
pub enum Step {
    /// Check a clause against the *current* (progressively mutated)
    /// state; failure abandons the path.
    Guard(Clause),
    /// Apply an action.
    Act(Act),
}

/// One execution path through a handler.
#[derive(Debug, Clone, Default)]
pub struct IrPath {
    /// Guards and actions in execution order.
    pub steps: Vec<Step>,
}

impl IrPath {
    /// The path's declared outcome: `Some(true)` applied, `Some(false)`
    /// rejected, `None` when the path never sets one (void callees).
    #[must_use]
    pub fn outcome(&self) -> Option<bool> {
        self.steps.iter().rev().find_map(|s| match s {
            Step::Act(Act {
                action: Action::SetOutcome { applied },
                ..
            }) => Some(*applied),
            _ => None,
        })
    }

    /// Whether any step is opaque (unrecognized guard or action).
    #[must_use]
    pub fn has_opaque(&self) -> bool {
        self.steps.iter().any(|s| match s {
            Step::Guard(c) => c.atoms.iter().any(|a| a.kind == AtomKind::Opaque),
            Step::Act(a) => match &a.action {
                Action::Opaque { .. } => true,
                Action::Bind { value, .. }
                | Action::EmitMsg { value }
                | Action::FieldInsert { value, .. }
                | Action::FieldPush { value, .. }
                | Action::Assign { value, .. } => value.has_opaque(),
                _ => false,
            },
        })
    }
}

/// The extracted IR for one handler function.
#[derive(Debug, Clone)]
pub struct HandlerIr {
    /// Function name.
    pub name: String,
    /// 1-based line of the function's first body token.
    pub line: usize,
    /// Parameter names, in order (excluding `self`).
    pub params: Vec<String>,
    /// Whether extraction hit a structural limit (path cap, `?` in a
    /// condition, CNF blowup) — distinct from per-step opacity.
    pub opaque: bool,
    /// All enumerated paths (back edges dropped).
    pub paths: Vec<IrPath>,
}

impl HandlerIr {
    /// Whether the handler is fully modeled: no structural opacity and
    /// no opaque step on any path. Only fully modeled handlers are
    /// eligible for L13 differential conformance.
    #[must_use]
    pub fn is_fully_modeled(&self) -> bool {
        !self.opaque && !self.paths.iter().any(IrPath::has_opaque)
    }
}

/// Whether an atom satisfies a configured L14 guard kind (with the
/// protective polarity: `r2` protects via the *negated* config-entry
/// probe, everything else via the positive form).
#[must_use]
pub fn atom_matches_kind(atom: &Atom, kind: &str) -> bool {
    match kind {
        "quorum" => atom.kind == AtomKind::Quorum && !atom.negated,
        "log-consistency" => atom.kind == AtomKind::LogUpToDate && !atom.negated,
        "r1" => atom.kind == AtomKind::R1Plus && !atom.negated,
        "r2" => atom.kind == AtomKind::HasConfigEntry && atom.negated,
        "r3" => atom.kind == AtomKind::HasEntryWithTime && !atom.negated,
        "member" => atom.kind == AtomKind::Contains && !atom.negated,
        _ => false,
    }
}

// ---- token helpers ------------------------------------------------------

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(i)) if *i == s)
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn paren_of(t: Option<&TokenTree>) -> Option<&Group> {
    match t {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Some(g),
        _ => None,
    }
}

fn brace_of(t: Option<&TokenTree>) -> Option<&Group> {
    match t {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Some(g),
        _ => None,
    }
}

fn bracket_of(t: Option<&TokenTree>) -> Option<&Group> {
    match t {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => Some(g),
        _ => None,
    }
}

fn toks_text(tokens: &[TokenTree]) -> String {
    let mut s = proc_macro2::TokenStream::new();
    for t in tokens {
        s.push(t.clone());
    }
    s.to_string()
}

fn tok_pos(tokens: &[TokenTree]) -> (usize, usize) {
    tokens
        .first()
        .map(|t| {
            let lc = t.span().start();
            (lc.line, lc.column)
        })
        .unwrap_or((0, 0))
}

/// Splits a top-level token slice on a separator punct (e.g. `,`).
/// Groups are single trees, so nesting never leaks.
fn split_on(tokens: &[TokenTree], sep: char) -> Vec<&[TokenTree]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, t) in tokens.iter().enumerate() {
        if is_punct(Some(t), sep) {
            out.push(&tokens[start..i]);
            start = i + 1;
        }
    }
    out.push(&tokens[start..]);
    out
}

/// Finds the first index of a *double* punct (`&&`, `||`) at top level.
fn find_double(tokens: &[TokenTree], c: char) -> Option<usize> {
    let mut i = 0;
    while i + 1 < tokens.len() {
        if is_punct(tokens.get(i), c) && is_punct(tokens.get(i + 1), c) {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Finds a sequence of idents (with arbitrary gaps disallowed — the
/// sequence must appear as consecutive `ident . ident`-style tokens,
/// puncts between them ignored only when they are `.` or `::`).
fn contains_seq(tokens: &[TokenTree], names: &[&str]) -> bool {
    let idents: Vec<String> = tokens.iter().filter_map(ident_of).collect();
    idents
        .windows(names.len())
        .any(|w| w.iter().zip(names).all(|(a, b)| a == b))
}

// ---- expression parsing -------------------------------------------------

fn strip_wrappers(mut tokens: &[TokenTree]) -> &[TokenTree] {
    loop {
        // Leading `&` / `*` references.
        if is_punct(tokens.first(), '&') || is_punct(tokens.first(), '*') {
            tokens = &tokens[1..];
            continue;
        }
        // Trailing `as <ty>` casts.
        if tokens.len() >= 2 {
            if let Some(pos) = tokens.iter().position(|t| is_ident(Some(t), "as")) {
                if pos > 0 {
                    tokens = &tokens[..pos];
                    continue;
                }
            }
        }
        // A whole-slice parenthesis or no-delimiter group.
        if tokens.len() == 1 {
            if let Some(g) = paren_of(tokens.first()) {
                tokens = g.stream().trees();
                continue;
            }
        }
        return tokens;
    }
}

fn parse_num(tokens: &[TokenTree]) -> Option<i128> {
    if tokens.len() != 1 {
        return None;
    }
    match &tokens[0] {
        TokenTree::Literal(l) => l.text().parse::<i128>().ok(),
        _ => None,
    }
}

/// Parses named struct-literal fields `{ a: e1, b: e2, shorthand }`.
fn parse_struct_fields(g: &Group) -> BTreeMap<String, Ex> {
    let mut out = BTreeMap::new();
    for part in split_on(g.stream().trees(), ',') {
        if part.is_empty() {
            continue;
        }
        let name = match ident_of(&part[0]) {
            Some(n) => n,
            None => continue,
        };
        if part.len() == 1 {
            out.insert(name.clone(), Ex::Var(name));
        } else if is_punct(part.get(1), ':') {
            out.insert(name, parse_ex(&part[2..]));
        }
    }
    out
}

/// Parses one expression slice into [`Ex`]. Total: unrecognized shapes
/// become [`Ex::Opaque`].
#[must_use]
pub fn parse_ex(tokens: &[TokenTree]) -> Ex {
    let tokens = strip_wrappers(tokens);
    if tokens.is_empty() {
        return Ex::Opaque(String::new());
    }
    if let Some(n) = parse_num(tokens) {
        return Ex::Num(n);
    }
    if tokens.len() == 1 {
        if let Some(id) = ident_of(&tokens[0]) {
            return match id.as_str() {
                "true" => Ex::Bool(true),
                "false" => Ex::Bool(false),
                _ => Ex::Var(id),
            };
        }
    }
    // `std::iter::once(x).collect()`
    if contains_seq(tokens, &["std", "iter", "once"]) {
        if let Some(pos) = tokens.iter().position(|t| is_ident(Some(t), "once")) {
            if let Some(g) = paren_of(tokens.get(pos + 1)) {
                return Ex::VotesOnce(Box::new(parse_ex(g.stream().trees())));
            }
        }
    }
    // `Role::X`
    if is_ident(tokens.first(), "Role") && tokens.len() == 4 {
        if let Some(name) = ident_of(&tokens[3]) {
            return Ex::RoleLit(name);
        }
    }
    // `Some(x)`
    if is_ident(tokens.first(), "Some") && tokens.len() == 2 {
        if let Some(g) = paren_of(tokens.get(1)) {
            return Ex::SomeOf(Box::new(parse_ex(g.stream().trees())));
        }
    }
    // `Request::Elect { .. }` / `Request::Commit { .. }`
    if is_ident(tokens.first(), "Request") {
        let variant = tokens.iter().filter_map(ident_of).nth(1);
        if let (Some(v), Some(g)) = (variant, brace_of(tokens.last())) {
            let f = parse_struct_fields(g);
            let get = |k: &str| Box::new(f.get(k).cloned().unwrap_or(Ex::Opaque(k.into())));
            match v.as_str() {
                "Elect" => {
                    return Ex::MsgElect {
                        from: get("from"),
                        time: get("time"),
                        log: get("log"),
                    }
                }
                "Commit" => {
                    return Ex::MsgCommit {
                        from: get("from"),
                        time: get("time"),
                        log: get("log"),
                        commit_len: get("commit_len"),
                    }
                }
                _ => {}
            }
        }
    }
    // `Entry { time, cmd: Command::Method(m) | Command::Config(c) }`
    if is_ident(tokens.first(), "Entry") && tokens.len() == 2 {
        if let Some(g) = brace_of(tokens.get(1)) {
            let mut time = Ex::Opaque("time".into());
            let mut cmd: Option<Ex> = None;
            let mut is_config = false;
            for part in split_on(g.stream().trees(), ',') {
                if part.is_empty() {
                    continue;
                }
                if is_ident(part.first(), "time") {
                    time = if part.len() == 1 {
                        Ex::Var("time".into())
                    } else {
                        parse_ex(&part[2..])
                    };
                } else if is_ident(part.first(), "cmd") {
                    let rest = &part[2..];
                    let variant = rest.iter().filter_map(ident_of).nth(1);
                    is_config = variant.as_deref() == Some("Config");
                    if let Some(gg) = paren_of(rest.last()) {
                        cmd = Some(parse_ex(gg.stream().trees()));
                    }
                }
            }
            let payload = Box::new(cmd.unwrap_or(Ex::Opaque("cmd".into())));
            return if is_config {
                Ex::EntryConfig { time: Box::new(time), c: payload }
            } else {
                Ex::EntryMethod { time: Box::new(time), m: payload }
            };
        }
    }
    parse_chain(tokens)
}

/// Parses a postfix chain: `primary (.field | .method(args) | [index])*`.
fn parse_chain(tokens: &[TokenTree]) -> Ex {
    // Primary: `self` or a bare ident.
    let (mut base, mut i) = if is_ident(tokens.first(), "self") {
        if is_punct(tokens.get(1), '.') {
            match ident_of(tokens.get(2).unwrap_or(&tokens[0])) {
                Some(f) => (Ex::SelfField(f), 3),
                None => return Ex::Opaque(toks_text(tokens)),
            }
        } else {
            return Ex::Opaque(toks_text(tokens));
        }
    } else if let Some(id) = ident_of(&tokens[0]) {
        // A free builtin call as the chain primary.
        if let Some(g) = paren_of(tokens.get(1)) {
            if id == "effective_config" || id == "log_up_to_date" {
                let args: Vec<Ex> = split_on(g.stream().trees(), ',')
                    .into_iter()
                    .filter(|p| !p.is_empty())
                    .map(parse_ex)
                    .collect();
                (Ex::Call(id, args), 2)
            } else {
                return Ex::Opaque(toks_text(tokens));
            }
        } else {
            (Ex::Var(id), 1)
        }
    } else if let Some(g) = paren_of(tokens.first()) {
        (parse_ex(g.stream().trees()), 1)
    } else {
        return Ex::Opaque(toks_text(tokens));
    };
    while i < tokens.len() {
        if is_punct(tokens.get(i), '.') {
            // `.ident` or `.ident(args)` or `.0`
            let name = match tokens.get(i + 1) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                Some(TokenTree::Literal(l)) => l.text().to_string(),
                _ => return Ex::Opaque(toks_text(tokens)),
            };
            if let Some(g) = paren_of(tokens.get(i + 2)) {
                let (nb, ni) = parse_method(base, &name, g, tokens, i + 3);
                match nb {
                    Some(b) => {
                        base = b;
                        i = ni;
                    }
                    None => return Ex::Opaque(toks_text(tokens)),
                }
            } else {
                base = Ex::Field(Box::new(base), name);
                i += 2;
            }
        } else if let Some(g) = bracket_of(tokens.get(i)) {
            let inner = g.stream().trees();
            // A `..` range is an *adjacent* pair of dots; a lone dot is
            // field access inside the index expression (`[s.commit_len..]`).
            let range_at = (0..inner.len().saturating_sub(1)).find(|&k| {
                is_punct(inner.get(k), '.') && is_punct(inner.get(k + 1), '.')
            });
            if let Some(dd) = range_at {
                // a `..` range: `[from..]` or `[..to]`
                let before = &inner[..dd];
                let after = if dd + 2 <= inner.len() { &inner[dd + 2..] } else { &[] };
                if before.is_empty() {
                    base = Ex::SliceTo(Box::new(base), Box::new(parse_ex(after)));
                } else if after.is_empty() {
                    base = Ex::SliceFrom(Box::new(base), Box::new(parse_ex(before)));
                } else {
                    return Ex::Opaque(toks_text(tokens));
                }
            } else {
                base = Ex::Index(Box::new(base), Box::new(parse_ex(inner)));
            }
            i += 1;
        } else {
            return Ex::Opaque(toks_text(tokens));
        }
    }
    base
}

/// Handles one `.method(args)` link; returns the new base and the next
/// token index (template recognizers may consume further links).
fn parse_method(
    base: Ex,
    name: &str,
    g: &Group,
    tokens: &[TokenTree],
    next: usize,
) -> (Option<Ex>, usize) {
    let args_of = |g: &Group| -> Vec<Ex> {
        split_on(g.stream().trees(), ',')
            .into_iter()
            .filter(|p| !p.is_empty())
            .map(parse_ex)
            .collect()
    };
    match name {
        // Identity adapters.
        "clone" | "cloned" | "iter" | "copied" | "to_vec" | "as_slice" | "collect" => {
            (Some(base), next)
        }
        "any" => {
            // `.iter().any(|e| e.cmd.config().is_some())` → any_config
            // `.iter().any(|e| e.time == EXPR)` → any_time_eq(EXPR)
            let body = g.stream().trees();
            if contains_seq(body, &["config", "is_some"]) || contains_seq(body, &["cmd", "config"])
            {
                (Some(Ex::Method(Box::new(base), "any_config".into(), vec![])), next)
            } else if contains_seq(body, &["e", "time"]) {
                // closure body after `==`
                let eq = (0..body.len().saturating_sub(1)).find(|&k| {
                    is_punct(body.get(k), '=') && is_punct(body.get(k + 1), '=')
                });
                match eq {
                    Some(k) => (
                        Some(Ex::Method(
                            Box::new(base),
                            "any_time_eq".into(),
                            vec![parse_ex(&body[k + 2..])],
                        )),
                        next,
                    ),
                    None => (None, next),
                }
            } else {
                (None, next)
            }
        }
        "last" => {
            // `.last().map(|e| e.time)` → last_time
            if is_punct(tokens.get(next), '.')
                && is_ident(tokens.get(next + 1), "map")
                && paren_of(tokens.get(next + 2)).is_some()
            {
                let mg = paren_of(tokens.get(next + 2)).unwrap();
                if contains_seq(mg.stream().trees(), &["e", "time"]) {
                    return (
                        Some(Ex::Method(Box::new(base), "last_time".into(), vec![])),
                        next + 3,
                    );
                }
            }
            (None, next)
        }
        "get" => {
            let inner = g.stream().trees();
            // `.get(..n).unwrap_or(&[])` → SliceTo
            if is_punct(inner.first(), '.') && is_punct(inner.get(1), '.') {
                let to = parse_ex(&inner[2..]);
                let mut ni = next;
                if is_punct(tokens.get(ni), '.')
                    && is_ident(tokens.get(ni + 1), "unwrap_or")
                    && paren_of(tokens.get(ni + 2)).is_some()
                {
                    ni += 3;
                }
                return (Some(Ex::SliceTo(Box::new(base), Box::new(to))), ni);
            }
            (Some(Ex::Method(Box::new(base), "get".into(), args_of(g))), next)
        }
        "is_some_and" => {
            // `self.servers.get(&to).is_some_and(|s| s.crashed)`
            if contains_seq(g.stream().trees(), &["s", "crashed"]) {
                if let Ex::Method(b, m, args) = &base {
                    if m == "get" {
                        if let Ex::SelfField(f) = b.as_ref() {
                            if f == "servers" && args.len() == 1 {
                                return (
                                    Some(Ex::Call("server_crashed".into(), vec![args[0].clone()])),
                                    next,
                                );
                            }
                        }
                    }
                }
            }
            (None, next)
        }
        "next" | "len" | "members" | "contains" | "is_quorum" | "r1_plus" | "min" | "max" => (
            Some(Ex::Method(Box::new(base), name.to_string(), args_of(g))),
            next,
        ),
        _ => (None, next),
    }
}

// ---- boolean conditions → CNF -------------------------------------------

enum BExpr {
    And(Box<BExpr>, Box<BExpr>),
    Or(Box<BExpr>, Box<BExpr>),
    Not(Box<BExpr>),
    Leaf(Atom),
}

fn classify_ex(ex: &Ex) -> AtomKind {
    match ex {
        Ex::Method(_, m, _) => match m.as_str() {
            "is_quorum" => AtomKind::Quorum,
            "r1_plus" => AtomKind::R1Plus,
            "any_config" => AtomKind::HasConfigEntry,
            "any_time_eq" => AtomKind::HasEntryWithTime,
            "contains" => AtomKind::Contains,
            _ => AtomKind::BoolProbe,
        },
        Ex::Call(f, _) => match f.as_str() {
            "log_up_to_date" => AtomKind::LogUpToDate,
            "server_exists" => AtomKind::ServerExists,
            "has_msg" => AtomKind::MsgExists,
            "acks_has" => AtomKind::AcksHas,
            "server_crashed" => AtomKind::BoolProbe,
            _ => AtomKind::Opaque,
        },
        Ex::Cmp(..) => AtomKind::Compare,
        Ex::IsVariant(..) => AtomKind::VariantTest,
        Ex::Opaque(_) => AtomKind::Opaque,
        _ => AtomKind::BoolProbe,
    }
}

fn atom_from_ex(ex: Ex, tokens: &[TokenTree]) -> Atom {
    let (line, col) = tok_pos(tokens);
    Atom {
        negated: false,
        kind: classify_ex(&ex),
        ex,
        line,
        col,
        text: toks_text(tokens),
    }
}

/// Finds the first top-level comparison operator.
fn find_cmp(tokens: &[TokenTree]) -> Option<(usize, usize, CmpOp)> {
    let mut i = 0;
    while i < tokens.len() {
        let c = match tokens.get(i) {
            Some(TokenTree::Punct(p)) => p.as_char(),
            _ => {
                i += 1;
                continue;
            }
        };
        let next_eq = is_punct(tokens.get(i + 1), '=');
        match c {
            '=' if next_eq => return Some((i, i + 2, CmpOp::Eq)),
            '!' if next_eq => return Some((i, i + 2, CmpOp::Ne)),
            '<' if next_eq => return Some((i, i + 2, CmpOp::Le)),
            '>' if next_eq => return Some((i, i + 2, CmpOp::Ge)),
            '<' => return Some((i, i + 1, CmpOp::Lt)),
            '>' => return Some((i, i + 1, CmpOp::Gt)),
            _ => {}
        }
        i += 1;
    }
    None
}

fn parse_bexpr(tokens: &[TokenTree]) -> BExpr {
    let tokens = {
        // A fully parenthesized condition.
        let mut t = tokens;
        while t.len() == 1 {
            match paren_of(t.first()) {
                Some(g) => t = g.stream().trees(),
                None => break,
            }
        }
        t
    };
    if let Some(i) = find_double(tokens, '|') {
        return BExpr::Or(
            Box::new(parse_bexpr(&tokens[..i])),
            Box::new(parse_bexpr(&tokens[i + 2..])),
        );
    }
    if let Some(i) = find_double(tokens, '&') {
        return BExpr::And(
            Box::new(parse_bexpr(&tokens[..i])),
            Box::new(parse_bexpr(&tokens[i + 2..])),
        );
    }
    if is_punct(tokens.first(), '!') && !is_punct(tokens.get(1), '=') {
        return BExpr::Not(Box::new(parse_bexpr(&tokens[1..])));
    }
    if let Some((a, b, op)) = find_cmp(tokens) {
        let lhs = parse_ex(&tokens[..a]);
        let rhs = parse_ex(&tokens[b..]);
        let ex = Ex::Cmp(op, Box::new(lhs), Box::new(rhs));
        return BExpr::Leaf(atom_from_ex(ex, tokens));
    }
    BExpr::Leaf(atom_from_ex(parse_ex(tokens), tokens))
}

/// Negation-normal form: pushes `Not` down to the atoms.
fn nnf(e: BExpr, neg: bool) -> BExpr {
    match e {
        BExpr::Not(inner) => nnf(*inner, !neg),
        BExpr::And(a, b) => {
            let (a, b) = (Box::new(nnf(*a, neg)), Box::new(nnf(*b, neg)));
            if neg {
                BExpr::Or(a, b)
            } else {
                BExpr::And(a, b)
            }
        }
        BExpr::Or(a, b) => {
            let (a, b) = (Box::new(nnf(*a, neg)), Box::new(nnf(*b, neg)));
            if neg {
                BExpr::And(a, b)
            } else {
                BExpr::Or(a, b)
            }
        }
        BExpr::Leaf(mut atom) => {
            if neg {
                atom.negated = !atom.negated;
            }
            BExpr::Leaf(atom)
        }
    }
}

/// CNF of an NNF expression; `None` on clause blowup.
fn cnf(e: &BExpr) -> Option<Vec<Clause>> {
    match e {
        BExpr::Leaf(a) => Some(vec![Clause { atoms: vec![a.clone()] }]),
        BExpr::And(a, b) => {
            let mut out = cnf(a)?;
            out.extend(cnf(b)?);
            if out.len() > MAX_CNF {
                return None;
            }
            Some(out)
        }
        BExpr::Or(a, b) => {
            let ca = cnf(a)?;
            let cb = cnf(b)?;
            let mut out = Vec::new();
            for x in &ca {
                for y in &cb {
                    let mut atoms = x.atoms.clone();
                    atoms.extend(y.atoms.iter().cloned());
                    out.push(Clause { atoms });
                }
            }
            if out.len() > MAX_CNF {
                return None;
            }
            Some(out)
        }
        BExpr::Not(_) => None, // NNF removed these.
    }
}

/// Lowers a condition's tokens to guard clauses, with `positive`
/// selecting branch polarity. Degrades to an opaque clause on blowup.
fn cond_clauses(tokens: &[TokenTree], positive: bool) -> Vec<Clause> {
    let b = parse_bexpr(tokens);
    let b = nnf(b, !positive);
    match cnf(&b) {
        Some(cs) => cs,
        None => {
            let (line, col) = tok_pos(tokens);
            vec![Clause::opaque(toks_text(tokens), line, col)]
        }
    }
}

// ---- statement classification -------------------------------------------

/// All idents in a token slice, in source order, recursing into groups.
fn flat_idents(tokens: &[TokenTree]) -> Vec<String> {
    let mut out = Vec::new();
    for t in tokens {
        match t {
            TokenTree::Ident(i) => out.push(i.to_string()),
            TokenTree::Group(g) => out.extend(flat_idents(g.stream().trees())),
            _ => {}
        }
    }
    out
}

/// A classified statement: zero or more guard/action steps.
fn classify_stmt(tokens: &[TokenTree], fn_names: &[String]) -> Vec<Step> {
    let (line, col) = tok_pos(tokens);
    let act = |action: Action| Step::Act(Act { action, line, col });
    let idents: Vec<String> = tokens.iter().filter_map(ident_of).collect();
    let has = |n: &str| idents.iter().any(|i| i == n);

    // `return <outcome>;` / `return;`
    if is_ident(tokens.first(), "return") {
        if tokens.len() == 1 {
            return Vec::new(); // void early return
        }
        return outcome_steps(&tokens[1..], line, col);
    }
    // `let` forms.
    if is_ident(tokens.first(), "let") {
        return classify_let(tokens, line, col);
    }
    // Whitelisted telemetry.
    if has("count_quorum_check") {
        return vec![act(Action::Noop { what: "count_quorum_check".into() })];
    }
    // `self.delivered.push(..)`
    if contains_seq(tokens, &["self", "delivered"]) {
        return vec![act(Action::Delivered)];
    }
    // `self.messages.push(X)`
    if contains_seq(tokens, &["self", "messages", "push"]) {
        if let Some(pos) = tokens.iter().position(|t| is_ident(Some(t), "push")) {
            if let Some(g) = paren_of(tokens.get(pos + 1)) {
                return vec![act(Action::EmitMsg { value: parse_ex(g.stream().trees()) })];
            }
        }
    }
    // det-engine emissions: every `Output::<class>` mention, in order
    // (scanned recursively — the constructor sits inside call parens).
    let deep_idents = flat_idents(tokens);
    if deep_idents.iter().any(|i| i == "Output") {
        let mut steps = Vec::new();
        for w in deep_idents.windows(2) {
            if w[0] == "Output" {
                let class = match w[1].as_str() {
                    "Persist" => Some(EmitClass::Persist),
                    "Journal" => Some(EmitClass::Journal),
                    "Send" => Some(EmitClass::Send),
                    "Reply" => Some(EmitClass::Reply),
                    _ => None,
                };
                if let Some(class) = class {
                    steps.push(Step::Act(Act { action: Action::Emit { class }, line, col }));
                }
            }
        }
        if !steps.is_empty() {
            return steps;
        }
    }
    // `<base>.acks.entry(L).or_default().insert(N)`
    if contains_seq(tokens, &["acks", "entry"]) && has("insert") {
        if let Some(ep) = tokens.iter().position(|t| is_ident(Some(t), "entry")) {
            // base is everything before `. acks`
            if ep >= 3 {
                let base = parse_ex(&tokens[..ep - 3]);
                let len = paren_of(tokens.get(ep + 1))
                    .map(|g| parse_ex(g.stream().trees()))
                    .unwrap_or(Ex::Opaque("len".into()));
                let node = tokens
                    .iter()
                    .position(|t| is_ident(Some(t), "insert"))
                    .and_then(|ip| paren_of(tokens.get(ip + 1)))
                    .map(|g| parse_ex(g.stream().trees()))
                    .unwrap_or(Ex::Opaque("node".into()));
                return vec![act(Action::AcksInsert { base, len, node })];
            }
        }
    }
    // `self.<fn>(args)` — a call to another extracted function.
    if is_ident(tokens.first(), "self") && is_punct(tokens.get(1), '.') {
        if let Some(name) = tokens.get(2).and_then(ident_of) {
            if fn_names.contains(&name) {
                if let Some(g) = paren_of(tokens.get(3)) {
                    let args: Vec<Ex> = split_on(g.stream().trees(), ',')
                        .into_iter()
                        .filter(|p| !p.is_empty())
                        .map(parse_ex)
                        .collect();
                    return vec![act(Action::CallFn { name, args })];
                }
            }
        }
    }
    // Mutating collection methods: `<base>.<field>.(clear|insert|push)(..)`.
    if tokens.len() >= 4 {
        let n = tokens.len();
        if let (Some(m), Some(g)) = (ident_of(&tokens[n - 2]), paren_of(tokens.last())) {
            if matches!(m.as_str(), "clear" | "insert" | "push")
                && is_punct(tokens.get(n - 3), '.')
            {
                // `<base> . <field> . m ( .. )`
                if n >= 5 && is_punct(tokens.get(n - 5), '.') {
                    if let Some(field) = ident_of(&tokens[n - 4]) {
                        let base = parse_ex(&tokens[..n - 5]);
                        let value = parse_ex(g.stream().trees());
                        let action = match m.as_str() {
                            "clear" => Action::FieldClear { base, field },
                            "insert" => Action::FieldInsert { base, field, value },
                            _ => Action::FieldPush { base, field, value },
                        };
                        return vec![act(action)];
                    }
                }
            }
        }
    }
    // Plain assignment `<base>.<field> = <value>` (top-level single `=`).
    if let Some(eq) = find_single_assign(tokens) {
        let lhs = &tokens[..eq];
        let rhs = &tokens[eq + 1..];
        let n = lhs.len();
        if n >= 3 && is_punct(lhs.get(n - 2), '.') {
            if let Some(field) = ident_of(&lhs[n - 1]) {
                let base = parse_ex(&lhs[..n - 2]);
                return vec![act(Action::Assign { base, field, value: parse_ex(rhs) })];
            }
        }
        if n == 1 {
            if let Some(v) = ident_of(&lhs[0]) {
                return vec![act(Action::Bind { var: v, value: parse_ex(rhs) })];
            }
        }
    }
    // Tail outcome expression (`EventOutcome::Applied`, no semi).
    if has("Applied") || has("LocalNoOp") || has("Rejected") {
        return outcome_steps(tokens, line, col);
    }
    vec![act(Action::Opaque { text: toks_text(tokens) })]
}

/// Finds a top-level single `=` that is not part of `==`/`!=`/`<=`/`>=`
/// or a compound assignment.
fn find_single_assign(tokens: &[TokenTree]) -> Option<usize> {
    for (i, t) in tokens.iter().enumerate() {
        if !is_punct(Some(t), '=') {
            continue;
        }
        if is_punct(tokens.get(i + 1), '=') {
            return None; // `==` — a condition leaked in; not a statement form.
        }
        if i > 0 {
            let prev = match tokens.get(i - 1) {
                Some(TokenTree::Punct(p)) => Some(p.as_char()),
                _ => None,
            };
            if matches!(prev, Some('=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '|' | '&')) {
                return None;
            }
        }
        return Some(i);
    }
    None
}

fn outcome_steps(tokens: &[TokenTree], line: usize, col: usize) -> Vec<Step> {
    let idents: Vec<String> = tokens.iter().filter_map(ident_of).collect();
    let applied = if idents.iter().any(|i| i == "Applied") {
        Some(true)
    } else if idents.iter().any(|i| i == "LocalNoOp" || i == "Rejected") {
        Some(false)
    } else {
        None
    };
    match applied {
        Some(applied) => vec![Step::Act(Act { action: Action::SetOutcome { applied }, line, col })],
        None => vec![Step::Act(Act { action: Action::Opaque { text: toks_text(tokens) }, line, col })],
    }
}

/// Classifies `let` statements, including the `let .. else` guards the
/// handlers use for rejection paths. The CFG models a `let-else` as one
/// fall-through node, so only the success continuation is enumerated —
/// the interpreter's "no path matched" verdict covers the rejection.
fn classify_let(tokens: &[TokenTree], line: usize, col: usize) -> Vec<Step> {
    let act = |action: Action| Step::Act(Act { action, line, col });
    let guard = |ex: Ex, toks: &[TokenTree]| {
        let mut a = atom_from_ex(ex, toks);
        a.line = line;
        a.col = col;
        Step::Guard(Clause { atoms: vec![a] })
    };
    let eq = match find_single_assign(tokens) {
        Some(i) => i,
        None => return vec![act(Action::Opaque { text: toks_text(tokens) })],
    };
    let mut pat = &tokens[1..eq];
    if is_ident(pat.first(), "mut") {
        pat = &pat[1..];
    }
    // Trim a trailing `else { .. }` from the expression.
    let mut expr = &tokens[eq + 1..];
    if let Some(ep) = expr.iter().position(|t| is_ident(Some(t), "else")) {
        expr = &expr[..ep];
    }
    // `let Some(x) = <fallible> else { return .. };`
    if is_ident(pat.first(), "Some") {
        let var = paren_of(pat.get(1))
            .and_then(|g| g.stream().trees().first().and_then(ident_of))
            .unwrap_or_else(|| "_".to_string());
        // `self.messages.get(i).cloned()`
        if contains_seq(expr, &["messages", "get"]) {
            if let Some(gp) = expr.iter().position(|t| is_ident(Some(t), "get")) {
                if let Some(g) = paren_of(expr.get(gp + 1)) {
                    let idx = parse_ex(g.stream().trees());
                    return vec![
                        guard(Ex::Call("has_msg".into(), vec![idx.clone()]), expr),
                        act(Action::Bind {
                            var,
                            value: Ex::Call("msg_at".into(), vec![idx]),
                        }),
                    ];
                }
            }
        }
        // `self.servers.get_mut(&n)`
        if contains_seq(expr, &["servers", "get_mut"]) {
            if let Some(gp) = expr.iter().position(|t| is_ident(Some(t), "get_mut")) {
                if let Some(g) = paren_of(expr.get(gp + 1)) {
                    let nid = parse_ex(g.stream().trees());
                    return vec![
                        guard(Ex::Call("server_exists".into(), vec![nid.clone()]), expr),
                        act(Action::BindServer { var, nid, ensure: false }),
                    ];
                }
            }
        }
        // `<server>.acks.get(&len)`
        if contains_seq(expr, &["acks", "get"]) {
            if let Some(ap) = expr.iter().position(|t| is_ident(Some(t), "acks")) {
                if ap >= 2 {
                    let base = parse_ex(&expr[..ap - 1]);
                    if let Some(g) = expr
                        .iter()
                        .position(|t| is_ident(Some(t), "get"))
                        .and_then(|gp| paren_of(expr.get(gp + 1)))
                    {
                        let len = parse_ex(g.stream().trees());
                        return vec![
                            guard(
                                Ex::Call("acks_has".into(), vec![base.clone(), len.clone()]),
                                expr,
                            ),
                            act(Action::Bind {
                                var,
                                value: Ex::Call("acks_at".into(), vec![base, len]),
                            }),
                        ];
                    }
                }
            }
        }
        return vec![act(Action::Opaque { text: toks_text(tokens) })];
    }
    // Plain `let v = <expr>;`
    let var = match pat.first().and_then(ident_of) {
        Some(v) if pat.len() == 1 => v,
        _ => return vec![act(Action::Opaque { text: toks_text(tokens) })],
    };
    // `self.ensure_server(n)` / `self.servers.entry(n).or_insert_with(..)`
    if contains_seq(expr, &["self", "ensure_server"]) {
        if let Some(p) = expr.iter().position(|t| is_ident(Some(t), "ensure_server")) {
            if let Some(g) = paren_of(expr.get(p + 1)) {
                let nid = parse_ex(g.stream().trees());
                return vec![act(Action::BindServer { var, nid, ensure: true })];
            }
        }
    }
    if contains_seq(expr, &["servers", "entry"]) {
        if let Some(p) = expr.iter().position(|t| is_ident(Some(t), "entry")) {
            if let Some(g) = paren_of(expr.get(p + 1)) {
                let nid = parse_ex(g.stream().trees());
                return vec![act(Action::BindServer { var, nid, ensure: true })];
            }
        }
    }
    // `&self.servers[&n]`
    if contains_seq(expr, &["self", "servers"]) && paren_of(expr.last()).is_none() {
        if let Some(g) = bracket_of(expr.last()) {
            let nid = parse_ex(g.stream().trees());
            return vec![act(Action::BindServer { var, nid, ensure: false })];
        }
    }
    vec![act(Action::Bind { var, value: parse_ex(expr) })]
}

/// Lowers a `match` arm pattern into a variant guard plus field binds.
/// `Request::Elect { from, time, log }` → `IsVariant("Elect", scrut)`
/// and `from := scrut.from`, … Wildcard/ident patterns guard nothing.
fn arm_steps(tokens: &[TokenTree], scrut: &Ex) -> Vec<Step> {
    let (line, col) = tok_pos(tokens);
    let idents: Vec<String> = tokens.iter().filter_map(ident_of).collect();
    if idents.len() >= 2 {
        let variant = idents[1].clone();
        let mut steps = vec![Step::Guard(Clause {
            atoms: vec![Atom {
                negated: false,
                kind: AtomKind::VariantTest,
                ex: Ex::IsVariant(variant.clone(), Box::new(scrut.clone())),
                line,
                col,
                text: toks_text(tokens),
            }],
        })];
        if let Some(g) = brace_of(tokens.last()) {
            for part in split_on(g.stream().trees(), ',') {
                if let Some(f) = part.first().and_then(ident_of) {
                    steps.push(Step::Act(Act {
                        action: Action::Bind {
                            var: f.clone(),
                            value: Ex::Field(Box::new(scrut.clone()), f),
                        },
                        line,
                        col,
                    }));
                }
            }
        }
        return steps;
    }
    // `_` or a bare binder: no guard.
    Vec::new()
}

// ---- path enumeration ---------------------------------------------------

struct Enumerator<'a> {
    cfg: &'a cfg::Cfg,
    fn_names: &'a [String],
    paths: Vec<IrPath>,
    opaque: bool,
    on_stack: Vec<bool>,
}

impl Enumerator<'_> {
    fn walk(&mut self, node: usize, prefix: Vec<Step>, scrut: Option<Ex>) {
        if self.paths.len() >= MAX_PATHS {
            self.opaque = true;
            return;
        }
        if node == EXIT {
            self.paths.push(IrPath { steps: prefix });
            return;
        }
        if self.on_stack[node] {
            return; // back edge: loops execute at most once in the model
        }
        self.on_stack[node] = true;
        let n = &self.cfg.nodes[node];
        match (n.kind, n.role) {
            (NodeKind::Entry, _) => {
                for &s in &n.succs {
                    self.walk(s, prefix.clone(), None);
                }
            }
            (NodeKind::Stmt, _) => {
                let mut steps = prefix;
                steps.extend(classify_stmt(&n.tokens, self.fn_names));
                // `?` statements wire an extra EXIT edge; follow only the
                // fall-through (the last successor) and mark opaque.
                let succs: Vec<usize> = if cfg::contains_question(&n.tokens) {
                    self.opaque = true;
                    n.succs.iter().copied().filter(|&s| s != EXIT).collect()
                } else {
                    n.succs.clone()
                };
                if succs.is_empty() {
                    self.paths.push(IrPath { steps });
                } else {
                    for &s in &succs {
                        self.walk(s, steps.clone(), None);
                    }
                }
            }
            (NodeKind::Cond, BranchRole::If) => {
                if cfg::contains_question(&n.tokens) {
                    // The `?` EXIT edge precedes the branch edges, which
                    // destroys successor polarity: give up on this fn.
                    self.opaque = true;
                    self.on_stack[node] = false;
                    return;
                }
                // succs[0] = true branch, succs[1] = false/fall-through.
                for (i, &s) in n.succs.iter().enumerate() {
                    let mut steps = prefix.clone();
                    for c in cond_clauses(&n.tokens, i == 0) {
                        steps.push(Step::Guard(c));
                    }
                    self.walk(s, steps, None);
                }
            }
            (NodeKind::Cond, BranchRole::MatchScrutinee) => {
                let ex = parse_ex(&n.tokens);
                for &s in &n.succs {
                    self.walk(s, prefix.clone(), Some(ex.clone()));
                }
            }
            (NodeKind::Cond, BranchRole::MatchArm) => {
                let scrut = scrut.unwrap_or(Ex::Opaque("scrutinee".into()));
                let mut steps = prefix;
                steps.extend(arm_steps(&n.tokens, &scrut));
                for &s in &n.succs {
                    self.walk(s, steps.clone(), None);
                }
            }
            (NodeKind::Cond, BranchRole::While | BranchRole::For | BranchRole::LoopHead) => {
                // Loop headers: enumerate both "enter once" and "skip".
                for &s in &n.succs {
                    self.walk(s, prefix.clone(), None);
                }
            }
            (NodeKind::Exit, _) | (NodeKind::Cond, BranchRole::None) => {
                self.paths.push(IrPath { steps: prefix });
            }
        }
        self.on_stack[node] = false;
    }
}

// ---- extraction + inlining ----------------------------------------------

/// Parameter names from a signature token stream (skips `self`, `mut`,
/// references, and everything after each `:`).
fn param_names(sig: &proc_macro2::TokenStream) -> Vec<String> {
    let trees = sig.trees();
    let parens = trees.iter().find_map(|t| paren_of(Some(t)));
    let Some(g) = parens else { return Vec::new() };
    let mut out = Vec::new();
    for part in split_on(g.stream().trees(), ',') {
        let mut it = part.iter();
        let mut name = None;
        for t in it.by_ref() {
            if is_punct(Some(t), ':') {
                break;
            }
            if let Some(id) = ident_of(t) {
                if id == "self" {
                    name = None;
                    break;
                }
                if id != "mut" {
                    name = Some(id);
                }
            }
        }
        if let Some(n) = name {
            out.push(n);
        }
    }
    out
}

fn raw_ir(f: &syn::ItemFn, fn_names: &[String]) -> HandlerIr {
    let line = f
        .body
        .as_ref()
        .map(|b| b.span().start().line)
        .unwrap_or(0);
    let params = param_names(&f.signature);
    let mut ir = HandlerIr {
        name: f.ident.clone(),
        line,
        params,
        opaque: false,
        paths: Vec::new(),
    };
    let Some(body) = &f.body else {
        ir.opaque = true;
        return ir;
    };
    let g = cfg::build(body);
    let mut e = Enumerator {
        cfg: &g,
        fn_names,
        paths: Vec::new(),
        opaque: false,
        on_stack: vec![false; g.nodes.len()],
    };
    e.walk(ENTRY, Vec::new(), None);
    ir.opaque = e.opaque;
    ir.paths = e.paths;
    ir
}

fn subst_ex(ex: &Ex, map: &BTreeMap<String, Ex>) -> Ex {
    match ex {
        Ex::Var(v) => map.get(v).cloned().unwrap_or_else(|| ex.clone()),
        Ex::Field(b, f) => Ex::Field(Box::new(subst_ex(b, map)), f.clone()),
        Ex::Method(b, m, args) => Ex::Method(
            Box::new(subst_ex(b, map)),
            m.clone(),
            args.iter().map(|a| subst_ex(a, map)).collect(),
        ),
        Ex::Call(f, args) => {
            Ex::Call(f.clone(), args.iter().map(|a| subst_ex(a, map)).collect())
        }
        Ex::Cmp(op, a, b) => Ex::Cmp(
            *op,
            Box::new(subst_ex(a, map)),
            Box::new(subst_ex(b, map)),
        ),
        Ex::IsVariant(v, b) => Ex::IsVariant(v.clone(), Box::new(subst_ex(b, map))),
        Ex::SomeOf(b) => Ex::SomeOf(Box::new(subst_ex(b, map))),
        Ex::VotesOnce(b) => Ex::VotesOnce(Box::new(subst_ex(b, map))),
        Ex::SliceFrom(a, b) => {
            Ex::SliceFrom(Box::new(subst_ex(a, map)), Box::new(subst_ex(b, map)))
        }
        Ex::SliceTo(a, b) => {
            Ex::SliceTo(Box::new(subst_ex(a, map)), Box::new(subst_ex(b, map)))
        }
        Ex::Index(a, b) => Ex::Index(Box::new(subst_ex(a, map)), Box::new(subst_ex(b, map))),
        Ex::MsgElect { from, time, log } => Ex::MsgElect {
            from: Box::new(subst_ex(from, map)),
            time: Box::new(subst_ex(time, map)),
            log: Box::new(subst_ex(log, map)),
        },
        Ex::MsgCommit { from, time, log, commit_len } => Ex::MsgCommit {
            from: Box::new(subst_ex(from, map)),
            time: Box::new(subst_ex(time, map)),
            log: Box::new(subst_ex(log, map)),
            commit_len: Box::new(subst_ex(commit_len, map)),
        },
        Ex::EntryMethod { time, m } => Ex::EntryMethod {
            time: Box::new(subst_ex(time, map)),
            m: Box::new(subst_ex(m, map)),
        },
        Ex::EntryConfig { time, c } => Ex::EntryConfig {
            time: Box::new(subst_ex(time, map)),
            c: Box::new(subst_ex(c, map)),
        },
        Ex::SelfField(_) | Ex::Bool(_) | Ex::Num(_) | Ex::RoleLit(_) | Ex::Opaque(_) => ex.clone(),
    }
}

fn subst_step(step: &Step, map: &BTreeMap<String, Ex>) -> Step {
    match step {
        Step::Guard(c) => Step::Guard(Clause {
            atoms: c
                .atoms
                .iter()
                .map(|a| Atom { ex: subst_ex(&a.ex, map), ..a.clone() })
                .collect(),
        }),
        Step::Act(a) => {
            let action = match &a.action {
                Action::Bind { var, value } => Action::Bind {
                    var: rename(var, map),
                    value: subst_ex(value, map),
                },
                Action::BindServer { var, nid, ensure } => Action::BindServer {
                    var: rename(var, map),
                    nid: subst_ex(nid, map),
                    ensure: *ensure,
                },
                Action::Assign { base, field, value } => Action::Assign {
                    base: subst_ex(base, map),
                    field: field.clone(),
                    value: subst_ex(value, map),
                },
                Action::FieldClear { base, field } => Action::FieldClear {
                    base: subst_ex(base, map),
                    field: field.clone(),
                },
                Action::FieldInsert { base, field, value } => Action::FieldInsert {
                    base: subst_ex(base, map),
                    field: field.clone(),
                    value: subst_ex(value, map),
                },
                Action::FieldPush { base, field, value } => Action::FieldPush {
                    base: subst_ex(base, map),
                    field: field.clone(),
                    value: subst_ex(value, map),
                },
                Action::AcksInsert { base, len, node } => Action::AcksInsert {
                    base: subst_ex(base, map),
                    len: subst_ex(len, map),
                    node: subst_ex(node, map),
                },
                Action::EmitMsg { value } => Action::EmitMsg { value: subst_ex(value, map) },
                Action::CallFn { name, args } => Action::CallFn {
                    name: name.clone(),
                    args: args.iter().map(|x| subst_ex(x, map)).collect(),
                },
                other => other.clone(),
            };
            Step::Act(Act { action, line: a.line, col: a.col })
        }
    }
}

fn rename(var: &str, map: &BTreeMap<String, Ex>) -> String {
    match map.get(var) {
        Some(Ex::Var(v)) => v.clone(),
        _ => var.to_string(),
    }
}

/// Local bind targets of a path (parameters excluded).
fn local_binds(ir: &HandlerIr) -> Vec<String> {
    let mut out = Vec::new();
    for p in &ir.paths {
        for s in &p.steps {
            if let Step::Act(a) = s {
                match &a.action {
                    Action::Bind { var, .. } | Action::BindServer { var, .. }
                        if !out.contains(var) =>
                    {
                        out.push(var.clone());
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Expands `CallFn` steps through `map`, renaming callee locals and
/// substituting arguments, to depth [`MAX_INLINE`].
fn inline_ir(
    ir: &HandlerIr,
    map: &BTreeMap<String, HandlerIr>,
    depth: usize,
    ctr: &mut usize,
) -> HandlerIr {
    let mut out = HandlerIr { paths: Vec::new(), ..ir.clone() };
    for path in &ir.paths {
        let mut expanded: Vec<IrPath> = vec![IrPath::default()];
        for step in &path.steps {
            let callee = match step {
                Step::Act(Act { action: Action::CallFn { name, args }, .. })
                    if depth < MAX_INLINE =>
                {
                    map.get(name).map(|c| (c, args.clone()))
                }
                _ => None,
            };
            match callee {
                Some((callee, args)) => {
                    let callee = inline_ir(callee, map, depth + 1, ctr);
                    *ctr += 1;
                    let tag = *ctr;
                    let mut sub: BTreeMap<String, Ex> = BTreeMap::new();
                    for (p, a) in callee.params.iter().zip(args.iter()) {
                        sub.insert(p.clone(), a.clone());
                    }
                    for l in local_binds(&callee) {
                        if !sub.contains_key(&l) {
                            sub.insert(l.clone(), Ex::Var(format!("__i{tag}_{l}")));
                        }
                    }
                    if callee.opaque {
                        out.opaque = true;
                    }
                    let mut next = Vec::new();
                    for pre in &expanded {
                        for cp in &callee.paths {
                            let mut steps = pre.steps.clone();
                            steps.extend(cp.steps.iter().map(|s| subst_step(s, &sub)));
                            next.push(IrPath { steps });
                            if next.len() > MAX_PATHS {
                                out.opaque = true;
                            }
                        }
                        if callee.paths.is_empty() {
                            next.push(pre.clone());
                        }
                    }
                    next.truncate(MAX_PATHS);
                    expanded = next;
                }
                None => {
                    for pre in &mut expanded {
                        pre.steps.push(step.clone());
                    }
                }
            }
        }
        out.paths.extend(expanded);
        if out.paths.len() > MAX_PATHS {
            out.opaque = true;
            out.paths.truncate(MAX_PATHS);
        }
    }
    out
}

/// Extracts (and inlines) the IR of the named functions from a parsed
/// file. Functions are located anywhere in the item tree (impl blocks
/// included); `#[cfg(test)]` items are skipped.
#[must_use]
pub fn extract(file: &syn::File, wanted: &[String]) -> Vec<HandlerIr> {
    let mut fns = Vec::new();
    crate::callgraph::collect_fns(&file.items, false, &mut fns);
    let fn_names: Vec<String> = fns.iter().map(|f| f.ident.clone()).collect();
    let mut raw: BTreeMap<String, HandlerIr> = BTreeMap::new();
    for f in &fns {
        // First definition wins (duplicates across impls are rare and
        // ambiguous anyway).
        raw.entry(f.ident.clone())
            .or_insert_with(|| raw_ir(f, &fn_names));
    }
    let mut out = Vec::new();
    for name in wanted {
        if let Some(ir) = raw.get(name) {
            let mut ctr = 0usize;
            out.push(inline_ir(ir, &raw, 0, &mut ctr));
        }
    }
    out
}

// ---- JSON dump ----------------------------------------------------------

fn jesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_ex(ex: &Ex) -> String {
    match ex {
        Ex::Var(v) => v.clone(),
        Ex::SelfField(f) => format!("self.{f}"),
        Ex::Field(b, f) => format!("{}.{f}", fmt_ex(b)),
        Ex::Method(b, m, args) => format!(
            "{}.{m}({})",
            fmt_ex(b),
            args.iter().map(fmt_ex).collect::<Vec<_>>().join(", ")
        ),
        Ex::Call(f, args) => format!(
            "{f}({})",
            args.iter().map(fmt_ex).collect::<Vec<_>>().join(", ")
        ),
        Ex::Cmp(op, a, b) => format!("{} {} {}", fmt_ex(a), op.sym(), fmt_ex(b)),
        Ex::IsVariant(v, b) => format!("is_{}({})", v.to_lowercase(), fmt_ex(b)),
        Ex::Bool(b) => b.to_string(),
        Ex::Num(n) => n.to_string(),
        Ex::RoleLit(r) => format!("Role::{r}"),
        Ex::SomeOf(b) => format!("Some({})", fmt_ex(b)),
        Ex::SliceFrom(a, b) => format!("{}[{}..]", fmt_ex(a), fmt_ex(b)),
        Ex::SliceTo(a, b) => format!("{}[..{}]", fmt_ex(a), fmt_ex(b)),
        Ex::Index(a, b) => format!("{}[{}]", fmt_ex(a), fmt_ex(b)),
        Ex::MsgElect { from, time, log } => format!(
            "Elect{{from: {}, time: {}, log: {}}}",
            fmt_ex(from),
            fmt_ex(time),
            fmt_ex(log)
        ),
        Ex::MsgCommit { from, time, log, commit_len } => format!(
            "Commit{{from: {}, time: {}, log: {}, commit_len: {}}}",
            fmt_ex(from),
            fmt_ex(time),
            fmt_ex(log),
            fmt_ex(commit_len)
        ),
        Ex::EntryMethod { time, m } => {
            format!("Entry{{time: {}, method: {}}}", fmt_ex(time), fmt_ex(m))
        }
        Ex::EntryConfig { time, c } => {
            format!("Entry{{time: {}, config: {}}}", fmt_ex(time), fmt_ex(c))
        }
        Ex::VotesOnce(b) => format!("once({})", fmt_ex(b)),
        Ex::Opaque(t) => format!("opaque<{t}>"),
    }
}

fn fmt_step(step: &Step) -> String {
    match step {
        Step::Guard(c) => {
            let parts: Vec<String> = c
                .atoms
                .iter()
                .map(|a| {
                    format!(
                        "{}{} @{}:{}",
                        if a.negated { "!" } else { "" },
                        fmt_ex(&a.ex),
                        a.line,
                        a.col
                    )
                })
                .collect();
            format!("guard {}", parts.join(" || "))
        }
        Step::Act(a) => {
            let body = match &a.action {
                Action::Bind { var, value } => format!("let {var} = {}", fmt_ex(value)),
                Action::BindServer { var, nid, ensure } => format!(
                    "let {var} = server({}){}",
                    fmt_ex(nid),
                    if *ensure { " ensure" } else { "" }
                ),
                Action::Assign { base, field, value } => {
                    format!("{}.{field} = {}", fmt_ex(base), fmt_ex(value))
                }
                Action::FieldClear { base, field } => format!("{}.{field}.clear()", fmt_ex(base)),
                Action::FieldInsert { base, field, value } => {
                    format!("{}.{field}.insert({})", fmt_ex(base), fmt_ex(value))
                }
                Action::FieldPush { base, field, value } => {
                    format!("{}.{field}.push({})", fmt_ex(base), fmt_ex(value))
                }
                Action::AcksInsert { base, len, node } => format!(
                    "{}.acks[{}].insert({})",
                    fmt_ex(base),
                    fmt_ex(len),
                    fmt_ex(node)
                ),
                Action::EmitMsg { value } => format!("emit {}", fmt_ex(value)),
                Action::Emit { class } => format!("emit-class {class:?}"),
                Action::Delivered => "delivered".to_string(),
                Action::CallFn { name, args } => format!(
                    "call {name}({})",
                    args.iter().map(fmt_ex).collect::<Vec<_>>().join(", ")
                ),
                Action::SetOutcome { applied } => format!("outcome applied={applied}"),
                Action::Noop { what } => format!("noop {what}"),
                Action::Opaque { text } => format!("opaque {text}"),
            };
            format!("{body} @{}:{}", a.line, a.col)
        }
    }
}

/// Renders the pinned, deterministic JSON dump of extracted IRs, one
/// entry per (file, handlers) pair.
#[must_use]
pub fn render_json_dump(files: &[(String, Vec<HandlerIr>)]) -> String {
    let mut out = String::from("{\n  \"gcir_version\": 1,\n  \"files\": [\n");
    for (fi, (rel, irs)) in files.iter().enumerate() {
        out.push_str(&format!("    {{\n      \"file\": \"{}\",\n      \"handlers\": [\n", jesc(rel)));
        for (hi, ir) in irs.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"line\": {}, \"params\": [{}], \"opaque\": {}, \"fully_modeled\": {}, \"paths\": [\n",
                jesc(&ir.name),
                ir.line,
                ir.params
                    .iter()
                    .map(|p| format!("\"{}\"", jesc(p)))
                    .collect::<Vec<_>>()
                    .join(", "),
                ir.opaque,
                ir.is_fully_modeled(),
            ));
            for (pi, p) in ir.paths.iter().enumerate() {
                let outcome = match p.outcome() {
                    Some(true) => "\"applied\"",
                    Some(false) => "\"rejected\"",
                    None => "null",
                };
                out.push_str(&format!("          {{\"outcome\": {outcome}, \"steps\": ["));
                let steps: Vec<String> = p
                    .steps
                    .iter()
                    .map(|s| format!("\"{}\"", jesc(&fmt_step(s))))
                    .collect();
                out.push_str(&steps.join(", "));
                out.push_str("]}");
                out.push_str(if pi + 1 < ir.paths.len() { ",\n" } else { "\n" });
            }
            out.push_str("        ]}");
            out.push_str(if hi + 1 < irs.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n    }");
        out.push_str(if fi + 1 < files.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_of(src: &str) -> syn::File {
        syn::parse_file(src).expect("parse")
    }

    #[test]
    fn elect_like_handler_extracts_fully() {
        let src = r#"
impl Net {
    fn elect(&mut self, nid: NodeId) -> EventOutcome {
        let conf0 = self.conf0.clone();
        let s = self.ensure_server(nid);
        if s.crashed || !effective_config(&conf0, &s.log).members().contains(&nid) {
            return EventOutcome::LocalNoOp;
        }
        s.time = s.time.next();
        s.role = Role::Candidate;
        s.votes = std::iter::once(nid).collect();
        EventOutcome::Applied
    }
}
"#;
        let irs = extract(&file_of(src), &["elect".to_string()]);
        assert_eq!(irs.len(), 1);
        let ir = &irs[0];
        assert!(ir.is_fully_modeled(), "opaque IR: {ir:#?}");
        assert_eq!(ir.params, vec!["nid"]);
        // Reject path + applied path.
        let outcomes: Vec<Option<bool>> = ir.paths.iter().map(IrPath::outcome).collect();
        assert!(outcomes.contains(&Some(true)));
        assert!(outcomes.contains(&Some(false)));
        // The applied path must carry the negated membership guard.
        let applied = ir
            .paths
            .iter()
            .find(|p| p.outcome() == Some(true))
            .unwrap();
        let has_member_guard = applied.steps.iter().any(|s| match s {
            Step::Guard(c) => c
                .atoms
                .iter()
                .any(|a| a.kind == AtomKind::Contains && !a.negated),
            _ => false,
        });
        assert!(has_member_guard, "{applied:#?}");
    }

    #[test]
    fn quorum_guard_classified_and_inlined() {
        let src = r#"
impl Net {
    fn commit(&mut self, nid: NodeId) -> EventOutcome {
        let Some(s) = self.servers.get_mut(&nid) else {
            return EventOutcome::LocalNoOp;
        };
        let len = s.log.len();
        s.acks.entry(len).or_default().insert(nid);
        self.maybe_advance_commit(nid, len);
        EventOutcome::Applied
    }
    fn maybe_advance_commit(&mut self, nid: NodeId, len: usize) {
        let conf0 = self.conf0.clone();
        let Some(s) = self.servers.get_mut(&nid) else {
            return;
        };
        let Some(ackers) = s.acks.get(&len) else {
            return;
        };
        let config = effective_config(&conf0, &s.log);
        if config.is_quorum(ackers) && len > s.commit_len {
            s.commit_len = len;
        }
    }
}
"#;
        let irs = extract(&file_of(src), &["commit".to_string()]);
        let ir = &irs[0];
        assert!(ir.is_fully_modeled(), "{ir:#?}");
        // Some inlined path must contain: AcksInsert, then a quorum
        // guard, then the commit_len assignment — in that order.
        let ok = ir.paths.iter().any(|p| {
            let mut saw_ack = false;
            let mut saw_quorum = false;
            for s in &p.steps {
                match s {
                    Step::Act(a) => match &a.action {
                        Action::AcksInsert { .. } => saw_ack = true,
                        Action::Assign { field, .. } if field == "commit_len" => {
                            return saw_ack && saw_quorum;
                        }
                        _ => {}
                    },
                    Step::Guard(c) => {
                        if saw_ack
                            && c.atoms.iter().any(|a| a.kind == AtomKind::Quorum && !a.negated)
                        {
                            saw_quorum = true;
                        }
                    }
                }
            }
            false
        });
        assert!(ok, "no path orders ack-insert before quorum-guarded commit: {ir:#?}");
    }

    #[test]
    fn match_arms_become_variant_guards() {
        let src = r#"
impl Net {
    fn deliver_gated(&mut self, msg: MsgId, to: NodeId, ack_ok: bool) -> EventOutcome {
        let Some(req) = self.messages.get(msg.0 as usize).cloned() else {
            return EventOutcome::Rejected(Rejection::UnknownMessage);
        };
        match req {
            Request::Elect { from, time, log } => {
                let recipient = self.ensure_server(to);
                if time <= recipient.time {
                    return EventOutcome::Rejected(Rejection::StaleTime);
                }
                recipient.time = time;
                EventOutcome::Applied
            }
            Request::Commit { from, time, log, commit_len } => {
                EventOutcome::Applied
            }
        }
    }
}
"#;
        let irs = extract(&file_of(src), &["deliver_gated".to_string()]);
        let ir = &irs[0];
        assert!(ir.is_fully_modeled(), "{ir:#?}");
        let variant_paths = ir
            .paths
            .iter()
            .filter(|p| {
                p.steps.iter().any(|s| matches!(s, Step::Guard(c)
                    if c.atoms.iter().any(|a| a.kind == AtomKind::VariantTest)))
            })
            .count();
        assert!(variant_paths >= 3, "{ir:#?}");
    }

    #[test]
    fn emission_classes_extracted_in_order() {
        let src = r#"
impl Node {
    fn finish(&mut self, st: Step) -> Vec<Output> {
        let mut out = Vec::new();
        if st.has_delta() {
            out.push(Output::Journal(EventKind::StateDelta { nid: self.nid.0 }));
        }
        out.push(Output::Persist { bytes });
        out.extend(st.sends.into_iter().map(|(to, msg)| Output::Send { to, msg }));
        out.extend(st.replies.into_iter().map(|(conn, reply)| Output::Reply { conn, reply }));
        out
    }
}
"#;
        let irs = extract(&file_of(src), &["finish".to_string()]);
        let ir = &irs[0];
        let full_path = ir
            .paths
            .iter()
            .max_by_key(|p| p.steps.len())
            .expect("paths");
        let classes: Vec<EmitClass> = full_path
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Act(Act { action: Action::Emit { class }, .. }) => Some(*class),
                _ => None,
            })
            .collect();
        assert_eq!(
            classes,
            vec![EmitClass::Journal, EmitClass::Persist, EmitClass::Send, EmitClass::Reply]
        );
    }

    #[test]
    fn dump_is_deterministic() {
        let src = "fn f(&mut self) { self.x = 1; }";
        let irs = extract(&file_of(src), &["f".to_string()]);
        let a = render_json_dump(&[("a.rs".to_string(), irs.clone())]);
        let b = render_json_dump(&[("a.rs".to_string(), irs)]);
        assert_eq!(a, b);
        assert!(a.contains("\"gcir_version\": 1"));
    }
}
