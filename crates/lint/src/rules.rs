//! The five protocol-discipline rules.
//!
//! * **L1 — determinism**: protocol crates must not use hash-ordered
//!   collections (`HashMap`/`HashSet`), ambient clocks (`SystemTime`,
//!   `Instant::now`), or ambient randomness (`thread_rng`). Replaying a
//!   counterexample or re-running a seeded exploration must visit states
//!   in the same order every time.
//! * **L2 — panic-free recovery**: configured (file, function) scopes —
//!   WAL replay, crash recovery, counterexample replay — must not call
//!   `.unwrap()`/`.expect()`, invoke panic-family macros, or index
//!   slices. Recovery code runs on corrupted inputs by design; it must
//!   return typed errors, not abort.
//! * **L3 — mutation encapsulation**: protected protocol-state fields
//!   may only be assigned inside their owning transition module. Within
//!   a crate rustc's privacy cannot enforce this, so the lint does.
//! * **L4 — certificate hygiene**: verdict types carry `#[must_use]`,
//!   and a statement whose result is a `check_*`/`certify_*` call must
//!   consume it — `#[must_use]` alone cannot flag `let _ = ...`, and
//!   unit-returning "checkers" (which the attribute never catches) are
//!   banned by naming convention.
//! * **L5 — no stray console output**: protocol crates must not call
//!   the print-macro family (`println!`, `eprintln!`, `print!`,
//!   `eprint!`, `dbg!`) outside the configured bin/bench entry points.
//!   Observable behavior routes through the tracer and metrics registry
//!   so it is journaled, deterministic, and auditable; ad-hoc prints
//!   are invisible to the trace auditor and pollute table output.
//!
//! All rules are token-pattern passes over the item tree `syn` (the
//! in-tree stand-in) produces — no type information. The patterns are
//! deliberately conservative and syntactic; the suppression pragma
//! (see [`crate::pragma`]) is the escape hatch for justified uses.

use proc_macro2::{Delimiter, Group, Span, TokenTree};

use crate::config::{Config, L2Scope};
use crate::Finding;

/// Runs every rule over one parsed file. `rel` is the workspace-relative
/// path with forward slashes; it selects which rule scopes apply.
pub fn scan_file(rel: &str, file: &syn::File, cfg: &Config) -> Vec<Finding> {
    let l1 = cfg.l1_crates.iter().any(|c| in_dir(rel, c));
    let l3: Vec<(&str, &str)> = cfg
        .l3_types
        .iter()
        .filter(|t| in_dir(rel, &t.crate_dir) && !t.owners.iter().any(|o| o == rel))
        .flat_map(|t| {
            t.fields
                .iter()
                .map(move |f| (t.type_name.as_str(), f.as_str()))
        })
        .collect();
    let l3c: Vec<&str> = cfg
        .l3_types
        .iter()
        .filter(|t| t.construct && in_dir(rel, &t.crate_dir) && !t.owners.iter().any(|o| o == rel))
        .map(|t| t.type_name.as_str())
        .collect();
    let l2_scopes: Vec<&L2Scope> = cfg.l2_scopes.iter().filter(|s| s.file == rel).collect();
    let l4b = cfg.l4_paths.iter().any(|p| in_dir(rel, p));
    let l5 = cfg.l5_crates.iter().any(|c| in_dir(rel, c))
        && !cfg.l5_allow.iter().any(|p| rel == p || in_dir(rel, p));

    let mut ctx = Ctx {
        rel,
        cfg,
        l1,
        l2_scopes,
        l3,
        l3c,
        l4b,
        l5,
        findings: Vec::new(),
    };
    walk_items(&mut ctx, &file.items, false);
    ctx.findings
}

/// Whether `rel` lies strictly inside directory `dir`.
pub(crate) fn in_dir(rel: &str, dir: &str) -> bool {
    rel.strip_prefix(dir)
        .is_some_and(|rest| rest.starts_with('/'))
}

struct Ctx<'c> {
    rel: &'c str,
    cfg: &'c Config,
    l1: bool,
    l2_scopes: Vec<&'c L2Scope>,
    /// Active (type name, protected field) pairs for this file.
    l3: Vec<(&'c str, &'c str)>,
    /// Construct-protected type names active for this file.
    l3c: Vec<&'c str>,
    l4b: bool,
    l5: bool,
    findings: Vec<Finding>,
}

impl Ctx<'_> {
    fn push(&mut self, rule: &str, span: Span, msg: String) {
        let lc = span.start();
        self.findings.push(Finding {
            rule: rule.to_string(),
            file: self.rel.to_string(),
            line: lc.line,
            col: lc.column,
            msg,
            suppressed: false,
            reason: None,
        });
    }
}

/// Which rules are live for the token stream being scanned. Signatures
/// and type bodies get L1 only; function bodies get the full set the
/// file's configuration enables; `#[cfg(test)]` subtrees get none.
#[derive(Clone, Copy)]
struct Flags {
    l1: bool,
    l2: bool,
    l3: bool,
    l3c: bool,
    l4b: bool,
    l5: bool,
}

const OFF: Flags = Flags {
    l1: false,
    l2: false,
    l3: false,
    l3c: false,
    l4b: false,
    l5: false,
};

fn walk_items(ctx: &mut Ctx<'_>, items: &[syn::Item], in_test: bool) {
    for item in items {
        let in_test = in_test || item.attrs().iter().any(syn::Attribute::is_cfg_test);
        match item {
            syn::Item::Fn(f) => walk_fn(ctx, f, in_test),
            syn::Item::Mod(m) | syn::Item::Trait(m) => {
                if let Some(content) = &m.content {
                    walk_items(ctx, content, in_test);
                }
            }
            syn::Item::Impl(i) => walk_items(ctx, &i.items, in_test),
            syn::Item::Struct(syn::ItemStruct {
                attrs,
                ident,
                span,
                body,
            })
            | syn::Item::Enum(syn::ItemEnum {
                attrs,
                ident,
                span,
                body,
            }) => {
                if !in_test {
                    flag_missing_must_use(ctx, attrs, ident, *span);
                    let fl = Flags {
                        l1: ctx.l1,
                        ..OFF
                    };
                    if let Some(b) = body {
                        scan(ctx, b.stream().trees(), fl);
                    }
                }
            }
            syn::Item::Other(o) => {
                if !in_test {
                    let fl = Flags {
                        l1: ctx.l1,
                        ..OFF
                    };
                    scan(ctx, o.tokens.trees(), fl);
                }
            }
        }
    }
}

fn walk_fn(ctx: &mut Ctx<'_>, f: &syn::ItemFn, in_test: bool) {
    if in_test {
        return;
    }
    let l2 = ctx
        .l2_scopes
        .iter()
        .any(|s| s.functions.iter().any(|n| n == "*" || *n == f.ident));
    let sig_flags = Flags {
        l1: ctx.l1,
        ..OFF
    };
    scan(ctx, f.signature.trees(), sig_flags);
    if let Some(body) = &f.body {
        let fl = Flags {
            l1: ctx.l1,
            l2,
            l3: !ctx.l3.is_empty(),
            l3c: !ctx.l3c.is_empty(),
            l4b: ctx.l4b,
            l5: ctx.l5,
        };
        if fl.l4b {
            flag_discarded_verdicts(ctx, body);
        }
        scan(ctx, body.stream().trees(), fl);
    }
}

/// L4a: a configured verdict type must carry `#[must_use]`.
fn flag_missing_must_use(
    ctx: &mut Ctx<'_>,
    attrs: &[syn::Attribute],
    ident: &str,
    span: Span,
) {
    if !ctx.l4b || !ctx.cfg.l4_must_use_types.iter().any(|t| t == ident) {
        return;
    }
    if attrs.iter().any(|a| a.is("must_use")) {
        return;
    }
    ctx.push(
        "L4",
        span,
        format!("verdict type `{ident}` must be declared `#[must_use]`"),
    );
}

fn scan(ctx: &mut Ctx<'_>, trees: &[TokenTree], fl: Flags) {
    for i in 0..trees.len() {
        match &trees[i] {
            TokenTree::Ident(_) => {
                if fl.l1 {
                    l1_ident(ctx, trees, i);
                }
                if fl.l2 {
                    l2_ident(ctx, trees, i);
                }
                if fl.l5 {
                    l5_ident(ctx, trees, i);
                }
                if fl.l3c {
                    l3_construct(ctx, trees, i);
                }
            }
            TokenTree::Punct(p) if fl.l3 && p.as_char() == '.' => {
                l3_dot(ctx, trees, i);
            }
            TokenTree::Group(g) => {
                if fl.l2 && g.delimiter() == Delimiter::Bracket && is_index_position(trees, i) {
                    ctx.push(
                        "L2",
                        g.span(),
                        "slice indexing in a panic-free scope (use `.get(..)`)".to_string(),
                    );
                }
                if fl.l4b && g.delimiter() == Delimiter::Brace {
                    flag_discarded_verdicts(ctx, g);
                }
                scan(ctx, g.stream().trees(), fl);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// L1: determinism
// ---------------------------------------------------------------------------

fn l1_ident(ctx: &mut Ctx<'_>, trees: &[TokenTree], i: usize) {
    let TokenTree::Ident(id) = &trees[i] else {
        return;
    };
    let msg = if *id == "HashMap" || *id == "HashSet" {
        format!("hash-ordered collection `{id}` in a protocol crate (use BTreeMap/BTreeSet)")
    } else if *id == "SystemTime" {
        "ambient wall clock `SystemTime` in a protocol crate".to_string()
    } else if *id == "thread_rng" {
        "ambient RNG `thread_rng` in a protocol crate (thread a seeded RNG through instead)"
            .to_string()
    } else if *id == "Instant" && is_path_call(trees, i, "now") {
        "ambient clock `Instant::now` in a protocol crate".to_string()
    } else {
        return;
    };
    ctx.push("L1", id.span(), msg);
}

/// Matches `<ident> :: <method>` starting at `trees[i]`.
pub(crate) fn is_path_call(trees: &[TokenTree], i: usize, method: &str) -> bool {
    let colon = |k: usize| matches!(trees.get(k), Some(TokenTree::Punct(p)) if p.as_char() == ':');
    colon(i + 1)
        && colon(i + 2)
        && matches!(trees.get(i + 3), Some(TokenTree::Ident(m)) if *m == method)
}

// ---------------------------------------------------------------------------
// L2: panic-free recovery
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

fn l2_ident(ctx: &mut Ctx<'_>, trees: &[TokenTree], i: usize) {
    let TokenTree::Ident(id) = &trees[i] else {
        return;
    };
    let prev_dot =
        i > 0 && matches!(&trees[i - 1], TokenTree::Punct(p) if p.as_char() == '.');
    if (*id == "unwrap" || *id == "expect") && prev_dot {
        ctx.push(
            "L2",
            id.span(),
            format!("`.{id}()` in a panic-free recovery scope (return a typed error)"),
        );
        return;
    }
    let next_bang =
        matches!(trees.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '!');
    if next_bang && PANIC_MACROS.iter().any(|m| *id == **m) {
        ctx.push(
            "L2",
            id.span(),
            format!("`{id}!` in a panic-free recovery scope"),
        );
    }
}

// ---------------------------------------------------------------------------
// L5: no stray console output
// ---------------------------------------------------------------------------

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

fn l5_ident(ctx: &mut Ctx<'_>, trees: &[TokenTree], i: usize) {
    let TokenTree::Ident(id) = &trees[i] else {
        return;
    };
    let next_bang =
        matches!(trees.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '!');
    if next_bang && PRINT_MACROS.iter().any(|m| *id == **m) {
        ctx.push(
            "L5",
            id.span(),
            format!(
                "`{id}!` in a protocol crate (route output through the tracer/metrics, \
                 or move it to a bin target)"
            ),
        );
    }
}

/// Idents that precede a bracket group without forming an indexing
/// expression (`let [a, b] = ..`, `for [x] in ..`, `&mut [T; 4]`, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "while", "match", "return", "else", "mut", "ref", "move", "as", "loop",
    "break", "continue", "where", "dyn", "for", "unsafe", "use", "const", "static", "type",
    "await", "impl",
];

/// Whether the bracket group at `trees[i]` sits in indexing position:
/// directly after an expression-ish token (identifier, call/paren group,
/// another index, or a literal).
fn is_index_position(trees: &[TokenTree], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|k| trees.get(k)) else {
        return false;
    };
    match prev {
        TokenTree::Ident(id) => !NON_INDEX_KEYWORDS.iter().any(|k| *id == **k),
        TokenTree::Group(g) => {
            matches!(g.delimiter(), Delimiter::Parenthesis | Delimiter::Bracket)
        }
        TokenTree::Literal(_) => true,
        TokenTree::Punct(_) => false,
    }
}

// ---------------------------------------------------------------------------
// L3: mutation encapsulation
// ---------------------------------------------------------------------------

/// Idents that precede `Type { .. }` without it being a construction:
/// declarations, impl headers, and `let`/`ref` destructuring patterns.
const NON_CONSTRUCT_KEYWORDS: &[&str] = &[
    "struct", "enum", "union", "impl", "trait", "mod", "fn", "let", "ref", "for",
];

/// L3 (construct protection): `Type { .. }` literals of a protected type
/// outside its owner files. Covers journal-event types whose invariants
/// (schema version, causal parent links) only the owner constructors
/// maintain.
fn l3_construct(ctx: &mut Ctx<'_>, trees: &[TokenTree], i: usize) {
    let TokenTree::Ident(id) = &trees[i] else {
        return;
    };
    if !ctx.l3c.iter().any(|t| *id == **t) {
        return;
    }
    let Some(TokenTree::Group(g)) = trees.get(i + 1) else {
        return;
    };
    if g.delimiter() != Delimiter::Brace {
        return;
    }
    if let Some(TokenTree::Ident(prev)) = i.checked_sub(1).and_then(|k| trees.get(k)) {
        if NON_CONSTRUCT_KEYWORDS.iter().any(|k| *prev == **k) {
            return;
        }
    }
    ctx.push(
        "L3",
        id.span(),
        format!("`{id}` constructed outside its owner module (use the owner's constructors)"),
    );
}

fn l3_dot(ctx: &mut Ctx<'_>, trees: &[TokenTree], i: usize) {
    let dot = |k: usize| matches!(trees.get(k), Some(TokenTree::Punct(p)) if p.as_char() == '.');
    // `..` / `..=` ranges and struct-update syntax are not field access.
    if dot(i + 1) || (i > 0 && dot(i - 1)) {
        return;
    }
    let Some(TokenTree::Ident(field)) = trees.get(i + 1) else {
        return;
    };
    let Some((ty, _)) = ctx.l3.iter().find(|(_, f)| *field == **f) else {
        return;
    };
    if assignment_follows(trees, i + 2) {
        let msg = format!(
            "field `{field}` of `{ty}` assigned outside its owning transition module"
        );
        ctx.push("L3", field.span(), msg);
    }
}

/// Whether the punct run starting at `trees[j]` is an assignment
/// operator (`=`, `+=`, `<<=`, ...) rather than a comparison.
pub(crate) fn assignment_follows(trees: &[TokenTree], j: usize) -> bool {
    let c = |k: usize| match trees.get(j + k) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    };
    let Some(c1) = c(0) else {
        return false;
    };
    match c1 {
        '=' => !matches!(c(1), Some('=' | '>')),
        '+' | '-' | '*' | '/' | '%' | '^' => c(1) == Some('='),
        '&' | '|' => c(1) == Some('='),
        '<' | '>' => c(1) == Some(c1) && c(2) == Some('='),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// L4b: discarded verdicts
// ---------------------------------------------------------------------------

/// Splits a brace group into top-level `;`-terminated statements and
/// flags any whose value is a bare `check_*`/`certify_*` call that
/// nothing consumes. `#[must_use]` cannot catch `let _ = check(..);`,
/// and this also polices the naming convention itself: a function with
/// a verdict prefix must return a value worth consuming.
fn flag_discarded_verdicts(ctx: &mut Ctx<'_>, body: &Group) {
    let trees = body.stream().trees();
    let mut start = 0;
    for i in 0..=trees.len() {
        match trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                // Only `;`-terminated statements discard; a tail
                // expression is the block's value.
                flag_discarded_statement(ctx, &trees[start..i]);
                start = i + 1;
            }
            // A top-level brace group ends a block statement
            // (`if .. { }`, `match .. { }`) with no `;`; reset so the
            // next statement does not absorb it as a prefix.
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                start = i + 1;
            }
            _ => {}
        }
    }
}

fn flag_discarded_statement(ctx: &mut Ctx<'_>, stmt: &[TokenTree]) {
    let n = stmt.len();
    if n < 2 {
        return;
    }
    // The verdict call must be the statement's final expression:
    // `... check_foo ( args )`.
    let TokenTree::Group(gp) = &stmt[n - 1] else {
        return;
    };
    if gp.delimiter() != Delimiter::Parenthesis {
        return;
    }
    let TokenTree::Ident(name) = &stmt[n - 2] else {
        return;
    };
    let name_s = name.to_string();
    if !ctx
        .cfg
        .l4_consume_prefixes
        .iter()
        .any(|p| name_s.starts_with(p.as_str()))
    {
        return;
    }
    let is_kw = |k: usize, kw: &str| matches!(stmt.get(k), Some(TokenTree::Ident(i)) if *i == kw);
    // `let _ = check(..);` discards despite the `=`.
    let discard_binding = is_kw(0, "let") && is_kw(1, "_");
    if !discard_binding {
        if is_kw(0, "return") || is_kw(0, "break") {
            return;
        }
        if has_top_level_assignment(stmt) {
            return;
        }
    }
    ctx.push(
        "L4",
        name.span(),
        format!("result of `{name_s}(..)` discarded (verdicts must be consumed)"),
    );
}

/// Whether the statement contains a top-level `=` that binds or assigns
/// (as opposed to `==`, `=>`, `<=`, `>=`, `!=`).
fn has_top_level_assignment(stmt: &[TokenTree]) -> bool {
    for k in 0..stmt.len() {
        let TokenTree::Punct(p) = &stmt[k] else {
            continue;
        };
        if p.as_char() != '=' {
            continue;
        }
        let ch = |t: Option<&TokenTree>| match t {
            Some(TokenTree::Punct(q)) => Some(q.as_char()),
            _ => None,
        };
        let prev = k.checked_sub(1).and_then(|j| ch(stmt.get(j)));
        let next = ch(stmt.get(k + 1));
        let comparison_prev = matches!(prev, Some('=' | '<' | '>' | '!'));
        let comparison_next = matches!(next, Some('=' | '>'));
        if !comparison_prev && !comparison_next {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, L2Scope, L3Type};

    fn run(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
        let file = syn::parse_file(src).expect("fixture parses");
        scan_file(rel, &file, cfg)
    }

    fn l1_cfg() -> Config {
        Config {
            l1_crates: vec!["crates/core".into()],
            ..Config::default()
        }
    }

    #[test]
    fn l1_flags_hash_collections_and_clocks() {
        let cfg = l1_cfg();
        let src = "use std::collections::HashMap;\n\
                   fn f() { let t = Instant::now(); }\n\
                   fn g(d: Duration) -> Instant { later(d) }\n";
        let f = run("crates/core/src/state.rs", src, &cfg);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!((f[0].rule.as_str(), f[0].line), ("L1", 1));
        assert_eq!((f[1].rule.as_str(), f[1].line), ("L1", 2));
        // `Instant` as a type (no `::now`) is fine; other crates untouched.
        assert!(run("crates/kv/src/sim.rs", src, &cfg).is_empty());
    }

    #[test]
    fn l1_skips_cfg_test_subtrees() {
        let cfg = l1_cfg();
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert!(run("crates/core/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn l2_flags_unwrap_panic_and_indexing_in_scope() {
        let cfg = Config {
            l2_scopes: vec![L2Scope {
                file: "crates/storage/src/wal.rs".into(),
                functions: vec!["recover".into()],
            }],
            ..Config::default()
        };
        let src = "\
fn recover(buf: &[u8]) {
    let x = buf[0];
    let y = parse(buf).unwrap();
    let z = parse(buf).expect(\"frame\");
    panic!(\"bad frame\");
}
fn other(buf: &[u8]) { let x = buf[0]; }
";
        let f = run("crates/storage/src/wal.rs", src, &cfg);
        let rules: Vec<(&str, usize)> = f.iter().map(|f| (f.rule.as_str(), f.line)).collect();
        assert_eq!(
            rules,
            vec![("L2", 2), ("L2", 3), ("L2", 4), ("L2", 5)],
            "{f:?}"
        );
        // Same code in a file with no scope: clean.
        assert!(run("crates/storage/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn l2_patterns_do_not_flag_binding_or_array_types() {
        let cfg = Config {
            l2_scopes: vec![L2Scope {
                file: "f.rs".into(),
                functions: vec!["*".into()],
            }],
            ..Config::default()
        };
        let src = "\
fn a(frame: [u8; 4]) -> Option<u8> {
    let [x, _y] = [1u8, 2];
    for [p, q] in pairs() {
        consume(p, q);
    }
    frame.first().copied()
}
";
        let f = run("f.rs", src, &cfg);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l3_flags_assignment_outside_owner() {
        let cfg = Config {
            l3_types: vec![L3Type {
                type_name: "Server".into(),
                crate_dir: "crates/raft".into(),
                fields: vec!["role".into(), "log".into()],
                owners: vec!["crates/raft/src/net.rs".into()],
                construct: false,
            }],
            ..Config::default()
        };
        let src = "\
fn rogue(s: &mut Server) {
    s.role = Role::Leader;
    s.log.push(entry());
    if s.role == Role::Leader { observe(&s.log); }
    s.log += 1;
}
";
        let f = run("crates/raft/src/refine.rs", src, &cfg);
        let got: Vec<(&str, usize)> = f.iter().map(|f| (f.rule.as_str(), f.line)).collect();
        assert_eq!(got, vec![("L3", 2), ("L3", 5)], "{f:?}");
        // The owner file may assign freely.
        assert!(run("crates/raft/src/net.rs", src, &cfg).is_empty());
        // Other crates are out of scope (privacy covers them).
        assert!(run("crates/kv/src/sim.rs", src, &cfg).is_empty());
    }

    #[test]
    fn l3_construct_protection_flags_literals_outside_owner() {
        let cfg = Config {
            l3_types: vec![L3Type {
                type_name: "TraceEvent".into(),
                crate_dir: "crates".into(),
                fields: Vec::new(),
                owners: vec!["crates/obs/src/event.rs".into()],
                construct: true,
            }],
            ..Config::default()
        };
        let src = "\
fn emit(t: u64) -> TraceEvent {
    let ev = TraceEvent { time: t, kind: k() };
    push(TraceEvent { time: t + 1, kind: k() });
    ev
}
impl fmt::Debug for TraceEvent { }
fn observe(ev: &TraceEvent) -> u64 {
    let TraceEvent { time, .. } = ev;
    *time
}
";
        let f = run("crates/nemesis/src/engine.rs", src, &cfg);
        let got: Vec<(&str, usize)> = f.iter().map(|f| (f.rule.as_str(), f.line)).collect();
        assert_eq!(got, vec![("L3", 2), ("L3", 3)], "{f:?}");
        // The owner file constructs freely.
        assert!(run("crates/obs/src/event.rs", src, &cfg).is_empty());
    }

    #[test]
    fn l4_requires_must_use_and_consumption() {
        let cfg = Config {
            l4_must_use_types: vec!["Violation".into()],
            l4_consume_prefixes: vec!["check_".into(), "certify_".into()],
            l4_paths: vec!["crates".into()],
            ..Config::default()
        };
        let src = "\
pub enum Violation { Bad }
fn caller(s: &S) {
    check_quorum(s);
    let _ = certify_commit(s);
    let v = check_quorum(s);
    handle(v);
    if check_quorum(s).is_none() { act(); }
    return check_quorum(s);
}
";
        let f = run("crates/core/src/x.rs", src, &cfg);
        let got: Vec<(&str, usize)> = f.iter().map(|f| (f.rule.as_str(), f.line)).collect();
        assert_eq!(got, vec![("L4", 1), ("L4", 3), ("L4", 4)], "{f:?}");
        // Outside the configured paths nothing fires.
        assert!(run("tools/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn l5_flags_print_macros_outside_allowed_paths() {
        let cfg = Config {
            l5_crates: vec!["crates/kv".into(), "crates/obs".into()],
            l5_allow: vec!["crates/obs/src/main.rs".into(), "crates/kv/src/bin".into()],
            ..Config::default()
        };
        let src = "\
fn f() {
    println!(\"leader is {x}\");
    eprintln!(\"oops\");
    let v = dbg!(compute());
    print(\"a plain function named print is fine\");
}
";
        let f = run("crates/kv/src/sim.rs", src, &cfg);
        let got: Vec<(&str, usize)> = f.iter().map(|f| (f.rule.as_str(), f.line)).collect();
        assert_eq!(got, vec![("L5", 2), ("L5", 3), ("L5", 4)], "{f:?}");
        // Allowed paths — a bin file and a bin directory — are exempt,
        // as are crates not under the rule.
        assert!(run("crates/obs/src/main.rs", src, &cfg).is_empty());
        assert!(run("crates/kv/src/bin/tool.rs", src, &cfg).is_empty());
        assert!(run("crates/bench/src/bin/fig16.rs", src, &cfg).is_empty());
    }

    #[test]
    fn l5_skips_cfg_test_subtrees() {
        let cfg = Config {
            l5_crates: vec!["crates/kv".into()],
            ..Config::default()
        };
        let src = "#[cfg(test)]\nmod tests { fn t() { println!(\"dbg\"); } }\n";
        assert!(run("crates/kv/src/sim.rs", src, &cfg).is_empty());
    }

    #[test]
    fn l4_must_use_attribute_satisfies() {
        let cfg = Config {
            l4_must_use_types: vec!["Violation".into()],
            ..Config::default()
        };
        let src = "#[must_use]\npub enum Violation { Bad }\n";
        assert!(run("crates/core/src/x.rs", src, &cfg).is_empty());
    }
}
