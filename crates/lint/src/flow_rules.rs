//! The three flow-sensitive rules: L6 guard-before-mutation, L7
//! nondeterminism taint, L8 discarded fallible results.
//!
//! * **L6** — every control-flow path to an assignment of a protected
//!   protocol-state field must contain a call to one of the field's
//!   configured guard predicates (directly, or through a same-file
//!   helper that calls the guard on all of *its* paths). This is the
//!   static analogue of the paper's necessity argument for R1⁺/R2/R3:
//!   the transition function must *consult* the guard before mutating
//!   commit/log state, on the `else` branches too.
//! * **L7** — a value derived from an L1-banned nondeterminism source
//!   (`thread_rng`, `SystemTime::now`, `Instant::now`) must not reach a
//!   protocol-state sink field, even through let-renames, branch joins,
//!   or same-file helper returns. L1 bans the *names*; L7 follows the
//!   *values*.
//! * **L8** — inside the configured L2 recovery scopes, a statement must
//!   not discard a fallible result: `let _ = fallible(..);` and a bare
//!   `fallible(..);` expression statement both lose the error a recovery
//!   path exists to surface. Fallibility comes from same-file signatures
//!   (`-> Result/Option`) plus the configured `rules.L8.fallible` names.
//!
//! All three build per-function CFGs ([`crate::cfg`]), run the fixpoint
//! analyses ([`crate::dataflow`]), and consult one-level call-graph
//! summaries ([`crate::callgraph`]).

use std::collections::BTreeSet;

use proc_macro2::{Delimiter, Span, TokenTree};

use crate::callgraph::{self, FnSummary};
use crate::cfg::{self, Cfg, NodeKind};
use crate::config::{Config, L6Protected};
use crate::dataflow::{self, Taint};
use crate::rules::{assignment_follows, in_dir};
use crate::Finding;
use std::collections::BTreeMap;

/// Runs the flow rules over one parsed file with **same-file,
/// one-level** helper summaries — the single-file entry point. The
/// workspace driver uses [`scan_flow_with`] with cross-file fixpoint
/// summaries instead.
pub fn scan_flow(rel: &str, file: &syn::File, config: &Config) -> Vec<Finding> {
    let guard_names: BTreeSet<String> = config
        .l6_protected
        .iter()
        .filter(|e| in_dir(rel, &e.crate_dir))
        .flat_map(|e| e.guards.iter().cloned())
        .collect();
    let summaries = callgraph::summarize(file, &guard_names);
    scan_flow_with(rel, file, config, &summaries)
}

/// Runs the flow rules over one parsed file with caller-provided helper
/// summaries — typically [`callgraph::summarize_workspace`]'s cross-file
/// fixpoint, which lets L6 credit guard delegation through helpers in
/// other files, L7 follow taint through cross-file wrappers, and L8
/// recognize fallible helpers wherever they are defined.
pub fn scan_flow_with(
    rel: &str,
    file: &syn::File,
    config: &Config,
    summaries: &BTreeMap<String, FnSummary>,
) -> Vec<Finding> {
    let l6: Vec<&L6Protected> = config
        .l6_protected
        .iter()
        .filter(|e| in_dir(rel, &e.crate_dir))
        .collect();
    let l7 = config.l7_crates.iter().any(|c| in_dir(rel, c));
    let l8_fns: Vec<&str> = config
        .l2_scopes
        .iter()
        .filter(|s| s.file == rel)
        .flat_map(|s| s.functions.iter().map(String::as_str))
        .collect();
    if l6.is_empty() && !l7 && l8_fns.is_empty() {
        return Vec::new();
    }

    let guard_names: BTreeSet<String> = l6
        .iter()
        .flat_map(|e| e.guards.iter().cloned())
        .collect();

    let mut fns = Vec::new();
    callgraph::collect_fns(&file.items, false, &mut fns);

    let mut findings = Vec::new();
    for f in fns {
        let Some(body) = &f.body else { continue };
        let graph = cfg::build(body);
        if !l6.is_empty() {
            flag_l6(rel, &graph, &l6, &guard_names, summaries, &mut findings);
        }
        if l7 {
            flag_l7(rel, &graph, &config.l7_sink_fields, summaries, &mut findings);
        }
        if l8_fns.iter().any(|n| *n == "*" || *n == f.ident) {
            flag_l8(rel, &graph, summaries, &config.l8_fallible, &mut findings);
        }
    }
    findings
}

fn push(findings: &mut Vec<Finding>, rule: &str, rel: &str, span: Span, msg: String) {
    let lc = span.start();
    findings.push(Finding {
        rule: rule.to_string(),
        file: rel.to_string(),
        line: lc.line,
        col: lc.column,
        msg,
        suppressed: false,
        reason: None,
    });
}

// ---------------------------------------------------------------------------
// L6: guard-before-mutation
// ---------------------------------------------------------------------------

/// Guard facts a node generates: direct calls to a guard predicate plus
/// the all-paths guards of any same-file helper it calls.
fn guard_gen(
    graph: &Cfg,
    guard_names: &BTreeSet<String>,
    summaries: &BTreeMap<String, FnSummary>,
) -> Vec<BTreeSet<String>> {
    graph
        .nodes
        .iter()
        .map(|n| {
            let mut facts = BTreeSet::new();
            for (name, _) in callgraph::calls_in(&n.tokens) {
                if guard_names.contains(&name) {
                    facts.insert(name);
                } else if let Some(s) = summaries.get(&name) {
                    facts.extend(s.guards_on_all_paths.iter().cloned());
                }
            }
            facts
        })
        .collect()
}

fn flag_l6(
    rel: &str,
    graph: &Cfg,
    entries: &[&L6Protected],
    guard_names: &BTreeSet<String>,
    summaries: &BTreeMap<String, FnSummary>,
    findings: &mut Vec<Finding>,
) {
    let gen = guard_gen(graph, guard_names, summaries);
    let ins = dataflow::must_forward(graph, &gen);
    for (i, node) in graph.nodes.iter().enumerate() {
        for (field, span) in field_assignments(&node.tokens) {
            let Some(entry) = entries.iter().find(|e| e.fields.contains(&field))
            else {
                continue;
            };
            let satisfied = entry
                .guards
                .iter()
                .any(|g| ins[i].contains(g) || gen[i].contains(g));
            if !satisfied {
                push(
                    findings,
                    "L6",
                    rel,
                    span,
                    format!(
                        "assignment to `{}.{}` is not dominated by a guard call \
                         ({}) on every path",
                        entry.type_name,
                        field,
                        entry.guards.join("/"),
                    ),
                );
            }
        }
    }
}

/// Every `.field <assign-op>` occurrence in the trees, recursively
/// through groups, with the field ident's span. Skips `..` ranges the
/// same way the L3 pass does.
fn field_assignments(trees: &[TokenTree]) -> Vec<(String, Span)> {
    let mut out = Vec::new();
    collect_field_assignments(trees, &mut out);
    out
}

fn collect_field_assignments(trees: &[TokenTree], out: &mut Vec<(String, Span)>) {
    let dot = |k: usize| matches!(trees.get(k), Some(TokenTree::Punct(p)) if p.as_char() == '.');
    for i in 0..trees.len() {
        match &trees[i] {
            TokenTree::Punct(p) if p.as_char() == '.' => {
                if dot(i + 1) || (i > 0 && dot(i - 1)) {
                    continue;
                }
                let Some(TokenTree::Ident(field)) = trees.get(i + 1) else {
                    continue;
                };
                if assignment_follows(trees, i + 2) {
                    out.push((field.to_string(), field.span()));
                }
            }
            TokenTree::Group(g) => collect_field_assignments(g.stream().trees(), out),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// L7: nondeterminism taint
// ---------------------------------------------------------------------------

fn flag_l7(
    rel: &str,
    graph: &Cfg,
    sink_fields: &[String],
    summaries: &BTreeMap<String, FnSummary>,
    findings: &mut Vec<Finding>,
) {
    let transfer =
        |i: usize, in_map: &Taint| taint_transfer(&graph.nodes[i], in_map, summaries, graph);
    let ins = dataflow::may_forward(graph, &transfer);
    for (i, node) in graph.nodes.iter().enumerate() {
        sink_check(rel, &node.tokens, &ins[i], sink_fields, summaries, findings);
    }
}

/// The taint of an expression: a direct banned source, a call to a
/// tainted same-file helper, or mention of an already-tainted variable
/// — in that order, first match wins.
fn taint_of(
    trees: &[TokenTree],
    taint: &Taint,
    summaries: &BTreeMap<String, FnSummary>,
) -> Option<String> {
    if let Some(src) = callgraph::banned_source_in(trees) {
        return Some(src.to_string());
    }
    for (name, _) in callgraph::calls_in(trees) {
        if summaries.get(&name).is_some_and(|s| s.tainted_return) {
            return Some(format!("{name}(), a helper returning a nondeterministic value"));
        }
    }
    tainted_ident_in(trees, taint)
}

fn tainted_ident_in(trees: &[TokenTree], taint: &Taint) -> Option<String> {
    for tt in trees {
        match tt {
            TokenTree::Ident(id) => {
                if let Some(origin) = taint.get(&id.to_string()) {
                    return Some(origin.clone());
                }
            }
            TokenTree::Group(g) => {
                if let Some(origin) = tainted_ident_in(g.stream().trees(), taint) {
                    return Some(origin);
                }
            }
            _ => {}
        }
    }
    None
}

/// Variable names a pattern binds: idents that are not keywords, path
/// segments, constructor names (followed by a group or `::`), or struct
/// field labels (followed by a single `:`).
fn pattern_vars(trees: &[TokenTree]) -> Vec<String> {
    let mut out = Vec::new();
    collect_pattern_vars(trees, &mut out);
    out
}

const PATTERN_KEYWORDS: &[&str] = &["mut", "ref", "box", "_"];

fn collect_pattern_vars(trees: &[TokenTree], out: &mut Vec<String>) {
    let colon = |k: usize| matches!(trees.get(k), Some(TokenTree::Punct(p)) if p.as_char() == ':');
    for i in 0..trees.len() {
        match &trees[i] {
            TokenTree::Ident(id) => {
                if PATTERN_KEYWORDS.iter().any(|k| *id == **k) {
                    continue;
                }
                // Constructor / path segment / field label, not a binding.
                if matches!(trees.get(i + 1), Some(TokenTree::Group(_))) {
                    continue;
                }
                if colon(i + 1) || (i > 0 && colon(i - 1)) {
                    continue;
                }
                out.push(id.to_string());
            }
            TokenTree::Group(g) => collect_pattern_vars(g.stream().trees(), out),
            _ => {}
        }
    }
}

/// Index of the first top-level binding `=` (not `==`, `=>`, `<=`,
/// `>=`, `!=`), if any.
fn binding_eq_index(trees: &[TokenTree]) -> Option<usize> {
    for k in 0..trees.len() {
        let TokenTree::Punct(p) = &trees[k] else {
            continue;
        };
        if p.as_char() != '=' {
            continue;
        }
        let ch = |t: Option<&TokenTree>| match t {
            Some(TokenTree::Punct(q)) => Some(q.as_char()),
            _ => None,
        };
        let prev = k.checked_sub(1).and_then(|j| ch(trees.get(j)));
        let next = ch(trees.get(k + 1));
        if !matches!(prev, Some('=' | '<' | '>' | '!')) && !matches!(next, Some('=' | '>')) {
            return Some(k);
        }
    }
    None
}

/// Index of a top-level `in` keyword (a `for` header), if any.
fn for_in_index(trees: &[TokenTree]) -> Option<usize> {
    trees
        .iter()
        .position(|tt| matches!(tt, TokenTree::Ident(i) if *i == "in"))
}

/// Cuts a `let` pattern at its type annotation: `x : u64` → `x`.
fn cut_type_annotation(trees: &[TokenTree]) -> &[TokenTree] {
    let colon = |k: usize| matches!(trees.get(k), Some(TokenTree::Punct(p)) if p.as_char() == ':');
    let mut k = 0;
    while k < trees.len() {
        if colon(k) && !colon(k + 1) && (k == 0 || !colon(k - 1)) {
            return &trees[..k];
        }
        k += 1;
    }
    trees
}

fn taint_transfer(
    node: &cfg::Node,
    in_map: &Taint,
    summaries: &BTreeMap<String, FnSummary>,
    _graph: &Cfg,
) -> Taint {
    let mut out = in_map.clone();
    let trees = &node.tokens;
    let is_let = matches!(trees.first(), Some(TokenTree::Ident(i)) if *i == "let");
    if is_let {
        // `let PAT = RHS` — statements and `if let`/`while let` headers.
        let rest = &trees[1..];
        match binding_eq_index(rest) {
            Some(eq) => {
                let pat = cut_type_annotation(&rest[..eq]);
                let origin = taint_of(&rest[eq + 1..], in_map, summaries);
                apply_binding(&mut out, pat, origin);
            }
            None => apply_binding(&mut out, rest, None), // `let x;`
        }
        return out;
    }
    if node.kind == NodeKind::Cond {
        // `for` headers arrive as `PAT in EXPR`.
        if let Some(pos) = for_in_index(trees) {
            let origin = taint_of(&trees[pos + 1..], in_map, summaries);
            apply_binding(&mut out, &trees[..pos], origin);
        }
        return out;
    }
    // `x = RHS` / `x += RHS`: a single-ident assignment retargets the
    // variable; compound assignment can only add taint (the old value
    // still contributes).
    if let Some(TokenTree::Ident(var)) = trees.first() {
        if let Some(op_len) = assignment_op_len(trees, 1) {
            let origin = taint_of(&trees[1 + op_len..], in_map, summaries);
            let compound = op_len > 1;
            match origin {
                Some(o) => {
                    out.insert(var.to_string(), o);
                }
                None if !compound => {
                    out.remove(&var.to_string());
                }
                None => {}
            }
        }
    }
    out
}

fn apply_binding(out: &mut Taint, pattern: &[TokenTree], origin: Option<String>) {
    for var in pattern_vars(pattern) {
        match &origin {
            Some(o) => {
                out.insert(var, o.clone());
            }
            None => {
                out.remove(&var);
            }
        }
    }
}

/// Token length of the assignment operator at `trees[j]`: 1 for `=`,
/// 2 for `+=`-family, 3 for `<<=`/`>>=`; `None` if not an assignment.
fn assignment_op_len(trees: &[TokenTree], j: usize) -> Option<usize> {
    if !assignment_follows(trees, j) {
        return None;
    }
    let c = |k: usize| match trees.get(j + k) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    };
    match c(0) {
        Some('=') => Some(1),
        Some('<' | '>') => Some(3),
        _ => Some(2),
    }
}

fn sink_check(
    rel: &str,
    trees: &[TokenTree],
    taint: &Taint,
    sink_fields: &[String],
    summaries: &BTreeMap<String, FnSummary>,
    findings: &mut Vec<Finding>,
) {
    let dot = |k: usize| matches!(trees.get(k), Some(TokenTree::Punct(p)) if p.as_char() == '.');
    for i in 0..trees.len() {
        match &trees[i] {
            TokenTree::Punct(p) if p.as_char() == '.' => {
                if dot(i + 1) || (i > 0 && dot(i - 1)) {
                    continue;
                }
                let Some(TokenTree::Ident(field)) = trees.get(i + 1) else {
                    continue;
                };
                if !sink_fields.iter().any(|f| *field == **f) {
                    continue;
                }
                let Some(op_len) = assignment_op_len(trees, i + 2) else {
                    continue;
                };
                if let Some(origin) = taint_of(&trees[i + 2 + op_len..], taint, summaries) {
                    push(
                        findings,
                        "L7",
                        rel,
                        field.span(),
                        format!(
                            "nondeterministic value derived from {origin} flows into \
                             protocol state field `{field}`"
                        ),
                    );
                }
            }
            TokenTree::Group(g) => {
                sink_check(rel, g.stream().trees(), taint, sink_fields, summaries, findings);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// L8: discarded fallible results in recovery scopes
// ---------------------------------------------------------------------------

fn flag_l8(
    rel: &str,
    graph: &Cfg,
    summaries: &BTreeMap<String, FnSummary>,
    extra_fallible: &[String],
    findings: &mut Vec<Finding>,
) {
    let fallible = |name: &str| {
        summaries.get(name).is_some_and(|s| s.returns_fallible)
            || extra_fallible.iter().any(|f| f == name)
    };
    for node in &graph.nodes {
        if !node.has_semi {
            continue;
        }
        let trees = &node.tokens;
        let n = trees.len();
        // The discarded value must be a call in final position:
        // `... name ( args )`.
        let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(gp))) =
            (n.checked_sub(2).and_then(|k| trees.get(k)), trees.last())
        else {
            continue;
        };
        if gp.delimiter() != Delimiter::Parenthesis || !fallible(&name.to_string()) {
            continue;
        }
        let is_kw = |k: usize, kw: &str| {
            matches!(trees.get(k), Some(TokenTree::Ident(i)) if *i == kw)
        };
        let discard_binding = is_kw(0, "let")
            && matches!(trees.get(1), Some(TokenTree::Ident(i)) if *i == "_");
        if !discard_binding {
            // A bare expression statement only discards if nothing
            // consumes the value: no binding/assignment, no `?`, not a
            // control-flow value.
            if is_kw(0, "return") || is_kw(0, "break") || is_kw(0, "let") {
                continue;
            }
            if binding_eq_index(trees).is_some() || cfg::contains_question(trees) {
                continue;
            }
        }
        push(
            findings,
            "L8",
            rel,
            name.span(),
            format!(
                "fallible result of `{name}(..)` discarded in a recovery scope \
                 (handle or propagate the error)"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::L2Scope;

    fn run(rel: &str, src: &str, config: &Config) -> Vec<(String, usize, usize)> {
        let file = syn::parse_file(src).expect("fixture parses");
        let mut f = scan_flow(rel, &file, config);
        f.sort_by_key(|f| (f.line, f.col, f.rule.clone()));
        f.into_iter().map(|f| (f.rule, f.line, f.col)).collect()
    }

    fn l6_config() -> Config {
        Config {
            l6_protected: vec![L6Protected {
                type_name: "Server".into(),
                crate_dir: "crates/raft".into(),
                fields: vec!["commit_len".into(), "log".into()],
                guards: vec!["is_quorum".into(), "log_up_to_date".into()],
            }],
            ..Config::default()
        }
    }

    #[test]
    fn l6_guard_on_all_paths_is_clean() {
        let src = "\
fn advance(s: &mut Server, c: &Config) {
    if c.is_quorum(acks(s)) {
        s.commit_len = next(s);
    }
}
";
        assert!(run("crates/raft/src/net.rs", src, &l6_config()).is_empty());
    }

    #[test]
    fn l6_flags_unguarded_branch() {
        let src = "\
fn advance(s: &mut Server, c: &Config) {
    if fast_path(s) {
        s.commit_len = next(s);
    } else if c.is_quorum(acks(s)) {
        s.commit_len = next(s);
    }
}
";
        let got = run("crates/raft/src/net.rs", src, &l6_config());
        assert_eq!(got, vec![("L6".into(), 3, 10)]);
    }

    #[test]
    fn l6_sees_through_helper_delegation() {
        let src = "\
impl Net {
    fn check_commit(&self, s: &Server) -> bool { self.cfg.is_quorum(acks(s)) }
    fn advance(&self, s: &mut Server) {
        if self.check_commit(s) {
            s.commit_len = next(s);
        }
    }
}
";
        assert!(run("crates/raft/src/net.rs", src, &l6_config()).is_empty());
    }

    #[test]
    fn l6_out_of_crate_dir_is_ignored() {
        let src = "fn f(s: &mut Server) { s.commit_len = 0; }";
        assert!(run("crates/kv/src/sim.rs", src, &l6_config()).is_empty());
    }

    fn l7_config() -> Config {
        Config {
            l7_crates: vec!["crates/raft".into()],
            l7_sink_fields: vec!["commit_len".into()],
            ..Config::default()
        }
    }

    #[test]
    fn l7_tracks_taint_through_rename() {
        let src = "\
fn f(s: &mut Server) {
    let r = thread_rng().gen::<usize>();
    let len = r;
    s.commit_len = len;
}
";
        let got = run("crates/raft/src/net.rs", src, &l7_config());
        assert_eq!(got, vec![("L7".into(), 4, 6)]);
    }

    #[test]
    fn l7_kill_on_rebind_clears_taint() {
        let src = "\
fn f(s: &mut Server) {
    let mut len = thread_rng().gen::<usize>();
    len = stable(s);
    s.commit_len = len;
}
";
        assert!(run("crates/raft/src/net.rs", src, &l7_config()).is_empty());
    }

    #[test]
    fn l7_taints_through_helper_return() {
        let src = "\
fn jitter() -> usize { thread_rng().gen() }
fn f(s: &mut Server) {
    let len = jitter();
    s.commit_len = len;
}
";
        let got = run("crates/raft/src/net.rs", src, &l7_config());
        assert_eq!(got, vec![("L7".into(), 4, 6)]);
    }

    fn l8_config() -> Config {
        Config {
            l2_scopes: vec![L2Scope {
                file: "crates/storage/src/wal.rs".into(),
                functions: vec!["recover".into()],
            }],
            l8_fallible: vec!["ext_sync".into()],
            ..Config::default()
        }
    }

    #[test]
    fn l8_flags_discarded_fallible_results() {
        let src = "\
fn parse(b: &[u8]) -> Result<Rec, E> { decode(b) }
fn recover(w: &mut Wal) -> Result<(), E> {
    let _ = parse(tail(w));
    parse(head(w));
    ext_sync(w);
    let rec = parse(head(w))?;
    apply(w, rec);
    Ok(())
}
";
        let got = run("crates/storage/src/wal.rs", src, &l8_config());
        assert_eq!(
            got,
            vec![("L8".into(), 3, 12), ("L8".into(), 4, 4), ("L8".into(), 5, 4)]
        );
    }

    #[test]
    fn l8_only_applies_in_scope_functions() {
        let src = "\
fn parse(b: &[u8]) -> Result<Rec, E> { decode(b) }
fn other(w: &mut Wal) { let _ = parse(tail(w)); }
";
        assert!(run("crates/storage/src/wal.rs", src, &l8_config()).is_empty());
    }
}
