//! Suppression pragmas.
//!
//! A finding is suppressed by a comment pragma carrying a mandatory
//! reason:
//!
//! ```text
//! let t = Instant::now(); // adore-lint: allow(L1, reason = "wall-clock timing only")
//! ```
//!
//! A pragma on a comment-only line applies to the *next* line instead:
//!
//! ```text
//! // adore-lint: allow(L2, reason = "invariant: frame verified above")
//! let rec = parse(frame).unwrap();
//! ```
//!
//! A pragma without a parsable rule list or with an empty reason is
//! itself a finding (rule `P0`) — suppressions must be auditable.

// The marker is assembled at compile time so this file's own source
// (and the rest of the lint's) never contains the literal token the
// scanner looks for.
const MARKER: &str = concat!("adore-", "lint:");

/// One parsed pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Line the pragma comment is on (1-based).
    pub line: usize,
    /// The line whose findings it suppresses.
    pub target_line: usize,
    /// Rule ids it allows (`L1`..`L8`, `P0`, `E0`).
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
}

/// A malformed pragma (missing reason / unparsable form).
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// Line of the malformed pragma.
    pub line: usize,
    /// What is wrong with it.
    pub msg: String,
}

/// All pragmas in one file.
#[derive(Debug, Default, Clone)]
pub struct PragmaSet {
    /// Well-formed pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed ones (each becomes a `P0` finding).
    pub errors: Vec<PragmaError>,
}

impl PragmaSet {
    /// Whether a finding for `rule` at `line` is suppressed.
    #[must_use]
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.pragmas
            .iter()
            .any(|p| p.target_line == line && p.rules.iter().any(|r| r == rule))
    }
}

/// Scans raw source for pragmas.
///
/// Only text after a `//` is considered, so the marker inside ordinary
/// code or a string on the code side of a line cannot form a pragma —
/// with the caveat that a *string literal containing* `// marker` would;
/// the workspace avoids that by building such strings with `concat!`.
#[must_use]
pub fn scan(source: &str) -> PragmaSet {
    let mut set = PragmaSet::default();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let Some(slash) = raw.find("//") else {
            continue;
        };
        let comment = &raw[slash..];
        let Some(m) = comment.find(MARKER) else {
            continue;
        };
        let body = comment[m + MARKER.len()..].trim();
        let standalone = raw[..slash].trim().is_empty();
        let target_line = if standalone { line + 1 } else { line };
        match parse_allow(body) {
            Ok((rules, reason)) => set.pragmas.push(Pragma {
                line,
                target_line,
                rules,
                reason,
            }),
            Err(msg) => set.errors.push(PragmaError { line, msg }),
        }
    }
    set
}

/// Parses `allow(L1, L2, reason = "...")`.
fn parse_allow(body: &str) -> Result<(Vec<String>, String), String> {
    let inner = body
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|b| b.strip_prefix('('))
        .ok_or_else(|| format!("expected `allow(...)`, got `{body}`"))?;
    let inner = inner
        .rfind(')')
        .map(|end| &inner[..end])
        .ok_or("unclosed `allow(`")?;

    let mut rules = Vec::new();
    let mut reason = None;
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(r) = part.strip_prefix("reason") {
            let r = r.trim_start();
            let r = r
                .strip_prefix('=')
                .map(str::trim)
                .ok_or("malformed `reason`")?;
            let r = r
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or("reason must be a quoted string")?;
            reason = Some(r.to_string());
        } else if crate::explain::RULE_IDS.contains(&part) {
            rules.push(part.to_string());
        } else {
            return Err(format!("unknown rule id `{part}`"));
        }
    }
    let reason = reason.ok_or("missing mandatory `reason = \"...\"`")?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".into());
    }
    if rules.is_empty() {
        return Err("no rule ids listed".into());
    }
    Ok((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Assemble pragma text at runtime so this test file's source never
    // contains live pragmas for the workspace self-scan.
    fn pragma(rest: &str) -> String {
        format!("// {MARKER} {rest}")
    }

    #[test]
    fn same_line_and_standalone_targets() {
        let src = format!(
            "let x = 1; {}\n{}\nlet y = 2;\n",
            pragma(r#"allow(L1, reason = "seeded")"#),
            pragma(r#"allow(L2, L3, reason = "invariant held")"#),
        );
        let set = scan(&src);
        assert!(set.errors.is_empty());
        assert!(set.allows("L1", 1));
        assert!(!set.allows("L1", 2));
        assert!(set.allows("L2", 3));
        assert!(set.allows("L3", 3));
        assert!(!set.allows("L2", 2));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let set = scan(&pragma("allow(L1)"));
        assert_eq!(set.errors.len(), 1);
        let set = scan(&pragma(r#"allow(L1, reason = "")"#));
        assert_eq!(set.errors.len(), 1);
        let set = scan(&pragma(r#"allow(reason = "no rules")"#));
        assert_eq!(set.errors.len(), 1);
        let set = scan(&pragma("nonsense"));
        assert_eq!(set.errors.len(), 1);
    }

    #[test]
    fn marker_in_code_position_is_ignored() {
        let src = format!("let s = \"{MARKER} allow(L1)\";");
        let set = scan(&src);
        assert!(set.pragmas.is_empty() && set.errors.is_empty());
    }

    #[test]
    fn unknown_rule_id_is_an_error() {
        for bad in ["L16", "L99", "P1", "E2", "LX"] {
            let set = scan(&pragma(&format!(r#"allow({bad}, reason = "x")"#)));
            assert_eq!(set.errors.len(), 1, "{bad} must be rejected");
            assert!(set.errors[0].msg.contains("unknown rule id"), "{bad}");
        }
        // Every real rule id parses.
        for good in crate::explain::RULE_IDS {
            let set = scan(&pragma(&format!(r#"allow({good}, reason = "x")"#)));
            assert!(set.errors.is_empty(), "{good} must parse");
        }
    }

    #[test]
    fn reason_may_contain_hash_and_parens_text() {
        let set = scan(&pragma(
            r#"allow(L6, reason = "see issue #42 re: R1+ necessity")"#,
        ));
        assert!(set.errors.is_empty(), "{:?}", set.errors);
        assert_eq!(set.pragmas[0].reason, "see issue #42 re: R1+ necessity");
    }

    #[test]
    fn standalone_pragma_targets_start_of_multiline_statement() {
        // The finding is reported at the statement's first line, so a
        // standalone pragma directly above suppresses it even when the
        // statement spans several lines.
        let src = format!(
            "{}\nlet m = HashMap::from([\n    (1, 2),\n    (3, 4),\n]);\n",
            pragma(r#"allow(L1, reason = "seeded fixture map")"#),
        );
        let set = scan(&src);
        assert!(set.allows("L1", 2));
        assert!(!set.allows("L1", 3), "later lines are not covered");
    }

    #[test]
    fn pragma_on_last_line_without_successor_is_kept() {
        // A standalone pragma on the file's final line targets a line
        // that does not exist; it is well-formed (not P0) and simply
        // suppresses nothing.
        let src = pragma(r#"allow(L1, reason = "dangling")"#);
        assert!(!src.ends_with('\n'));
        let set = scan(&src);
        assert!(set.errors.is_empty());
        assert_eq!(set.pragmas[0].target_line, 2);
        assert!(!set.allows("L1", 1));
    }
}
