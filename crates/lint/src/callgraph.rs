//! Call-graph summaries: one-level same-file, and workspace fixpoint.
//!
//! The flow rules need to see through helper functions:
//! `self.check_r3(...)` delegations must count as guard calls (L6), a
//! helper returning `thread_rng().gen()` must taint its callers' bindings
//! (L7), and `self.append_frame(...)` must count as fallible when its
//! signature says `-> io::Result<...>` (L8).
//!
//! Two strengths are provided. [`summarize`] walks one file's items and
//! produces a **one-level, same-file** [`FnSummary`] per function name —
//! the single-file entry point (`lint_source`) uses it.
//! [`summarize_workspace`] instead computes the summaries as a
//! **fixpoint over the whole workspace's call graph**: a helper that
//! delegates to a second helper in another file is seen through, guards
//! established on all paths propagate transitively, and taint flows
//! through arbitrarily deep call chains. `run_lint` feeds the workspace
//! summaries to the flow layer, so L6/L7/L8 no longer stop at file
//! boundaries (resolution stays name-based and conservative: same-named
//! functions merge to what holds for all of them).

use std::collections::{BTreeMap, BTreeSet};

use proc_macro2::{Delimiter, Span, TokenTree};

use crate::cfg::{self, EXIT};
use crate::dataflow;

/// What one function guarantees to its callers, as far as a one-level
/// syntactic summary can tell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// The signature returns `Result<..>` or `Option<..>`.
    pub returns_fallible: bool,
    /// Guard predicates this function calls directly on **every** path
    /// to its exit (so calling it is as good as calling the guard).
    pub guards_on_all_paths: BTreeSet<String>,
    /// The body mentions an L1-banned nondeterminism source and the
    /// function returns a value — callers must treat the result as
    /// tainted. (Whole-body, not per-return-path: over-approximate in
    /// the conservative direction.)
    pub tainted_return: bool,
}

/// Every `ident(...)` call in the trees, recursively through groups:
/// plain calls, method calls (`x.ident(...)`), and path calls
/// (`X::ident(...)`) all yield the final ident.
pub fn calls_in(trees: &[TokenTree]) -> Vec<(String, Span)> {
    let mut out = Vec::new();
    collect_calls(trees, &mut out);
    out
}

fn collect_calls(trees: &[TokenTree], out: &mut Vec<(String, Span)>) {
    for i in 0..trees.len() {
        match &trees[i] {
            TokenTree::Ident(id) => {
                if let Some(TokenTree::Group(g)) = trees.get(i + 1) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        out.push((id.to_string(), id.span()));
                    }
                }
            }
            TokenTree::Group(g) => collect_calls(g.stream().trees(), out),
            _ => {}
        }
    }
}

/// An L1-banned nondeterminism source in the trees, if any: returns a
/// description like `thread_rng()` for the first one found.
#[must_use]
pub fn banned_source_in(trees: &[TokenTree]) -> Option<&'static str> {
    for i in 0..trees.len() {
        match &trees[i] {
            TokenTree::Ident(id) => {
                if *id == "thread_rng" {
                    return Some("thread_rng()");
                }
                if *id == "SystemTime" && crate::rules::is_path_call(trees, i, "now") {
                    return Some("SystemTime::now()");
                }
                if *id == "Instant" && crate::rules::is_path_call(trees, i, "now") {
                    return Some("Instant::now()");
                }
            }
            TokenTree::Group(g) => {
                if let Some(src) = banned_source_in(g.stream().trees()) {
                    return Some(src);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether a signature token stream returns a `Result`/`Option` (path
/// qualifiers like `io::Result` included).
fn signature_returns_fallible(sig: &str) -> bool {
    let Some(idx) = sig.rfind("->") else {
        return false;
    };
    let ret = &sig[idx + 2..];
    let head = ret.split('<').next().unwrap_or("");
    head.contains("Result") || head.contains("Option")
}

fn signature_returns_value(sig: &str) -> bool {
    sig.rfind("->").is_some_and(|idx| {
        let ret = sig[idx + 2..].trim();
        !ret.is_empty() && ret != "()"
    })
}

/// Summarizes every non-test function in `file`. `guard_names` is the
/// union of all configured guard predicates; only those are tracked in
/// [`FnSummary::guards_on_all_paths`]. When two functions share a name
/// (methods of different types), the merged summary keeps only what
/// holds for both (guards intersect; fallible/tainted union — the
/// conservative direction for each field's consumer).
#[must_use]
pub fn summarize(
    file: &syn::File,
    guard_names: &BTreeSet<String>,
) -> BTreeMap<String, FnSummary> {
    let mut out: BTreeMap<String, FnSummary> = BTreeMap::new();
    let mut fns = Vec::new();
    collect_fns(&file.items, false, &mut fns);
    for f in fns {
        let sig = f.signature.to_string();
        let mut s = FnSummary {
            returns_fallible: signature_returns_fallible(&sig),
            ..FnSummary::default()
        };
        if let Some(body) = &f.body {
            s.tainted_return = signature_returns_value(&sig)
                && banned_source_in(body.stream().trees()).is_some();
            let cfg = cfg::build(body);
            let gen: Vec<BTreeSet<String>> = cfg
                .nodes
                .iter()
                .map(|n| {
                    calls_in(&n.tokens)
                        .into_iter()
                        .map(|(name, _)| name)
                        .filter(|name| guard_names.contains(name))
                        .collect()
                })
                .collect();
            s.guards_on_all_paths = dataflow::must_forward(&cfg, &gen)[EXIT].clone();
        }
        match out.entry(f.ident.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(s);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = e.get_mut();
                merged.returns_fallible |= s.returns_fallible;
                merged.tainted_return |= s.tainted_return;
                merged.guards_on_all_paths = merged
                    .guards_on_all_paths
                    .intersection(&s.guards_on_all_paths)
                    .cloned()
                    .collect();
            }
        }
    }
    out
}

/// The per-body facts the fixpoint re-evaluates each round. The CFG and
/// per-node call lists are extracted once; only the summary map varies.
struct FnFacts {
    name: String,
    returns_fallible: bool,
    returns_value: bool,
    direct_source: bool,
    graph: Option<cfg::Cfg>,
    calls_per_node: Vec<Vec<String>>,
}

/// Summarizes every non-test function across the whole parsed
/// workspace, iterating to a fixpoint over the cross-file call graph:
///
/// - `guards_on_all_paths` propagates transitively — a wrapper whose
///   every path calls a helper that itself guards on every path counts
///   as guarding;
/// - `tainted_return` propagates through call chains of any depth;
/// - `returns_fallible` stays signature-derived (a delegating wrapper's
///   own signature already says `Result`/`Option`).
///
/// Resolution is by bare name and therefore ambiguous across the
/// workspace, so every fact is merged with **AND across same-named
/// definitions**: a name's entry claims only what holds for *every*
/// function the call could resolve to. That is conservative in both
/// directions — no false guard credit for L6, and no false taint/
/// fallibility blame for L7/L8 from an unrelated `push`/`apply`/
/// `default` in another crate. Same-file facts (where resolution is
/// near-certain) are layered back on top by [`overlay`].
///
/// Both propagated facts grow monotonically from the direct seed, so
/// the iteration terminates; a depth cap bounds pathological graphs.
#[must_use]
pub fn summarize_workspace(
    parsed: &[(String, syn::File)],
    guard_names: &BTreeSet<String>,
) -> BTreeMap<String, FnSummary> {
    let mut facts: Vec<FnFacts> = Vec::new();
    for (_, file) in parsed {
        let mut fns = Vec::new();
        collect_fns(&file.items, false, &mut fns);
        for f in fns {
            let sig = f.signature.to_string();
            let (graph, calls_per_node, direct_source) = match &f.body {
                Some(body) => {
                    let graph = cfg::build(body);
                    let calls = graph
                        .nodes
                        .iter()
                        .map(|n| calls_in(&n.tokens).into_iter().map(|(name, _)| name).collect())
                        .collect();
                    let src = banned_source_in(body.stream().trees()).is_some();
                    (Some(graph), calls, src)
                }
                None => (None, Vec::new(), false),
            };
            facts.push(FnFacts {
                name: f.ident.clone(),
                returns_fallible: signature_returns_fallible(&sig),
                returns_value: signature_returns_value(&sig),
                direct_source,
                graph,
                calls_per_node,
            });
        }
    }
    let mut map: BTreeMap<String, FnSummary> = BTreeMap::new();
    for _round in 0..32 {
        let mut next: BTreeMap<String, FnSummary> = BTreeMap::new();
        for f in &facts {
            let mut s = FnSummary {
                returns_fallible: f.returns_fallible,
                ..FnSummary::default()
            };
            if let Some(graph) = &f.graph {
                let gen: Vec<BTreeSet<String>> = f
                    .calls_per_node
                    .iter()
                    .map(|calls| {
                        let mut set = BTreeSet::new();
                        for name in calls {
                            if guard_names.contains(name) {
                                set.insert(name.clone());
                            } else if let Some(callee) = map.get(name) {
                                set.extend(callee.guards_on_all_paths.iter().cloned());
                            }
                        }
                        set
                    })
                    .collect();
                s.guards_on_all_paths = dataflow::must_forward(graph, &gen)[EXIT].clone();
                s.tainted_return = f.returns_value
                    && (f.direct_source
                        || f.calls_per_node.iter().flatten().any(|name| {
                            map.get(name).is_some_and(|c| c.tainted_return)
                        }));
            }
            match next.entry(f.name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(s);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let merged = e.get_mut();
                    merged.returns_fallible &= s.returns_fallible;
                    merged.tainted_return &= s.tainted_return;
                    merged.guards_on_all_paths = merged
                        .guards_on_all_paths
                        .intersection(&s.guards_on_all_paths)
                        .cloned()
                        .collect();
                }
            }
        }
        if next == map {
            break;
        }
        map = next;
    }
    map
}

/// Layers one file's same-file summaries over the workspace fixpoint:
/// names defined in the file keep their local (one-level, OR-merged)
/// facts — resolution inside a file is near-certain — and additionally
/// gain any workspace guard facts, which are safe to add because the
/// fixpoint only records guards holding for *every* definition of the
/// name. Names defined elsewhere resolve through the workspace entry.
#[must_use]
pub fn overlay(
    local: BTreeMap<String, FnSummary>,
    workspace: &BTreeMap<String, FnSummary>,
) -> BTreeMap<String, FnSummary> {
    let mut out = local;
    for (name, w) in workspace {
        match out.entry(name.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(w.clone());
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut()
                    .guards_on_all_paths
                    .extend(w.guards_on_all_paths.iter().cloned());
            }
        }
    }
    out
}

/// Collects every function item, impl/trait/mod bodies included,
/// skipping `#[cfg(test)]` subtrees.
pub(crate) fn collect_fns<'f>(
    items: &'f [syn::Item],
    in_test: bool,
    out: &mut Vec<&'f syn::ItemFn>,
) {
    for item in items {
        let in_test = in_test || item.attrs().iter().any(syn::Attribute::is_cfg_test);
        if in_test {
            continue;
        }
        match item {
            syn::Item::Fn(f) => out.push(f),
            syn::Item::Mod(m) | syn::Item::Trait(m) => {
                if let Some(content) = &m.content {
                    collect_fns(content, in_test, out);
                }
            }
            syn::Item::Impl(i) => collect_fns(&i.items, in_test, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summaries(src: &str, guards: &[&str]) -> BTreeMap<String, FnSummary> {
        let file = syn::parse_file(src).expect("parses");
        let guards: BTreeSet<String> = guards.iter().map(ToString::to_string).collect();
        summarize(&file, &guards)
    }

    #[test]
    fn fallible_signatures_are_recognized() {
        let s = summaries(
            "fn a() -> Result<u8, E> { Ok(0) }\n\
             fn b() -> io::Result<()> { Ok(()) }\n\
             fn c() -> Option<u8> { None }\n\
             fn d() -> Vec<Result<u8, E>> { vec![] }\n\
             fn e() {}\n",
            &[],
        );
        assert!(s["a"].returns_fallible);
        assert!(s["b"].returns_fallible);
        assert!(s["c"].returns_fallible);
        assert!(!s["d"].returns_fallible, "outer type is Vec");
        assert!(!s["e"].returns_fallible);
    }

    #[test]
    fn guard_summary_requires_all_paths() {
        let src = "\
impl S {
    fn check_all(&self) { self.is_quorum(x()); }
    fn check_some(&self, c: bool) { if c { self.is_quorum(x()); } }
    fn check_loop(&self) { for v in vs() { self.is_quorum(v); } }
}
";
        let s = summaries(src, &["is_quorum"]);
        assert!(s["check_all"].guards_on_all_paths.contains("is_quorum"));
        assert!(s["check_some"].guards_on_all_paths.is_empty());
        // A loop may run zero times: not all paths.
        assert!(s["check_loop"].guards_on_all_paths.is_empty());
    }

    #[test]
    fn tainted_return_needs_source_and_value() {
        let src = "\
fn pick() -> u64 { thread_rng().gen() }
fn stamp() -> u64 { SystemTime::now().into() }
fn log_only() { observe(thread_rng().gen()); }
fn clean() -> u64 { 7 }
";
        let s = summaries(src, &[]);
        assert!(s["pick"].tainted_return);
        assert!(s["stamp"].tainted_return);
        assert!(!s["log_only"].tainted_return, "returns no value");
        assert!(!s["clean"].tainted_return);
    }

    #[test]
    fn cfg_test_functions_are_not_summarized() {
        let s = summaries(
            "#[cfg(test)]\nmod tests { fn t() -> Result<(), E> { Ok(()) } }\n",
            &[],
        );
        assert!(s.is_empty());
    }

    #[test]
    fn workspace_fixpoint_sees_through_cross_file_chains() {
        // a.rs: deep wrapper chain ending in a guard; b.rs: the guard
        // caller and a taint chain — neither file alone resolves them.
        let a = syn::parse_file(
            "impl S {\n\
                 fn level2(&self) { self.level1(); }\n\
                 fn level1(&self) { self.check_quorum(); }\n\
             }\n\
             fn pick2() -> u64 { pick1() }\n",
        )
        .expect("a");
        let b = syn::parse_file(
            "impl S {\n\
                 fn check_quorum(&self) { self.is_quorum(q()); }\n\
             }\n\
             fn pick1() -> u64 { thread_rng().gen() }\n\
             fn partial(&self, c: bool) { if c { self.level2(); } }\n",
        )
        .expect("b");
        let parsed = vec![("a.rs".to_string(), a), ("b.rs".to_string(), b)];
        let guards: BTreeSet<String> = std::iter::once("is_quorum".to_string()).collect();
        let s = summarize_workspace(&parsed, &guards);
        // Three-deep, cross-file: level2 -> level1 -> check_quorum -> guard.
        assert!(s["level2"].guards_on_all_paths.contains("is_quorum"));
        assert!(s["level1"].guards_on_all_paths.contains("is_quorum"));
        // Taint crosses the file boundary through the wrapper.
        assert!(s["pick1"].tainted_return);
        assert!(s["pick2"].tainted_return);
        // A conditional call still does not guard on all paths.
        assert!(s["partial"].guards_on_all_paths.is_empty());
    }

    #[test]
    fn workspace_fixpoint_merges_same_names_conservatively() {
        let a = syn::parse_file(
            "impl A { fn helper(&self) { self.is_quorum(q()); } }",
        )
        .expect("a");
        let b = syn::parse_file("impl B { fn helper(&self) { noop(); } }").expect("b");
        let parsed = vec![("a.rs".to_string(), a), ("b.rs".to_string(), b)];
        let guards: BTreeSet<String> = std::iter::once("is_quorum".to_string()).collect();
        let s = summarize_workspace(&parsed, &guards);
        // Two types share the method name; only what holds for both
        // survives, so the guard claim is dropped.
        assert!(s["helper"].guards_on_all_paths.is_empty());
    }

    #[test]
    fn workspace_fixpoint_terminates_on_recursion() {
        let a = syn::parse_file(
            "fn ping() -> u64 { pong() }\nfn pong() -> u64 { ping() }\n",
        )
        .expect("a");
        let parsed = vec![("a.rs".to_string(), a)];
        let s = summarize_workspace(&parsed, &BTreeSet::new());
        assert!(!s["ping"].tainted_return);
        assert!(!s["pong"].tainted_return);
    }

    #[test]
    fn calls_in_sees_method_and_path_calls() {
        let file = syn::parse_file("fn f() { a(); self.b(1); C::d(e()); }").expect("parses");
        let syn::Item::Fn(f) = &file.items[0] else {
            panic!("fn")
        };
        let names: Vec<String> = calls_in(f.body.as_ref().expect("body").stream().trees())
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "b", "d", "e"]);
    }
}
