//! One-level call-graph summaries.
//!
//! The flow rules need to see through one layer of helper functions:
//! `self.check_r3(...)` delegations must count as guard calls (L6), a
//! helper returning `thread_rng().gen()` must taint its callers' bindings
//! (L7), and `self.append_frame(...)` must count as fallible when its
//! signature says `-> io::Result<...>` (L8). This module walks one file's
//! items and produces a [`FnSummary`] per function name.
//!
//! The summaries are **one level deep and same-file only** — a helper
//! that itself only delegates to a second helper in another file is not
//! seen through. DESIGN.md §10 records this imprecision; call sites that
//! rely on deeper delegation carry a reasoned pragma instead.

use std::collections::{BTreeMap, BTreeSet};

use proc_macro2::{Delimiter, Span, TokenTree};

use crate::cfg::{self, EXIT};
use crate::dataflow;

/// What one function guarantees to its callers, as far as a one-level
/// syntactic summary can tell.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// The signature returns `Result<..>` or `Option<..>`.
    pub returns_fallible: bool,
    /// Guard predicates this function calls directly on **every** path
    /// to its exit (so calling it is as good as calling the guard).
    pub guards_on_all_paths: BTreeSet<String>,
    /// The body mentions an L1-banned nondeterminism source and the
    /// function returns a value — callers must treat the result as
    /// tainted. (Whole-body, not per-return-path: over-approximate in
    /// the conservative direction.)
    pub tainted_return: bool,
}

/// Every `ident(...)` call in the trees, recursively through groups:
/// plain calls, method calls (`x.ident(...)`), and path calls
/// (`X::ident(...)`) all yield the final ident.
pub fn calls_in(trees: &[TokenTree]) -> Vec<(String, Span)> {
    let mut out = Vec::new();
    collect_calls(trees, &mut out);
    out
}

fn collect_calls(trees: &[TokenTree], out: &mut Vec<(String, Span)>) {
    for i in 0..trees.len() {
        match &trees[i] {
            TokenTree::Ident(id) => {
                if let Some(TokenTree::Group(g)) = trees.get(i + 1) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        out.push((id.to_string(), id.span()));
                    }
                }
            }
            TokenTree::Group(g) => collect_calls(g.stream().trees(), out),
            _ => {}
        }
    }
}

/// An L1-banned nondeterminism source in the trees, if any: returns a
/// description like `thread_rng()` for the first one found.
#[must_use]
pub fn banned_source_in(trees: &[TokenTree]) -> Option<&'static str> {
    for i in 0..trees.len() {
        match &trees[i] {
            TokenTree::Ident(id) => {
                if *id == "thread_rng" {
                    return Some("thread_rng()");
                }
                if *id == "SystemTime" && crate::rules::is_path_call(trees, i, "now") {
                    return Some("SystemTime::now()");
                }
                if *id == "Instant" && crate::rules::is_path_call(trees, i, "now") {
                    return Some("Instant::now()");
                }
            }
            TokenTree::Group(g) => {
                if let Some(src) = banned_source_in(g.stream().trees()) {
                    return Some(src);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether a signature token stream returns a `Result`/`Option` (path
/// qualifiers like `io::Result` included).
fn signature_returns_fallible(sig: &str) -> bool {
    let Some(idx) = sig.rfind("->") else {
        return false;
    };
    let ret = &sig[idx + 2..];
    let head = ret.split('<').next().unwrap_or("");
    head.contains("Result") || head.contains("Option")
}

fn signature_returns_value(sig: &str) -> bool {
    sig.rfind("->").is_some_and(|idx| {
        let ret = sig[idx + 2..].trim();
        !ret.is_empty() && ret != "()"
    })
}

/// Summarizes every non-test function in `file`. `guard_names` is the
/// union of all configured guard predicates; only those are tracked in
/// [`FnSummary::guards_on_all_paths`]. When two functions share a name
/// (methods of different types), the merged summary keeps only what
/// holds for both (guards intersect; fallible/tainted union — the
/// conservative direction for each field's consumer).
#[must_use]
pub fn summarize(
    file: &syn::File,
    guard_names: &BTreeSet<String>,
) -> BTreeMap<String, FnSummary> {
    let mut out: BTreeMap<String, FnSummary> = BTreeMap::new();
    let mut fns = Vec::new();
    collect_fns(&file.items, false, &mut fns);
    for f in fns {
        let sig = f.signature.to_string();
        let mut s = FnSummary {
            returns_fallible: signature_returns_fallible(&sig),
            ..FnSummary::default()
        };
        if let Some(body) = &f.body {
            s.tainted_return = signature_returns_value(&sig)
                && banned_source_in(body.stream().trees()).is_some();
            let cfg = cfg::build(body);
            let gen: Vec<BTreeSet<String>> = cfg
                .nodes
                .iter()
                .map(|n| {
                    calls_in(&n.tokens)
                        .into_iter()
                        .map(|(name, _)| name)
                        .filter(|name| guard_names.contains(name))
                        .collect()
                })
                .collect();
            s.guards_on_all_paths = dataflow::must_forward(&cfg, &gen)[EXIT].clone();
        }
        match out.entry(f.ident.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(s);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = e.get_mut();
                merged.returns_fallible |= s.returns_fallible;
                merged.tainted_return |= s.tainted_return;
                merged.guards_on_all_paths = merged
                    .guards_on_all_paths
                    .intersection(&s.guards_on_all_paths)
                    .cloned()
                    .collect();
            }
        }
    }
    out
}

/// Collects every function item, impl/trait/mod bodies included,
/// skipping `#[cfg(test)]` subtrees.
pub(crate) fn collect_fns<'f>(
    items: &'f [syn::Item],
    in_test: bool,
    out: &mut Vec<&'f syn::ItemFn>,
) {
    for item in items {
        let in_test = in_test || item.attrs().iter().any(syn::Attribute::is_cfg_test);
        if in_test {
            continue;
        }
        match item {
            syn::Item::Fn(f) => out.push(f),
            syn::Item::Mod(m) | syn::Item::Trait(m) => {
                if let Some(content) = &m.content {
                    collect_fns(content, in_test, out);
                }
            }
            syn::Item::Impl(i) => collect_fns(&i.items, in_test, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summaries(src: &str, guards: &[&str]) -> BTreeMap<String, FnSummary> {
        let file = syn::parse_file(src).expect("parses");
        let guards: BTreeSet<String> = guards.iter().map(ToString::to_string).collect();
        summarize(&file, &guards)
    }

    #[test]
    fn fallible_signatures_are_recognized() {
        let s = summaries(
            "fn a() -> Result<u8, E> { Ok(0) }\n\
             fn b() -> io::Result<()> { Ok(()) }\n\
             fn c() -> Option<u8> { None }\n\
             fn d() -> Vec<Result<u8, E>> { vec![] }\n\
             fn e() {}\n",
            &[],
        );
        assert!(s["a"].returns_fallible);
        assert!(s["b"].returns_fallible);
        assert!(s["c"].returns_fallible);
        assert!(!s["d"].returns_fallible, "outer type is Vec");
        assert!(!s["e"].returns_fallible);
    }

    #[test]
    fn guard_summary_requires_all_paths() {
        let src = "\
impl S {
    fn check_all(&self) { self.is_quorum(x()); }
    fn check_some(&self, c: bool) { if c { self.is_quorum(x()); } }
    fn check_loop(&self) { for v in vs() { self.is_quorum(v); } }
}
";
        let s = summaries(src, &["is_quorum"]);
        assert!(s["check_all"].guards_on_all_paths.contains("is_quorum"));
        assert!(s["check_some"].guards_on_all_paths.is_empty());
        // A loop may run zero times: not all paths.
        assert!(s["check_loop"].guards_on_all_paths.is_empty());
    }

    #[test]
    fn tainted_return_needs_source_and_value() {
        let src = "\
fn pick() -> u64 { thread_rng().gen() }
fn stamp() -> u64 { SystemTime::now().into() }
fn log_only() { observe(thread_rng().gen()); }
fn clean() -> u64 { 7 }
";
        let s = summaries(src, &[]);
        assert!(s["pick"].tainted_return);
        assert!(s["stamp"].tainted_return);
        assert!(!s["log_only"].tainted_return, "returns no value");
        assert!(!s["clean"].tainted_return);
    }

    #[test]
    fn cfg_test_functions_are_not_summarized() {
        let s = summaries(
            "#[cfg(test)]\nmod tests { fn t() -> Result<(), E> { Ok(()) } }\n",
            &[],
        );
        assert!(s.is_empty());
    }

    #[test]
    fn calls_in_sees_method_and_path_calls() {
        let file = syn::parse_file("fn f() { a(); self.b(1); C::d(e()); }").expect("parses");
        let syn::Item::Fn(f) = &file.items[0] else {
            panic!("fn")
        };
        let names: Vec<String> = calls_in(f.body.as_ref().expect("body").stream().trees())
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "b", "d", "e"]);
    }
}
