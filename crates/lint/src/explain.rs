//! `adore-lint --explain <RULE>`: per-rule rationale, the paper
//! invariant each rule guards, and a minimal violating example.

/// The explanation text for a rule id, or `None` if the id is unknown.
/// Ids are matched case-insensitively.
#[must_use]
pub fn explain(rule: &str) -> Option<&'static str> {
    let rule = rule.to_ascii_uppercase();
    Some(match rule.as_str() {
        "L1" => {
            "L1 — determinism\n\
             \n\
             Protocol crates must not use hash-ordered collections (HashMap/\n\
             HashSet), ambient clocks (SystemTime, Instant::now), or ambient\n\
             randomness (thread_rng).\n\
             \n\
             Paper invariant: the model checker and the nemesis certify Adore's\n\
             safety theorem by exhaustive/seeded replay; a counterexample is only\n\
             a proof artifact if re-running it visits the same states in the same\n\
             order. Any iteration-order or wall-clock dependence voids that.\n\
             \n\
             Violating example:\n\
             \n\
                 use std::collections::HashMap;   // L1\n\
                 let t = Instant::now();          // L1\n"
        }
        "L2" => {
            "L2 — panic-free recovery\n\
             \n\
             Configured (file, function) scopes — WAL replay, crash recovery,\n\
             counterexample replay — must not call .unwrap()/.expect(), invoke\n\
             panic-family macros, or index slices.\n\
             \n\
             Paper invariant: certified recovery (the WAL replay mirror) runs on\n\
             corrupted bytes by design; the safety argument needs it to *reject*\n\
             bad frames with a typed error, not abort the process mid-recovery.\n\
             \n\
             Violating example (inside a recovery scope):\n\
             \n\
                 let frame = parse(bytes).unwrap();   // L2\n\
                 let first = bytes[0];                // L2\n"
        }
        "L3" => {
            "L3 — mutation encapsulation\n\
             \n\
             Protected protocol-state fields may only be assigned inside their\n\
             owning transition module, and construct-protected types (journal\n\
             events) may only be built by their owner's constructors.\n\
             \n\
             Paper invariant: Adore's state only satisfies the transition\n\
             relation if *every* mutation of tree/log/commit state goes through\n\
             the certified transition functions; rustc privacy cannot police\n\
             same-crate siblings, so the lint does.\n\
             \n\
             Violating example (outside the owner file):\n\
             \n\
                 s.commit_len = 0;                    // L3\n\
                 let ev = TraceEvent { .. };          // L3 (construct-protected)\n"
        }
        "L4" => {
            "L4 — certificate hygiene\n\
             \n\
             Verdict types must carry #[must_use], and a statement whose value\n\
             is a check_*/certify_* call must consume the result.\n\
             \n\
             Paper invariant: a certification that nobody reads certifies\n\
             nothing. #[must_use] alone cannot flag `let _ = check(..);`, and\n\
             unit-returning \"checkers\" never trigger it at all.\n\
             \n\
             Violating example:\n\
             \n\
                 check_quorum(s);            // L4: verdict discarded\n\
                 let _ = certify_commit(s);  // L4: explicitly discarded\n"
        }
        "L5" => {
            "L5 — no stray console output\n\
             \n\
             Protocol crates must not call the print-macro family outside the\n\
             configured bin entry points.\n\
             \n\
             Paper invariant: observable behavior routes through the tracer and\n\
             metrics registry so the trace auditor can re-certify runs from the\n\
             journal alone; ad-hoc prints are invisible to the audit.\n\
             \n\
             Violating example:\n\
             \n\
                 println!(\"leader elected\");   // L5\n"
        }
        "L6" => {
            "L6 — guard-before-mutation (flow-sensitive)\n\
             \n\
             Every control-flow path to an assignment of a protected protocol-\n\
             state field must contain a call to one of the field's configured\n\
             guard predicates — directly, or through a same-file helper that\n\
             calls the guard on all of its own paths (one-level call graph).\n\
             \n\
             Paper invariant: the static analogue of R1+/R2/R3 necessity. Adore's\n\
             reconfiguration safety proof requires the transition function to\n\
             consult the guards before committing or reconfiguring; a guard that\n\
             an `else` branch skips is exactly the bug class Schultz et al. found\n\
             in MongoDB's reconfiguration. L6 checks the *source* consults the\n\
             guard on every path, complementing the nemesis guard-ablation hunts\n\
             that show what happens when it does not.\n\
             \n\
             Violating example (commit_len guarded by is_quorum):\n\
             \n\
                 if fast_path(s) {\n\
                     s.commit_len = n;        // L6: this path skipped is_quorum\n\
                 } else if c.is_quorum(a) {\n\
                     s.commit_len = n;        // ok: dominated by the guard\n\
                 }\n"
        }
        "L7" => {
            "L7 — nondeterminism taint (flow-sensitive)\n\
             \n\
             A value derived from an L1-banned source (thread_rng, SystemTime::\n\
             now, Instant::now) must not flow into a protocol-state sink field —\n\
             through let-renames, branch joins, or same-file helper returns.\n\
             \n\
             Paper invariant: L1 bans the *names*; L7 follows the *values*.\n\
             Deterministic replay (the foundation of every certificate this repo\n\
             produces) is void if any bit of protocol state was derived from an\n\
             ambient source, no matter how many bindings it passed through.\n\
             \n\
             Violating example:\n\
             \n\
                 let r = thread_rng().gen::<usize>();\n\
                 let len = r;                 // taint flows through the rename\n\
                 s.commit_len = len;          // L7\n"
        }
        "L8" => {
            "L8 — discarded fallible results in recovery scopes (flow-sensitive)\n\
             \n\
             Inside the configured L2 recovery scopes, `let _ = fallible(..);`\n\
             and bare `fallible(..);` expression statements are banned when the\n\
             callee returns Result/Option (same-file signature, or configured).\n\
             \n\
             Paper invariant: certified recovery distinguishes \"replayed the\n\
             prefix\" from \"hit a torn frame\" only through its error channel;\n\
             a recovery path that drops an error silently converts a detected\n\
             corruption into an unreported one, voiding the recovery certificate.\n\
             \n\
             Violating example (inside a recovery scope):\n\
             \n\
                 let _ = parse_payload(frame);   // L8\n\
                 sync_mirror(state);             // L8 if sync_mirror -> Result\n"
        }
        "L9" => {
            "L9 — lock-order cycles (concurrency-discipline)\n\
             \n\
             Within a configured crate, the lint tracks which lock guards are\n\
             held (lexically, over guard live ranges) at every `lock()` site and\n\
             builds the crate's lock-acquisition order graph. Any cycle — two\n\
             sites acquiring the same pair of locks in opposite orders, or a\n\
             re-acquisition of a lock already held — is reported at both\n\
             acquisition sites. With `locks = [..]` configured, any acquisition\n\
             against the pinned global order is flagged even before the second\n\
             half of the cycle exists.\n\
             \n\
             Paper invariant: the safety theorem is proved over the\n\
             deterministic engine; the threaded shell around it (node loops,\n\
             proxy pumps) must not deadlock, or certified runs simply stop\n\
             producing journal entries — an availability hole no trace audit\n\
             can see. std::sync::Mutex is not reentrant, so even a self-cycle\n\
             is a guaranteed deadlock.\n\
             \n\
             Violating example (two threads, opposite orders):\n\
             \n\
                 let g = state.lock()?;  let h = clients.lock()?;   // thread A\n\
                 let h = clients.lock()?; let g = state.lock()?;    // L9 (both)\n"
        }
        "L10" => {
            "L10 — no-panic lock acquisition (concurrency-discipline)\n\
             \n\
             In configured long-lived-thread scopes (node event loops, proxy\n\
             pumps, the monitor), `lock().unwrap()` and `lock().expect(..)`\n\
             are banned: a poisoned mutex must flow through a typed path —\n\
             `unwrap_or_else(PoisonError::into_inner)` with a journaled\n\
             adoption event, or a per-connection exit — never a panic.\n\
             \n\
             Paper invariant: extends L2's panic-free discipline beyond\n\
             recovery scopes. Poisoning means some other thread already\n\
             panicked; unwrap() converts one thread's bug into whole-process\n\
             death of a replica that the protocol (and the paper's fault\n\
             model) expects to keep serving or to crash *cleanly* through the\n\
             kill -9 harness, not via cascading panics.\n\
             \n\
             Violating example (inside a long-lived-thread scope):\n\
             \n\
                 let map = clients.lock().expect(\"client map lock\");   // L10\n"
        }
        "L11" => {
            "L11 — no lock held across a blocking call (concurrency-discipline)\n\
             \n\
             Within a configured crate, no lock guard may be live across a\n\
             blocking call: socket read/write/connect/accept, Receiver::recv,\n\
             blocking channel send, thread::sleep, join. The blocking-call\n\
             list is configurable, and crate-local helpers that (transitively)\n\
             block taint their callers through cross-file call summaries.\n\
             \n\
             Paper invariant: certifies DESIGN §11's bounded-stall claim. A\n\
             guard held across a peer socket write makes every thread needing\n\
             that lock wait on the *slowest peer's* TCP buffer — the classic\n\
             tail-latency collapse, and (combined with an L9 edge) a deadlock\n\
             amplifier. Copy out what the critical section needs, drop the\n\
             guard, then block.\n\
             \n\
             Violating example:\n\
             \n\
                 let map = clients.lock()?;\n\
                 write_frame(map.get_mut(&id)?, &reply)?;   // L11: socket\n\
                                                            // write under lock\n"
        }
        "L12" => {
            "L12 — bounded-channel discipline (concurrency-discipline)\n\
             \n\
             Two halves. (a) In configured crates, unbounded `mpsc::channel()`\n\
             is banned on protocol paths: only `sync_channel(depth)` carries\n\
             backpressure. (b) In configured hot-path scopes, sends must be\n\
             `try_send` with the shed outcome consumed — a blocking `send` can\n\
             stall the pump, and a discarded `try_send` silently drops the\n\
             overflow signal the availability monitor is supposed to see.\n\
             \n\
             Paper invariant: DESIGN §11 claims every inter-thread queue is\n\
             bounded with explicit shed behavior, so overload degrades into\n\
             *measured* refusals (the availability ledger) instead of\n\
             unbounded memory growth. L12 makes that claim machine-checked\n\
             rather than aspirational.\n\
             \n\
             Violating example (hot-path scope):\n\
             \n\
                 let (tx, rx) = mpsc::channel();   // L12a: unbounded\n\
                 tx.send(ev).unwrap();             // L12b: blocking send\n\
                 tx.try_send(ev);                  // L12b: shed outcome dropped\n"
        }
        "L13" => {
            "L13 — spec drift (differential conformance)\n\
             \n\
             Each configured protocol handler is lowered to a guarded-command\n\
             IR (guards, state mutations, emitted messages) and executed by a\n\
             micro-interpreter on every (state, event) pair the checker's\n\
             bounded explorer visits. Any divergence — a guard verdict the\n\
             checker disagrees with, or a differing post-state — is reported\n\
             at the handler line whose write diverged, with a replayable\n\
             `trace ⊢ event` witness. A configured handler the extractor\n\
             cannot fully model is itself an L13 finding: drift must not\n\
             hide behind opacity.\n\
             \n\
             Paper invariant: the checker certifies the *model*; L13 certifies\n\
             that the shipped handlers still *are* the model. It is the static\n\
             bridge between Adore's mechanized transition system and the\n\
             executable Rust that claims to implement it.\n\
             \n\
             Violating example (quorum conjunct deleted from commit advance):\n\
             \n\
                 if len > s.commit_len {       // L13: IR advances commit_len\n\
                     s.commit_len = len;       // where the checker does not;\n\
                 }                             // witness [Elect(1), ..] ⊢ ..\n"
        }
        "L14" => {
            "L14 — semantic guard sufficiency (IR-path dominance)\n\
             \n\
             Every IR-level assignment to a configured protected field must be\n\
             dominated, on its own guarded-command path, by a guard atom of a\n\
             required semantic *kind* (quorum, log-consistency, R1+/R2/R3) in\n\
             the protective polarity. This upgrades L6's syntactic guard-call\n\
             check: a guard that is called but on a different branch, negated,\n\
             or sequenced after the write no longer counts.\n\
             \n\
             Paper invariant: R1+/R2/R3 necessity as *dominance* on the\n\
             extracted transition paths, not mere presence in the source.\n\
             \n\
             Violating example:\n\
             \n\
                 if c.is_quorum(a) { audit(); }\n\
                 s.commit_len = len;    // L14: quorum checked, but not on\n\
                                        // this path's way to the write\n"
        }
        "L15" => {
            "L15 — durable-before-outbound emission order (IR paths)\n\
             \n\
             On every IR path of a configured scope, no durable emission\n\
             (Output::Persist, Output::Journal) may follow an outbound one\n\
             (Output::Send, Output::Reply). State must reach its durable\n\
             basis before any of it leaves the node.\n\
             \n\
             Paper invariant: certified recovery replays the WAL to the exact\n\
             pre-crash state; a reply or peer message emitted before the\n\
             corresponding persist means a crash between the two leaves the\n\
             world believing state the log cannot reconstruct.\n\
             \n\
             Violating example:\n\
             \n\
                 out.push(Output::Send { to, msg });\n\
                 out.push(Output::Persist { bytes });   // L15: durable after\n\
                                                        // outbound\n"
        }
        // The example lines assemble the pragma marker with concat! so
        // this file's own source never contains the live marker the
        // pragma scanner looks for.
        "P0" => {
            concat!(
                "P0 — malformed suppression pragma\n",
                "\n",
                "A suppression pragma that does not parse — bad syntax, a missing\n",
                "reason, or an unknown rule id — is itself a finding. Suppressions\n",
                "are audit records; a malformed one silently suppresses nothing.\n",
                "\n",
                "Violating example:\n",
                "\n",
                "// adore-",
                "lint: allow(L1)          // P0: missing reason\n",
                "// adore-",
                "lint: allow(L99, reason = \"x\")  // P0: unknown rule\n",
            )
        }
        "E0" => {
            "E0 — file does not parse\n\
             \n\
             The lint's item parser could not tokenize/parse the file; nothing\n\
             in it was checked. E0 fails CI so an unparsable file cannot dodge\n\
             the rules.\n"
        }
        _ => return None,
    })
}

/// Every rule id `--explain` accepts, in display order.
pub const RULE_IDS: &[&str] = &[
    "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10", "L11", "L12", "L13", "L14",
    "L15", "P0", "E0",
];

/// A one-line summary per rule id (the first line of the explanation),
/// used by the SARIF rule metadata.
#[must_use]
pub fn summary(rule: &str) -> Option<&'static str> {
    explain(rule).map(|text| text.lines().next().unwrap_or(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_rule_has_an_explanation() {
        for id in RULE_IDS {
            let text = explain(id).unwrap_or_else(|| panic!("no explanation for {id}"));
            assert!(text.contains(id), "{id} text names itself");
        }
        assert!(explain("l6").is_some(), "case-insensitive");
        assert!(explain("L99").is_none());
    }

    #[test]
    fn flow_rules_cite_the_paper_invariants() {
        assert!(explain("L6").expect("L6").contains("R1+/R2/R3"));
        assert!(explain("L7").expect("L7").contains("replay"));
        assert!(explain("L8").expect("L8").contains("recovery"));
    }

    #[test]
    fn conc_rules_cite_their_hazards() {
        assert!(explain("L9").expect("L9").contains("deadlock"));
        assert!(explain("L10").expect("L10").contains("Poisoning"));
        assert!(explain("L11").expect("L11").contains("blocking"));
        assert!(explain("L12").expect("L12").contains("backpressure"));
    }

    #[test]
    fn conformance_rules_cite_the_transition_system() {
        assert!(explain("L13").expect("L13").contains("witness"));
        assert!(explain("L14").expect("L14").contains("dominated"));
        assert!(explain("L15").expect("L15").contains("durable"));
        assert_eq!(summary("L13"), Some("L13 — spec drift (differential conformance)"));
    }
}
