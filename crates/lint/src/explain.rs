//! `adore-lint --explain <RULE>`: per-rule rationale, the paper
//! invariant each rule guards, and a minimal violating example.

/// The explanation text for a rule id, or `None` if the id is unknown.
/// Ids are matched case-insensitively.
#[must_use]
pub fn explain(rule: &str) -> Option<&'static str> {
    let rule = rule.to_ascii_uppercase();
    Some(match rule.as_str() {
        "L1" => {
            "L1 — determinism\n\
             \n\
             Protocol crates must not use hash-ordered collections (HashMap/\n\
             HashSet), ambient clocks (SystemTime, Instant::now), or ambient\n\
             randomness (thread_rng).\n\
             \n\
             Paper invariant: the model checker and the nemesis certify Adore's\n\
             safety theorem by exhaustive/seeded replay; a counterexample is only\n\
             a proof artifact if re-running it visits the same states in the same\n\
             order. Any iteration-order or wall-clock dependence voids that.\n\
             \n\
             Violating example:\n\
             \n\
                 use std::collections::HashMap;   // L1\n\
                 let t = Instant::now();          // L1\n"
        }
        "L2" => {
            "L2 — panic-free recovery\n\
             \n\
             Configured (file, function) scopes — WAL replay, crash recovery,\n\
             counterexample replay — must not call .unwrap()/.expect(), invoke\n\
             panic-family macros, or index slices.\n\
             \n\
             Paper invariant: certified recovery (the WAL replay mirror) runs on\n\
             corrupted bytes by design; the safety argument needs it to *reject*\n\
             bad frames with a typed error, not abort the process mid-recovery.\n\
             \n\
             Violating example (inside a recovery scope):\n\
             \n\
                 let frame = parse(bytes).unwrap();   // L2\n\
                 let first = bytes[0];                // L2\n"
        }
        "L3" => {
            "L3 — mutation encapsulation\n\
             \n\
             Protected protocol-state fields may only be assigned inside their\n\
             owning transition module, and construct-protected types (journal\n\
             events) may only be built by their owner's constructors.\n\
             \n\
             Paper invariant: Adore's state only satisfies the transition\n\
             relation if *every* mutation of tree/log/commit state goes through\n\
             the certified transition functions; rustc privacy cannot police\n\
             same-crate siblings, so the lint does.\n\
             \n\
             Violating example (outside the owner file):\n\
             \n\
                 s.commit_len = 0;                    // L3\n\
                 let ev = TraceEvent { .. };          // L3 (construct-protected)\n"
        }
        "L4" => {
            "L4 — certificate hygiene\n\
             \n\
             Verdict types must carry #[must_use], and a statement whose value\n\
             is a check_*/certify_* call must consume the result.\n\
             \n\
             Paper invariant: a certification that nobody reads certifies\n\
             nothing. #[must_use] alone cannot flag `let _ = check(..);`, and\n\
             unit-returning \"checkers\" never trigger it at all.\n\
             \n\
             Violating example:\n\
             \n\
                 check_quorum(s);            // L4: verdict discarded\n\
                 let _ = certify_commit(s);  // L4: explicitly discarded\n"
        }
        "L5" => {
            "L5 — no stray console output\n\
             \n\
             Protocol crates must not call the print-macro family outside the\n\
             configured bin entry points.\n\
             \n\
             Paper invariant: observable behavior routes through the tracer and\n\
             metrics registry so the trace auditor can re-certify runs from the\n\
             journal alone; ad-hoc prints are invisible to the audit.\n\
             \n\
             Violating example:\n\
             \n\
                 println!(\"leader elected\");   // L5\n"
        }
        "L6" => {
            "L6 — guard-before-mutation (flow-sensitive)\n\
             \n\
             Every control-flow path to an assignment of a protected protocol-\n\
             state field must contain a call to one of the field's configured\n\
             guard predicates — directly, or through a same-file helper that\n\
             calls the guard on all of its own paths (one-level call graph).\n\
             \n\
             Paper invariant: the static analogue of R1+/R2/R3 necessity. Adore's\n\
             reconfiguration safety proof requires the transition function to\n\
             consult the guards before committing or reconfiguring; a guard that\n\
             an `else` branch skips is exactly the bug class Schultz et al. found\n\
             in MongoDB's reconfiguration. L6 checks the *source* consults the\n\
             guard on every path, complementing the nemesis guard-ablation hunts\n\
             that show what happens when it does not.\n\
             \n\
             Violating example (commit_len guarded by is_quorum):\n\
             \n\
                 if fast_path(s) {\n\
                     s.commit_len = n;        // L6: this path skipped is_quorum\n\
                 } else if c.is_quorum(a) {\n\
                     s.commit_len = n;        // ok: dominated by the guard\n\
                 }\n"
        }
        "L7" => {
            "L7 — nondeterminism taint (flow-sensitive)\n\
             \n\
             A value derived from an L1-banned source (thread_rng, SystemTime::\n\
             now, Instant::now) must not flow into a protocol-state sink field —\n\
             through let-renames, branch joins, or same-file helper returns.\n\
             \n\
             Paper invariant: L1 bans the *names*; L7 follows the *values*.\n\
             Deterministic replay (the foundation of every certificate this repo\n\
             produces) is void if any bit of protocol state was derived from an\n\
             ambient source, no matter how many bindings it passed through.\n\
             \n\
             Violating example:\n\
             \n\
                 let r = thread_rng().gen::<usize>();\n\
                 let len = r;                 // taint flows through the rename\n\
                 s.commit_len = len;          // L7\n"
        }
        "L8" => {
            "L8 — discarded fallible results in recovery scopes (flow-sensitive)\n\
             \n\
             Inside the configured L2 recovery scopes, `let _ = fallible(..);`\n\
             and bare `fallible(..);` expression statements are banned when the\n\
             callee returns Result/Option (same-file signature, or configured).\n\
             \n\
             Paper invariant: certified recovery distinguishes \"replayed the\n\
             prefix\" from \"hit a torn frame\" only through its error channel;\n\
             a recovery path that drops an error silently converts a detected\n\
             corruption into an unreported one, voiding the recovery certificate.\n\
             \n\
             Violating example (inside a recovery scope):\n\
             \n\
                 let _ = parse_payload(frame);   // L8\n\
                 sync_mirror(state);             // L8 if sync_mirror -> Result\n"
        }
        // The example lines assemble the pragma marker with concat! so
        // this file's own source never contains the live marker the
        // pragma scanner looks for.
        "P0" => {
            concat!(
                "P0 — malformed suppression pragma\n",
                "\n",
                "A suppression pragma that does not parse — bad syntax, a missing\n",
                "reason, or an unknown rule id — is itself a finding. Suppressions\n",
                "are audit records; a malformed one silently suppresses nothing.\n",
                "\n",
                "Violating example:\n",
                "\n",
                "// adore-",
                "lint: allow(L1)          // P0: missing reason\n",
                "// adore-",
                "lint: allow(L99, reason = \"x\")  // P0: unknown rule\n",
            )
        }
        "E0" => {
            "E0 — file does not parse\n\
             \n\
             The lint's item parser could not tokenize/parse the file; nothing\n\
             in it was checked. E0 fails CI so an unparsable file cannot dodge\n\
             the rules.\n"
        }
        _ => return None,
    })
}

/// Every rule id `--explain` accepts, in display order.
pub const RULE_IDS: &[&str] = &["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "P0", "E0"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_rule_has_an_explanation() {
        for id in RULE_IDS {
            let text = explain(id).unwrap_or_else(|| panic!("no explanation for {id}"));
            assert!(text.contains(id), "{id} text names itself");
        }
        assert!(explain("l6").is_some(), "case-insensitive");
        assert!(explain("L99").is_none());
    }

    #[test]
    fn flow_rules_cite_the_paper_invariants() {
        assert!(explain("L6").expect("L6").contains("R1+/R2/R3"));
        assert!(explain("L7").expect("L7").contains("replay"));
        assert!(explain("L8").expect("L8").contains("recovery"));
    }
}
