//! The concurrency-discipline rules: L9 lock-order, L10 no-panic lock
//! acquisition, L11 lock-across-blocking, L12 channel discipline.
//!
//! Where L1–L8 certify the deterministic protocol, these four certify
//! the *threaded shell around it* — the node event loops, proxy pumps,
//! and monitor threads that `crates/adored` added:
//!
//! * **L9** — per-crate lock-acquisition graph. Every `lock()` while
//!   another guard is held adds an order edge; any cycle (including a
//!   self-loop: re-acquiring a held `std::sync::Mutex` deadlocks — it
//!   is not reentrant) is a potential deadlock, reported at both
//!   acquisition sites.
//! * **L10** — in configured long-lived-thread scopes,
//!   `lock().unwrap()` / `lock().expect(..)` is banned: poisoning must
//!   flow through a typed path (`unwrap_or_else(PoisonError::
//!   into_inner)` with a journaled event, or a per-connection exit),
//!   never panic the thread.
//! * **L11** — no lock guard live across a blocking call (socket
//!   read/write/connect/accept, `Receiver::recv`, blocking channel
//!   `send`, `thread::sleep`, `join`). One slow peer must never stall
//!   every thread that needs the lock.
//! * **L12** — protocol-path channels must be bounded: bare
//!   `mpsc::channel()` is banned in the configured crates (only
//!   `sync_channel` carries backpressure), and in configured hot-path
//!   scopes sends must be `try_send` with the shed outcome consumed
//!   (a discarded `try_send` silently loses the overflow signal).
//!
//! # Guard tracking
//!
//! Guard live ranges are tracked **lexically**, which for Rust guards
//! is exact must-hold information: a guard bound by `let` lives to the
//! end of its enclosing brace block (or an earlier `drop(g)`), and an
//! unbound (temporary) guard lives to the end of its statement. A
//! binding counts as a guard only when everything after the
//! acquisition is a guard-preserving adapter (`unwrap`, `expect`,
//! `unwrap_or_else`); `lock_state(s).clone()` binds a *snapshot*, not
//! a guard. Temporaries in an `if`/`while` condition are held through
//! the following block — a conservative over-approximation (rustc
//! drops them at the end of the condition); `match` scrutinee
//! temporaries really are held through every arm, which this walker
//! models faithfully.
//!
//! # Cross-file summaries
//!
//! Unlike the one-level, same-file [`crate::callgraph`] summaries,
//! these rules summarize **every function of a crate together** and
//! iterate to a fixpoint, so a helper that blocks or acquires a lock
//! taints its callers across files. A helper whose `lock()` receiver
//! is one of its own parameters is marked parameter-acquiring, and the
//! lock name resolves at each call site from the first argument
//! (`lock_state(&link.state)` acquires `state`). Closures passed to
//! `spawn(..)` run on another thread: the caller's held set does not
//! flow in, and nothing inside flows back into the caller's summary —
//! but the closure body is still scanned with an empty held set.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use proc_macro2::{Delimiter, Span, TokenTree};

use crate::config::Config;
use crate::rules::in_dir;
use crate::Finding;

/// Adapters that keep a lock-acquisition chain guard-valued; anything
/// else (`clone`, field access, `get`) turns the binding into a
/// snapshot whose guard dies at the statement end.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// What one function means for its callers, concurrency-wise.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConcSummary {
    /// Lock names this function acquires (transitively, call-site
    /// parameter acquisitions resolved).
    pub acquires: BTreeSet<String>,
    /// The function locks a mutex passed as one of its parameters; the
    /// lock name resolves from the call site's first argument.
    pub acquires_param: bool,
    /// The signature returns a guard (`MutexGuard`, `RwLockReadGuard`,
    /// ...), so a call is itself an acquisition expression.
    pub returns_guard: bool,
    /// The function reaches a configured blocking call (transitively),
    /// spawned-thread closures excluded.
    pub blocks: bool,
}

/// Runs L9–L12 over a set of parsed files (workspace-relative path +
/// parse). Files are grouped by crate directory internally; summaries
/// never cross a crate boundary (rustc's privacy already seals locks
/// inside their crate).
#[must_use]
pub fn scan_conc(files: &[(String, syn::File)], config: &Config) -> Vec<Finding> {
    let mut by_crate: BTreeMap<String, Vec<&(String, syn::File)>> = BTreeMap::new();
    for entry in files {
        by_crate.entry(crate_key(&entry.0)).or_default().push(entry);
    }
    let blocking: BTreeSet<String> = config.l11_blocking.iter().cloned().collect();
    let mut findings = Vec::new();
    for group in by_crate.values() {
        scan_crate(group, config, &blocking, &mut findings);
    }
    findings
}

/// The crate grouping key of a workspace-relative path:
/// `crates/<name>/...` → `crates/<name>`, else the first component.
fn crate_key(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        (Some(first), _) => first.to_string(),
        (None, _) => String::new(),
    }
}

/// One observed order edge: `to` was acquired while `from` was held.
struct EdgeInstance {
    from: String,
    from_span: Span,
    to: String,
    to_span: Span,
    file: String,
}

fn scan_crate(
    group: &[&(String, syn::File)],
    config: &Config,
    blocking: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let any_l9 = group
        .iter()
        .any(|(rel, _)| config.l9_crates.iter().any(|c| in_dir(rel, c)));
    let any_l11 = group
        .iter()
        .any(|(rel, _)| config.l11_crates.iter().any(|c| in_dir(rel, c)));
    let any_l12a = group
        .iter()
        .any(|(rel, _)| config.l12_crates.iter().any(|c| in_dir(rel, c)));
    let any_scoped = group.iter().any(|(rel, _)| {
        config.l10_scopes.iter().any(|s| s.file == *rel)
            || config.l12_scopes.iter().any(|s| s.file == *rel)
    });
    if !any_l9 && !any_l11 && !any_l12a && !any_scoped {
        return;
    }

    let summaries = summarize_crate(group, blocking);
    let mut edges: Vec<EdgeInstance> = Vec::new();

    for (rel, file) in group {
        let l9 = config.l9_crates.iter().any(|c| in_dir(rel, c));
        let l11 = config.l11_crates.iter().any(|c| in_dir(rel, c));
        let l12a = config.l12_crates.iter().any(|c| in_dir(rel, c));
        let l10_fns: Vec<&str> = config
            .l10_scopes
            .iter()
            .filter(|s| s.file == *rel)
            .flat_map(|s| s.functions.iter().map(String::as_str))
            .collect();
        let l12_fns: Vec<&str> = config
            .l12_scopes
            .iter()
            .filter(|s| s.file == *rel)
            .flat_map(|s| s.functions.iter().map(String::as_str))
            .collect();
        if !l9 && !l11 && !l12a && l10_fns.is_empty() && l12_fns.is_empty() {
            continue;
        }
        let mut fns = Vec::new();
        crate::callgraph::collect_fns(&file.items, false, &mut fns);
        for f in &fns {
            let Some(body) = &f.body else { continue };
            let mut ctx = WalkCtx {
                rel,
                l9,
                l11,
                l10: l10_fns.iter().any(|n| *n == "*" || *n == f.ident),
                l12b: l12_fns.iter().any(|n| *n == "*" || *n == f.ident),
                blocking,
                summaries: &summaries,
                edges: &mut edges,
                findings,
            };
            let mut held = Vec::new();
            walk_block(body.stream().trees(), &mut held, &mut ctx);
        }
        if l12a {
            flag_unbounded_channels(rel, &fns, findings);
        }
    }

    report_order_violations(&edges, &config.l9_locks, findings);
}

// ---------------------------------------------------------------------------
// Crate-level summaries (cross-file, fixpoint)
// ---------------------------------------------------------------------------

/// Summarizes every non-test function of a crate's files, iterated to a
/// fixpoint so `blocks`/`acquires` propagate through call chains across
/// files. Same-name functions merge by union (the conservative
/// direction for every consumer of these fields).
#[must_use]
pub fn summarize_crate(
    group: &[&(String, syn::File)],
    blocking: &BTreeSet<String>,
) -> BTreeMap<String, ConcSummary> {
    struct FnInfo {
        name: String,
        params: Vec<String>,
        body: Vec<TokenTree>,
    }
    let mut infos = Vec::new();
    for (_, file) in group {
        let mut fns = Vec::new();
        crate::callgraph::collect_fns(&file.items, false, &mut fns);
        for f in fns {
            let Some(body) = &f.body else { continue };
            let sig = f.signature.to_string();
            let mut base = ConcSummary {
                returns_guard: sig.rfind("->").is_some_and(|i| sig[i..].contains("Guard")),
                ..ConcSummary::default()
            };
            let params = param_names(f.signature.trees());
            seed_summary(body.stream().trees(), &params, blocking, &mut base);
            infos.push((
                FnInfo {
                    name: f.ident.clone(),
                    params,
                    body: body.stream().trees().to_vec(),
                },
                base,
            ));
        }
    }
    let mut out: BTreeMap<String, ConcSummary> = BTreeMap::new();
    for (info, base) in &infos {
        merge_into(out.entry(info.name.clone()).or_default(), base);
    }
    // Fixpoint: fold callee summaries into callers until stable.
    loop {
        let mut changed = false;
        for (info, _) in &infos {
            let mut add = ConcSummary::default();
            propagate_calls(&info.body, &info.params, &out, &mut add);
            let entry = out.entry(info.name.clone()).or_default();
            let before = entry.clone();
            merge_into(entry, &add);
            changed |= *entry != before;
        }
        if !changed {
            return out;
        }
    }
}

fn merge_into(dst: &mut ConcSummary, src: &ConcSummary) {
    dst.acquires.extend(src.acquires.iter().cloned());
    dst.acquires_param |= src.acquires_param;
    dst.returns_guard |= src.returns_guard;
    dst.blocks |= src.blocks;
}

/// Direct facts of one body: `.lock()` receivers (own parameters →
/// `acquires_param`) and direct blocking calls, `spawn(..)` arguments
/// excluded (they run on another thread).
fn seed_summary(
    trees: &[TokenTree],
    params: &[String],
    blocking: &BTreeSet<String>,
    out: &mut ConcSummary,
) {
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Ident(id) => {
                let called = matches!(
                    trees.get(i + 1),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                );
                if called && *id == "spawn" {
                    i += 2; // skip the argument group: another thread
                    continue;
                }
                if called && *id == "lock" && is_method(trees, i) {
                    if let Some(name) = receiver_name(trees, i) {
                        if params.contains(&name) {
                            out.acquires_param = true;
                        } else {
                            out.acquires.insert(name);
                        }
                    }
                }
                if called && blocking.contains(&id.to_string()) {
                    out.blocks = true;
                }
            }
            TokenTree::Group(g) => seed_summary(g.stream().trees(), params, blocking, out),
            _ => {}
        }
        i += 1;
    }
}

/// Folds callee summaries into `add` for every call in the body,
/// resolving parameter acquisitions from the call site's first
/// argument. Spawned closures are skipped.
fn propagate_calls(
    trees: &[TokenTree],
    params: &[String],
    summaries: &BTreeMap<String, ConcSummary>,
    add: &mut ConcSummary,
) {
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Ident(id) => {
                if let Some(TokenTree::Group(g)) = trees.get(i + 1) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        if *id == "spawn" {
                            i += 2;
                            continue;
                        }
                        // Free-function/path calls only — see scan_token.
                        if is_method(trees, i) {
                            i += 1;
                            continue;
                        }
                        if let Some(s) = summaries.get(&id.to_string()) {
                            add.blocks |= s.blocks;
                            add.acquires.extend(s.acquires.iter().cloned());
                            if s.acquires_param {
                                match first_arg_name(g.stream().trees()) {
                                    Some(n) if params.contains(&n) => {
                                        add.acquires_param = true;
                                    }
                                    Some(n) => {
                                        add.acquires.insert(n);
                                    }
                                    None => {}
                                }
                            }
                        }
                    }
                }
            }
            TokenTree::Group(g) => propagate_calls(g.stream().trees(), params, summaries, add),
            _ => {}
        }
        i += 1;
    }
}

/// Parameter names from a signature token stream: the idents followed
/// by `:` at the top level of the parameter parenthesis group.
fn param_names(sig: &[TokenTree]) -> Vec<String> {
    let Some(TokenTree::Group(args)) = sig
        .iter()
        .find(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis))
    else {
        return Vec::new();
    };
    let trees = args.stream().trees();
    let mut out = Vec::new();
    let mut depth = 0i32;
    for i in 0..trees.len() {
        match &trees[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Ident(id) if depth == 0 => {
                if matches!(
                    trees.get(i + 1),
                    Some(TokenTree::Punct(p)) if p.as_char() == ':'
                ) {
                    out.push(id.to_string());
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The lexical must-hold walker
// ---------------------------------------------------------------------------

/// One guard in the held set.
#[derive(Debug, Clone)]
struct HeldLock {
    /// Lock name (nominal: final ident of the acquisition receiver).
    name: String,
    /// Where it was acquired.
    span: Span,
    /// Still a statement temporary (dies at the next `;`)?
    temp: bool,
    /// Binding variable, for `drop(var)` release.
    var: Option<String>,
}

struct WalkCtx<'a> {
    rel: &'a str,
    l9: bool,
    l11: bool,
    l10: bool,
    l12b: bool,
    blocking: &'a BTreeSet<String>,
    summaries: &'a BTreeMap<String, ConcSummary>,
    edges: &'a mut Vec<EdgeInstance>,
    findings: &'a mut Vec<Finding>,
}

fn push_finding(findings: &mut Vec<Finding>, rule: &str, rel: &str, span: Span, msg: String) {
    let lc = span.start();
    findings.push(Finding {
        rule: rule.to_string(),
        file: rel.to_string(),
        line: lc.line,
        col: lc.column,
        msg,
        suppressed: false,
        reason: None,
    });
}

/// Walks one brace-block's statements. Guards bound inside die at the
/// end of the block (`held` is truncated back); statement temporaries
/// die at each top-level `;` or statement-position block.
fn walk_block(trees: &[TokenTree], held: &mut Vec<HeldLock>, ctx: &mut WalkCtx<'_>) {
    let block_base = held.len();
    let mut stmt_base = held.len();
    let mut stmt_start = 0usize;
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Punct(p) if p.as_char() == ';' => {
                let binding = let_binding(&trees[stmt_start..i], ctx.summaries);
                end_statement(held, stmt_base, binding);
                stmt_base = held.len();
                stmt_start = i + 1;
                i += 1;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                walk_block(g.stream().trees(), held, ctx);
                // `{ .. }.method()` and `if .. {} else {}` continue the
                // statement; a plain statement-position block ends it.
                let continues = matches!(
                    trees.get(i + 1),
                    Some(TokenTree::Punct(p)) if p.as_char() == '.'
                ) || matches!(
                    trees.get(i + 1),
                    Some(TokenTree::Ident(id)) if *id == "else"
                );
                if !continues {
                    end_statement(held, stmt_base, None);
                    stmt_base = held.len();
                    stmt_start = i + 1;
                }
                i += 1;
            }
            _ => {
                i = scan_token(trees, i, held, ctx);
            }
        }
    }
    // Tail expression without `;`: its temporaries die with the block.
    held.truncate(block_base);
}

/// Handles one non-block token at `i` inside the current statement;
/// returns the index to continue from.
fn scan_token(
    trees: &[TokenTree],
    i: usize,
    held: &mut Vec<HeldLock>,
    ctx: &mut WalkCtx<'_>,
) -> usize {
    match &trees[i] {
        TokenTree::Ident(id) => {
            let arg_group = match trees.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Some(g),
                _ => None,
            };
            let Some(args) = arg_group else {
                return i + 1;
            };
            let name = id.to_string();
            if name == "spawn" {
                // Another thread: fresh held set, hot-path send rules
                // don't apply, but L9/L10/L11 still scan the closure.
                let mut spawned_held = Vec::new();
                let l12b = std::mem::replace(&mut ctx.l12b, false);
                walk_block(args.stream().trees(), &mut spawned_held, ctx);
                ctx.l12b = l12b;
                return i + 2;
            }
            if name == "drop" {
                if let Some(var) = first_arg_name(args.stream().trees()) {
                    if let Some(pos) = held
                        .iter()
                        .rposition(|h| h.var.as_deref() == Some(var.as_str()))
                    {
                        held.remove(pos);
                    }
                }
            }
            if name == "lock" && is_method(trees, i) {
                let lock = receiver_name(trees, i).unwrap_or_else(|| "<expr>".into());
                acquire(held, &lock, id.span(), true, ctx);
                if ctx.l10 {
                    flag_l10_chain(trees, i + 2, &lock, ctx);
                }
            } else if name == "channel" && ctx.l12b {
                // L12a is flagged per-crate elsewhere; nothing here.
            } else if name == "send" && ctx.l12b && is_method(trees, i) {
                push_finding(
                    ctx.findings,
                    "L12",
                    ctx.rel,
                    id.span(),
                    "blocking `send` on a hot path: use `try_send` and handle the \
                     shed/drop outcome explicitly"
                        .into(),
                );
            } else if name == "try_send" && ctx.l12b && discards_result(trees, i) {
                push_finding(
                    ctx.findings,
                    "L12",
                    ctx.rel,
                    id.span(),
                    "`try_send` result discarded on a hot path: the overflow (shed) \
                     outcome must be handled explicitly"
                        .into(),
                );
            }
            if ctx.l11 && ctx.blocking.contains(&name) && !held.is_empty() {
                let h = held.last().expect("non-empty");
                push_finding(
                    ctx.findings,
                    "L11",
                    ctx.rel,
                    id.span(),
                    format!(
                        "blocking call `{name}` while holding lock `{}` (acquired at \
                         {}:{}): a stalled peer holds up every thread needing the lock",
                        h.name,
                        ctx.rel,
                        h.span.start().line
                    ),
                );
            }
            // Crate-fn summaries apply to free-function and path calls
            // only: a method call's receiver type is unknown, and e.g.
            // `map.get(..)` must not inherit the summary of a crate
            // function that happens to be named `get`. Direct blocking
            // *names* (above) still match methods — `stream.read_exact`
            // and `rx.recv` are exactly the method calls L11 is for.
            if let Some(s) = ctx.summaries.get(&name).filter(|_| !is_method(trees, i)) {
                if s.blocks && ctx.l11 && !held.is_empty() && !ctx.blocking.contains(&name) {
                    let h = held.last().expect("non-empty");
                    push_finding(
                        ctx.findings,
                        "L11",
                        ctx.rel,
                        id.span(),
                        format!(
                            "call to `{name}` (which blocks) while holding lock `{}` \
                             (acquired at {}:{})",
                            h.name,
                            ctx.rel,
                            h.span.start().line
                        ),
                    );
                }
                for acq in s.acquires.clone() {
                    acquire(held, &acq, id.span(), s.returns_guard, ctx);
                }
                if s.acquires_param {
                    if let Some(lock) = first_arg_name(args.stream().trees()) {
                        acquire(held, &lock, id.span(), s.returns_guard, ctx);
                    }
                }
            }
            // Scan the argument tokens (nested acquisitions/calls).
            walk_exprs(args.stream().trees(), held, ctx);
            i + 2
        }
        TokenTree::Group(g) if g.delimiter() != Delimiter::Brace => {
            walk_exprs(g.stream().trees(), held, ctx);
            i + 1
        }
        _ => i + 1,
    }
}

/// Scans expression tokens (paren/bracket group contents): same
/// statement context as the caller — temporaries acquired here live to
/// the enclosing statement's end. Nested brace groups (closure bodies,
/// match arms) get full block treatment.
fn walk_exprs(trees: &[TokenTree], held: &mut Vec<HeldLock>, ctx: &mut WalkCtx<'_>) {
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                walk_block(g.stream().trees(), held, ctx);
                i += 1;
            }
            _ => {
                i = scan_token(trees, i, held, ctx);
            }
        }
    }
}

/// Registers an acquisition of `lock` at `span`: L9 edges against every
/// held guard (a self match is an immediate non-reentrancy deadlock),
/// then — if the expression yields a live guard — a new temporary.
fn acquire(held: &mut Vec<HeldLock>, lock: &str, span: Span, yields_guard: bool, ctx: &mut WalkCtx<'_>) {
    if ctx.l9 {
        for h in held.iter() {
            if h.name == lock {
                push_finding(
                    ctx.findings,
                    "L9",
                    ctx.rel,
                    span,
                    format!(
                        "lock `{lock}` re-acquired while already held (acquired at \
                         {}:{}): std::sync::Mutex is not reentrant — this deadlocks",
                        ctx.rel,
                        h.span.start().line
                    ),
                );
            } else {
                ctx.edges.push(EdgeInstance {
                    from: h.name.clone(),
                    from_span: h.span,
                    to: lock.to_string(),
                    to_span: span,
                    file: ctx.rel.to_string(),
                });
            }
        }
    }
    if yields_guard {
        held.push(HeldLock {
            name: lock.to_string(),
            span,
            temp: true,
            var: None,
        });
    }
}

/// Statement end: the first temporary becomes bound (if the statement
/// was a guard-valued `let`), the rest die.
fn end_statement(held: &mut Vec<HeldLock>, stmt_base: usize, binding: Option<String>) {
    let mut bound = binding;
    let mut i = stmt_base;
    while i < held.len() {
        if held[i].temp {
            if let Some(var) = bound.take() {
                held[i].temp = false;
                held[i].var = Some(var);
                i += 1;
            } else {
                held.remove(i);
            }
        } else {
            i += 1;
        }
    }
}

/// `let [mut] v = <acquisition chain> ;` → `Some(v)` when the chain
/// stays guard-valued: the first acquisition followed only by
/// guard-preserving adapters.
fn let_binding(stmt: &[TokenTree], summaries: &BTreeMap<String, ConcSummary>) -> Option<String> {
    let mut j = 0;
    match stmt.first() {
        Some(TokenTree::Ident(id)) if *id == "let" => j += 1,
        _ => return None,
    }
    if matches!(stmt.get(j), Some(TokenTree::Ident(id)) if *id == "mut") {
        j += 1;
    }
    let var = match stmt.get(j) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    if !matches!(stmt.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
        return None;
    }
    let rhs = &stmt[j + 2..];
    // Find the first acquisition in the chain.
    let mut acq_end = None;
    for k in 0..rhs.len() {
        if let TokenTree::Ident(id) = &rhs[k] {
            let called = matches!(
                rhs.get(k + 1),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            );
            if !called {
                continue;
            }
            let is_lock = *id == "lock" && is_method(rhs, k);
            let is_helper = !is_method(rhs, k)
                && summaries
                    .get(&id.to_string())
                    .is_some_and(|s| s.returns_guard);
            if is_lock || is_helper {
                acq_end = Some(k + 2);
                break;
            }
        }
    }
    let mut k = acq_end?;
    // Everything after must be `.adapter(..)` repetitions.
    while k < rhs.len() {
        if !matches!(&rhs[k], TokenTree::Punct(p) if p.as_char() == '.') {
            return None;
        }
        match &rhs[k + 1] {
            TokenTree::Ident(id) if GUARD_ADAPTERS.iter().any(|a| *id == *a) => {}
            _ => return None,
        }
        if !matches!(
            rhs.get(k + 2),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            return None;
        }
        k += 3;
    }
    Some(var)
}

/// Is the call ident at `i` a method call (`recv.name(..)`)?
fn is_method(trees: &[TokenTree], i: usize) -> bool {
    i >= 1 && matches!(&trees[i - 1], TokenTree::Punct(p) if p.as_char() == '.')
}

/// The nominal lock name of a `.lock()` at `i`: the final ident of the
/// receiver chain (`self.link.state.lock()` → `state`).
fn receiver_name(trees: &[TokenTree], i: usize) -> Option<String> {
    if i < 2 {
        return None;
    }
    match &trees[i - 2] {
        TokenTree::Ident(id) => Some(id.to_string()),
        TokenTree::Group(g) => last_ident(g.stream().trees()),
        _ => None,
    }
}

/// Final ident of the first top-level comma-separated argument,
/// skipping `&`/`mut` (so `&link.state` → `state`).
fn first_arg_name(args: &[TokenTree]) -> Option<String> {
    let mut end = args.len();
    for (k, t) in args.iter().enumerate() {
        if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
            end = k;
            break;
        }
    }
    last_ident(&args[..end])
}

fn last_ident(trees: &[TokenTree]) -> Option<String> {
    trees.iter().rev().find_map(|t| match t {
        TokenTree::Ident(id) if *id != "mut" => Some(id.to_string()),
        _ => None,
    })
}

/// L10: `.lock().unwrap()` / `.lock().expect(..)` after the paren
/// group at `i` (the index just past `lock`'s argument group).
fn flag_l10_chain(trees: &[TokenTree], i: usize, lock: &str, ctx: &mut WalkCtx<'_>) {
    if !matches!(trees.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '.') {
        return;
    }
    if let Some(TokenTree::Ident(id)) = trees.get(i + 1) {
        if *id == "unwrap" || *id == "expect" {
            push_finding(
                ctx.findings,
                "L10",
                ctx.rel,
                id.span(),
                format!(
                    "`lock().{id}()` on `{lock}` in a long-lived thread scope panics \
                     on poisoning: recover via a typed path \
                     (`unwrap_or_else(PoisonError::into_inner)` + journal) instead"
                ),
            );
        }
    }
}

/// L12b: is the `try_send` at `i` discarded? Either the statement binds
/// to `_`, or the call is the trailing expression before a `;` in a
/// non-binding statement.
fn discards_result(trees: &[TokenTree], i: usize) -> bool {
    // `let _ = ...try_send(..)...;` — scan back for `let _ =` start.
    let mut k = i;
    while k >= 1 {
        if let TokenTree::Punct(p) = &trees[k - 1] {
            if p.as_char() == ';' {
                break;
            }
        }
        k -= 1;
    }
    if let (Some(TokenTree::Ident(a)), Some(TokenTree::Ident(b))) = (trees.get(k), trees.get(k + 1))
    {
        if *a == "let" && *b == "_" {
            return true;
        }
    }
    // Bare `recv.try_send(..);` — value dropped on the floor.
    let stmt_head_is_consumer = matches!(
        trees.get(k),
        Some(TokenTree::Ident(id)) if *id == "let" || *id == "return" || *id == "break"
    );
    matches!(
        trees.get(i + 2),
        Some(TokenTree::Punct(p)) if p.as_char() == ';'
    ) && !stmt_head_is_consumer
}

// ---------------------------------------------------------------------------
// L12a: unbounded channels
// ---------------------------------------------------------------------------

fn flag_unbounded_channels(rel: &str, fns: &[&syn::ItemFn], findings: &mut Vec<Finding>) {
    fn scan(trees: &[TokenTree], rel: &str, findings: &mut Vec<Finding>) {
        for i in 0..trees.len() {
            match &trees[i] {
                TokenTree::Ident(id)
                    if *id == "channel"
                        && matches!(
                            trees.get(i + 1),
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                        ) =>
                {
                    push_finding(
                        findings,
                        "L12",
                        rel,
                        id.span(),
                        "unbounded `channel()` on a protocol path: use \
                         `sync_channel(depth)` so backpressure is bounded and \
                         overload sheds instead of ballooning memory"
                            .into(),
                    );
                }
                TokenTree::Group(g) => scan(g.stream().trees(), rel, findings),
                _ => {}
            }
        }
    }
    for f in fns {
        if let Some(body) = &f.body {
            scan(body.stream().trees(), rel, findings);
        }
    }
}

// ---------------------------------------------------------------------------
// L9: cycle detection over the crate's order graph
// ---------------------------------------------------------------------------

fn report_order_violations(
    edges: &[EdgeInstance],
    pinned_order: &[String],
    findings: &mut Vec<Finding>,
) {
    // Name-level adjacency and one representative instance per edge.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut rep: BTreeMap<(&str, &str), &EdgeInstance> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        rep.entry((&e.from, &e.to)).or_insert(e);
    }
    let reaches = |from: &str, to: &str| -> Option<Vec<String>> {
        // BFS path from → to over lock names.
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to && (n != from || prev.contains_key(n)) {
                let mut path = vec![to.to_string()];
                let mut cur = to;
                while let Some(p) = prev.get(cur) {
                    path.push((*p).to_string());
                    if *p == from {
                        break;
                    }
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for next in adj.get(n).into_iter().flatten() {
                if seen.insert(next) || (*next == to && *next == from) {
                    prev.entry(next).or_insert(n);
                    if *next == to {
                        queue.push_front(next);
                    } else {
                        queue.push_back(next);
                    }
                }
            }
        }
        None
    };
    for e in edges {
        // Cycle: the reverse direction is also reachable.
        if let Some(path) = reaches(&e.to, &e.from) {
            let witness_to = path.get(1).map_or(e.from.as_str(), String::as_str);
            let w = rep
                .get(&(e.to.as_str(), witness_to))
                .unwrap_or(&rep[&(e.from.as_str(), e.to.as_str())]);
            push_finding(
                findings,
                "L9",
                &e.file,
                e.to_span,
                format!(
                    "lock-order cycle: `{}` acquired while holding `{}` (held since \
                     {}:{}), but the reverse order `{}` → `{}` is taken at {}:{} — \
                     two threads interleaving these deadlock",
                    e.to,
                    e.from,
                    e.file,
                    e.from_span.start().line,
                    e.to,
                    witness_to,
                    w.file,
                    w.to_span.start().line
                ),
            );
        } else if let (Some(fi), Some(ti)) = (
            pinned_order.iter().position(|l| *l == e.from),
            pinned_order.iter().position(|l| *l == e.to),
        ) {
            // No observed cycle, but the configured global order is
            // violated — the other half of the cycle may live in code
            // this lint cannot see (another crate, a future PR).
            if fi > ti {
                push_finding(
                    findings,
                    "L9",
                    &e.file,
                    e.to_span,
                    format!(
                        "acquisition order `{}` → `{}` violates the configured lock \
                         order ({}): acquire `{}` first or split the critical section",
                        e.from,
                        e.to,
                        pinned_order.join(" < "),
                        e.to
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all(file: &str) -> Config {
        Config {
            l9_crates: vec!["crates/x".into()],
            l11_crates: vec!["crates/x".into()],
            l12_crates: vec!["crates/x".into()],
            l10_scopes: vec![crate::config::L2Scope {
                file: file.into(),
                functions: vec!["*".into()],
            }],
            l12_scopes: vec![crate::config::L2Scope {
                file: file.into(),
                functions: vec!["*".into()],
            }],
            ..Config::default()
        }
    }

    fn run(src: &str) -> Vec<(String, usize, usize)> {
        run_multi(&[("crates/x/src/a.rs", src)])
    }

    fn run_multi(files: &[(&str, &str)]) -> Vec<(String, usize, usize)> {
        let parsed: Vec<(String, syn::File)> = files
            .iter()
            .map(|(rel, src)| ((*rel).to_string(), syn::parse_file(src).expect("parses")))
            .collect();
        let cfg = cfg_all(files[0].0);
        let mut found: Vec<(String, usize, usize)> = scan_conc(&parsed, &cfg)
            .into_iter()
            .map(|f| (f.rule, f.line, f.col))
            .collect();
        found.sort();
        found
    }

    #[test]
    fn l9_two_lock_cycle_is_reported_at_both_sites() {
        let src = "\
fn ab(a: M, b: M) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    use_both(ga, gb);
}
fn ba(a: M, b: M) {
    let gb = b.lock().unwrap();
    let ga = a.lock().unwrap();
    use_both(ga, gb);
}
";
        let found = run(src);
        let l9: Vec<_> = found.iter().filter(|(r, _, _)| r == "L9").collect();
        assert_eq!(l9.len(), 2, "{found:?}");
        assert_eq!(*l9[0], ("L9".to_string(), 3, 15));
        assert_eq!(*l9[1], ("L9".to_string(), 8, 15));
    }

    #[test]
    fn l9_consistent_order_is_clean() {
        let src = "\
fn f(a: M, b: M) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    use_both(ga, gb);
}
fn g(a: M, b: M) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    use_both(ga, gb);
}
";
        assert!(run(src).iter().all(|(r, _, _)| r != "L9"));
    }

    #[test]
    fn l9_reacquire_while_held_is_a_self_deadlock() {
        let src = "\
fn f(a: M) {
    let g = a.lock().unwrap();
    let h = a.lock().unwrap();
    use_both(g, h);
}
";
        let found = run(src);
        assert!(
            found.contains(&("L9".to_string(), 3, 14)),
            "{found:?}"
        );
    }

    #[test]
    fn guards_die_at_block_end_and_statement_end() {
        let src = "\
fn f(a: M, b: M) {
    { let ga = a.lock().unwrap(); use_it(ga); }
    let gb = b.lock().unwrap();
    use_it(gb);
}
fn g(a: M, b: M) {
    a.lock().unwrap().poke();
    let gb = b.lock().unwrap();
    let ga = a.lock().unwrap();
    use_both(ga, gb);
}
";
        // f: a dies at block end → no a→b edge. g: temp a dies at `;`
        // → only b→a edge. No cycle anywhere.
        assert!(run(src).iter().all(|(r, _, _)| r != "L9"));
    }

    #[test]
    fn clone_snapshot_does_not_bind_a_guard() {
        let src = "\
fn f(a: M, rx: R) {
    let snap = a.lock().unwrap().clone();
    let v = rx.recv();
    use_both(snap, v);
}
";
        assert!(run(src).iter().all(|(r, _, _)| r != "L11"));
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "\
fn f(a: M, rx: R) {
    let g = a.lock().unwrap();
    use_it(g);
    drop(g);
    let v = rx.recv();
    consume(v);
}
";
        assert!(run(src).iter().all(|(r, _, _)| r != "L11"));
    }

    #[test]
    fn l11_blocking_under_guard_is_flagged() {
        let src = "\
fn f(a: M, rx: R) {
    let g = a.lock().unwrap();
    let v = rx.recv();
    use_both(g, v);
}
";
        let found = run(src);
        assert!(found.contains(&("L11".to_string(), 3, 15)), "{found:?}");
    }

    #[test]
    fn l11_sees_blocking_through_a_cross_file_helper() {
        let a = "\
fn event_loop(state: M, s: S) {
    let g = state.lock().unwrap();
    ship(s, g.frame());
}
";
        let b = "\
fn ship(s: S, frame: F) {
    s.write_all(frame).ok();
}
";
        let found = run_multi(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        assert!(found.contains(&("L11".to_string(), 3, 4)), "{found:?}");
    }

    #[test]
    fn l9_sees_acquisition_through_param_helper_across_files() {
        let a = "\
fn lock_state(m: M) -> MutexGuard<S> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
";
        let b = "\
fn f(alpha: M, beta: M) {
    let ga = lock_state(&alpha);
    let gb = lock_state(&beta);
    use_both(ga, gb);
}
fn g(alpha: M, beta: M) {
    let gb = lock_state(&beta);
    let ga = lock_state(&alpha);
    use_both(ga, gb);
}
";
        let found = run_multi(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        let l9: Vec<_> = found.iter().filter(|(r, _, _)| r == "L9").collect();
        assert_eq!(l9.len(), 2, "{found:?}");
    }

    #[test]
    fn l10_flags_unwrap_and_expect_but_not_typed_recovery() {
        let src = "\
fn f(a: M) {
    let g1 = a.lock().unwrap();
    let g2 = a.lock().expect(\"poisoned\");
    let g3 = a.lock().unwrap_or_else(PoisonError::into_inner);
    use_all(g1, g2, g3);
}
";
        let found = run(src);
        let l10: Vec<_> = found.iter().filter(|(r, _, _)| r == "L10").collect();
        assert_eq!(l10.len(), 2, "{found:?}");
        assert_eq!(*l10[0], ("L10".to_string(), 2, 22));
        assert_eq!(*l10[1], ("L10".to_string(), 3, 22));
    }

    #[test]
    fn l12_flags_unbounded_channel_and_blocking_send() {
        let src = "\
fn f(tx: T) {
    let (a, b) = mpsc::channel();
    tx.send(msg).unwrap();
    consume(a, b);
}
";
        let found = run(src);
        assert!(found.contains(&("L12".to_string(), 2, 23)), "{found:?}");
        assert!(found.contains(&("L12".to_string(), 3, 7)), "{found:?}");
    }

    #[test]
    fn l12_discarded_try_send_flagged_handled_is_clean() {
        let src = "\
fn f(tx: T) {
    let _ = tx.try_send(a);
    tx.try_send(b);
    match tx.try_send(c) {
        Ok(()) => {}
        Err(e) => shed(e),
    }
}
";
        let found = run(src);
        let l12: Vec<_> = found.iter().filter(|(r, _, _)| r == "L12").collect();
        assert_eq!(l12.len(), 2, "{found:?}");
    }

    #[test]
    fn spawned_closures_get_a_fresh_held_set_and_no_hot_path_rules() {
        let src = "\
fn f(a: M, tx: T) {
    let g = a.lock().unwrap();
    thread::spawn(move || loop {
        tx.send(Tick).ok();
        thread::sleep(D);
    });
    use_it(g);
}
";
        // The sleep/send inside the spawned closure are on another
        // thread: no L11 (guard not held there), no L12 (not hot path).
        let found = run(src);
        assert!(found.iter().all(|(r, _, _)| r != "L11" && r != "L12"), "{found:?}");
    }

    #[test]
    fn match_scrutinee_guard_held_through_arms() {
        let src = "\
fn f(a: M, rx: R) {
    match a.lock().unwrap().kind {
        K::One => rx.recv(),
        K::Two => other(),
    };
}
";
        let found = run(src);
        assert!(found.iter().any(|(r, l, _)| r == "L11" && *l == 3), "{found:?}");
    }

    #[test]
    fn pinned_order_violation_without_cycle() {
        let parsed = vec![(
            "crates/x/src/a.rs".to_string(),
            syn::parse_file(
                "fn f(state: M, clients: M) {\n    let gc = clients.lock().unwrap();\n    let gs = state.lock().unwrap();\n    use_both(gc, gs);\n}\n",
            )
            .expect("parses"),
        )];
        let cfg = Config {
            l9_crates: vec!["crates/x".into()],
            l9_locks: vec!["state".into(), "clients".into()],
            ..Config::default()
        };
        let found = scan_conc(&parsed, &cfg);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "L9");
        assert_eq!(found[0].line, 3);
        assert!(found[0].msg.contains("configured lock order"));
    }

    #[test]
    fn summaries_propagate_blocking_transitively() {
        let files = [
            (
                "crates/x/src/a.rs".to_string(),
                syn::parse_file("fn low(s: S) { s.flush(); }").expect("parses"),
            ),
            (
                "crates/x/src/b.rs".to_string(),
                syn::parse_file("fn mid(s: S) { low(s); }\nfn top(s: S) { mid(s); }")
                    .expect("parses"),
            ),
        ];
        let group: Vec<&(String, syn::File)> = files.iter().collect();
        let blocking: BTreeSet<String> = ["flush".to_string()].into_iter().collect();
        let s = summarize_crate(&group, &blocking);
        assert!(s["low"].blocks);
        assert!(s["mid"].blocks);
        assert!(s["top"].blocks);
    }

    #[test]
    fn spawn_does_not_leak_blocking_into_the_caller_summary() {
        let files = [(
            "crates/x/src/a.rs".to_string(),
            syn::parse_file("fn f(tx: T) { thread::spawn(move || { tx.send(0); }); }")
                .expect("parses"),
        )];
        let group: Vec<&(String, syn::File)> = files.iter().collect();
        let blocking: BTreeSet<String> = ["send".to_string()].into_iter().collect();
        let s = summarize_crate(&group, &blocking);
        assert!(!s["f"].blocks);
    }
}
