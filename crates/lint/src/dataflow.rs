//! Fixpoint dataflow over [`crate::cfg::Cfg`].
//!
//! Two analyses, both forward:
//!
//! * **must-reach** ([`must_forward`]): a fact (a guard call) reaches a
//!   node iff it was generated on *every* path from entry. Join is set
//!   intersection over predecessors; the lattice is the powerset of all
//!   facts generated anywhere in the function, ordered by `⊇` with the
//!   full universe as ⊤ (so back edges in loops do not spuriously kill
//!   facts established before the loop).
//! * **may-taint** ([`may_forward`]): a variable is tainted at a node
//!   iff it *may* carry a banned value on some path. Join is map union
//!   over predecessors; the per-variable origin is the first source
//!   seen (deterministic because node transfer order is fixed).
//!
//! Both iterate to a fixpoint with a worklist-free full sweep — the
//! CFGs here are tiny (a function body), so simplicity wins.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{Cfg, ENTRY};

/// Runs the must-reach analysis. `gen[i]` is the set of facts node `i`
/// generates; the result `r[i]` is the set of facts guaranteed to have
/// been generated on every path from entry **before** node `i` runs
/// (its IN set — node `i`'s own facts are not included).
#[must_use]
pub fn must_forward(cfg: &Cfg, gen: &[BTreeSet<String>]) -> Vec<BTreeSet<String>> {
    let universe: BTreeSet<String> = gen.iter().flatten().cloned().collect();
    let preds = cfg.preds();
    let n = cfg.nodes.len();
    let mut ins: Vec<BTreeSet<String>> = vec![universe; n];
    ins[ENTRY] = BTreeSet::new();
    loop {
        let mut changed = false;
        for i in 0..n {
            if i == ENTRY {
                continue;
            }
            let mut new_in: Option<BTreeSet<String>> = None;
            for &p in &preds[i] {
                let mut out = ins[p].clone();
                out.extend(gen[p].iter().cloned());
                new_in = Some(match new_in {
                    None => out,
                    Some(acc) => acc.intersection(&out).cloned().collect(),
                });
            }
            let new_in = new_in.unwrap_or_default();
            if new_in != ins[i] {
                ins[i] = new_in;
                changed = true;
            }
        }
        if !changed {
            return ins;
        }
    }
}

/// Taint state at a program point: variable name → origin description.
pub type Taint = BTreeMap<String, String>;

/// Runs the may-taint analysis. `transfer(i, in_map)` computes node
/// `i`'s OUT map from its IN map (taint new bindings, kill overwritten
/// ones). The result `r[i]` is node `i`'s IN map.
#[must_use]
pub fn may_forward(cfg: &Cfg, transfer: &dyn Fn(usize, &Taint) -> Taint) -> Vec<Taint> {
    let preds = cfg.preds();
    let n = cfg.nodes.len();
    let mut ins: Vec<Taint> = vec![Taint::new(); n];
    loop {
        let mut changed = false;
        for i in 0..n {
            if i == ENTRY {
                continue;
            }
            let mut new_in = Taint::new();
            for &p in &preds[i] {
                let out = transfer(p, &ins[p]);
                for (k, v) in out {
                    new_in.entry(k).or_insert(v);
                }
            }
            if new_in != ins[i] {
                ins[i] = new_in;
                changed = true;
            }
        }
        if !changed {
            return ins;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{self, EXIT};
    use proc_macro2::TokenTree;

    fn cfg_of(src: &str) -> Cfg {
        let file = syn::parse_file(src).expect("parses");
        match &file.items[0] {
            syn::Item::Fn(f) => cfg::build(f.body.as_ref().expect("body")),
            other => panic!("expected fn, got {other:?}"),
        }
    }

    /// gen = {"g"} at every node whose tokens mention the ident `guard`.
    fn guard_gen(cfg: &Cfg) -> Vec<BTreeSet<String>> {
        cfg.nodes
            .iter()
            .map(|n| {
                let mut s = BTreeSet::new();
                fn mentions(trees: &[TokenTree]) -> bool {
                    trees.iter().any(|tt| match tt {
                        TokenTree::Ident(i) => *i == "guard",
                        TokenTree::Group(g) => mentions(g.stream().trees()),
                        _ => false,
                    })
                }
                if mentions(&n.tokens) {
                    s.insert("g".into());
                }
                s
            })
            .collect()
    }

    #[test]
    fn guard_on_all_paths_reaches_exit() {
        let cfg = cfg_of("fn f() { guard(); mutate(); }");
        let ins = must_forward(&cfg, &guard_gen(&cfg));
        assert!(ins[EXIT].contains("g"));
    }

    #[test]
    fn guard_in_one_branch_does_not_reach_join() {
        let cfg = cfg_of("fn f() { if c() { guard(); } mutate(); }");
        let ins = must_forward(&cfg, &guard_gen(&cfg));
        let mutate = cfg
            .nodes
            .iter()
            .position(|n| {
                n.tokens
                    .first()
                    .is_some_and(|t| matches!(t, TokenTree::Ident(i) if *i == "mutate"))
            })
            .expect("mutate node");
        assert!(ins[mutate].is_empty());
    }

    #[test]
    fn guard_in_both_branches_reaches_join() {
        let cfg = cfg_of("fn f() { if c() { guard(); } else { guard(); } mutate(); }");
        let ins = must_forward(&cfg, &guard_gen(&cfg));
        let mutate = cfg.nodes.len() - 1;
        assert!(ins[mutate].contains("g"));
    }

    #[test]
    fn loop_back_edge_keeps_pre_loop_facts() {
        let cfg = cfg_of("fn f() { guard(); while c() { body(); } mutate(); }");
        let ins = must_forward(&cfg, &guard_gen(&cfg));
        let mutate = cfg.nodes.len() - 1;
        assert!(ins[mutate].contains("g"));
    }

    #[test]
    fn may_taint_unions_branches() {
        let cfg = cfg_of("fn f() { if c() { let x = rng(); } use_(x); }");
        // Transfer: a node whose text contains `rng` taints "x".
        let transfer = |i: usize, m: &Taint| {
            let mut out = m.clone();
            let text: String = cfg.nodes[i]
                .tokens
                .iter()
                .cloned()
                .collect::<proc_macro2::TokenStream>()
                .to_string();
            if text.contains("rng") {
                out.insert("x".into(), "rng".into());
            }
            out
        };
        let ins = may_forward(&cfg, &transfer);
        let use_node = cfg.nodes.len() - 1;
        assert_eq!(ins[use_node].get("x").map(String::as_str), Some("rng"));
    }
}
