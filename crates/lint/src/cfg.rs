//! Per-function control-flow graphs over the token trees the vendored
//! `syn` stand-in produces.
//!
//! The item parser keeps function bodies as raw token streams; this
//! module recovers just enough structure for dataflow: statements split
//! on top-level `;`, `if`/`else if`/`else` chains, `match` arms,
//! `while`/`for`/`loop` with back edges, bare blocks, and the early
//! exits `return`, `break`, `continue`, and the `?` operator (modeled
//! as an extra edge to the exit node).
//!
//! Known, deliberate imprecision (documented in DESIGN.md §10):
//!
//! * A brace group inside an `if`/`while`/`match` header is taken for
//!   the body unless the next token is `=` (which covers
//!   `if let Foo { .. } = x { .. }` struct patterns).
//! * Expressions inside one statement are flat: `let x = if c { a() }
//!   else { b() };` is a single node, so facts generated in one branch
//!   of an expression-position `if` apply unconditionally. For the
//!   must-reach analysis that only *adds* facts (fewer findings, never
//!   unsound extra ones at the statement level the rules check); for
//!   taint it *over*-taints, the conservative direction.
//! * Nested `fn`/`struct`/`impl` items inside a body become opaque
//!   single nodes and are not analyzed.

use proc_macro2::{Delimiter, Group, Span, TokenTree};

/// Index of the synthetic entry node.
pub const ENTRY: usize = 0;
/// Index of the synthetic exit node.
pub const EXIT: usize = 1;

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic function entry.
    Entry,
    /// The synthetic function exit (normal return, `?`, and `return`
    /// all lead here).
    Exit,
    /// One statement.
    Stmt,
    /// A branch header: an `if`/`while` condition, `for` header,
    /// `match` scrutinee, or `match` arm pattern.
    Cond,
}

/// Which construct a [`NodeKind::Cond`] node heads. Statement nodes
/// carry [`BranchRole::None`]. The guarded-command extractor
/// (`crate::gcir`) uses this to give branch polarity a meaning:
/// an `If`/`While` cond's first successor is its true branch, a
/// `MatchScrutinee`'s successors are its arm patterns, and taking a
/// `MatchArm` edge means that pattern matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchRole {
    /// Not a branch header.
    None,
    /// An `if`/`else if` condition.
    If,
    /// A `while`/`while let` condition.
    While,
    /// A `for` loop header.
    For,
    /// The synthetic head of a `loop`.
    LoopHead,
    /// A `match` scrutinee.
    MatchScrutinee,
    /// One `match` arm's pattern (plus any `if` guard).
    MatchArm,
}

/// One CFG node: a statement or branch header with its tokens.
#[derive(Debug, Clone)]
pub struct Node {
    /// What the node represents.
    pub kind: NodeKind,
    /// Which construct a `Cond` node heads.
    pub role: BranchRole,
    /// The node's tokens (empty for entry/exit and `loop` headers).
    pub tokens: Vec<TokenTree>,
    /// Span of the first token, if any.
    pub span: Option<Span>,
    /// Successor node indices.
    pub succs: Vec<usize>,
    /// Whether the statement ended with `;` (a tail expression or arm
    /// body does not — its value is consumed by the surrounding block).
    pub has_semi: bool,
    /// Whether the statement is a `return`.
    pub is_return: bool,
}

/// A function body's control-flow graph. Node 0 is [`ENTRY`], node 1 is
/// [`EXIT`]; every path from entry reaches exit.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; edges are stored as successor lists.
    pub nodes: Vec<Node>,
}

impl Cfg {
    /// Predecessor lists, derived from the successor lists.
    #[must_use]
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &s in &n.succs {
                preds[s].push(i);
            }
        }
        preds
    }
}

/// Builds the CFG for one function body.
#[must_use]
pub fn build(body: &Group) -> Cfg {
    let mut b = Builder {
        nodes: vec![
            Node {
                kind: NodeKind::Entry,
                role: BranchRole::None,
                tokens: Vec::new(),
                span: None,
                succs: Vec::new(),
                has_semi: false,
                is_return: false,
            },
            Node {
                kind: NodeKind::Exit,
                role: BranchRole::None,
                tokens: Vec::new(),
                span: None,
                succs: Vec::new(),
                has_semi: false,
                is_return: false,
            },
        ],
        loops: Vec::new(),
    };
    let frontier = b.lower_block(body.stream().trees(), vec![ENTRY]);
    for n in frontier {
        b.edge(n, EXIT);
    }
    Cfg { nodes: b.nodes }
}

// ---------------------------------------------------------------------------
// Statement splitting
// ---------------------------------------------------------------------------

enum Stmt<'a> {
    Simple {
        tokens: &'a [TokenTree],
        has_semi: bool,
    },
    If {
        chain: Vec<(&'a [TokenTree], &'a Group)>,
        else_block: Option<&'a Group>,
    },
    Match {
        scrutinee: &'a [TokenTree],
        arms: Vec<Arm<'a>>,
    },
    While {
        cond: &'a [TokenTree],
        body: &'a Group,
    },
    For {
        header: &'a [TokenTree],
        body: &'a Group,
    },
    Loop {
        body: &'a Group,
    },
    Block {
        body: &'a Group,
    },
}

struct Arm<'a> {
    pattern: &'a [TokenTree],
    body: ArmBody<'a>,
}

enum ArmBody<'a> {
    Block(&'a Group),
    Expr(&'a [TokenTree]),
}

fn ident_is(tt: Option<&TokenTree>, s: &str) -> bool {
    matches!(tt, Some(TokenTree::Ident(i)) if *i == s)
}

fn punct_is(tt: Option<&TokenTree>, c: char) -> bool {
    matches!(tt, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn brace_at(trees: &[TokenTree], i: usize) -> Option<&Group> {
    match trees.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Some(g),
        _ => None,
    }
}

/// Nested items that may carry a brace body of their own; consumed as a
/// single opaque statement.
const NESTED_ITEM_KEYWORDS: &[&str] =
    &["fn", "struct", "enum", "impl", "mod", "trait", "union", "macro_rules"];

/// Collects header tokens until the body's brace group. A brace group
/// followed by `=` belongs to a struct *pattern* (`if let Foo { .. } =
/// x { .. }`) and stays in the header.
fn header_until_brace(trees: &[TokenTree], mut i: usize) -> (usize, usize) {
    let start = i;
    while i < trees.len() {
        if brace_at(trees, i).is_some() && !punct_is(trees.get(i + 1), '=') {
            return (start, i);
        }
        i += 1;
    }
    (start, i)
}

fn split_statements<'a>(trees: &'a [TokenTree]) -> Vec<Stmt<'a>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Ident(id) if *id == "if" => {
                let (stmt, next) = parse_if(trees, i);
                out.push(stmt);
                i = next;
            }
            TokenTree::Ident(id) if *id == "match" => {
                let (hs, he) = header_until_brace(trees, i + 1);
                if let Some(g) = brace_at(trees, he) {
                    out.push(Stmt::Match {
                        scrutinee: &trees[hs..he],
                        arms: parse_arms(g.stream().trees()),
                    });
                    i = he + 1;
                    // An expression-position `match` used as a statement
                    // may carry a trailing `;`.
                    if punct_is(trees.get(i), ';') {
                        i += 1;
                    }
                } else {
                    i = consume_simple(trees, i, &mut out);
                }
            }
            TokenTree::Ident(id) if *id == "while" => {
                let (hs, he) = header_until_brace(trees, i + 1);
                if let Some(g) = brace_at(trees, he) {
                    out.push(Stmt::While {
                        cond: &trees[hs..he],
                        body: g,
                    });
                    i = he + 1;
                } else {
                    i = consume_simple(trees, i, &mut out);
                }
            }
            TokenTree::Ident(id) if *id == "for" => {
                let (hs, he) = header_until_brace(trees, i + 1);
                if let Some(g) = brace_at(trees, he) {
                    out.push(Stmt::For {
                        header: &trees[hs..he],
                        body: g,
                    });
                    i = he + 1;
                } else {
                    i = consume_simple(trees, i, &mut out);
                }
            }
            TokenTree::Ident(id) if *id == "loop" => {
                if let Some(g) = brace_at(trees, i + 1) {
                    out.push(Stmt::Loop { body: g });
                    i += 2;
                } else {
                    i = consume_simple(trees, i, &mut out);
                }
            }
            TokenTree::Ident(id) if *id == "unsafe" && brace_at(trees, i + 1).is_some() => {
                out.push(Stmt::Block {
                    body: brace_at(trees, i + 1).expect("checked"),
                });
                i += 2;
            }
            TokenTree::Ident(id) if NESTED_ITEM_KEYWORDS.iter().any(|k| *id == **k) => {
                // A nested item: opaque. Consume through its brace body
                // (or terminating `;`).
                let start = i;
                while i < trees.len() {
                    if punct_is(trees.get(i), ';') {
                        i += 1;
                        break;
                    }
                    if brace_at(trees, i).is_some() {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                out.push(Stmt::Simple {
                    tokens: &trees[start..i],
                    has_semi: true,
                });
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                out.push(Stmt::Block { body: g });
                i += 1;
                if punct_is(trees.get(i), ';') {
                    i += 1;
                }
            }
            _ => {
                i = consume_simple(trees, i, &mut out);
            }
        }
    }
    out
}

/// Consumes a plain statement: tokens up to a top-level `;` (exclusive)
/// or the end of the block (a tail expression).
fn consume_simple<'a>(trees: &'a [TokenTree], start: usize, out: &mut Vec<Stmt<'a>>) -> usize {
    let mut i = start;
    while i < trees.len() {
        if punct_is(trees.get(i), ';') {
            out.push(Stmt::Simple {
                tokens: &trees[start..i],
                has_semi: true,
            });
            return i + 1;
        }
        i += 1;
    }
    out.push(Stmt::Simple {
        tokens: &trees[start..],
        has_semi: false,
    });
    i
}

fn parse_if<'a>(trees: &'a [TokenTree], mut i: usize) -> (Stmt<'a>, usize) {
    let mut chain = Vec::new();
    loop {
        // `i` is at the `if` keyword.
        let (hs, he) = header_until_brace(trees, i + 1);
        let Some(then) = brace_at(trees, he) else {
            // Malformed / macro fragment: fall back to one opaque node.
            let mut out = Vec::new();
            let next = consume_simple(trees, i, &mut out);
            let Some(Stmt::Simple { tokens, has_semi }) = out.pop() else {
                unreachable!("consume_simple pushes exactly one Simple");
            };
            return (Stmt::Simple { tokens, has_semi }, next);
        };
        chain.push((&trees[hs..he], then));
        i = he + 1;
        if !ident_is(trees.get(i), "else") {
            return (
                Stmt::If {
                    chain,
                    else_block: None,
                },
                i,
            );
        }
        i += 1; // `else`
        if ident_is(trees.get(i), "if") {
            continue;
        }
        let else_block = brace_at(trees, i);
        let next = if else_block.is_some() { i + 1 } else { i };
        return (Stmt::If { chain, else_block }, next);
    }
}

/// Splits a `match` body into arms: `pattern => body` where the body is
/// a brace block (optionally comma-terminated) or an expression up to a
/// top-level comma.
fn parse_arms<'a>(trees: &'a [TokenTree]) -> Vec<Arm<'a>> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        // Skip arm attributes (`#[cfg(...)]` on an arm is rare but legal).
        while punct_is(trees.get(i), '#') && trees.get(i + 1).is_some() {
            i += 2;
        }
        let pat_start = i;
        // Pattern (plus any `if` guard) runs to the `=>`.
        while i < trees.len() && !(punct_is(trees.get(i), '=') && punct_is(trees.get(i + 1), '>'))
        {
            i += 1;
        }
        if i >= trees.len() {
            break;
        }
        let pattern = &trees[pat_start..i];
        i += 2; // `=>`
        if let Some(g) = brace_at(trees, i) {
            arms.push(Arm {
                pattern,
                body: ArmBody::Block(g),
            });
            i += 1;
            if punct_is(trees.get(i), ',') {
                i += 1;
            }
        } else {
            let body_start = i;
            while i < trees.len() && !punct_is(trees.get(i), ',') {
                i += 1;
            }
            arms.push(Arm {
                pattern,
                body: ArmBody::Expr(&trees[body_start..i]),
            });
            if punct_is(trees.get(i), ',') {
                i += 1;
            }
        }
    }
    arms
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

struct LoopCtx {
    head: usize,
    breaks: Vec<usize>,
}

struct Builder {
    nodes: Vec<Node>,
    loops: Vec<LoopCtx>,
}

enum Term {
    None,
    Return,
    Break,
    Continue,
}

fn leading_term(tokens: &[TokenTree]) -> Term {
    match tokens.first() {
        Some(TokenTree::Ident(i)) if *i == "return" => Term::Return,
        Some(TokenTree::Ident(i)) if *i == "break" => Term::Break,
        Some(TokenTree::Ident(i)) if *i == "continue" => Term::Continue,
        _ => Term::None,
    }
}

/// Whether the tokens contain a `?` operator anywhere (groups included).
pub(crate) fn contains_question(tokens: &[TokenTree]) -> bool {
    tokens.iter().any(|tt| match tt {
        TokenTree::Punct(p) => p.as_char() == '?',
        TokenTree::Group(g) => contains_question(g.stream().trees()),
        _ => false,
    })
}

impl Builder {
    fn edge(&mut self, from: usize, to: usize) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
        }
    }

    fn node(
        &mut self,
        kind: NodeKind,
        role: BranchRole,
        tokens: Vec<TokenTree>,
        has_semi: bool,
    ) -> usize {
        let span = tokens.first().map(TokenTree::span);
        let is_return = matches!(leading_term(&tokens), Term::Return);
        self.nodes.push(Node {
            kind,
            role,
            tokens,
            span,
            succs: Vec::new(),
            has_semi,
            is_return,
        });
        self.nodes.len() - 1
    }

    fn connect(&mut self, preds: &[usize], to: usize) {
        for &p in preds {
            self.edge(p, to);
        }
    }

    /// Lowers a statement's tokens into one node and wires its early
    /// exits; returns the fall-through frontier.
    fn lower_simple(&mut self, tokens: &[TokenTree], has_semi: bool, preds: &[usize]) -> Vec<usize> {
        let n = self.node(NodeKind::Stmt, BranchRole::None, tokens.to_vec(), has_semi);
        self.connect(preds, n);
        if contains_question(tokens) {
            self.edge(n, EXIT);
        }
        match leading_term(tokens) {
            Term::Return => {
                self.edge(n, EXIT);
                Vec::new()
            }
            Term::Break => {
                match self.loops.last_mut() {
                    Some(l) => l.breaks.push(n),
                    None => self.edge(n, EXIT),
                }
                Vec::new()
            }
            Term::Continue => {
                let head = self.loops.last().map(|l| l.head);
                match head {
                    Some(h) => self.edge(n, h),
                    None => self.edge(n, EXIT),
                }
                Vec::new()
            }
            Term::None => vec![n],
        }
    }

    fn cond_node(&mut self, tokens: &[TokenTree], role: BranchRole, preds: &[usize]) -> usize {
        let c = self.node(NodeKind::Cond, role, tokens.to_vec(), false);
        self.connect(preds, c);
        if contains_question(tokens) {
            self.edge(c, EXIT);
        }
        c
    }

    fn lower_group(&mut self, g: &Group, preds: Vec<usize>) -> Vec<usize> {
        self.lower_block(g.stream().trees(), preds)
    }

    fn lower_block(&mut self, trees: &[TokenTree], mut frontier: Vec<usize>) -> Vec<usize> {
        for stmt in split_statements(trees) {
            if frontier.is_empty() {
                // Unreachable code after return/break/continue: stop.
                break;
            }
            frontier = self.lower_stmt(&stmt, frontier);
        }
        frontier
    }

    fn lower_stmt(&mut self, stmt: &Stmt<'_>, frontier: Vec<usize>) -> Vec<usize> {
        match stmt {
            Stmt::Simple { tokens, has_semi } => self.lower_simple(tokens, *has_semi, &frontier),
            Stmt::Block { body } => self.lower_group(body, frontier),
            Stmt::If { chain, else_block } => {
                let mut merged = Vec::new();
                let mut cur = frontier;
                for (cond, then) in chain {
                    let c = self.cond_node(cond, BranchRole::If, &cur);
                    merged.extend(self.lower_group(then, vec![c]));
                    cur = vec![c];
                }
                match else_block {
                    Some(g) => merged.extend(self.lower_group(g, cur)),
                    None => merged.extend(cur),
                }
                merged
            }
            Stmt::Match { scrutinee, arms } => {
                let s = self.cond_node(scrutinee, BranchRole::MatchScrutinee, &frontier);
                let mut merged = Vec::new();
                for arm in arms {
                    let p = self.cond_node(arm.pattern, BranchRole::MatchArm, &[s]);
                    match &arm.body {
                        ArmBody::Block(g) => merged.extend(self.lower_group(g, vec![p])),
                        ArmBody::Expr(tokens) => {
                            merged.extend(self.lower_simple(tokens, false, &[p]));
                        }
                    }
                }
                if arms.is_empty() {
                    merged.push(s);
                }
                merged
            }
            Stmt::While { cond, body } => {
                let c = self.cond_node(cond, BranchRole::While, &frontier);
                self.loops.push(LoopCtx {
                    head: c,
                    breaks: Vec::new(),
                });
                let ends = self.lower_group(body, vec![c]);
                for e in ends {
                    self.edge(e, c);
                }
                let ctx = self.loops.pop().expect("pushed above");
                let mut out = vec![c];
                out.extend(ctx.breaks);
                out
            }
            Stmt::For { header, body } => {
                let h = self.cond_node(header, BranchRole::For, &frontier);
                self.loops.push(LoopCtx {
                    head: h,
                    breaks: Vec::new(),
                });
                let ends = self.lower_group(body, vec![h]);
                for e in ends {
                    self.edge(e, h);
                }
                let ctx = self.loops.pop().expect("pushed above");
                let mut out = vec![h];
                out.extend(ctx.breaks);
                out
            }
            Stmt::Loop { body } => {
                let h = self.node(NodeKind::Cond, BranchRole::LoopHead, Vec::new(), false);
                self.connect(&frontier, h);
                self.loops.push(LoopCtx {
                    head: h,
                    breaks: Vec::new(),
                });
                let ends = self.lower_group(body, vec![h]);
                for e in ends {
                    self.edge(e, h);
                }
                let ctx = self.loops.pop().expect("pushed above");
                // A `loop` only exits through `break` (or `return`/`?`,
                // which bypass the frontier entirely).
                ctx.breaks
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body_of(src: &str) -> Group {
        let file = syn::parse_file(src).expect("parses");
        match &file.items[0] {
            syn::Item::Fn(f) => f.body.clone().expect("has body"),
            other => panic!("expected fn, got {other:?}"),
        }
    }

    fn cfg_of(src: &str) -> Cfg {
        build(&body_of(src))
    }

    fn node_text(cfg: &Cfg, i: usize) -> String {
        cfg.nodes[i]
            .tokens
            .iter()
            .cloned()
            .collect::<proc_macro2::TokenStream>()
            .to_string()
    }

    #[test]
    fn straight_line_chains_statements() {
        let cfg = cfg_of("fn f() { a(); b(); c() }");
        // entry, exit, three statements
        assert_eq!(cfg.nodes.len(), 5);
        assert_eq!(cfg.nodes[ENTRY].succs, vec![2]);
        assert_eq!(cfg.nodes[2].succs, vec![3]);
        assert_eq!(cfg.nodes[3].succs, vec![4]);
        assert_eq!(cfg.nodes[4].succs, vec![EXIT]);
        assert!(cfg.nodes[2].has_semi && !cfg.nodes[4].has_semi);
    }

    #[test]
    fn if_without_else_falls_through() {
        let cfg = cfg_of("fn f() { if c() { a(); } b(); }");
        // entry, exit, cond, a, b
        let cond = 2;
        let a = 3;
        let b = 4;
        assert_eq!(cfg.nodes[cond].kind, NodeKind::Cond);
        assert_eq!(cfg.nodes[cond].succs, vec![a, b]);
        assert_eq!(cfg.nodes[a].succs, vec![b]);
        assert_eq!(cfg.nodes[b].succs, vec![EXIT]);
    }

    #[test]
    fn if_else_chain_joins() {
        let cfg = cfg_of("fn f() { if c1() { a(); } else if c2() { b(); } else { d(); } e(); }");
        let (c1, a, c2, b, d, e) = (2, 3, 4, 5, 6, 7);
        assert_eq!(cfg.nodes[c1].succs, vec![a, c2]);
        assert_eq!(cfg.nodes[c2].succs, vec![b, d]);
        for n in [a, b, d] {
            assert_eq!(cfg.nodes[n].succs, vec![e]);
        }
        assert_eq!(node_text(&cfg, e), "e ()");
    }

    #[test]
    fn early_return_reaches_exit_only() {
        let cfg = cfg_of("fn f() { if c() { return 1; } a() }");
        let (cond, ret, a) = (2, 3, 4);
        assert!(cfg.nodes[ret].is_return);
        assert_eq!(cfg.nodes[ret].succs, vec![EXIT]);
        assert_eq!(cfg.nodes[cond].succs, vec![ret, a]);
    }

    #[test]
    fn question_mark_adds_exit_edge() {
        let cfg = cfg_of("fn f() { let x = g()?; h(x); }");
        let x = 2;
        assert_eq!(cfg.nodes[x].succs, vec![EXIT, 3]);
    }

    #[test]
    fn match_arms_split_with_early_return() {
        let cfg = cfg_of(
            "fn f(v: V) { match v { V::A => a(), V::B => return 0, V::C { x } => { c(x); } } t(); }",
        );
        let scrut = 2;
        assert_eq!(cfg.nodes[scrut].kind, NodeKind::Cond);
        // Three pattern nodes hang off the scrutinee.
        assert_eq!(cfg.nodes[scrut].succs.len(), 3);
        // The `return 0` arm leads to exit, the others to `t()`.
        let t = cfg.nodes.len() - 1;
        assert_eq!(node_text(&cfg, t), "t ()");
        let ret = cfg
            .nodes
            .iter()
            .position(|n| n.is_return)
            .expect("return node");
        assert_eq!(cfg.nodes[ret].succs, vec![EXIT]);
    }

    #[test]
    fn while_loops_have_back_edges() {
        let cfg = cfg_of("fn f() { while c() { a(); } b(); }");
        let (cond, a, b) = (2, 3, 4);
        assert_eq!(cfg.nodes[cond].succs, vec![a, b]);
        assert_eq!(cfg.nodes[a].succs, vec![cond]);
    }

    #[test]
    fn loop_exits_only_through_break() {
        let cfg = cfg_of("fn f() { loop { if c() { break; } a(); } b(); }");
        // entry exit head cond brk a b
        let (head, cond, brk, a, b) = (2, 3, 4, 5, 6);
        assert_eq!(cfg.nodes[cond].succs, vec![brk, a]);
        assert_eq!(cfg.nodes[a].succs, vec![head]);
        assert_eq!(cfg.nodes[brk].succs, vec![b]);
        assert_eq!(cfg.nodes[b].succs, vec![EXIT]);
    }

    #[test]
    fn continue_targets_the_loop_head() {
        let cfg = cfg_of("fn f() { for x in xs() { if skip(x) { continue; } a(x); } }");
        let (head, cond, cont, a) = (2, 3, 4, 5);
        assert_eq!(cfg.nodes[head].kind, NodeKind::Cond);
        assert_eq!(cfg.nodes[cond].succs, vec![cont, a]);
        assert_eq!(cfg.nodes[cont].succs, vec![head]);
        assert_eq!(cfg.nodes[a].succs, vec![head]);
    }

    #[test]
    fn if_let_struct_pattern_keeps_header_together() {
        let cfg = cfg_of("fn f() { if let P { x } = p() { a(x); } b(); }");
        let cond = 2;
        assert!(node_text(&cfg, cond).contains("P { x } ="));
        assert_eq!(cfg.nodes[cond].succs.len(), 2);
    }

    #[test]
    fn while_let_keeps_binding_in_cond() {
        let cfg = cfg_of("fn f() { while let Some(x) = next() { use_(x); } done(); }");
        let cond = 2;
        assert!(node_text(&cfg, cond).starts_with("let Some (x) = next ()"));
    }

    #[test]
    fn nested_fn_is_one_opaque_node() {
        let cfg = cfg_of("fn f() { fn helper() { q(); } a(); }");
        // entry exit helper a
        assert_eq!(cfg.nodes.len(), 4);
        assert!(node_text(&cfg, 2).starts_with("fn helper"));
        assert_eq!(node_text(&cfg, 3), "a ()");
    }

    #[test]
    fn spans_point_at_first_token() {
        let cfg = cfg_of("fn f() {\n    a();\n    b();\n}");
        assert_eq!(cfg.nodes[2].span.expect("span").start().line, 2);
        assert_eq!(cfg.nodes[3].span.expect("span").start().line, 3);
        assert_eq!(cfg.nodes[3].span.expect("span").start().column, 4);
    }
}
