//! Differential spec-conformance: L13, L14, L15 on the extracted IR.
//!
//! **L13 (spec drift)** — a micro-interpreter executes each handler's
//! guarded-command IR ([`crate::gcir`]) on every (state, event) sample
//! the checker's bounded explorer visits
//! ([`adore_checker::conform_corpus`]) and diffs the predicted guard
//! verdict and post-state against the checker's own transition
//! function. Any mismatch is a finding citing the handler line whose
//! write diverged and a replayable `trace ⊢ event` witness.
//!
//! **L14 (semantic guard sufficiency)** — every IR-level assignment to
//! a protected field must be *dominated on its own path* by a guard
//! atom of a required semantic kind (quorum / log-consistency /
//! R1⁺/R2/R3), in the protective polarity. This is the semantic
//! upgrade of L6's syntactic guard-call check: a guard that is present
//! but on the wrong branch, or checked after the write, no longer
//! counts.
//!
//! **L15 (emission order)** — on every IR path of a configured scope,
//! no durable emission (`Output::Persist`/`Output::Journal`) may follow
//! an outbound one (`Output::Send`/`Output::Reply`): nothing leaves
//! the node before its durable basis, proven on paths rather than
//! lexically.
//!
//! Soundness caveats are inherited from the extractor and documented in
//! DESIGN §15: the conformance corpus instantiates `C = SingleNode`,
//! loops execute at most once in the model, and handlers that are not
//! fully modeled are themselves reported (drift cannot hide behind
//! opacity).

use std::collections::{BTreeMap, BTreeSet};

use adore_checker::{conform_corpus, CCmd, CEntry, CEvent, CMsg, CRole, CServer, CState, ConformParams};

use crate::config::Config;
use crate::gcir::{self, Act, Action, Atom, Ex, HandlerIr, IrPath, Step};
use crate::Finding;

/// A runtime value of the micro-interpreter.
#[derive(Debug, Clone, PartialEq)]
enum CVal {
    Bool(bool),
    Num(i128),
    Role(CRole),
    /// A member set (a `SingleNode` configuration *is* its members).
    Members(BTreeSet<u32>),
    /// A vote/ack set.
    Set(BTreeSet<u32>),
    Log(Vec<CEntry>),
    Entry(CEntry),
    Msg(CMsg),
    OptNum(Option<i128>),
    /// `self.guard` — the corpus always runs with every leg enabled.
    GuardAll,
    /// A handle into the scratch state's server map.
    ServerRef(u32),
}

/// One recorded write, for blame assignment.
#[derive(Debug, Clone)]
struct Write {
    nid: u32,
    field: String,
    line: usize,
    col: usize,
}

/// The per-path interpreter: a scratch state, an environment, and the
/// writes applied so far.
struct Interp {
    st: CState,
    env: BTreeMap<String, CVal>,
    writes: Vec<Write>,
    outcome: Option<bool>,
}

type EvalResult = Result<CVal, String>;

impl Interp {
    fn new(st: CState, env: BTreeMap<String, CVal>) -> Self {
        Interp { st, env, writes: Vec::new(), outcome: None }
    }

    fn num_u32(&mut self, ex: &Ex) -> Result<u32, String> {
        match self.eval(ex)? {
            CVal::Num(n) => u32::try_from(n).map_err(|_| format!("negative node id {n}")),
            v => Err(format!("expected node id, got {v:?}")),
        }
    }

    fn num(&mut self, ex: &Ex) -> Result<i128, String> {
        match self.eval(ex)? {
            CVal::Num(n) => Ok(n),
            CVal::Bool(b) => Ok(i128::from(b)),
            v => Err(format!("expected number, got {v:?}")),
        }
    }

    fn boolean(&mut self, ex: &Ex) -> Result<bool, String> {
        match self.eval(ex)? {
            CVal::Bool(b) => Ok(b),
            v => Err(format!("expected bool, got {v:?}")),
        }
    }

    fn log_of(&mut self, ex: &Ex) -> Result<Vec<CEntry>, String> {
        match self.eval(ex)? {
            CVal::Log(l) => Ok(l),
            v => Err(format!("expected log, got {v:?}")),
        }
    }

    fn set_of(&mut self, ex: &Ex) -> Result<BTreeSet<u32>, String> {
        match self.eval(ex)? {
            CVal::Set(s) | CVal::Members(s) => Ok(s),
            v => Err(format!("expected set, got {v:?}")),
        }
    }

    fn server(&self, nid: u32) -> Result<&CServer, String> {
        self.st.servers.get(&nid).ok_or_else(|| format!("no server {nid}"))
    }

    fn eval(&mut self, ex: &Ex) -> EvalResult {
        match ex {
            Ex::Var(v) => self
                .env
                .get(v)
                .cloned()
                .ok_or_else(|| format!("unbound variable `{v}`")),
            Ex::SelfField(f) => match f.as_str() {
                "conf0" => Ok(CVal::Members(self.st.conf0.clone())),
                "guard" => Ok(CVal::GuardAll),
                other => Err(format!("unmodeled self field `{other}`")),
            },
            Ex::Field(base, f) => {
                let b = self.eval(base)?;
                self.field_of(&b, f)
            }
            Ex::Method(base, m, args) => self.method(base, m, args),
            Ex::Call(f, args) => self.builtin(f, args),
            Ex::Cmp(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                cmp_vals(*op, &va, &vb)
            }
            Ex::IsVariant(v, e) => match self.eval(e)? {
                CVal::Msg(CMsg::Elect { .. }) => Ok(CVal::Bool(v == "Elect")),
                CVal::Msg(CMsg::Commit { .. }) => Ok(CVal::Bool(v == "Commit")),
                other => Err(format!("variant test on {other:?}")),
            },
            Ex::Bool(b) => Ok(CVal::Bool(*b)),
            Ex::Num(n) => Ok(CVal::Num(*n)),
            Ex::RoleLit(r) => match r.as_str() {
                "Follower" => Ok(CVal::Role(CRole::Follower)),
                "Candidate" => Ok(CVal::Role(CRole::Candidate)),
                "Leader" => Ok(CVal::Role(CRole::Leader)),
                other => Err(format!("unknown role `{other}`")),
            },
            Ex::SomeOf(e) => match self.eval(e)? {
                CVal::Num(n) => Ok(CVal::OptNum(Some(n))),
                v => Err(format!("Some(..) of {v:?}")),
            },
            Ex::SliceFrom(log, from) => {
                let l = self.log_of(log)?;
                let i = usize::try_from(self.num(from)?).unwrap_or(0).min(l.len());
                Ok(CVal::Log(l[i..].to_vec()))
            }
            Ex::SliceTo(log, to) => {
                let l = self.log_of(log)?;
                let i = usize::try_from(self.num(to)?).unwrap_or(0).min(l.len());
                Ok(CVal::Log(l[..i].to_vec()))
            }
            Ex::Index(_, _) => Err("indexing is unmodeled".into()),
            Ex::MsgElect { from, time, log } => Ok(CVal::Msg(CMsg::Elect {
                from: self.num_u32(from)?,
                time: u64::try_from(self.num(time)?).unwrap_or(0),
                log: self.log_of(log)?,
            })),
            Ex::MsgCommit { from, time, log, commit_len } => Ok(CVal::Msg(CMsg::Commit {
                from: self.num_u32(from)?,
                time: u64::try_from(self.num(time)?).unwrap_or(0),
                log: self.log_of(log)?,
                commit_len: usize::try_from(self.num(commit_len)?).unwrap_or(0),
            })),
            Ex::EntryMethod { time, m } => Ok(CVal::Entry(CEntry {
                time: u64::try_from(self.num(time)?).unwrap_or(0),
                cmd: CCmd::Method(self.num_u32(m)?),
            })),
            Ex::EntryConfig { time, c } => Ok(CVal::Entry(CEntry {
                time: u64::try_from(self.num(time)?).unwrap_or(0),
                cmd: CCmd::Config(self.set_of(c)?),
            })),
            Ex::VotesOnce(n) => {
                let v = self.num_u32(n)?;
                Ok(CVal::Set(std::iter::once(v).collect()))
            }
            Ex::Opaque(t) => Err(format!("opaque expression `{t}`")),
        }
    }

    fn field_of(&self, base: &CVal, f: &str) -> EvalResult {
        match base {
            CVal::ServerRef(nid) => {
                let s = self.server(*nid)?;
                match f {
                    "time" => Ok(CVal::Num(i128::from(s.time))),
                    "log" => Ok(CVal::Log(s.log.clone())),
                    "commit_len" => Ok(CVal::Num(s.commit_len as i128)),
                    "role" => Ok(CVal::Role(s.role)),
                    "votes" => Ok(CVal::Set(s.votes.clone())),
                    "crashed" => Ok(CVal::Bool(s.crashed)),
                    "abstaining" => Ok(CVal::Bool(s.abstaining)),
                    other => Err(format!("unmodeled server field `{other}`")),
                }
            }
            CVal::Msg(CMsg::Elect { from, time, log }) => match f {
                "from" => Ok(CVal::Num(i128::from(*from))),
                "time" => Ok(CVal::Num(i128::from(*time))),
                "log" => Ok(CVal::Log(log.clone())),
                other => Err(format!("Elect has no field `{other}`")),
            },
            CVal::Msg(CMsg::Commit { from, time, log, commit_len }) => match f {
                "from" => Ok(CVal::Num(i128::from(*from))),
                "time" => Ok(CVal::Num(i128::from(*time))),
                "log" => Ok(CVal::Log(log.clone())),
                "commit_len" => Ok(CVal::Num(*commit_len as i128)),
                other => Err(format!("Commit has no field `{other}`")),
            },
            CVal::GuardAll => match f {
                // The corpus certifies with every guard leg enabled.
                "r1" | "r2" | "r3" => Ok(CVal::Bool(true)),
                other => Err(format!("guard has no leg `{other}`")),
            },
            CVal::Entry(e) => match f {
                "time" => Ok(CVal::Num(i128::from(e.time))),
                other => Err(format!("entry has no field `{other}`")),
            },
            // `MsgId(pub u32)` projection: `msg.0` is the id itself.
            CVal::Num(n) if f == "0" => Ok(CVal::Num(*n)),
            other => Err(format!("field `{f}` of {other:?}")),
        }
    }

    fn method(&mut self, base: &Ex, m: &str, args: &[Ex]) -> EvalResult {
        match m {
            "next" => Ok(CVal::Num(self.num(base)? + 1)),
            "len" => match self.eval(base)? {
                CVal::Log(l) => Ok(CVal::Num(l.len() as i128)),
                CVal::Set(s) | CVal::Members(s) => Ok(CVal::Num(s.len() as i128)),
                v => Err(format!("len of {v:?}")),
            },
            "min" => Ok(CVal::Num(self.num(base)?.min(self.num(&args[0])?))),
            "max" => Ok(CVal::Num(self.num(base)?.max(self.num(&args[0])?))),
            // A `SingleNode` configuration *is* its member set.
            "members" => Ok(CVal::Members(self.set_of(base)?)),
            "contains" => {
                let s = self.set_of(base)?;
                let n = self.num_u32(&args[0])?;
                Ok(CVal::Bool(s.contains(&n)))
            }
            "is_quorum" => {
                let members = self.set_of(base)?;
                let acks = self.set_of(&args[0])?;
                Ok(CVal::Bool(CState::is_quorum(&members, &acks)))
            }
            "r1_plus" => {
                let cur = self.set_of(base)?;
                let next = self.set_of(&args[0])?;
                Ok(CVal::Bool(CState::r1_plus(&cur, &next)))
            }
            "any_config" => {
                let l = self.log_of(base)?;
                Ok(CVal::Bool(l.iter().any(|e| matches!(e.cmd, CCmd::Config(_)))))
            }
            "any_time_eq" => {
                let l = self.log_of(base)?;
                let t = self.num(&args[0])?;
                Ok(CVal::Bool(l.iter().any(|e| i128::from(e.time) == t)))
            }
            "last_time" => {
                let l = self.log_of(base)?;
                Ok(CVal::OptNum(l.last().map(|e| i128::from(e.time))))
            }
            other => Err(format!("unmodeled method `{other}`")),
        }
    }

    fn builtin(&mut self, f: &str, args: &[Ex]) -> EvalResult {
        match f {
            "effective_config" => {
                let base = self.set_of(&args[0])?;
                let log = self.log_of(&args[1])?;
                let m = log
                    .iter()
                    .rev()
                    .find_map(|e| match &e.cmd {
                        CCmd::Config(m) => Some(m.clone()),
                        CCmd::Method(_) => None,
                    })
                    .unwrap_or(base);
                Ok(CVal::Members(m))
            }
            "log_up_to_date" => {
                let a = self.log_of(&args[0])?;
                let b = self.log_of(&args[1])?;
                Ok(CVal::Bool(CState::log_up_to_date(&a, &b)))
            }
            "has_msg" => {
                let i = usize::try_from(self.num(&args[0])?).unwrap_or(usize::MAX);
                Ok(CVal::Bool(i < self.st.messages.len()))
            }
            "msg_at" => {
                let i = usize::try_from(self.num(&args[0])?).unwrap_or(usize::MAX);
                self.st
                    .messages
                    .get(i)
                    .cloned()
                    .map(CVal::Msg)
                    .ok_or_else(|| format!("no message {i}"))
            }
            "server_exists" => {
                let n = self.num_u32(&args[0])?;
                Ok(CVal::Bool(self.st.servers.contains_key(&n)))
            }
            "server_crashed" => {
                let n = self.num_u32(&args[0])?;
                Ok(CVal::Bool(self.st.servers.get(&n).is_some_and(|s| s.crashed)))
            }
            "acks_has" => {
                let nid = self.server_ref(&args[0])?;
                let len = usize::try_from(self.num(&args[1])?).unwrap_or(usize::MAX);
                Ok(CVal::Bool(self.server(nid)?.acks.contains_key(&len)))
            }
            "acks_at" => {
                let nid = self.server_ref(&args[0])?;
                let len = usize::try_from(self.num(&args[1])?).unwrap_or(usize::MAX);
                self.server(nid)?
                    .acks
                    .get(&len)
                    .cloned()
                    .map(CVal::Set)
                    .ok_or_else(|| format!("no acks at {len}"))
            }
            other => Err(format!("unmodeled builtin `{other}`")),
        }
    }

    fn server_ref(&mut self, ex: &Ex) -> Result<u32, String> {
        match self.eval(ex)? {
            CVal::ServerRef(n) => Ok(n),
            CVal::Num(n) => u32::try_from(n).map_err(|_| "bad node id".to_string()),
            v => Err(format!("expected server handle, got {v:?}")),
        }
    }

    fn atom_true(&mut self, a: &Atom) -> Result<bool, String> {
        let v = self.boolean(&a.ex)?;
        Ok(v != a.negated)
    }

    fn apply(&mut self, act: &Act) -> Result<(), String> {
        match &act.action {
            Action::Bind { var, value } => {
                let v = self.eval(value)?;
                self.env.insert(var.clone(), v);
                Ok(())
            }
            Action::BindServer { var, nid, ensure: _ } => {
                let n = self.num_u32(nid)?;
                // `ensure` inserts a default; a plain handle bind after
                // an ensure sees the same entry, so materializing on
                // both is harmless (pristine servers are projected out).
                self.st.servers.entry(n).or_default();
                self.env.insert(var.clone(), CVal::ServerRef(n));
                Ok(())
            }
            Action::Assign { base, field, value } => {
                let nid = self.server_ref(base)?;
                let v = self.eval(value)?;
                self.writes.push(Write {
                    nid,
                    field: field.clone(),
                    line: act.line,
                    col: act.col,
                });
                let s = self
                    .st
                    .servers
                    .get_mut(&nid)
                    .ok_or_else(|| format!("no server {nid}"))?;
                match (field.as_str(), v) {
                    ("time", CVal::Num(n)) => s.time = u64::try_from(n).unwrap_or(0),
                    ("commit_len", CVal::Num(n)) => {
                        s.commit_len = usize::try_from(n).unwrap_or(0);
                    }
                    ("role", CVal::Role(r)) => s.role = r,
                    ("log", CVal::Log(l)) => s.log = l,
                    ("votes", CVal::Set(v)) => s.votes = v,
                    ("crashed", CVal::Bool(b)) => s.crashed = b,
                    ("abstaining", CVal::Bool(b)) => s.abstaining = b,
                    (f, v) => return Err(format!("assign {f} := {v:?} unmodeled")),
                }
                Ok(())
            }
            Action::FieldClear { base, field } => {
                let nid = self.server_ref(base)?;
                self.writes.push(Write {
                    nid,
                    field: field.clone(),
                    line: act.line,
                    col: act.col,
                });
                let s = self
                    .st
                    .servers
                    .get_mut(&nid)
                    .ok_or_else(|| format!("no server {nid}"))?;
                match field.as_str() {
                    "votes" => s.votes.clear(),
                    "acks" => s.acks.clear(),
                    "log" => s.log.clear(),
                    f => return Err(format!("clear of `{f}` unmodeled")),
                }
                Ok(())
            }
            Action::FieldInsert { base, field, value } => {
                let nid = self.server_ref(base)?;
                let v = self.num_u32(value)?;
                self.writes.push(Write {
                    nid,
                    field: field.clone(),
                    line: act.line,
                    col: act.col,
                });
                let s = self
                    .st
                    .servers
                    .get_mut(&nid)
                    .ok_or_else(|| format!("no server {nid}"))?;
                match field.as_str() {
                    "votes" => {
                        s.votes.insert(v);
                    }
                    f => return Err(format!("insert into `{f}` unmodeled")),
                }
                Ok(())
            }
            Action::FieldPush { base, field, value } => {
                let nid = self.server_ref(base)?;
                let v = self.eval(value)?;
                self.writes.push(Write {
                    nid,
                    field: field.clone(),
                    line: act.line,
                    col: act.col,
                });
                let s = self
                    .st
                    .servers
                    .get_mut(&nid)
                    .ok_or_else(|| format!("no server {nid}"))?;
                match (field.as_str(), v) {
                    ("log", CVal::Entry(e)) => s.log.push(e),
                    (f, v) => return Err(format!("push {v:?} into `{f}` unmodeled")),
                }
                Ok(())
            }
            Action::AcksInsert { base, len, node } => {
                let nid = self.server_ref(base)?;
                let l = usize::try_from(self.num(len)?).unwrap_or(0);
                let n = self.num_u32(node)?;
                self.writes.push(Write {
                    nid,
                    field: "acks".into(),
                    line: act.line,
                    col: act.col,
                });
                let s = self
                    .st
                    .servers
                    .get_mut(&nid)
                    .ok_or_else(|| format!("no server {nid}"))?;
                s.acks.entry(l).or_default().insert(n);
                Ok(())
            }
            Action::EmitMsg { value } => match self.eval(value)? {
                CVal::Msg(m) => {
                    self.st.messages.push(m);
                    Ok(())
                }
                v => Err(format!("emit of {v:?}")),
            },
            Action::SetOutcome { applied } => {
                self.outcome = Some(*applied);
                Ok(())
            }
            Action::Emit { .. } | Action::Delivered | Action::Noop { .. } => Ok(()),
            Action::CallFn { name, .. } => Err(format!("unresolved call `{name}`")),
            Action::Opaque { text } => Err(format!("opaque action `{text}`")),
        }
    }
}

fn cmp_vals(op: gcir::CmpOp, a: &CVal, b: &CVal) -> EvalResult {
    use gcir::CmpOp::*;
    let ord = |o: std::cmp::Ordering| match op {
        Eq => o.is_eq(),
        Ne => o.is_ne(),
        Lt => o.is_lt(),
        Le => o.is_le(),
        Gt => o.is_gt(),
        Ge => o.is_ge(),
    };
    match (a, b) {
        (CVal::Num(x), CVal::Num(y)) => Ok(CVal::Bool(ord(x.cmp(y)))),
        (CVal::OptNum(x), CVal::OptNum(y)) => match op {
            Eq => Ok(CVal::Bool(x == y)),
            Ne => Ok(CVal::Bool(x != y)),
            _ => Err("ordering on Option values".into()),
        },
        (CVal::OptNum(x), CVal::Num(y)) | (CVal::Num(y), CVal::OptNum(x)) => match op {
            Eq => Ok(CVal::Bool(*x == Some(*y))),
            Ne => Ok(CVal::Bool(*x != Some(*y))),
            _ => Err("ordering on Option values".into()),
        },
        (CVal::Role(x), CVal::Role(y)) => match op {
            Eq => Ok(CVal::Bool(x == y)),
            Ne => Ok(CVal::Bool(x != y)),
            _ => Err("ordering on roles".into()),
        },
        (CVal::Bool(x), CVal::Bool(y)) => match op {
            Eq => Ok(CVal::Bool(x == y)),
            Ne => Ok(CVal::Bool(x != y)),
            _ => Err("ordering on bools".into()),
        },
        (a, b) => Err(format!("comparison {a:?} vs {b:?}")),
    }
}

/// Outcome of trying one path: `Ok(None)` = a guard failed (path not
/// taken); `Ok(Some(interp))` = path ran to completion.
fn try_path(
    path: &IrPath,
    state: &CState,
    env: &BTreeMap<String, CVal>,
) -> Result<Option<Interp>, String> {
    let mut it = Interp::new(state.clone(), env.clone());
    for step in &path.steps {
        match step {
            Step::Guard(c) => {
                let mut any = false;
                for a in &c.atoms {
                    if it.atom_true(a)? {
                        any = true;
                        break;
                    }
                }
                if !any {
                    return Ok(None);
                }
            }
            Step::Act(a) => it.apply(a)?,
        }
    }
    Ok(Some(it))
}

/// The predicted transition: post-state (projected) + applied flag +
/// the writes of the taken path. "No path matched" predicts an
/// unchanged, not-applied transition (the handler's `let .. else`
/// rejections live there).
fn predict(
    ir: &HandlerIr,
    state: &CState,
    env: &BTreeMap<String, CVal>,
) -> Result<(CState, bool, Vec<Write>), String> {
    for path in &ir.paths {
        match try_path(path, state, env)? {
            Some(it) => {
                let applied = it.outcome.ok_or("path ended without an outcome")?;
                return Ok((project(it.st), applied, it.writes));
            }
            None => continue,
        }
    }
    Ok((project(state.clone()), false, Vec::new()))
}

/// Drops pristine servers, mirroring the checker's state projection.
fn project(mut st: CState) -> CState {
    st.servers.retain(|_, s| !s.pristine());
    st
}

/// Positional binding of a sample's event onto a handler's parameters.
fn event_binding(ev: &CEvent) -> (&'static str, Vec<CVal>) {
    match ev {
        CEvent::Elect { nid } => ("elect", vec![CVal::Num(i128::from(*nid))]),
        CEvent::Invoke { nid, method } => (
            "invoke",
            vec![CVal::Num(i128::from(*nid)), CVal::Num(i128::from(*method))],
        ),
        CEvent::Reconfig { nid, members } => (
            "reconfig",
            vec![CVal::Num(i128::from(*nid)), CVal::Members(members.clone())],
        ),
        CEvent::Commit { nid } => ("commit", vec![CVal::Num(i128::from(*nid))]),
        CEvent::Deliver { msg, to } => (
            "deliver",
            vec![CVal::Num(i128::from(*msg)), CVal::Num(i128::from(*to))],
        ),
    }
}

/// First difference between predicted and actual post-states, as a
/// human-readable description plus the blamed (nid, field) when the
/// difference is a server field.
fn first_diff(pred: &CState, actual: &CState) -> (String, Option<(u32, String)>) {
    if pred.conf0 != actual.conf0 {
        return ("conf0 differs".into(), None);
    }
    let nids: BTreeSet<u32> = pred.servers.keys().chain(actual.servers.keys()).copied().collect();
    for nid in nids {
        match (pred.servers.get(&nid), actual.servers.get(&nid)) {
            (Some(_), None) => {
                return (format!("server {nid} mutated in IR but not in checker"), None)
            }
            (None, Some(_)) => {
                return (format!("server {nid} mutated in checker but not in IR"), None)
            }
            (Some(p), Some(a)) => {
                macro_rules! diff_field {
                    ($f:ident) => {
                        if p.$f != a.$f {
                            return (
                                format!(
                                    "server {nid}.{}: IR predicts {:?}, checker has {:?}",
                                    stringify!($f),
                                    p.$f,
                                    a.$f
                                ),
                                Some((nid, stringify!($f).to_string())),
                            );
                        }
                    };
                }
                diff_field!(time);
                diff_field!(log);
                diff_field!(commit_len);
                diff_field!(role);
                diff_field!(votes);
                diff_field!(acks);
                diff_field!(crashed);
                diff_field!(abstaining);
            }
            (None, None) => {}
        }
    }
    if pred.messages != actual.messages {
        return ("sent-message bag differs".into(), None);
    }
    ("states agree".into(), None)
}

fn witness(trace: &[CEvent], ev: &CEvent) -> String {
    let t: Vec<String> = trace.iter().map(CEvent::render).collect();
    format!("[{}] ⊢ {}", t.join(", "), ev.render())
}

fn finding(rule: &str, file: &str, line: usize, col: usize, msg: String) -> Finding {
    Finding {
        rule: rule.into(),
        file: file.into(),
        line,
        col,
        msg,
        suppressed: false,
        reason: None,
    }
}

/// Runs L13 differential conformance for every configured scope present
/// in `parsed`.
fn scan_l13(parsed: &[(String, syn::File)], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for scope in &cfg.l13_conform {
        let Some((rel, file)) = parsed.iter().find(|(r, _)| *r == scope.file) else {
            continue;
        };
        let irs = gcir::extract(file, &scope.handlers);
        let mut by_name: BTreeMap<&str, &HandlerIr> = BTreeMap::new();
        for ir in &irs {
            by_name.insert(ir.name.as_str(), ir);
        }
        // A configured handler that is missing or not fully modeled is
        // itself a finding: drift must not hide behind opacity.
        let mut runnable: BTreeMap<&str, &HandlerIr> = BTreeMap::new();
        for name in &scope.handlers {
            match by_name.get(name.as_str()) {
                None => out.push(finding(
                    "L13",
                    rel,
                    1,
                    0,
                    format!("conformance handler `{name}` not found in {rel}"),
                )),
                Some(ir) if !ir.is_fully_modeled() => out.push(finding(
                    "L13",
                    rel,
                    ir.line,
                    0,
                    format!(
                        "conformance handler `{name}` is not fully modeled by the \
                         guarded-command extractor; differential certification \
                         cannot see through it"
                    ),
                )),
                Some(ir) => {
                    runnable.insert(name.as_str(), ir);
                }
            }
        }
        if runnable.is_empty() {
            continue;
        }
        let corpus = conform_corpus(&ConformParams {
            depth: scope.depth,
            max_samples: scope.max_samples,
            ..ConformParams::default()
        });
        // One finding per (handler, blamed line); the first witness wins.
        let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
        for sample in &corpus.samples {
            let (hname, vals) = event_binding(&sample.event);
            let Some(ir) = runnable.get(hname) else { continue };
            if ir.params.len() != vals.len() {
                if seen.insert((hname.to_string(), ir.line)) {
                    out.push(finding(
                        "L13",
                        rel,
                        ir.line,
                        0,
                        format!(
                            "handler `{hname}` has {} parameters, event carries {}",
                            ir.params.len(),
                            vals.len()
                        ),
                    ));
                }
                continue;
            }
            let env: BTreeMap<String, CVal> = ir
                .params
                .iter()
                .cloned()
                .zip(vals)
                .collect();
            match predict(ir, &sample.state, &env) {
                Ok((pred, applied, writes)) => {
                    let ok = applied == sample.applied && pred == project(sample.post.clone());
                    if ok {
                        continue;
                    }
                    let (desc, blamed) = if applied != sample.applied {
                        (
                            format!(
                                "guard verdict drift: IR predicts applied={applied}, \
                                 checker has applied={}",
                                sample.applied
                            ),
                            None,
                        )
                    } else {
                        first_diff(&pred, &project(sample.post.clone()))
                    };
                    let (line, col) = blamed
                        .as_ref()
                        .and_then(|(nid, field)| {
                            writes
                                .iter()
                                .rev()
                                .find(|w| w.nid == *nid && w.field == *field)
                                .map(|w| (w.line, w.col))
                        })
                        .unwrap_or((ir.line, 0));
                    if seen.insert((hname.to_string(), line)) {
                        out.push(finding(
                            "L13",
                            rel,
                            line,
                            col,
                            format!(
                                "spec drift in `{hname}`: {desc}; witness {}",
                                witness(&sample.trace, &sample.event)
                            ),
                        ));
                    }
                }
                Err(e) => {
                    if seen.insert((hname.to_string(), ir.line)) {
                        out.push(finding(
                            "L13",
                            rel,
                            ir.line,
                            0,
                            format!(
                                "conformance interpreter cannot execute `{hname}`: {e}; \
                                 witness {}",
                                witness(&sample.trace, &sample.event)
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// L14: every `Assign` to a protected field must be dominated (earlier
/// on the same path) by a positive guard atom of a required kind.
/// `FieldPush` appends are deliberately excluded: a leader's local
/// `invoke`/`reconfig` append is legitimate without a quorum.
fn scan_l14(parsed: &[(String, syn::File)], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for scope in &cfg.l14_protected {
        let Some((rel, file)) = parsed.iter().find(|(r, _)| *r == scope.file) else {
            continue;
        };
        let mut fns = Vec::new();
        crate::callgraph::collect_fns(&file.items, false, &mut fns);
        let all: Vec<String> = fns.iter().map(|f| f.ident.clone()).collect();
        let irs = gcir::extract(file, &all);
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for ir in &irs {
            for path in &ir.paths {
                let mut guarded = false;
                for step in &path.steps {
                    match step {
                        Step::Guard(c) => {
                            if c.atoms.iter().any(|a| {
                                scope.kinds.iter().any(|k| gcir::atom_matches_kind(a, k))
                            }) {
                                guarded = true;
                            }
                        }
                        Step::Act(a) => {
                            if let Action::Assign { field, .. } = &a.action {
                                if scope.fields.iter().any(|f| f == field)
                                    && !guarded
                                    && seen.insert((a.line, a.col))
                                {
                                    out.push(finding(
                                        "L14",
                                        rel,
                                        a.line,
                                        a.col,
                                        format!(
                                            "assignment to protected field \
                                             `{}.{field}` is not dominated by a \
                                             {} guard on this IR path (in `{}`)",
                                            scope.type_name,
                                            scope.kinds.join("/"),
                                            ir.name
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// L15: on every IR path of a configured scope, no durable emission may
/// follow an outbound one.
fn scan_l15(parsed: &[(String, syn::File)], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for scope in &cfg.l15_scopes {
        let Some((rel, file)) = parsed.iter().find(|(r, _)| *r == scope.file) else {
            continue;
        };
        let wanted: Vec<String> = if scope.functions.iter().any(|f| f == "*") {
            let mut fns = Vec::new();
            crate::callgraph::collect_fns(&file.items, false, &mut fns);
            fns.iter().map(|f| f.ident.clone()).collect()
        } else {
            scope.functions.clone()
        };
        let irs = gcir::extract(file, &wanted);
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for ir in &irs {
            for path in &ir.paths {
                let mut outbound_at: Option<(usize, usize)> = None;
                for step in &path.steps {
                    if let Step::Act(a) = step {
                        if let Action::Emit { class } = &a.action {
                            if class.outbound() {
                                outbound_at.get_or_insert((a.line, a.col));
                            } else if class.durable() {
                                if let Some((ol, _)) = outbound_at {
                                    if seen.insert((a.line, a.col)) {
                                        out.push(finding(
                                            "L15",
                                            rel,
                                            a.line,
                                            a.col,
                                            format!(
                                                "durable {class:?} emission follows an \
                                                 outbound emission (line {ol}) on an IR \
                                                 path of `{}`: state leaves the node \
                                                 before its durable basis",
                                                ir.name
                                            ),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// The conformance layer entry point: L13 differential certification,
/// L14 semantic guard sufficiency, and L15 emission ordering over the
/// already-parsed workspace.
#[must_use]
pub fn scan_conform(parsed: &[(String, syn::File)], cfg: &Config) -> Vec<Finding> {
    let mut out = scan_l13(parsed, cfg);
    out.extend(scan_l14(parsed, cfg));
    out.extend(scan_l15(parsed, cfg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{L13Conform, L14Protected, L2Scope};

    fn parse(src: &str) -> syn::File {
        syn::parse_file(src).expect("parse")
    }

    /// The real protocol handlers, certified differentially against
    /// the checker's transition system — not a hand-written mirror.
    const NET_MIRROR: &str = include_str!("../../raft/src/net.rs");

    fn mirror_cfg() -> Config {
        Config {
            l13_conform: vec![L13Conform {
                file: "crates/raft/src/net.rs".into(),
                handlers: vec![
                    "elect".into(),
                    "invoke".into(),
                    "reconfig".into(),
                    "commit".into(),
                    "deliver".into(),
                ],
                depth: 4,
                max_samples: 60_000,
            }],
            ..Config::default()
        }
    }

    #[test]
    fn faithful_mirror_has_no_drift() {
        let parsed = vec![("crates/raft/src/net.rs".to_string(), parse(NET_MIRROR))];
        let f = scan_l13(&parsed, &mirror_cfg());
        assert!(f.is_empty(), "unexpected drift findings: {f:#?}");
    }

    #[test]
    fn deleted_quorum_guard_is_spec_drift_with_replayable_witness() {
        // Self-ablation: drop the quorum conjunct from the commit
        // advance, exactly like the checker's own ablation tests do.
        let ablated = NET_MIRROR.replacen("config.is_quorum(ackers) && ", "", 1);
        assert_ne!(ablated, NET_MIRROR, "ablation must change the source");
        let parsed = vec![("crates/raft/src/net.rs".to_string(), parse(&ablated))];
        let f = scan_l13(&parsed, &mirror_cfg());
        assert!(
            f.iter().any(|f| f.rule == "L13" && f.msg.contains("commit_len")),
            "expected commit_len drift: {f:#?}"
        );
        // The witness must cite a replayable schedule.
        assert!(f.iter().any(|f| f.msg.contains('⊢')), "{f:#?}");
        // The same ablation is also caught structurally by L14: the
        // commit-length write is no longer quorum-dominated.
        let cfg14 = Config {
            l14_protected: vec![L14Protected {
                file: "crates/raft/src/net.rs".into(),
                type_name: "Server".into(),
                fields: vec!["commit_len".into(), "log".into()],
                kinds: vec!["quorum".into(), "log-consistency".into()],
            }],
            ..Config::default()
        };
        let f14 = scan_l14(&parsed, &cfg14);
        assert!(
            f14.iter()
                .any(|f| f.rule == "L14" && f.line == 557 && f.msg.contains("commit_len")),
            "expected unguarded commit advance at net.rs:557: {f14:#?}"
        );
    }

    #[test]
    fn inverted_r3_guard_is_spec_drift() {
        // Self-ablation: invert the R3 leg (a committed entry at the
        // leader's current term), so reconfig appends config entries
        // exactly when the checker's transition system forbids it.
        // (The R1+ leg is NOT observable at this corpus depth: every
        // shallow reconfig attempt is already rejected by R3 on both
        // sides, so an R1+ ablation stays masked — which is itself a
        // statement about what the bounded certificate covers.)
        let ablated = NET_MIRROR.replacen(
            "guard.r3 && !s.log[..s.commit_len].iter().any(|e| e.time == s.time)",
            "guard.r3 && s.log[..s.commit_len].iter().any(|e| e.time == s.time)",
            1,
        );
        assert_ne!(ablated, NET_MIRROR, "ablation must change the source");
        let parsed = vec![("crates/raft/src/net.rs".to_string(), parse(&ablated))];
        let f = scan_l13(&parsed, &mirror_cfg());
        assert!(
            f.iter()
                .any(|f| f.rule == "L13" && f.msg.contains("`reconfig`") && f.msg.contains('⊢')),
            "expected reconfig drift: {f:#?}"
        );
    }

    #[test]
    fn inverted_commit_term_rule_is_spec_drift() {
        // Self-ablation: invert Raft's current-term commit rule, so a
        // leader broadcasts exactly when its log does NOT end in its
        // own term.
        let ablated = NET_MIRROR.replacen(
            "s.log.last().map(|e| e.time) != Some(s.time)",
            "s.log.last().map(|e| e.time) == Some(s.time)",
            1,
        );
        assert_ne!(ablated, NET_MIRROR, "ablation must change the source");
        let parsed = vec![("crates/raft/src/net.rs".to_string(), parse(&ablated))];
        let f = scan_l13(&parsed, &mirror_cfg());
        assert!(
            f.iter()
                .any(|f| f.rule == "L13" && f.msg.contains("`commit`") && f.msg.contains('⊢')),
            "expected commit drift: {f:#?}"
        );
    }

    #[test]
    fn l14_flags_unguarded_protected_assignment() {
        let src = r#"
impl Net {
    fn sneak(&mut self, nid: NodeId) {
        let Some(s) = self.servers.get_mut(&nid) else {
            return;
        };
        s.commit_len = 7;
    }
}
"#;
        let cfg = Config {
            l14_protected: vec![L14Protected {
                file: "a.rs".into(),
                type_name: "Server".into(),
                fields: vec!["commit_len".into(), "log".into()],
                kinds: vec!["quorum".into(), "log-consistency".into()],
            }],
            ..Config::default()
        };
        let parsed = vec![("a.rs".to_string(), parse(src))];
        let f = scan_l14(&parsed, &cfg);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "L14");
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn l14_accepts_quorum_dominated_assignment() {
        let src = r#"
impl Net {
    fn advance(&mut self, nid: NodeId, len: usize) {
        let conf0 = self.conf0.clone();
        let Some(s) = self.servers.get_mut(&nid) else {
            return;
        };
        let Some(ackers) = s.acks.get(&len) else {
            return;
        };
        let config = effective_config(&conf0, &s.log);
        if config.is_quorum(ackers) && len > s.commit_len {
            s.commit_len = len;
        }
    }
}
"#;
        let cfg = Config {
            l14_protected: vec![L14Protected {
                file: "a.rs".into(),
                type_name: "Server".into(),
                fields: vec!["commit_len".into()],
                kinds: vec!["quorum".into()],
            }],
            ..Config::default()
        };
        let parsed = vec![("a.rs".to_string(), parse(src))];
        let f = scan_l14(&parsed, &cfg);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn l15_flags_durable_after_outbound() {
        let src = r#"
impl Node {
    fn finish(&mut self, st: Step) -> Vec<Output> {
        let mut out = Vec::new();
        out.extend(st.sends.into_iter().map(|(to, msg)| Output::Send { to, msg }));
        out.push(Output::Persist { bytes });
        out
    }
}
"#;
        let cfg = Config {
            l15_scopes: vec![L2Scope {
                file: "e.rs".into(),
                functions: vec!["finish".into()],
            }],
            ..Config::default()
        };
        let parsed = vec![("e.rs".to_string(), parse(src))];
        let f = scan_l15(&parsed, &cfg);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "L15");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn l15_accepts_durable_then_outbound() {
        let src = r#"
impl Node {
    fn finish(&mut self, st: Step) -> Vec<Output> {
        let mut out = Vec::new();
        out.push(Output::Journal(EventKind::StateDelta { nid: self.nid.0 }));
        out.push(Output::Persist { bytes });
        out.extend(st.sends.into_iter().map(|(to, msg)| Output::Send { to, msg }));
        out.extend(st.replies.into_iter().map(|(conn, reply)| Output::Reply { conn, reply }));
        out
    }
}
"#;
        let cfg = Config {
            l15_scopes: vec![L2Scope {
                file: "e.rs".into(),
                functions: vec!["finish".into()],
            }],
            ..Config::default()
        };
        let parsed = vec![("e.rs".to_string(), parse(src))];
        let f = scan_l15(&parsed, &cfg);
        assert!(f.is_empty(), "{f:#?}");
    }
}
