//! `adore-lint`: a workspace static-analysis pass that certifies
//! protocol discipline at the source level.
//!
//! The model checker, the nemesis, and the replay tooling all assume
//! properties of the *source* that rustc does not enforce: seeded runs
//! only reproduce if iteration order is deterministic (L1), recovery
//! paths only report faults if they cannot panic on corrupted input
//! (L2), the protocol state only obeys the paper's transition rules if
//! nothing else assigns its fields (L3), and safety verdicts only mean
//! something if every one is consumed (L4). This crate walks every
//! `.rs` file in the workspace and enforces those disciplines as
//! token-pattern rules; see [`rules`] for the exact patterns and
//! [`pragma`] for the `allow(...)`-with-reason escape hatch.
//!
//! On top of the token-pattern rules sits a flow-sensitive layer
//! ([`cfg`] → [`dataflow`] → [`callgraph`] → [`flow_rules`]): per-
//! function control-flow graphs with a must-reach guard analysis (L6
//! guard-before-mutation, the static analogue of consulting R1⁺/R2/R3
//! on every path), a may-taint analysis (L7 nondeterminism taint), and
//! a discarded-fallible-result check in recovery scopes (L8).
//!
//! A third, concurrency-discipline layer ([`conc_rules`]) certifies the
//! threaded runtime around the deterministic engine: lock-order cycles
//! (L9), panic-free lock acquisition in long-lived threads (L10),
//! guards held across blocking calls (L11), and bounded-channel
//! discipline on protocol paths (L12). Its call summaries are
//! cross-file within a crate, so [`run_lint`] scans it globally over
//! every parsed file rather than file-by-file.
//!
//! Findings are deterministic (files walked in sorted order, findings
//! sorted by position) so CI output is stable.

pub mod callgraph;
pub mod cfg;
pub mod conc_rules;
pub mod config;
pub mod conform;
pub mod dataflow;
pub mod explain;
pub mod flow_rules;
pub mod gcir;
pub mod pragma;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::Config;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id: `L1`-`L12`, `P0` (malformed pragma), `E0` (parse error).
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 0-based column (rendered 1-based).
    pub col: usize,
    /// Human-readable description.
    pub msg: String,
    /// Whether a pragma suppresses it.
    pub suppressed: bool,
    /// The pragma's reason, when suppressed.
    pub reason: Option<String>,
}

/// The result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed ones included, in position order.
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not suppressed by a pragma — the ones that fail CI.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Number of unsuppressed findings.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Number of pragma-suppressed findings.
    #[must_use]
    pub fn suppressed_count(&self) -> usize {
        self.findings.len() - self.active_count()
    }

    /// Per-rule `(active, suppressed)` counts, keyed by rule id.
    #[must_use]
    pub fn tally(&self) -> BTreeMap<String, (usize, usize)> {
        let mut t: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for f in &self.findings {
            let e = t.entry(f.rule.clone()).or_default();
            if f.suppressed {
                e.1 += 1;
            } else {
                e.0 += 1;
            }
        }
        t
    }
}

/// Per-file findings that need no cross-file context: pragma errors
/// plus the token-pattern and flow layers (or `E0` when the file does
/// not parse). Returns the parse for reuse by the global
/// concurrency-discipline scan.
fn base_findings(
    rel: &str,
    source: &str,
    cfg: &Config,
    pragmas: &pragma::PragmaSet,
    run_flow: bool,
) -> (Vec<Finding>, Option<syn::File>) {
    let mut findings = Vec::new();
    for err in &pragmas.errors {
        findings.push(Finding {
            rule: "P0".into(),
            file: rel.into(),
            line: err.line,
            col: 0,
            msg: format!("malformed suppression pragma: {}", err.msg),
            suppressed: false,
            reason: None,
        });
    }
    match syn::parse_file(source) {
        Ok(file) => {
            findings.extend(rules::scan_file(rel, &file, cfg));
            if run_flow {
                findings.extend(flow_rules::scan_flow(rel, &file, cfg));
            }
            (findings, Some(file))
        }
        Err(e) => {
            findings.push(Finding {
                rule: "E0".into(),
                file: rel.into(),
                line: e.position().line,
                col: e.position().column,
                msg: format!("file does not parse: {e}"),
                suppressed: false,
                reason: None,
            });
            (findings, None)
        }
    }
}

/// Marks findings suppressed by a matching same-file pragma, then sorts
/// into the stable report order.
fn finish_file(findings: &mut [Finding], pragmas: &pragma::PragmaSet) {
    for f in findings.iter_mut() {
        if let Some(p) = pragmas
            .pragmas
            .iter()
            .find(|p| p.target_line == f.line && p.rules.contains(&f.rule))
        {
            f.suppressed = true;
            f.reason = Some(p.reason.clone());
        }
    }
    findings.sort_by(|a, b| {
        (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str()))
    });
}

/// Lints one file's source text. `rel` is the workspace-relative path
/// used for scope matching and reporting.
///
/// The concurrency-discipline layer runs with this file as the whole
/// crate, so cross-file summaries are empty; [`run_lint`] is the entry
/// point that sees helpers across a crate.
#[must_use]
pub fn lint_source(rel: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let pragmas = pragma::scan(source);
    let (mut findings, parsed) = base_findings(rel, source, cfg, &pragmas, true);
    if let Some(file) = parsed {
        let files = vec![(rel.to_string(), file)];
        findings.extend(conc_rules::scan_conc(&files, cfg));
        findings.extend(conform::scan_conform(&files, cfg));
    }
    finish_file(&mut findings, &pragmas);
    findings
}

/// Collects the workspace-relative paths of every `.rs` file under the
/// configured roots, excluded prefixes removed, in sorted order.
///
/// # Errors
///
/// Propagates filesystem errors other than a missing root.
pub fn collect_files(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut rels = Vec::new();
    for scan_root in &cfg.roots {
        let dir = root.join(scan_root);
        if !dir.is_dir() {
            continue;
        }
        walk_dir(&dir, root, &mut rels)?;
    }
    rels.retain(|rel| {
        !cfg.exclude
            .iter()
            .any(|ex| rel == ex || rel.strip_prefix(ex.as_str()).is_some_and(|r| r.starts_with('/')))
    });
    rels.sort();
    rels.dedup();
    Ok(rels)
}

fn walk_dir(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk_dir(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Propagates filesystem errors reading the tree.
pub fn run_lint(root: &Path, cfg: &Config) -> io::Result<Report> {
    let rels = collect_files(root, cfg)?;
    let mut report = Report {
        files_scanned: rels.len(),
        ..Report::default()
    };
    // Pass 1: per-file layers, fanned out across threads in contiguous
    // chunks. Chunk results are re-assembled in `rels` order, so the
    // output is byte-identical to the sequential walk; each parse and
    // pragma set is kept so the cross-file layers see the whole
    // workspace at once.
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, 8);
    let chunk = rels.len().div_ceil(threads).max(1);
    type FileUnit = (String, Vec<Finding>, pragma::PragmaSet, Option<syn::File>);
    let units: Vec<io::Result<Vec<FileUnit>>> = std::thread::scope(|s| {
        let handles: Vec<_> = rels
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    part.iter()
                        .map(|rel| {
                            let source = fs::read_to_string(root.join(rel))?;
                            let pragmas = pragma::scan(&source);
                            // Flow rules run later against the
                            // workspace-wide call-graph fixpoint.
                            let (findings, file) =
                                base_findings(rel, &source, cfg, &pragmas, false);
                            Ok((rel.clone(), findings, pragmas, file))
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("lint worker panicked")).collect()
    });
    let mut per_file: BTreeMap<String, (Vec<Finding>, pragma::PragmaSet)> = BTreeMap::new();
    let mut parsed: Vec<(String, syn::File)> = Vec::new();
    for unit in units {
        for (rel, findings, pragmas, file) in unit? {
            if let Some(file) = file {
                parsed.push((rel.clone(), file));
            }
            per_file.insert(rel, (findings, pragmas));
        }
    }
    // Pass 1.5: the flow layer (L6–L8) against the workspace-wide
    // call-graph fixpoint, so guard delegation, taint, and fallibility
    // are seen through helpers in *other* files.
    let guard_names: std::collections::BTreeSet<String> = cfg
        .l6_protected
        .iter()
        .flat_map(|e| e.guards.iter().cloned())
        .collect();
    let workspace = callgraph::summarize_workspace(&parsed, &guard_names);
    for (rel, file) in &parsed {
        let local = callgraph::summarize(file, &guard_names);
        let summaries = callgraph::overlay(local, &workspace);
        for f in flow_rules::scan_flow_with(rel, file, cfg, &summaries) {
            if let Some((findings, _)) = per_file.get_mut(&f.file) {
                findings.push(f);
            }
        }
    }
    // Pass 2: one global L9–L12 scan, findings bucketed back per file so
    // pragmas and position sorting apply uniformly.
    for f in conc_rules::scan_conc(&parsed, cfg) {
        if let Some((findings, _)) = per_file.get_mut(&f.file) {
            findings.push(f);
        }
    }
    // Pass 3: the spec-conformance layer (L13–L15) over the same parses.
    for f in conform::scan_conform(&parsed, cfg) {
        if let Some((findings, _)) = per_file.get_mut(&f.file) {
            findings.push(f);
        }
    }
    for rel in &rels {
        let Some((mut findings, pragmas)) = per_file.remove(rel) else {
            continue;
        };
        finish_file(&mut findings, &pragmas);
        report.findings.extend(findings);
    }
    Ok(report)
}

/// Renders a report as compiler-style text, one finding per line.
#[must_use]
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        if f.suppressed {
            let reason = f.reason.as_deref().unwrap_or("");
            let _ = writeln!(
                out,
                "{}:{}:{}: {}: {} [suppressed: {}]",
                f.file,
                f.line,
                f.col + 1,
                f.rule,
                f.msg,
                reason
            );
        } else {
            let _ = writeln!(
                out,
                "{}:{}:{}: {}: {}",
                f.file,
                f.line,
                f.col + 1,
                f.rule,
                f.msg
            );
        }
    }
    let _ = writeln!(
        out,
        "adore-lint: {} files scanned, {} findings ({} suppressed by pragma)",
        report.files_scanned,
        report.active_count(),
        report.suppressed_count()
    );
    out
}

/// Renders a report as a JSON object (`--format json`).
#[must_use]
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"msg\": \"{}\", \"suppressed\": {}",
            json_escape(&f.rule),
            json_escape(&f.file),
            f.line,
            f.col + 1,
            json_escape(&f.msg),
            f.suppressed
        );
        if let Some(r) = &f.reason {
            let _ = write!(out, ", \"reason\": \"{}\"", json_escape(r));
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "\n  ],\n  \"files_scanned\": {},\n  \"active\": {},\n  \"suppressed\": {}\n}}\n",
        report.files_scanned,
        report.active_count(),
        report.suppressed_count()
    );
    out
}

/// Renders a report as a SARIF 2.1.0 log (`--format sarif`), one run
/// with one result per finding. Suppressed findings carry a SARIF
/// `suppressions` entry (kind `inSource`) holding the pragma reason, so
/// downstream viewers can distinguish waived findings from clean files.
#[must_use]
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"adore-lint\",\n          \"informationUri\": \"https://github.com/adore/adore\",\n          \"rules\": [",
    );
    let mut rule_ids: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();
    for (i, id) in rule_ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_escape(id),
            json_escape(explain::summary(id).unwrap_or("adore-lint finding"))
        );
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"{}\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \"artifactLocation\": {{\"uri\": \"{}\"}},\n                \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n              }}\n            }}\n          ]",
            json_escape(&f.rule),
            if f.rule == "P0" || f.rule == "E0" { "error" } else { "warning" },
            json_escape(&f.msg),
            json_escape(&f.file),
            f.line,
            f.col + 1
        );
        if f.suppressed {
            let reason = f.reason.as_deref().unwrap_or("");
            let _ = write!(
                out,
                ",\n          \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": \"{}\"}}]",
                json_escape(reason)
            );
        }
        out.push_str("\n        }");
    }
    let _ = write!(
        out,
        "\n      ],\n      \"properties\": {{\"filesScanned\": {}, \"active\": {}, \"suppressed\": {}}}\n    }}\n  ]\n}}\n",
        report.files_scanned,
        report.active_count(),
        report.suppressed_count()
    );
    out
}

/// Renders the guarded-command IR dump (`--dump-ir`) for every file the
/// conformance layer certifies: L13 handler scopes and L15 emission
/// scopes, in config order with duplicates merged. The output is
/// deterministic and pinned under `results/gcir.json` by CI.
///
/// # Errors
///
/// Propagates filesystem errors reading a configured file; a configured
/// file that is missing or unparsable is skipped (the lint run itself
/// reports it).
pub fn render_ir_dump(root: &Path, cfg: &Config) -> io::Result<String> {
    // scope -> wanted fn names, in first-seen config order.
    let mut scopes: Vec<(String, Vec<String>)> = Vec::new();
    let mut add = |file: &str, fns: &[String]| {
        if let Some((_, wanted)) = scopes.iter_mut().find(|(f, _)| f == file) {
            for f in fns {
                if !wanted.contains(f) {
                    wanted.push(f.clone());
                }
            }
        } else {
            scopes.push((file.to_string(), fns.to_vec()));
        }
    };
    for c in &cfg.l13_conform {
        add(&c.file, &c.handlers);
    }
    for s in &cfg.l15_scopes {
        add(&s.file, &s.functions);
    }
    let mut dumped: Vec<(String, Vec<gcir::HandlerIr>)> = Vec::new();
    for (rel, mut wanted) in scopes {
        let path = root.join(&rel);
        if !path.is_file() {
            continue;
        }
        let source = fs::read_to_string(&path)?;
        let Ok(file) = syn::parse_file(&source) else {
            continue;
        };
        if wanted.iter().any(|f| f == "*") {
            let mut fns = Vec::new();
            callgraph::collect_fns(&file.items, false, &mut fns);
            wanted = fns.iter().map(|f| f.ident.clone()).collect();
        }
        dumped.push((rel, gcir::extract(&file, &wanted)));
    }
    Ok(gcir::render_json_dump(&dumped))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pragma_line(rest: &str) -> String {
        format!("// {} {rest}", concat!("adore-", "lint:"))
    }

    #[test]
    fn suppression_marks_but_keeps_findings() {
        let cfg = Config {
            l1_crates: vec!["crates/core".into()],
            ..Config::default()
        };
        let src = format!(
            "fn f() {{\n    {}\n    let t = Instant::now();\n    let m = HashMap::new();\n}}\n",
            pragma_line(r#"allow(L1, reason = "wall-clock timing only")"#)
        );
        let f = lint_source("crates/core/src/a.rs", &src, &cfg);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].suppressed && f[0].reason.as_deref() == Some("wall-clock timing only"));
        assert!(!f[1].suppressed);
    }

    #[test]
    fn parse_error_becomes_e0() {
        let cfg = Config::default();
        let f = lint_source("crates/core/src/a.rs", "fn broken( {", &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "E0");
    }

    #[test]
    fn json_rendering_escapes() {
        let report = Report {
            findings: vec![Finding {
                rule: "L1".into(),
                file: "a\"b.rs".into(),
                line: 1,
                col: 0,
                msg: "quote \" and\nnewline".into(),
                suppressed: false,
                reason: None,
            }],
            files_scanned: 1,
        };
        let json = render_json(&report);
        assert!(json.contains(r#""file": "a\"b.rs""#));
        assert!(json.contains(r#"quote \" and\nnewline"#));
    }
}
