//! Lint configuration: the `adore-lint.toml` model and a parser for the
//! TOML subset it uses.
//!
//! The subset: `#` comments, `[table.path]` headers, `[[array.of.tables]]`
//! headers, and `key = value` pairs where a value is a string, integer,
//! boolean, or (possibly multi-line) array of strings. That is everything
//! the shipped configuration needs, and keeping the parser in-tree keeps
//! the lint dependency-free (the container has no registry access).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// A nested table.
    Table(BTreeMap<String, Value>),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn string_array(&self) -> Vec<String> {
        match self {
            Value::Array(xs) => xs
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// A configuration error with its line number.
#[derive(Debug, Clone)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "adore-lint.toml:{}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

/// One L2 scope: a file plus the functions inside it that must stay
/// panic-free (`["*"]` covers the whole file).
#[derive(Debug, Clone)]
pub struct L2Scope {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// Function names in scope; `*` means every function.
    pub functions: Vec<String>,
}

/// One L3 protected type: its fields may only be assigned inside the
/// owner files. The check runs within `crate_dir` — across crates the
/// fields are private, so rustc's privacy already enforces the boundary.
#[derive(Debug, Clone)]
pub struct L3Type {
    /// Type name (diagnostic label only; matching is field-based).
    pub type_name: String,
    /// Crate directory the fields live in, e.g. `crates/core`.
    pub crate_dir: String,
    /// Protected field names.
    pub fields: Vec<String>,
    /// Files allowed to assign those fields.
    pub owners: Vec<String>,
    /// When set, `Type { .. }` literals outside the owner files are also
    /// flagged (construction protection, e.g. journal event types).
    pub construct: bool,
}

/// One L6 entry: fields whose assignment must be dominated by a guard
/// call on every control-flow path (the static analogue of consulting
/// R1⁺/R2/R3 before a commit/reconfig transition).
#[derive(Debug, Clone)]
pub struct L6Protected {
    /// Type name (diagnostic label only; matching is field-based).
    pub type_name: String,
    /// Crate directory the check runs in, e.g. `crates/raft`.
    pub crate_dir: String,
    /// Guarded field names.
    pub fields: Vec<String>,
    /// Guard predicate names; a call to *any* of them dominating the
    /// assignment satisfies the rule. Helpers that call a guard on all
    /// their paths count via the one-level call graph.
    pub guards: Vec<String>,
}

/// One L13 differential-conformance scope: a protocol-handler file,
/// the handlers to certify, and the corpus bounds for the checker's
/// bounded explorer.
#[derive(Debug, Clone)]
pub struct L13Conform {
    /// Workspace-relative handler file (forward slashes).
    pub file: String,
    /// Handler function names, one per schedulable event kind.
    pub handlers: Vec<String>,
    /// Bounded-exploration depth for the (state, event) corpus.
    pub depth: usize,
    /// Sample cap; the corpus truncates beyond it.
    pub max_samples: usize,
}

/// One L14 semantic guard-sufficiency entry: protected fields whose
/// every IR-level assignment must be dominated, on the same path, by a
/// guard atom of one of the required semantic kinds.
#[derive(Debug, Clone)]
pub struct L14Protected {
    /// Workspace-relative file the protected type's mutations live in.
    pub file: String,
    /// Type name (diagnostic label only; matching is field-based).
    pub type_name: String,
    /// Protected field names.
    pub fields: Vec<String>,
    /// Accepted guard kinds: `quorum`, `log-consistency`, `r1`, `r2`,
    /// `r3`, `member` — any one dominating the assignment satisfies
    /// the rule (with `r2` counted in its protective, negated form).
    pub kinds: Vec<String>,
}

/// The full lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) to scan for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes excluded from the scan.
    pub exclude: Vec<String>,
    /// L1: crate directories that must be deterministic.
    pub l1_crates: Vec<String>,
    /// L2: panic-free scopes.
    pub l2_scopes: Vec<L2Scope>,
    /// L3: mutation-encapsulated types.
    pub l3_types: Vec<L3Type>,
    /// L4: type names that must carry `#[must_use]`.
    pub l4_must_use_types: Vec<String>,
    /// L4: function-name prefixes whose return value must be consumed.
    pub l4_consume_prefixes: Vec<String>,
    /// L4: path prefixes where the consumption check applies.
    pub l4_paths: Vec<String>,
    /// L5: crate directories where stray console output is banned.
    pub l5_crates: Vec<String>,
    /// L5: path prefixes (files or directories) exempt from the ban —
    /// bin entry points whose job *is* console output.
    pub l5_allow: Vec<String>,
    /// L6: guard-before-mutation entries.
    pub l6_protected: Vec<L6Protected>,
    /// L7: crate directories where nondeterminism taint is tracked.
    pub l7_crates: Vec<String>,
    /// L7: field names that count as protocol-state sinks.
    pub l7_sink_fields: Vec<String>,
    /// L8: names treated as fallible callees in addition to same-file
    /// functions whose signature returns `Result`/`Option`.
    pub l8_fallible: Vec<String>,
    /// L9: crate directories whose lock-acquisition graph must be
    /// acyclic (each crate gets its own graph; helpers are summarized
    /// cross-file within the crate).
    pub l9_crates: Vec<String>,
    /// L9: lock names pinned to a global acquisition order. Optional —
    /// cycles are reported regardless; listed names additionally fix
    /// the documented order for diagnostics.
    pub l9_locks: Vec<String>,
    /// L10: long-lived-thread scopes where `lock().unwrap()/.expect()`
    /// is banned (poisoning must flow through a typed path).
    pub l10_scopes: Vec<L2Scope>,
    /// L11: crate directories where no lock guard may be live across a
    /// blocking call.
    pub l11_crates: Vec<String>,
    /// L11: callee names treated as blocking (socket reads/writes,
    /// channel recv/send, sleeps, joins).
    pub l11_blocking: Vec<String>,
    /// L12: crate directories where unbounded `mpsc::channel()` is
    /// banned on protocol paths (bounded `sync_channel` only).
    pub l12_crates: Vec<String>,
    /// L12: hot-path scopes where channel sends must be `try_send`
    /// with the shed outcome explicitly handled.
    pub l12_scopes: Vec<L2Scope>,
    /// L13: differential-conformance scopes (extracted IR vs the
    /// checker's transition system).
    pub l13_conform: Vec<L13Conform>,
    /// L14: semantic guard-sufficiency entries.
    pub l14_protected: Vec<L14Protected>,
    /// L15: scopes whose IR paths must never emit a durable effect
    /// (persist/journal) after an outbound one (send/reply).
    pub l15_scopes: Vec<L2Scope>,
}

/// The blocking-callee names L11 assumes when the config does not
/// override them: blocking socket IO, blocking channel endpoints, and
/// thread parking.
pub const DEFAULT_BLOCKING: &[&str] = &[
    "read",
    "read_exact",
    "read_to_end",
    "write_all",
    "flush",
    "connect",
    "accept",
    "recv",
    "recv_timeout",
    "send",
    "sleep",
    "join",
    "wait",
];

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: vec!["crates".into(), "src".into()],
            exclude: Vec::new(),
            l1_crates: Vec::new(),
            l2_scopes: Vec::new(),
            l3_types: Vec::new(),
            l4_must_use_types: Vec::new(),
            l4_consume_prefixes: vec!["check_".into(), "certify_".into()],
            l4_paths: vec!["crates".into()],
            l5_crates: Vec::new(),
            l5_allow: Vec::new(),
            l6_protected: Vec::new(),
            l7_crates: Vec::new(),
            l7_sink_fields: Vec::new(),
            l8_fallible: Vec::new(),
            l9_crates: Vec::new(),
            l9_locks: Vec::new(),
            l10_scopes: Vec::new(),
            l11_crates: Vec::new(),
            l11_blocking: DEFAULT_BLOCKING.iter().map(|s| (*s).into()).collect(),
            l12_crates: Vec::new(),
            l12_scopes: Vec::new(),
            l13_conform: Vec::new(),
            l14_protected: Vec::new(),
            l15_scopes: Vec::new(),
        }
    }
}

impl Config {
    /// Parses a configuration from `adore-lint.toml` text.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its line number.
    pub fn from_toml(text: &str) -> Result<Config, ConfigError> {
        let root = parse_toml(text)?;
        let mut cfg = Config::default();

        if let Some(Value::Table(scan)) = root.get("scan") {
            if let Some(v) = scan.get("roots") {
                cfg.roots = v.string_array();
            }
            if let Some(v) = scan.get("exclude") {
                cfg.exclude = v.string_array();
            }
        }
        let rules = match root.get("rules") {
            Some(Value::Table(t)) => t.clone(),
            _ => BTreeMap::new(),
        };
        if let Some(Value::Table(l1)) = rules.get("L1") {
            if let Some(v) = l1.get("crates") {
                cfg.l1_crates = v.string_array();
            }
        }
        if let Some(Value::Table(l2)) = rules.get("L2") {
            if let Some(Value::Array(scopes)) = l2.get("scopes") {
                for s in scopes {
                    let Value::Table(t) = s else { continue };
                    cfg.l2_scopes.push(L2Scope {
                        file: t.get("file").and_then(Value::as_str).unwrap_or("").into(),
                        functions: t
                            .get("functions")
                            .map(Value::string_array)
                            .unwrap_or_default(),
                    });
                }
            }
        }
        if let Some(Value::Table(l3)) = rules.get("L3") {
            if let Some(Value::Array(types)) = l3.get("types") {
                for s in types {
                    let Value::Table(t) = s else { continue };
                    cfg.l3_types.push(L3Type {
                        type_name: t.get("type").and_then(Value::as_str).unwrap_or("").into(),
                        crate_dir: t
                            .get("crate_dir")
                            .and_then(Value::as_str)
                            .unwrap_or("")
                            .into(),
                        fields: t.get("fields").map(Value::string_array).unwrap_or_default(),
                        owners: t.get("owners").map(Value::string_array).unwrap_or_default(),
                        construct: matches!(t.get("construct"), Some(Value::Bool(true))),
                    });
                }
            }
        }
        if let Some(Value::Table(l4)) = rules.get("L4") {
            if let Some(v) = l4.get("must_use_types") {
                cfg.l4_must_use_types = v.string_array();
            }
            if let Some(v) = l4.get("consume_prefixes") {
                cfg.l4_consume_prefixes = v.string_array();
            }
            if let Some(v) = l4.get("paths") {
                cfg.l4_paths = v.string_array();
            }
        }
        if let Some(Value::Table(l5)) = rules.get("L5") {
            if let Some(v) = l5.get("crates") {
                cfg.l5_crates = v.string_array();
            }
            if let Some(v) = l5.get("allow") {
                cfg.l5_allow = v.string_array();
            }
        }
        if let Some(Value::Table(l6)) = rules.get("L6") {
            if let Some(Value::Array(entries)) = l6.get("protected") {
                for s in entries {
                    let Value::Table(t) = s else { continue };
                    cfg.l6_protected.push(L6Protected {
                        type_name: t.get("type").and_then(Value::as_str).unwrap_or("").into(),
                        crate_dir: t
                            .get("crate_dir")
                            .and_then(Value::as_str)
                            .unwrap_or("")
                            .into(),
                        fields: t.get("fields").map(Value::string_array).unwrap_or_default(),
                        guards: t.get("guards").map(Value::string_array).unwrap_or_default(),
                    });
                }
            }
        }
        if let Some(Value::Table(l7)) = rules.get("L7") {
            if let Some(v) = l7.get("crates") {
                cfg.l7_crates = v.string_array();
            }
            if let Some(v) = l7.get("sink_fields") {
                cfg.l7_sink_fields = v.string_array();
            }
        }
        if let Some(Value::Table(l8)) = rules.get("L8") {
            if let Some(v) = l8.get("fallible") {
                cfg.l8_fallible = v.string_array();
            }
        }
        if let Some(Value::Table(l9)) = rules.get("L9") {
            if let Some(v) = l9.get("crates") {
                cfg.l9_crates = v.string_array();
            }
            if let Some(v) = l9.get("locks") {
                cfg.l9_locks = v.string_array();
            }
        }
        if let Some(Value::Table(l10)) = rules.get("L10") {
            if let Some(Value::Array(scopes)) = l10.get("scopes") {
                for s in scopes {
                    let Value::Table(t) = s else { continue };
                    cfg.l10_scopes.push(L2Scope {
                        file: t.get("file").and_then(Value::as_str).unwrap_or("").into(),
                        functions: t
                            .get("functions")
                            .map(Value::string_array)
                            .unwrap_or_default(),
                    });
                }
            }
        }
        if let Some(Value::Table(l11)) = rules.get("L11") {
            if let Some(v) = l11.get("crates") {
                cfg.l11_crates = v.string_array();
            }
            if let Some(v) = l11.get("blocking") {
                cfg.l11_blocking = v.string_array();
            }
        }
        if let Some(Value::Table(l12)) = rules.get("L12") {
            if let Some(v) = l12.get("crates") {
                cfg.l12_crates = v.string_array();
            }
            if let Some(Value::Array(scopes)) = l12.get("scopes") {
                for s in scopes {
                    let Value::Table(t) = s else { continue };
                    cfg.l12_scopes.push(L2Scope {
                        file: t.get("file").and_then(Value::as_str).unwrap_or("").into(),
                        functions: t
                            .get("functions")
                            .map(Value::string_array)
                            .unwrap_or_default(),
                    });
                }
            }
        }
        if let Some(Value::Table(l13)) = rules.get("L13") {
            if let Some(Value::Array(entries)) = l13.get("conform") {
                for s in entries {
                    let Value::Table(t) = s else { continue };
                    let int_or = |key: &str, dflt: usize| match t.get(key) {
                        Some(Value::Int(n)) if *n >= 0 => *n as usize,
                        _ => dflt,
                    };
                    cfg.l13_conform.push(L13Conform {
                        file: t.get("file").and_then(Value::as_str).unwrap_or("").into(),
                        handlers: t
                            .get("handlers")
                            .map(Value::string_array)
                            .unwrap_or_default(),
                        depth: int_or("depth", 4),
                        max_samples: int_or("max_samples", 60_000),
                    });
                }
            }
        }
        if let Some(Value::Table(l14)) = rules.get("L14") {
            if let Some(Value::Array(entries)) = l14.get("protected") {
                for s in entries {
                    let Value::Table(t) = s else { continue };
                    cfg.l14_protected.push(L14Protected {
                        file: t.get("file").and_then(Value::as_str).unwrap_or("").into(),
                        type_name: t.get("type").and_then(Value::as_str).unwrap_or("").into(),
                        fields: t.get("fields").map(Value::string_array).unwrap_or_default(),
                        kinds: t.get("kinds").map(Value::string_array).unwrap_or_default(),
                    });
                }
            }
        }
        if let Some(Value::Table(l15)) = rules.get("L15") {
            if let Some(Value::Array(scopes)) = l15.get("scopes") {
                for s in scopes {
                    let Value::Table(t) = s else { continue };
                    cfg.l15_scopes.push(L2Scope {
                        file: t.get("file").and_then(Value::as_str).unwrap_or("").into(),
                        functions: t
                            .get("functions")
                            .map(Value::string_array)
                            .unwrap_or_default(),
                    });
                }
            }
        }
        Ok(cfg)
    }
}

/// Parses the TOML subset into a table tree.
fn parse_toml(text: &str) -> Result<BTreeMap<String, Value>, ConfigError> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // The table path currently being filled, as (segments, array_table).
    let mut current: Vec<String> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();

    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(path) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let segments: Vec<String> = path.split('.').map(|s| s.trim().to_string()).collect();
            push_array_table(&mut root, &segments, lineno)?;
            current = segments;
            continue;
        }
        if let Some(path) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let segments: Vec<String> = path.split('.').map(|s| s.trim().to_string()).collect();
            ensure_table(&mut root, &segments, lineno)?;
            current = segments;
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(ConfigError {
                line: lineno,
                msg: format!("expected `key = value` or a table header, got `{line}`"),
            });
        };
        let key = line[..eq].trim().to_string();
        let mut value_text = line[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets balance
        // outside strings.
        while bracket_balance(&value_text) > 0 {
            let Some((_, next)) = lines.next() else {
                return Err(ConfigError {
                    line: lineno,
                    msg: "unterminated array".into(),
                });
            };
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
        }
        let value = parse_value(&value_text, lineno)?;
        insert_at(&mut root, &current, key, value, lineno)?;
    }
    Ok(root)
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn bracket_balance(s: &str) -> i32 {
    let mut bal = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => bal += 1,
            ']' if !in_str => bal -= 1,
            _ => {}
        }
    }
    bal
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ConfigError> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix('"') {
        let mut out = String::new();
        let mut escaped = false;
        for c in rest.chars() {
            if escaped {
                out.push(match c {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Ok(Value::Str(out));
            } else {
                out.push(c);
            }
        }
        return Err(ConfigError {
            line: lineno,
            msg: "unterminated string".into(),
        });
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part, lineno)?);
            }
        }
        return Ok(Value::Array(items));
    }
    text.parse::<i64>().map(Value::Int).map_err(|_| ConfigError {
        line: lineno,
        msg: format!("unsupported value `{text}`"),
    })
}

/// Splits an array body on top-level commas (strings respected).
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut buf = String::new();
    let mut in_str = false;
    let mut escaped = false;
    let mut depth = 0i32;
    for c in s.chars() {
        if escaped {
            buf.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => {
                buf.push(c);
                escaped = true;
            }
            '"' => {
                in_str = !in_str;
                buf.push(c);
            }
            '[' if !in_str => {
                depth += 1;
                buf.push(c);
            }
            ']' if !in_str => {
                depth -= 1;
                buf.push(c);
            }
            ',' if !in_str && depth == 0 => {
                parts.push(std::mem::take(&mut buf));
            }
            _ => buf.push(c),
        }
    }
    if !buf.trim().is_empty() {
        parts.push(buf);
    }
    parts
}

fn ensure_table<'t>(
    root: &'t mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<&'t mut BTreeMap<String, Value>, ConfigError> {
    let mut cur = root;
    for seg in path {
        let entry = cur
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        cur = match entry {
            Value::Table(t) => t,
            // [[x]] then [x.y]: descend into the array's last table.
            Value::Array(xs) => match xs.last_mut() {
                Some(Value::Table(t)) => t,
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        msg: format!("`{seg}` is not a table"),
                    })
                }
            },
            _ => {
                return Err(ConfigError {
                    line: lineno,
                    msg: format!("`{seg}` is not a table"),
                })
            }
        };
    }
    Ok(cur)
}

fn push_array_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<(), ConfigError> {
    let (last, parents) = path.split_last().ok_or(ConfigError {
        line: lineno,
        msg: "empty table path".into(),
    })?;
    let parent = ensure_table(root, parents, lineno)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(xs) => {
            xs.push(Value::Table(BTreeMap::new()));
            Ok(())
        }
        _ => Err(ConfigError {
            line: lineno,
            msg: format!("`{last}` is not an array of tables"),
        }),
    }
}

fn insert_at(
    root: &mut BTreeMap<String, Value>,
    table: &[String],
    key: String,
    value: Value,
    lineno: usize,
) -> Result<(), ConfigError> {
    let t = ensure_table(root, table, lineno)?;
    t.insert(key, value);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_shape() {
        let cfg = Config::from_toml(
            r#"
# comment
[scan]
roots = ["crates", "src"]
exclude = ["crates/lint/tests/fixtures"]

[rules.L1]
crates = [
    "crates/core",
    "crates/checker",
]

[[rules.L2.scopes]]
file = "crates/storage/src/wal.rs"
functions = ["recover", "advance_mirror"]

[[rules.L2.scopes]]
file = "crates/raft/src/net.rs"
functions = ["*"]

[[rules.L3.types]]
type = "AdoreState"
crate_dir = "crates/core"
fields = ["tree", "times"]
owners = ["crates/core/src/state.rs"]

[rules.L4]
must_use_types = ["Violation"]
consume_prefixes = ["check_", "certify_"]
paths = ["crates"]

[rules.L5]
crates = ["crates/core", "crates/obs"]
allow = ["crates/obs/src/main.rs"]

[[rules.L3.types]]
type = "TraceEvent"
crate_dir = "crates"
fields = []
owners = ["crates/obs/src/event.rs"]
construct = true

[[rules.L6.protected]]
type = "Server"
crate_dir = "crates/raft"
fields = ["commit_len", "log"]
guards = ["is_quorum", "log_up_to_date"]

[rules.L7]
crates = ["crates/raft"]
sink_fields = ["commit_len", "log"]

[rules.L8]
fallible = ["split_frame"]

[rules.L9]
crates = ["crates/adored"]
locks = ["clients", "state"]

[[rules.L10.scopes]]
file = "crates/adored/src/node.rs"
functions = ["*"]

[rules.L11]
crates = ["crates/adored"]
blocking = ["recv", "write_all"]

[rules.L12]
crates = ["crates/adored"]

[[rules.L12.scopes]]
file = "crates/adored/src/node.rs"
functions = ["run"]
"#,
        )
        .expect("parses");
        assert_eq!(cfg.roots, vec!["crates", "src"]);
        assert_eq!(cfg.l1_crates.len(), 2);
        assert_eq!(cfg.l2_scopes.len(), 2);
        assert_eq!(cfg.l2_scopes[1].functions, vec!["*"]);
        assert_eq!(cfg.l3_types[0].fields, vec!["tree", "times"]);
        assert_eq!(cfg.l4_must_use_types, vec!["Violation"]);
        assert_eq!(cfg.l5_crates, vec!["crates/core", "crates/obs"]);
        assert_eq!(cfg.l5_allow, vec!["crates/obs/src/main.rs"]);
        assert!(!cfg.l3_types[0].construct);
        assert!(cfg.l3_types[1].construct);
        assert_eq!(cfg.l3_types[1].type_name, "TraceEvent");
        assert_eq!(cfg.l6_protected.len(), 1);
        assert_eq!(cfg.l6_protected[0].guards, vec!["is_quorum", "log_up_to_date"]);
        assert_eq!(cfg.l7_crates, vec!["crates/raft"]);
        assert_eq!(cfg.l7_sink_fields, vec!["commit_len", "log"]);
        assert_eq!(cfg.l8_fallible, vec!["split_frame"]);
        assert_eq!(cfg.l9_crates, vec!["crates/adored"]);
        assert_eq!(cfg.l9_locks, vec!["clients", "state"]);
        assert_eq!(cfg.l10_scopes.len(), 1);
        assert_eq!(cfg.l10_scopes[0].functions, vec!["*"]);
        assert_eq!(cfg.l11_blocking, vec!["recv", "write_all"]);
        assert_eq!(cfg.l12_crates, vec!["crates/adored"]);
        assert_eq!(cfg.l12_scopes[0].functions, vec!["run"]);
    }

    #[test]
    fn blocking_list_defaults_when_unconfigured() {
        let cfg = Config::from_toml("[rules.L11]\ncrates = [\"crates/adored\"]").expect("parses");
        assert_eq!(cfg.l11_crates, vec!["crates/adored"]);
        assert!(cfg.l11_blocking.iter().any(|b| b == "recv"));
        assert!(cfg.l11_blocking.iter().any(|b| b == "write_all"));
        assert!(cfg.l11_blocking.iter().any(|b| b == "sleep"));
    }

    #[test]
    fn rejects_bad_syntax_with_line_numbers() {
        let err = Config::from_toml("[scan]\nroots ?").unwrap_err();
        assert_eq!(err.line, 2);
        let err = Config::from_toml("[scan]\nroots = [\"a\"").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = Config::from_toml("[scan]\nroots = [\"a#b\"] # trailing").expect("parses");
        assert_eq!(cfg.roots, vec!["a#b"]);
    }
}
