//! Fixture suite: every rule is exercised against a known-bad snippet
//! and asserted down to exact rule ids and line numbers, plus the
//! workspace self-check that keeps the real tree clean.

use std::path::{Path, PathBuf};

use adore_lint::config::{Config, L2Scope, L3Type};
use adore_lint::{lint_source, Finding};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rule_lines(findings: &[Finding]) -> Vec<(String, usize, bool)> {
    findings
        .iter()
        .map(|f| (f.rule.clone(), f.line, f.suppressed))
        .collect()
}

fn fixture_config() -> Config {
    Config {
        roots: vec!["crates".into()],
        exclude: Vec::new(),
        l1_crates: vec!["crates/core".into()],
        l2_scopes: vec![L2Scope {
            file: "crates/storage/src/wal.rs".into(),
            functions: vec!["recover".into(), "replay".into()],
        }],
        l3_types: vec![L3Type {
            type_name: "Server".into(),
            crate_dir: "crates/raft".into(),
            fields: vec!["role".into(), "commit_len".into()],
            owners: vec!["crates/raft/src/net.rs".into()],
            construct: false,
        }],
        l4_must_use_types: vec!["Violation".into()],
        l5_crates: vec!["crates/core".into()],
        l5_allow: vec!["crates/core/src/bin".into()],
        l4_consume_prefixes: vec!["check_".into(), "certify_".into()],
        l4_paths: vec!["crates".into()],
        l6_protected: Vec::new(),
        l7_crates: Vec::new(),
        l7_sink_fields: Vec::new(),
        l8_fallible: Vec::new(),
        ..Config::default()
    }
}

#[test]
fn l1_fixture_exact_lines() {
    let src = fixture("l1_determinism.rs");
    let f = lint_source("crates/core/src/fixture.rs", &src, &fixture_config());
    let expected: Vec<(String, usize, bool)> = [4, 6, 7, 13, 18, 19, 20]
        .iter()
        .map(|&l| ("L1".to_string(), l, false))
        .collect();
    assert_eq!(rule_lines(&f), expected, "{f:#?}");
}

#[test]
fn l2_fixture_exact_lines() {
    let src = fixture("l2_recovery.rs");
    let f = lint_source("crates/storage/src/wal.rs", &src, &fixture_config());
    let expected: Vec<(String, usize, bool)> = [5, 6, 7, 9, 11, 12, 16]
        .iter()
        .map(|&l| ("L2".to_string(), l, false))
        .collect();
    assert_eq!(rule_lines(&f), expected, "{f:#?}");
    // The same source outside the configured scope is clean.
    let clean = lint_source("crates/storage/src/lib.rs", &src, &fixture_config());
    assert!(clean.is_empty(), "{clean:#?}");
}

#[test]
fn l3_fixture_exact_lines() {
    let src = fixture("l3_mutation.rs");
    let f = lint_source("crates/raft/src/refine.rs", &src, &fixture_config());
    let expected: Vec<(String, usize, bool)> = [6, 7]
        .iter()
        .map(|&l| ("L3".to_string(), l, false))
        .collect();
    assert_eq!(rule_lines(&f), expected, "{f:#?}");
    // The owner file may assign the protected fields.
    let owner = lint_source("crates/raft/src/net.rs", &src, &fixture_config());
    assert!(owner.is_empty(), "{owner:#?}");
}

#[test]
fn l4_fixture_exact_lines() {
    let src = fixture("l4_certificates.rs");
    let f = lint_source("crates/kv/src/fixture.rs", &src, &fixture_config());
    let expected: Vec<(String, usize, bool)> = [4, 9, 10]
        .iter()
        .map(|&l| ("L4".to_string(), l, false))
        .collect();
    assert_eq!(rule_lines(&f), expected, "{f:#?}");
}

#[test]
fn suppression_fixture_both_forms_and_p0() {
    let src = fixture("suppression.rs");
    let f = lint_source("crates/core/src/fixture.rs", &src, &fixture_config());
    let got = rule_lines(&f);
    let expected = vec![
        ("L1".to_string(), 4, true),   // same-line pragma
        ("L1".to_string(), 6, true),   // standalone pragma on line 5
        ("L1".to_string(), 7, false),  // no pragma
        ("P0".to_string(), 12, false), // missing reason is itself a finding
        ("L1".to_string(), 12, false), // ... and suppresses nothing
        ("P0".to_string(), 13, false), // no rules listed
        ("L1".to_string(), 14, false),
        ("P0".to_string(), 15, false), // empty reason: no suppression
        ("L1".to_string(), 15, false),
    ];
    assert_eq!(got, expected, "{f:#?}");
    // Suppressed findings carry the pragma's reason verbatim.
    assert_eq!(f[0].reason.as_deref(), Some("timing display only"));
    assert_eq!(f[1].reason.as_deref(), Some("probe map is never iterated"));
}

#[test]
fn parse_error_fixture_is_e0() {
    let src = fixture("parse_error.rs");
    let f = lint_source("crates/core/src/fixture.rs", &src, &fixture_config());
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!((f[0].rule.as_str(), f[0].suppressed), ("E0", false));
    // The lexer reports the unbalanced delimiter at end of input.
    assert_eq!(f[0].line, 3, "{f:#?}");
}

/// The workspace itself must be lint-clean: zero unsuppressed findings
/// under the shipped adore-lint.toml, and every suppression must carry
/// a non-empty reason. This is the same invariant ci.sh gates on.
#[test]
fn workspace_self_check_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_text = std::fs::read_to_string(root.join("adore-lint.toml")).expect("shipped config");
    let cfg = Config::from_toml(&cfg_text).expect("shipped config parses");
    let report = adore_lint::run_lint(&root, &cfg).expect("workspace scans");

    assert!(
        report.files_scanned > 80,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let active: Vec<&Finding> = report.active().collect();
    assert!(
        active.is_empty(),
        "workspace has unsuppressed lint findings:\n{}",
        adore_lint::render_text(&report)
    );
    for f in &report.findings {
        assert!(
            f.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "suppressed finding without a reason: {f:?}"
        );
    }
    // The fixtures directory must stay excluded, or its known-bad
    // snippets would fail the scan above.
    assert!(Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/l1_determinism.rs")
        .exists());
}
