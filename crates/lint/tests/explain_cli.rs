//! End-to-end tests for `adore-lint --explain RULE` through the real
//! binary: rationale text on stdout, exit statuses, and the unknown-
//! rule error path.

use std::process::Command;

fn explain(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_adore-lint"))
        .args(args)
        .output()
        .expect("run adore-lint")
}

#[test]
fn every_rule_explains_itself_and_exits_zero() {
    for id in adore_lint::explain::RULE_IDS {
        let out = explain(&["--explain", id]);
        assert!(out.status.success(), "--explain {id} must exit 0");
        let text = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            text.contains(id),
            "--explain {id} output names the rule:\n{text}"
        );
    }
}

#[test]
fn explain_is_case_insensitive() {
    let out = explain(&["--explain", "l6"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("guard-before-mutation"), "{text}");
}

#[test]
fn l6_explanation_cites_the_paper_guards_and_shows_an_example() {
    let out = explain(&["--explain", "L6"]);
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("R1+/R2/R3"), "{text}");
    assert!(text.contains("Violating example"), "{text}");
    assert!(text.contains("is_quorum"), "{text}");
}

#[test]
fn unknown_rule_exits_two_and_lists_known_ids() {
    let out = explain(&["--explain", "L99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("unknown rule `L99`"), "{err}");
    assert!(err.contains("L6"), "error must list the known ids: {err}");
}

#[test]
fn missing_operand_exits_two() {
    let out = explain(&["--explain"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("--explain expects a rule id"), "{err}");
}
