//! Flow-rule fixture suite: L6/L7/L8 and the obs L3 extensions pinned
//! to exact (rule, line, col) positions, plus the self-ablation test
//! that deletes real guards from a copy of the raft transition code and
//! checks L6 pinpoints the newly unguarded mutation lines.

use std::path::PathBuf;

use adore_lint::config::{Config, L2Scope, L3Type, L6Protected};
use adore_lint::{lint_source, Finding};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(rule, line, col)` triples, col 0-based as stored.
fn positions(findings: &[Finding]) -> Vec<(String, usize, usize)> {
    findings
        .iter()
        .map(|f| (f.rule.clone(), f.line, f.col))
        .collect()
}

fn flow_config() -> Config {
    Config {
        l2_scopes: vec![L2Scope {
            file: "crates/storage/src/fixture.rs".into(),
            functions: vec!["recover".into()],
        }],
        l3_types: vec![
            L3Type {
                type_name: "TraceEvent".into(),
                crate_dir: "crates".into(),
                fields: Vec::new(),
                owners: vec!["crates/obs/src/event.rs".into()],
                construct: true,
            },
            L3Type {
                type_name: "Metrics".into(),
                crate_dir: "crates/obs".into(),
                fields: vec!["counters".into(), "gauges".into(), "histograms".into()],
                owners: vec!["crates/obs/src/metrics.rs".into()],
                construct: false,
            },
        ],
        l6_protected: vec![L6Protected {
            type_name: "Server".into(),
            crate_dir: "crates/raft".into(),
            fields: vec!["log".into(), "commit_len".into()],
            guards: vec!["is_quorum".into(), "log_up_to_date".into()],
        }],
        l7_crates: vec!["crates/core".into(), "crates/raft".into()],
        l7_sink_fields: vec!["commit_len".into(), "times".into(), "log".into()],
        l8_fallible: vec!["remote_sync".into()],
        ..Config::default()
    }
}

#[test]
fn l6_fixture_exact_positions() {
    let src = fixture("l6_guard.rs");
    let f = lint_source("crates/raft/src/fixture.rs", &src, &flow_config());
    let expected = vec![
        // branch_skips_guard: the fast path writes without consulting
        // any guard.
        ("L6".to_string(), 12, 10),
        // via_partial_helper: half_hearted only guards on one of its
        // own paths, so it contributes nothing.
        ("L6".to_string(), 38, 10),
        // match_arm_early_return: the Msg::Fast arm skips the guard the
        // Msg::Ack arm consulted.
        ("L6".to_string(), 52, 14),
        // join_loses_guard: only the else branch consulted the guard,
        // so the join point is unguarded.
        ("L6".to_string(), 81, 6),
    ];
    assert_eq!(positions(&f), expected, "{f:#?}");
}

#[test]
fn l7_fixture_exact_positions() {
    let src = fixture("l7_taint.rs");
    // Scanned under a crate L7 covers but L6 does not, so the taint
    // positions are pinned in isolation.
    let f = lint_source("crates/core/src/fixture.rs", &src, &flow_config());
    let expected = vec![
        // direct_sink: banned source on the assignment's right side.
        ("L7".to_string(), 5, 6),
        // rename_chain: taint survives two let-renames into `times`.
        ("L7".to_string(), 11, 6),
        // helper_return: jitter()'s whole body derives from a banned
        // source, so its return value is tainted.
        ("L7".to_string(), 19, 6),
        // branch_join_keeps_taint: may-analysis keeps the taint from
        // the then-branch across the join.
        ("L7".to_string(), 33, 6),
    ];
    assert_eq!(positions(&f), expected, "{f:#?}");
}

#[test]
fn l8_fixture_exact_positions() {
    let src = fixture("l8_discard.rs");
    let f = lint_source("crates/storage/src/fixture.rs", &src, &flow_config());
    let expected = vec![
        // `let _ =` discard of a same-file Option-returning callee.
        ("L8".to_string(), 17, 12),
        // bare statement discarding a same-file Result.
        ("L8".to_string(), 18, 4),
        // bare statement discarding a configured cross-file fallible.
        ("L8".to_string(), 19, 4),
    ];
    assert_eq!(positions(&f), expected, "{f:#?}");
}

#[test]
fn l3_obs_fixture_exact_positions() {
    let src = fixture("l3_obs.rs");
    let f = lint_source("crates/obs/src/other.rs", &src, &flow_config());
    let expected = vec![
        // forged_event: construct-protected literal outside the owner.
        ("L3".to_string(), 6, 4),
        // poke_registry: registry field assigned outside metrics.rs.
        ("L3".to_string(), 21, 6),
    ];
    assert_eq!(positions(&f), expected, "{f:#?}");
    // The owner file may do both.
    let owner_ev = lint_source("crates/obs/src/event.rs", &src, &flow_config());
    assert!(owner_ev.iter().all(|f| f.line != 6), "{owner_ev:#?}");
    let owner_m = lint_source("crates/obs/src/metrics.rs", &src, &flow_config());
    assert!(owner_m.iter().all(|f| f.line != 21), "{owner_m:#?}");
}

// ---------------------------------------------------------------------------
// Self-ablation: run L6 against the *real* transition code, with and
// without its guards.
// ---------------------------------------------------------------------------

fn real_net_rs() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../raft/src/net.rs");
    std::fs::read_to_string(&path).expect("read crates/raft/src/net.rs")
}

fn shipped_config() -> Config {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../adore-lint.toml");
    let text = std::fs::read_to_string(&path).expect("read adore-lint.toml");
    Config::from_toml(&text).expect("shipped config parses")
}

/// 1-based lines whose text contains `needle`.
fn lines_containing(src: &str, needle: &str) -> Vec<usize> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains(needle))
        .map(|(i, _)| i + 1)
        .collect()
}

fn unsuppressed_l6(src: &str) -> Vec<(usize, usize)> {
    lint_source("crates/raft/src/net.rs", src, &shipped_config())
        .iter()
        .filter(|f| f.rule == "L6" && !f.suppressed)
        .map(|f| (f.line, f.col))
        .collect()
}

#[test]
fn unmodified_transition_code_passes_l6() {
    let src = real_net_rs();
    assert_eq!(unsuppressed_l6(&src), vec![], "real net.rs must be L6-clean");
}

#[test]
fn ablating_the_quorum_guard_pinpoints_the_commit_mutation() {
    let src = real_net_rs();
    let guard = "config.is_quorum(ackers) && ";
    assert_eq!(
        lines_containing(&src, guard).len(),
        1,
        "maybe_advance_commit's guard moved; update this test"
    );
    let ablated = src.replacen(guard, "", 1);
    let mutation_lines = lines_containing(&ablated, "s.commit_len = len;");
    assert_eq!(mutation_lines.len(), 1, "mutation site moved; update this test");
    assert_eq!(
        unsuppressed_l6(&ablated),
        vec![(
            mutation_lines[0],
            ablated.lines().nth(mutation_lines[0] - 1).unwrap().find("commit_len").unwrap()
        )],
        "L6 must flag exactly the now-unguarded commit advance"
    );
}

#[test]
fn ablating_the_log_consistency_guard_pinpoints_the_adoption() {
    let src = real_net_rs();
    let guard = "!log_up_to_date(&log, &recipient.log)";
    assert!(
        lines_containing(&src, guard).len() >= 2,
        "Elect/Commit consistency checks moved; update this test"
    );
    let ablated = src.replace(guard, "false");
    // The Commit arm's `recipient.log = log;` and the commit-length
    // adoption right after it both lose their dominating guard.
    let log_lines = lines_containing(&ablated, "recipient.log = log;");
    let clen_lines = lines_containing(&ablated, "recipient.commit_len = recipient.commit_len");
    assert_eq!((log_lines.len(), clen_lines.len()), (1, 1), "sites moved; update this test");
    let flagged: Vec<usize> = unsuppressed_l6(&ablated).iter().map(|&(l, _)| l).collect();
    assert!(
        flagged.contains(&log_lines[0]) && flagged.contains(&clen_lines[0]),
        "L6 must flag the unguarded log adoption lines, got {flagged:?}"
    );
    assert_eq!(flagged.len(), 2, "and nothing else: {flagged:?}");
}
