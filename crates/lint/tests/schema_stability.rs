//! Pins the `--format json` output byte-for-byte. Downstream tooling
//! (CI annotations, the flow_table bench) parses this; any change to
//! field names, field order, indentation, or the footer must show up
//! here as a deliberate diff.

use adore_lint::config::Config;
use adore_lint::{lint_source, render_json, Report};

fn pragma_line(rest: &str) -> String {
    format!("// {} {rest}", concat!("adore-", "lint:"))
}

#[test]
fn json_output_is_pinned_byte_for_byte() {
    let cfg = Config {
        l1_crates: vec!["crates/core".into()],
        ..Config::default()
    };
    let src = format!(
        "fn f() {{\n    let t = Instant::now(); {}\n    let m = HashMap::new();\n}}\n",
        pragma_line(r#"allow(L1, reason = "timing \"display\" only")"#),
    );
    let findings = lint_source("crates/core/src/a.rs", &src, &cfg);
    let report = Report {
        findings,
        files_scanned: 1,
    };
    let expected = concat!(
        "{\n",
        "  \"findings\": [\n",
        "    {\"rule\": \"L1\", \"file\": \"crates/core/src/a.rs\", \"line\": 2, ",
        "\"col\": 13, \"msg\": \"ambient clock `Instant::now` in a protocol crate\", ",
        "\"suppressed\": true, \"reason\": \"timing \\\\\\\"display\\\\\\\" only\"},\n",
        "    {\"rule\": \"L1\", \"file\": \"crates/core/src/a.rs\", \"line\": 3, ",
        "\"col\": 13, \"msg\": \"hash-ordered collection `HashMap` in a protocol crate (use BTreeMap/BTreeSet)\", ",
        "\"suppressed\": false}\n",
        "  ],\n",
        "  \"files_scanned\": 1,\n",
        "  \"active\": 1,\n",
        "  \"suppressed\": 1\n",
        "}\n",
    );
    assert_eq!(render_json(&report), expected);
}

#[test]
fn empty_report_json_is_pinned() {
    let report = Report {
        findings: Vec::new(),
        files_scanned: 42,
    };
    let expected = concat!(
        "{\n",
        "  \"findings\": [\n",
        "  ],\n",
        "  \"files_scanned\": 42,\n",
        "  \"active\": 0,\n",
        "  \"suppressed\": 0\n",
        "}\n",
    );
    assert_eq!(render_json(&report), expected);
}
