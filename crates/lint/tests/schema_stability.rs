//! Pins the `--format json` and `--format sarif` output byte-for-byte.
//! Downstream tooling (CI annotations, the flow_table bench,
//! code-scanning upload) parses these; any change to field names,
//! field order, indentation, or the footer must show up here as a
//! deliberate diff.

use adore_lint::config::{Config, L2Scope};
use adore_lint::{lint_source, render_json, render_sarif, Report};

fn pragma_line(rest: &str) -> String {
    format!("// {} {rest}", concat!("adore-", "lint:"))
}

#[test]
fn json_output_is_pinned_byte_for_byte() {
    let cfg = Config {
        l1_crates: vec!["crates/core".into()],
        ..Config::default()
    };
    let src = format!(
        "fn f() {{\n    let t = Instant::now(); {}\n    let m = HashMap::new();\n}}\n",
        pragma_line(r#"allow(L1, reason = "timing \"display\" only")"#),
    );
    let findings = lint_source("crates/core/src/a.rs", &src, &cfg);
    let report = Report {
        findings,
        files_scanned: 1,
    };
    let expected = concat!(
        "{\n",
        "  \"findings\": [\n",
        "    {\"rule\": \"L1\", \"file\": \"crates/core/src/a.rs\", \"line\": 2, ",
        "\"col\": 13, \"msg\": \"ambient clock `Instant::now` in a protocol crate\", ",
        "\"suppressed\": true, \"reason\": \"timing \\\\\\\"display\\\\\\\" only\"},\n",
        "    {\"rule\": \"L1\", \"file\": \"crates/core/src/a.rs\", \"line\": 3, ",
        "\"col\": 13, \"msg\": \"hash-ordered collection `HashMap` in a protocol crate (use BTreeMap/BTreeSet)\", ",
        "\"suppressed\": false}\n",
        "  ],\n",
        "  \"files_scanned\": 1,\n",
        "  \"active\": 1,\n",
        "  \"suppressed\": 1\n",
        "}\n",
    );
    assert_eq!(render_json(&report), expected);
}

#[test]
fn conc_findings_json_is_pinned_byte_for_byte() {
    let cfg = Config {
        l9_crates: vec!["crates/adored".into()],
        l10_scopes: vec![L2Scope {
            file: "crates/adored/src/x.rs".into(),
            functions: vec!["*".into()],
        }],
        l11_crates: vec!["crates/adored".into()],
        l12_crates: vec!["crates/adored".into()],
        l12_scopes: vec![L2Scope {
            file: "crates/adored/src/x.rs".into(),
            functions: vec!["*".into()],
        }],
        ..Config::default()
    };
    let src = "fn f(state: M, tx: T) {\n    let a = state.lock().unwrap();\n    \
               let b = state.lock().unwrap();\n    thread::sleep(d);\n    \
               tx.try_send(e);\n    use3(a, b);\n}\n";
    let findings = lint_source("crates/adored/src/x.rs", src, &cfg);
    let report = Report {
        findings,
        files_scanned: 1,
    };
    let expected = concat!(
        "{\n",
        "  \"findings\": [\n",
        "    {\"rule\": \"L10\", \"file\": \"crates/adored/src/x.rs\", \"line\": 2, ",
        "\"col\": 26, \"msg\": \"`lock().unwrap()` on `state` in a long-lived thread scope ",
        "panics on poisoning: recover via a typed path ",
        "(`unwrap_or_else(PoisonError::into_inner)` + journal) instead\", ",
        "\"suppressed\": false},\n",
        "    {\"rule\": \"L9\", \"file\": \"crates/adored/src/x.rs\", \"line\": 3, ",
        "\"col\": 19, \"msg\": \"lock `state` re-acquired while already held ",
        "(acquired at crates/adored/src/x.rs:2): std::sync::Mutex is not reentrant ",
        "— this deadlocks\", \"suppressed\": false},\n",
        "    {\"rule\": \"L10\", \"file\": \"crates/adored/src/x.rs\", \"line\": 3, ",
        "\"col\": 26, \"msg\": \"`lock().unwrap()` on `state` in a long-lived thread scope ",
        "panics on poisoning: recover via a typed path ",
        "(`unwrap_or_else(PoisonError::into_inner)` + journal) instead\", ",
        "\"suppressed\": false},\n",
        "    {\"rule\": \"L11\", \"file\": \"crates/adored/src/x.rs\", \"line\": 4, ",
        "\"col\": 13, \"msg\": \"blocking call `sleep` while holding lock `state` ",
        "(acquired at crates/adored/src/x.rs:3): a stalled peer holds up every thread ",
        "needing the lock\", \"suppressed\": false},\n",
        "    {\"rule\": \"L12\", \"file\": \"crates/adored/src/x.rs\", \"line\": 5, ",
        "\"col\": 8, \"msg\": \"`try_send` result discarded on a hot path: the overflow ",
        "(shed) outcome must be handled explicitly\", \"suppressed\": false}\n",
        "  ],\n",
        "  \"files_scanned\": 1,\n",
        "  \"active\": 5,\n",
        "  \"suppressed\": 0\n",
        "}\n",
    );
    assert_eq!(render_json(&report), expected);
}

#[test]
fn sarif_output_is_pinned_byte_for_byte() {
    let cfg = Config {
        l1_crates: vec!["crates/core".into()],
        ..Config::default()
    };
    let src = format!(
        "fn f() {{\n    let t = Instant::now(); {}\n    let m = HashMap::new();\n}}\n",
        pragma_line(r#"allow(L1, reason = "timing display only")"#),
    );
    let findings = lint_source("crates/core/src/a.rs", &src, &cfg);
    let report = Report {
        findings,
        files_scanned: 1,
    };
    let expected = concat!(
        "{\n",
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n",
        "  \"version\": \"2.1.0\",\n",
        "  \"runs\": [\n",
        "    {\n",
        "      \"tool\": {\n",
        "        \"driver\": {\n",
        "          \"name\": \"adore-lint\",\n",
        "          \"informationUri\": \"https://github.com/adore/adore\",\n",
        "          \"rules\": [\n",
        "            {\"id\": \"L1\", \"shortDescription\": {\"text\": \"L1 — determinism\"}}\n",
        "          ]\n",
        "        }\n",
        "      },\n",
        "      \"results\": [\n",
        "        {\n",
        "          \"ruleId\": \"L1\",\n",
        "          \"level\": \"warning\",\n",
        "          \"message\": {\"text\": \"ambient clock `Instant::now` in a protocol crate\"},\n",
        "          \"locations\": [\n",
        "            {\n",
        "              \"physicalLocation\": {\n",
        "                \"artifactLocation\": {\"uri\": \"crates/core/src/a.rs\"},\n",
        "                \"region\": {\"startLine\": 2, \"startColumn\": 13}\n",
        "              }\n",
        "            }\n",
        "          ],\n",
        "          \"suppressions\": [{\"kind\": \"inSource\", \"justification\": \"timing display only\"}]\n",
        "        },\n",
        "        {\n",
        "          \"ruleId\": \"L1\",\n",
        "          \"level\": \"warning\",\n",
        "          \"message\": {\"text\": \"hash-ordered collection `HashMap` in a protocol crate (use BTreeMap/BTreeSet)\"},\n",
        "          \"locations\": [\n",
        "            {\n",
        "              \"physicalLocation\": {\n",
        "                \"artifactLocation\": {\"uri\": \"crates/core/src/a.rs\"},\n",
        "                \"region\": {\"startLine\": 3, \"startColumn\": 13}\n",
        "              }\n",
        "            }\n",
        "          ]\n",
        "        }\n",
        "      ],\n",
        "      \"properties\": {\"filesScanned\": 1, \"active\": 1, \"suppressed\": 1}\n",
        "    }\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(render_sarif(&report), expected);
}

#[test]
fn empty_report_sarif_has_empty_rules_and_results() {
    let report = Report {
        findings: Vec::new(),
        files_scanned: 42,
    };
    let sarif = render_sarif(&report);
    assert!(sarif.contains("\"rules\": [\n          ]"), "{sarif}");
    assert!(sarif.contains("\"results\": [\n      ]"), "{sarif}");
    assert!(
        sarif.contains("\"properties\": {\"filesScanned\": 42, \"active\": 0, \"suppressed\": 0}"),
        "{sarif}"
    );
}

#[test]
fn empty_report_json_is_pinned() {
    let report = Report {
        findings: Vec::new(),
        files_scanned: 42,
    };
    let expected = concat!(
        "{\n",
        "  \"findings\": [\n",
        "  ],\n",
        "  \"files_scanned\": 42,\n",
        "  \"active\": 0,\n",
        "  \"suppressed\": 0\n",
        "}\n",
    );
    assert_eq!(render_json(&report), expected);
}
