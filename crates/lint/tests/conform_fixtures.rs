//! Spec-conformance fixture suite: L13-L15 pinned to exact
//! (rule, line, col) positions through the public `lint_source` entry
//! point, pragma hygiene for the new rules, the workspace pragma-debt
//! pin, and the assertion that the committed IR dump
//! (`results/gcir.json`) matches what `--dump-ir` regenerates.

use std::collections::BTreeMap;
use std::path::PathBuf;

use adore_lint::config::{Config, L13Conform, L14Protected, L2Scope};
use adore_lint::{lint_source, Finding};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(rule, line, col, suppressed)` rows, col 0-based as stored.
fn rows(findings: &[Finding]) -> Vec<(String, usize, usize, bool)> {
    findings
        .iter()
        .map(|f| (f.rule.clone(), f.line, f.col, f.suppressed))
        .collect()
}

#[test]
fn l13_fixture_exact_position_and_witness() {
    let rel = "crates/raft/src/net.rs";
    let cfg = Config {
        l13_conform: vec![L13Conform {
            file: rel.into(),
            handlers: vec!["elect".into()],
            depth: 2,
            max_samples: 10_000,
        }],
        ..Config::default()
    };
    let f = lint_source(rel, &fixture("l13_drift.rs"), &cfg);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(
        (f[0].rule.as_str(), f[0].line, f[0].suppressed),
        ("L13", 7, false),
        "{f:#?}"
    );
    // The message carries a replayable witness: a schedule prefix, the
    // turnstile, and the diverging event.
    assert!(f[0].msg.contains('⊢'), "{}", f[0].msg);
    assert!(f[0].msg.contains("Elect"), "{}", f[0].msg);
}

#[test]
fn l14_fixture_exact_positions_and_pragma() {
    let rel = "crates/raft/src/net.rs";
    let cfg = Config {
        l14_protected: vec![L14Protected {
            file: rel.into(),
            type_name: "Server".into(),
            fields: vec!["commit_len".into(), "log".into()],
            kinds: vec!["quorum".into(), "log-consistency".into()],
        }],
        ..Config::default()
    };
    let f = lint_source(rel, &fixture("l14_guard.rs"), &cfg);
    let expected = vec![
        // `sneak` writes commit_len with no quorum test on its path.
        ("L14".to_string(), 11, 8, false),
        // `waived` is the same shape under a reasoned pragma.
        ("L14".to_string(), 32, 8, true),
    ];
    assert_eq!(rows(&f), expected, "{f:#?}");
    assert_eq!(
        f[1].reason.as_deref(),
        Some("fixture: quorum certificate checked by the caller")
    );
}

#[test]
fn l15_fixture_exact_position() {
    let rel = "crates/adored/src/det/engine.rs";
    let cfg = Config {
        l15_scopes: vec![L2Scope {
            file: rel.into(),
            functions: vec!["finish".into(), "ordered".into()],
        }],
        ..Config::default()
    };
    let f = lint_source(rel, &fixture("l15_emission.rs"), &cfg);
    let expected = vec![
        // `finish` persists after sending; `ordered` stays clean.
        ("L15".to_string(), 10, 8, false),
    ];
    assert_eq!(rows(&f), expected, "{f:#?}");
}

/// The workspace pragma debt, per rule. This is the same total
/// `lint_table` prints; pinning it here means a new suppression (or a
/// silently vanished one) shows up as a deliberate diff.
#[test]
fn workspace_pragma_debt_is_pinned() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_text = std::fs::read_to_string(root.join("adore-lint.toml")).expect("shipped config");
    let cfg = Config::from_toml(&cfg_text).expect("shipped config parses");
    let report = adore_lint::run_lint(&root, &cfg).expect("workspace scans");

    let suppressed: BTreeMap<String, usize> = report
        .tally()
        .into_iter()
        .filter(|(_, (_, s))| *s > 0)
        .map(|(rule, (_, s))| (rule, s))
        .collect();
    let expected: BTreeMap<String, usize> = [
        ("L1", 2),
        ("L2", 3),
        ("L3", 2),
        ("L4", 1),
        ("L6", 6),
        ("L8", 2),
        ("L14", 2),
    ]
    .into_iter()
    .map(|(r, n)| (r.to_string(), n))
    .collect();
    assert_eq!(suppressed, expected, "pragma debt changed — audit the new/removed suppression");
    assert_eq!(report.suppressed_count(), 18);
}

/// `results/gcir.json` is the committed, review-visible form of the
/// extracted IR; it must match what the current extractor produces
/// (ci.sh regenerates and diffs it the same way).
#[test]
fn ir_dump_matches_pinned_results_file() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_text = std::fs::read_to_string(root.join("adore-lint.toml")).expect("shipped config");
    let cfg = Config::from_toml(&cfg_text).expect("shipped config parses");
    let dump = adore_lint::render_ir_dump(&root, &cfg).expect("IR dump renders");
    let pinned = std::fs::read_to_string(root.join("results/gcir.json"))
        .expect("results/gcir.json is committed");
    assert_eq!(
        dump, pinned,
        "results/gcir.json is stale — regenerate with `adore-lint --dump-ir`"
    );
    // The dump is versioned, and the L13-certified protocol handlers
    // (the net.rs section, before the L15 runtime scopes) are fully
    // modeled — no opaque placeholder hiding a handler from the
    // differential scan. L15 scopes may be partial: emission order is
    // checked on whatever paths extract.
    assert!(dump.contains("\"gcir_version\": 1"), "{dump}");
    let net = dump
        .split("\"file\": \"crates/adored")
        .next()
        .expect("net.rs section");
    assert!(!net.contains("\"fully_modeled\": false"), "{net}");
}
