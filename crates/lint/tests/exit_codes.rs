//! End-to-end exit-status contract for the `adore-lint` binary:
//! 0 = clean, 1 = ordinary findings (L1-L15), 2 = integrity errors
//! (malformed pragma P0, unparsable file E0, bad config, usage).
//! ci.sh and external callers branch on these, so they are pinned
//! against tiny throwaway workspaces under `CARGO_TARGET_TMPDIR`.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Builds a one-file workspace `crates/core/src/lib.rs` = `src` with a
/// minimal L1-over-crates/core config, returning its root.
fn workspace(name: &str, src: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let dir = root.join("crates/core/src");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("lib.rs"), src).expect("write source");
    std::fs::write(
        root.join("adore-lint.toml"),
        "[scan]\nroots = [\"crates\"]\n\n[rules.L1]\ncrates = [\"crates/core\"]\n",
    )
    .expect("write config");
    root
}

fn lint(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_adore-lint"))
        .arg("--root")
        .arg(root)
        .arg("--config")
        .arg(root.join("adore-lint.toml"))
        .args(extra)
        .output()
        .expect("binary runs")
}

#[test]
fn clean_workspace_exits_zero() {
    let root = workspace("exit0", "pub fn ok() {}\n");
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn ordinary_findings_exit_one() {
    let root = workspace("exit1", "fn f() {\n    let m = HashMap::new();\n}\n");
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("L1"), "{text}");
}

#[test]
fn malformed_pragma_exits_two() {
    // Assembled at runtime so this test's own source carries no live
    // pragma for the workspace self-scan.
    let src = format!(
        "fn g() {{}} // {} allow(L1)\n",
        concat!("adore-", "lint:")
    );
    let root = workspace("exit2", &src);
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("P0"), "{text}");
}

#[test]
fn unparsable_file_exits_two() {
    let root = workspace("exit2_parse", "fn broken( {\n");
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("E0"), "{text}");
}

#[test]
fn integrity_outranks_ordinary_findings() {
    // Both a P0 and an L1 present: the binary must report 2, not 1.
    let src = format!(
        "fn f() {{\n    let m = HashMap::new();\n}} // {} allow(L1)\n",
        concat!("adore-", "lint:")
    );
    let root = workspace("exit2_both", &src);
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn usage_errors_exit_two() {
    let root = workspace("exit2_usage", "pub fn ok() {}\n");
    for bad in [
        &["--format", "yaml"][..],
        &["--only", "L99"][..],
        &["--frobnicate"][..],
    ] {
        let out = lint(&root, bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?}: {out:?}");
    }
}

#[test]
fn only_filter_narrows_the_exit_status() {
    // The L1 finding is outside the `--only` set, so the run is clean;
    // P0/E0 would still count (covered above).
    let root = workspace("exit_only", "fn f() {\n    let m = HashMap::new();\n}\n");
    let out = lint(&root, &["--only", "L13,L14,L15"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}
