// Known-bad fixture for rule L2 (panic-free recovery). The fixture
// config scopes `recover` and `replay`; `unscoped` shows the same
// patterns passing outside the scope.
pub fn recover(bytes: &[u8]) -> u32 {
    let head = bytes[0];
    let tail = bytes.get(1..).unwrap();
    let word = parse(tail).expect("frame");
    if head == 0 {
        panic!("empty frame");
    }
    assert_eq!(word, 7);
    unreachable!()
}

pub fn replay(log: &[u32]) -> u32 {
    log[log.len() - 1]
}

pub fn unscoped(bytes: &[u8]) -> u8 {
    bytes[0]
}
