// Known-bad fixture for rule L3 (mutation encapsulation). The fixture
// config protects `Server { role, commit_len }` with a different file
// as owner, so every assignment here is a violation; reads and
// comparisons are not.
pub fn usurp(s: &mut Server) {
    s.role = Role::Leader;
    s.commit_len += 1;
    if s.role == Role::Leader {
        observe(s.commit_len);
    }
    let snapshot = Server {
        role: s.role,
        commit_len: s.commit_len,
    };
    consume(snapshot);
}
