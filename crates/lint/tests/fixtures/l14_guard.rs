// Known-bad fixture for L14: an assignment to a protected field whose
// IR path carries no guard of the configured semantic kind. `advance`
// is the compliant shape (quorum test dominates the write); `waived`
// shows the pragma escape hatch with a mandatory reason.

impl Net {
    fn sneak(&mut self, nid: NodeId) {
        let Some(s) = self.servers.get_mut(&nid) else {
            return;
        };
        s.commit_len = 7;
    }

    fn advance(&mut self, nid: NodeId, len: usize) {
        let conf0 = self.conf0.clone();
        let Some(s) = self.servers.get_mut(&nid) else {
            return;
        };
        let Some(ackers) = s.acks.get(&len) else {
            return;
        };
        let config = effective_config(&conf0, &s.log);
        if config.is_quorum(ackers) && len > s.commit_len {
            s.commit_len = len;
        }
    }

    fn waived(&mut self, nid: NodeId) {
        let Some(s) = self.servers.get_mut(&nid) else {
            return;
        };
        s.commit_len = 9; // adore-lint: allow(L14, reason = "fixture: quorum certificate checked by the caller")
    }
}
