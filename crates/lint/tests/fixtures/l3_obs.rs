//! L3 fixture for observability types: construct-protected TraceEvent
//! and registry-owned Metrics fields. Positions asserted in
//! flow_fixtures.rs.

pub fn forged_event() -> TraceEvent {
    TraceEvent {
        seq: 0,
        at_us: 0,
        parent: None,
        kind: EventKind::Heal,
    }
}

pub fn struct_definition_is_not_construction() {
    struct TraceEvent {
        seq: u64,
    }
}

pub fn poke_registry(m: &mut Metrics) {
    m.counters = BTreeMap::new();
    m.histograms.clear();
}

pub fn reading_is_fine(m: &Metrics) -> usize {
    m.counters.len()
}
