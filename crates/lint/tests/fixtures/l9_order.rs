//! L9 fixture: the pump and admin threads take the same two locks in
//! opposite orders, and the stats path re-acquires a lock it already
//! holds (std::sync::Mutex is not reentrant).

fn pump(state: M, counters: M) {
    let st = state.lock().unwrap();
    let ct = counters.lock().unwrap();
    use_both(st, ct);
}

fn admin(state: M, counters: M) {
    let ct = counters.lock().unwrap();
    let st = state.lock().unwrap();
    use_both(st, ct);
}

fn stats(state: M) {
    let a = state.lock().unwrap();
    let b = state.lock().unwrap();
    use_both(a, b);
}
