//! L7 fixture: nondeterminism taint flowing (or not) into protocol
//! sink fields. Exact positions asserted in flow_fixtures.rs.

pub fn direct_sink(s: &mut Server) {
    s.commit_len = thread_rng().gen::<usize>();
}

pub fn rename_chain(s: &mut Server) {
    let r = SystemTime::now();
    let stamp = r;
    s.times = stamp;
}

fn jitter() -> u64 {
    Instant::now().elapsed().as_micros() as u64
}

pub fn helper_return(s: &mut Server) {
    s.commit_len = jitter() as usize;
}

pub fn kill_by_reassign(s: &mut Server) {
    let mut x = thread_rng().gen::<usize>();
    x = 0;
    s.commit_len = x;
}

pub fn branch_join_keeps_taint(s: &mut Server, fast: bool) {
    let mut n = 0;
    if fast {
        n = thread_rng().gen::<usize>();
    }
    s.commit_len = n;
}

pub fn non_sink_field_is_fine(report: &mut Report) {
    report.elapsed = Instant::now();
}
