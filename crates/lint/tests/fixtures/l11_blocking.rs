//! L11 fixture: no guard may live across a blocking call; copying
//! out, dropping, then blocking is the sanctioned shape.

fn reply(clients: M, stream: S) {
    let map = clients.lock().unwrap();
    stream.write_all(map.bytes());
    drop(map);
    stream.flush();
}

fn tick(state: M) {
    let g = state.lock().unwrap();
    thread::sleep(D);
    use_it(g);
}
