//! L6 fixture: guard-before-mutation across CFG shapes. Known-bad and
//! known-good paths, asserted by exact (line, col) in flow_fixtures.rs.

pub fn guarded_all_paths(s: &mut Server, c: &Cfg, n: usize) {
    if c.is_quorum(&s.acks) {
        s.commit_len = n;
    }
}

pub fn branch_skips_guard(s: &mut Server, c: &Cfg, n: usize) {
    if fast_path(n) {
        s.commit_len = n;
    } else if c.is_quorum(&s.acks) {
        s.commit_len = n;
    }
}

fn check_r3(c: &Cfg, acks: &AckSet) -> bool {
    c.is_quorum(acks)
}

fn half_hearted(c: &Cfg, acks: &AckSet, fast: bool) -> bool {
    if fast {
        true
    } else {
        c.is_quorum(acks)
    }
}

pub fn via_guarding_helper(s: &mut Server, c: &Cfg, n: usize) {
    if check_r3(c, &s.acks) {
        s.commit_len = n;
    }
}

pub fn via_partial_helper(s: &mut Server, c: &Cfg, n: usize) {
    if half_hearted(c, &s.acks, true) {
        s.commit_len = n;
    }
}

pub fn match_arm_early_return(s: &mut Server, c: &Cfg, m: Msg, n: usize) {
    match m {
        Msg::Nack => return,
        Msg::Ack => {
            if !c.is_quorum(&s.acks) {
                return;
            }
            s.commit_len = n;
        }
        Msg::Fast => {
            s.commit_len = n;
        }
    }
}

pub fn guard_dominates_loop(s: &mut Server, c: &Cfg, items: &[usize]) {
    if !c.is_quorum(&s.acks) {
        return;
    }
    for n in items {
        s.commit_len = *n;
    }
}

pub fn guard_survives_question(s: &mut Server, c: &Cfg) -> Option<()> {
    if !c.is_quorum(&s.acks) {
        return None;
    }
    let n = c.quorum_len()?;
    s.commit_len = n;
    Some(())
}

pub fn join_loses_guard(s: &mut Server, c: &Cfg, n: usize, fast: bool) {
    if fast {
        prepare(s);
    } else {
        let _ok = c.is_quorum(&s.acks);
    }
    s.commit_len = n;
}

pub fn second_guard_counts(s: &mut Server, c: &Cfg, other: &Log) {
    if log_up_to_date(other, &s.log) {
        s.log = other.clone();
    }
}
