// Fixture for E0: an unbalanced delimiter makes the file unlexable.
pub fn broken(x: u32 -> u32 {
