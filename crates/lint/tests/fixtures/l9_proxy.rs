//! Distilled locking structure of the netmesis proxy
//! (crates/adored/src/proxy.rs): per-link fault state plus the shared
//! link tally, always acquired state-before-tally. The L9 self-
//! ablation test swaps the order in `apply_admin` and asserts L9
//! pinpoints both acquisition chains; this unmodified copy must scan
//! clean.

fn pump(state: M, tally: M) {
    let st = state.lock().unwrap_or_else(PoisonError::into_inner);
    let tl = tally.lock().unwrap_or_else(PoisonError::into_inner);
    forward(st.mode(), tl);
}

fn apply_admin(state: M, tally: M) {
    let sa = state.lock().unwrap_or_else(PoisonError::into_inner);
    let ta = tally.lock().unwrap_or_else(PoisonError::into_inner);
    reset(sa, ta);
}
