// Known-bad fixture for L15: a durable emission (Persist/Journal)
// sequenced after an outbound one (Send/Reply) on the same IR path.
// `ordered` is the compliant shape: everything durable first, then the
// network.

impl Node {
    fn finish(&mut self, st: Step) -> Vec<Output> {
        let mut out = Vec::new();
        out.extend(st.sends.into_iter().map(|(to, msg)| Output::Send { to, msg }));
        out.push(Output::Persist { bytes });
        out
    }

    fn ordered(&mut self, st: Step) -> Vec<Output> {
        let mut out = Vec::new();
        out.push(Output::Journal(EventKind::StateDelta { nid: self.nid.0 }));
        out.push(Output::Persist { bytes });
        out.extend(st.sends.into_iter().map(|(to, msg)| Output::Send { to, msg }));
        out.extend(st.replies.into_iter().map(|(conn, reply)| Output::Reply { conn, reply }));
        out
    }
}
