// Known-bad fixture for rule L1 (determinism). Scanned by the fixture
// tests with a config that puts it inside an L1 crate; excluded from
// the real workspace scan by adore-lint.toml.
use std::collections::HashMap;

pub fn frontier() -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    m
}

pub fn dedup(xs: &[u32]) -> usize {
    let s: HashSet<u32> = xs.iter().copied().collect();
    s.len()
}

pub fn stamp() -> u64 {
    let _wall = SystemTime::now();
    let _mono = Instant::now();
    let mut rng = thread_rng();
    rng.gen()
}

pub fn fine() -> Instant {
    // `Instant` as a type, with no ambient `::now`, is allowed.
    later(Duration::from_millis(1))
}
