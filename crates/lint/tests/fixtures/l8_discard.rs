//! L8 fixture: discarded fallible results inside a recovery scope.
//! Exact positions asserted in flow_fixtures.rs.

fn parse_payload(bytes: &[u8]) -> Option<Rec> {
    decode(bytes)
}

fn sync_mirror(state: &mut State) -> Result<(), WalError> {
    state.mirror.refresh()
}

fn advance(state: &mut State) {
    state.cursor += 1;
}

pub fn recover(state: &mut State) -> Result<(), WalError> {
    let _ = parse_payload(&state.buf);
    sync_mirror(state);
    remote_sync(state);
    advance(state);
    let rec = parse_payload(&state.buf);
    if let Some(r) = rec {
        state.install(r);
    }
    sync_mirror(state)?;
    sync_mirror(state)
}

pub fn unrelated(state: &mut State) {
    let _ = parse_payload(&state.buf);
    sync_mirror(state);
}
