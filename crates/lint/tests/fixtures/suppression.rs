// Fixture for the suppression pragma: both placement forms, plus the
// malformed variants that become P0 findings.
pub fn timed() {
    let start = Instant::now(); // adore-lint: allow(L1, reason = "timing display only")
    // adore-lint: allow(L1, reason = "probe map is never iterated")
    let m = HashMap::new();
    let s = HashSet::new();
    consume(start, m, s);
}

pub fn bad_pragmas() {
    let a = HashMap::new(); // adore-lint: allow(L1)
    // adore-lint: allow(reason = "no rules listed")
    let b = HashMap::new();
    let c = HashMap::new(); // adore-lint: allow(L1, reason = "")
    consume(a, b, c);
}
