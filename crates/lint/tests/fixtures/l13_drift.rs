// Known-bad fixture for L13: `elect` ignores the election entirely, so
// the extracted guarded-command IR predicts an unchanged state while
// the checker's transition system makes the candidate a leader. The
// differential scan reports the drift with a replayable witness.

impl Net {
    fn elect(&mut self, _nid: NodeId) {}
}
