// Known-bad fixture for rule L4 (certificate hygiene): a verdict type
// without #[must_use], a dropped check_* statement, and a `let _ =`
// discard. Consuming uses are legal.
pub enum Violation {
    Divergence,
}

pub fn audit(s: &State) {
    check_safety(s);
    let _ = certify_commit(s);
    let v = check_safety(s);
    handle(v);
    if check_safety(s).is_none() {
        act();
    }
    return certify_commit(s);
}
