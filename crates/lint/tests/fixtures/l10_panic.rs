//! L10 fixture: a long-lived event loop must adopt poisoning through
//! a typed path, never unwrap()/expect() it into a thread death.

fn event_loop(alpha: M, beta: M, gamma: M) {
    let a = alpha.lock().unwrap();
    let b = beta.lock().expect("poisoned");
    let c = gamma.lock().unwrap_or_else(PoisonError::into_inner);
    use_all(a, b, c);
}
