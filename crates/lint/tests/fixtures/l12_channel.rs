//! L12 fixture: protocol-path channels must be bounded and hot-path
//! sends must be try_send with the shed outcome consumed.

fn wire(tx: T) {
    let (atx, arx) = mpsc::channel();
    tx.send(Ping).unwrap();
    let _ = tx.try_send(Ping);
    tx.try_send(Ping);
    match tx.try_send(Ping) {
        Ok(()) => {}
        Err(e) => shed(e),
    }
    consume(atx, arx);
}
