//! Concurrency-discipline fixture suite: L9-L12 pinned to exact
//! (rule, line, col) positions, the L9 self-ablation test that reverses
//! one lock-acquisition order in a distilled copy of the netmesis proxy
//! and checks both sites are pinpointed, the pragma-hygiene tests for
//! the new rules, and the assertion that the real threaded runtime
//! scans clean under the shipped configuration.

use std::path::PathBuf;

use adore_lint::config::{Config, L2Scope};
use adore_lint::{lint_source, Finding};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(rule, line, col)` triples, col 0-based as stored.
fn positions(findings: &[Finding]) -> Vec<(String, usize, usize)> {
    findings
        .iter()
        .map(|f| (f.rule.clone(), f.line, f.col))
        .collect()
}

fn conc_config() -> Config {
    Config {
        l9_crates: vec!["crates/adored".into()],
        l10_scopes: vec![L2Scope {
            file: "crates/adored/src/l10_fixture.rs".into(),
            functions: vec!["*".into()],
        }],
        l11_crates: vec!["crates/adored".into()],
        l12_crates: vec!["crates/adored".into()],
        l12_scopes: vec![L2Scope {
            file: "crates/adored/src/l12_fixture.rs".into(),
            functions: vec!["*".into()],
        }],
        ..Config::default()
    }
}

#[test]
fn l9_fixture_exact_positions() {
    let src = fixture("l9_order.rs");
    let f = lint_source("crates/adored/src/l9_fixture.rs", &src, &conc_config());
    let expected = vec![
        // pump: counters acquired while state held — one half of the
        // cycle admin's reversed order completes.
        ("L9".to_string(), 7, 22),
        // admin: state acquired while counters held — the other half.
        ("L9".to_string(), 13, 19),
        // stats: state re-acquired while already held; std's Mutex is
        // not reentrant, so this deadlocks without any second thread.
        ("L9".to_string(), 19, 18),
    ];
    assert_eq!(positions(&f), expected, "{f:#?}");
}

#[test]
fn l10_fixture_exact_positions() {
    let src = fixture("l10_panic.rs");
    let f = lint_source("crates/adored/src/l10_fixture.rs", &src, &conc_config());
    let expected = vec![
        // unwrap() and expect() panic the thread on poisoning; the
        // unwrap_or_else(PoisonError::into_inner) line is the typed
        // path and stays clean.
        ("L10".to_string(), 5, 25),
        ("L10".to_string(), 6, 24),
    ];
    assert_eq!(positions(&f), expected, "{f:#?}");
}

#[test]
fn l11_fixture_exact_positions() {
    let src = fixture("l11_blocking.rs");
    let f = lint_source("crates/adored/src/l11_fixture.rs", &src, &conc_config());
    let expected = vec![
        // reply: socket write while the client-map guard is live; the
        // post-drop flush on line 8 is clean.
        ("L11".to_string(), 6, 11),
        // tick: sleeping while holding the state guard.
        ("L11".to_string(), 13, 12),
    ];
    assert_eq!(positions(&f), expected, "{f:#?}");
}

#[test]
fn l12_fixture_exact_positions() {
    let src = fixture("l12_channel.rs");
    let f = lint_source("crates/adored/src/l12_fixture.rs", &src, &conc_config());
    let expected = vec![
        // Unbounded channel() on a protocol path.
        ("L12".to_string(), 5, 27),
        // Blocking send on a hot path.
        ("L12".to_string(), 6, 7),
        // try_send with the shed outcome explicitly discarded...
        ("L12".to_string(), 7, 15),
        // ...and implicitly dropped; the match on line 9 consumes the
        // outcome and stays clean.
        ("L12".to_string(), 8, 7),
    ];
    assert_eq!(positions(&f), expected, "{f:#?}");
}

// ---------------------------------------------------------------------------
// Self-ablation: reverse one acquisition order in the distilled proxy
// copy and check L9 pinpoints both chains.
// ---------------------------------------------------------------------------

fn unsuppressed_l9(src: &str) -> Vec<(usize, usize)> {
    lint_source("crates/adored/src/proxy_fixture.rs", src, &conc_config())
        .iter()
        .filter(|f| f.rule == "L9" && !f.suppressed)
        .map(|f| (f.line, f.col))
        .collect()
}

#[test]
fn unmodified_proxy_copy_passes_l9() {
    let src = fixture("l9_proxy.rs");
    assert_eq!(unsuppressed_l9(&src), vec![], "consistent order must scan clean");
}

#[test]
fn reversing_one_acquisition_order_pinpoints_both_sites() {
    let src = fixture("l9_proxy.rs");
    let ordered = "    let sa = state.lock().unwrap_or_else(PoisonError::into_inner);\n    \
                   let ta = tally.lock().unwrap_or_else(PoisonError::into_inner);";
    let reversed = "    let ta = tally.lock().unwrap_or_else(PoisonError::into_inner);\n    \
                    let sa = state.lock().unwrap_or_else(PoisonError::into_inner);";
    assert!(src.contains(ordered), "apply_admin's chain moved; update this test");
    let ablated = src.replacen(ordered, reversed, 1);
    assert_eq!(
        unsuppressed_l9(&ablated),
        vec![
            // pump still takes state -> tally: its tally acquisition is
            // now half of a cycle.
            (10, 19),
            // apply_admin now takes tally -> state: the reversed state
            // acquisition is the other half.
            (16, 19),
        ],
        "L9 must pinpoint exactly the two acquisition sites of the cycle"
    );
}

// ---------------------------------------------------------------------------
// Pragma hygiene for the new rules.
// ---------------------------------------------------------------------------

fn pragma_line(rest: &str) -> String {
    format!("// {} {rest}", concat!("adore-", "lint:"))
}

#[test]
fn reasoned_l9_suppression_names_the_lock_and_marks_the_finding() {
    // The reason names the locks and the invariant that makes the
    // order safe — the shape every L9-L12 suppression must take.
    let src = format!(
        "fn stats(state: M) {{\n    let a = state.lock().unwrap();\n    {}\n    \
         let b = state.lock().unwrap();\n    use_both(a, b);\n}}\n",
        pragma_line(
            r#"allow(L9, reason = "state lock: fixture models a reentrant-by-design shim")"#
        )
    );
    let f = lint_source("crates/adored/src/l9_fixture.rs", &src, &conc_config());
    let l9: Vec<&Finding> = f.iter().filter(|f| f.rule == "L9").collect();
    assert_eq!(l9.len(), 1, "{f:#?}");
    assert!(l9[0].suppressed, "{f:#?}");
    assert_eq!(
        l9[0].reason.as_deref(),
        Some("state lock: fixture models a reentrant-by-design shim")
    );
}

#[test]
fn malformed_l9_suppression_stays_p0_and_suppresses_nothing() {
    // Missing reason: the pragma is itself a finding, and the L9 it
    // tried to cover stays active.
    let src = format!(
        "fn stats(state: M) {{\n    let a = state.lock().unwrap();\n    {}\n    \
         let b = state.lock().unwrap();\n    use_both(a, b);\n}}\n",
        pragma_line("allow(L9)")
    );
    let f = lint_source("crates/adored/src/l9_fixture.rs", &src, &conc_config());
    assert!(
        f.iter().any(|f| f.rule == "P0" && !f.suppressed),
        "{f:#?}"
    );
    assert!(
        f.iter().any(|f| f.rule == "L9" && !f.suppressed),
        "{f:#?}"
    );
}

// ---------------------------------------------------------------------------
// The real threaded runtime, under the shipped configuration.
// ---------------------------------------------------------------------------

fn shipped_config() -> Config {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../adore-lint.toml");
    let text = std::fs::read_to_string(&path).expect("read adore-lint.toml");
    Config::from_toml(&text).expect("shipped config parses")
}

fn real_file(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

#[test]
fn real_runtime_files_scan_clean_on_conc_rules() {
    let cfg = shipped_config();
    for rel in [
        "crates/adored/src/node.rs",
        "crates/adored/src/proxy.rs",
        "crates/adored/src/monitor.rs",
        "crates/adored/src/client.rs",
    ] {
        let findings = lint_source(rel, &real_file(rel), &cfg);
        let conc: Vec<&Finding> = findings
            .iter()
            .filter(|f| {
                matches!(f.rule.as_str(), "L9" | "L10" | "L11" | "L12") && !f.suppressed
            })
            .collect();
        assert!(conc.is_empty(), "{rel} has conc findings: {conc:#?}");
    }
}

/// The poisoning `expect`s were fixed, not suppressed: the runtime
/// carries zero L9-L12 pragmas.
#[test]
fn runtime_carries_no_conc_suppressions() {
    let cfg = shipped_config();
    for rel in ["crates/adored/src/node.rs", "crates/adored/src/proxy.rs"] {
        let findings = lint_source(rel, &real_file(rel), &cfg);
        assert!(
            findings
                .iter()
                .all(|f| !matches!(f.rule.as_str(), "L9" | "L10" | "L11" | "L12")
                    || !f.suppressed),
            "{rel} suppresses a conc finding"
        );
    }
}
