//! Faithful reproduction of the paper's Figs. 4 and 12: Raft's original
//! single-server membership-change algorithm (R1 + R2, **no R3**) violates
//! replicated state safety, and Ongaro's R3 fix blocks the offending trace.
//!
//! Unlike the structural variant in `adore-core`, this test uses the real
//! [`SingleNode`] scheme, so `R1⁺` is genuinely enforced throughout — only
//! R3 is toggled, exactly matching the history of the bug.

use adore_core::{
    invariants, node_set, AdoreState, LocalOutcome, NoOpReason, NodeId, PullDecision, PullOutcome,
    PushDecision, PushOutcome, ReconfigGuard, Timestamp,
};
use adore_schemes::SingleNode;

type St = AdoreState<SingleNode, &'static str>;

fn pull_ok(st: &mut St, nid: u32, supp: &[u32], t: u64) -> adore_core::CacheId {
    match st
        .pull(
            NodeId(nid),
            &PullDecision::Ok {
                supporters: node_set(supp.iter().copied()),
                time: Timestamp(t),
            },
        )
        .unwrap()
    {
        PullOutcome::Elected(id) => id,
        other => panic!("expected election, got {other:?}"),
    }
}

fn push_ok(
    st: &mut St,
    nid: u32,
    supp: &[u32],
    target: adore_core::CacheId,
) -> adore_core::CacheId {
    match st
        .push(
            NodeId(nid),
            &PushDecision::Ok {
                supporters: node_set(supp.iter().copied()),
                target,
            },
        )
        .unwrap()
    {
        PushOutcome::Committed(id) => id,
        other => panic!("expected commit, got {other:?}"),
    }
}

/// Drives the Fig. 4 schedule up to the point where the flawed algorithm
/// diverges; returns the state just before S1's final election.
fn fig4_prefix(guard: ReconfigGuard) -> (St, adore_core::CacheId) {
    let mut st: St = AdoreState::new(SingleNode::new([1, 2, 3, 4]));
    // S1 is the leader of {S1..S4}.
    pull_ok(&mut st, 1, &[1, 2, 3], 1);
    // S1 proposes removing S4 but fails to replicate the RCache.
    let r1 = match st.reconfig(NodeId(1), SingleNode::new([1, 2, 3]), guard) {
        LocalOutcome::Applied(id) => id,
        LocalOutcome::NoOp(reason) => panic!("reconfig unexpectedly blocked: {reason}"),
    };
    // S2 initiates an election and wins with S3 and S4 (a majority of the
    // four-node configuration; none of its voters hold S1's RCache).
    pull_ok(&mut st, 2, &[2, 3, 4], 2);
    // S2 removes S3; with its new configuration {S1, S2, S4}, the command
    // commits once S4 acknowledges it.
    let r2 = match st.reconfig(NodeId(2), SingleNode::new([1, 2, 4]), guard) {
        LocalOutcome::Applied(id) => id,
        LocalOutcome::NoOp(reason) => panic!("reconfig unexpectedly blocked: {reason}"),
    };
    let c2 = push_ok(&mut st, 2, &[2, 4], r2);
    let _ = r1;
    (st, c2)
}

#[test]
fn flawed_single_server_algorithm_loses_committed_data() {
    // Raft's published algorithm: R1 and R2 enforced, no R3.
    let flawed = ReconfigGuard::all().without_r3();
    let (mut st, c2) = fig4_prefix(flawed);
    assert_eq!(invariants::check_safety(&st), Ok(()));
    // S1 initiates another election and receives votes from itself and S3.
    // Its latest configuration is {S1, S2, S3} (from its own uncommitted
    // RCache), and {S1, S3} is a majority of it: S1 wins — without ever
    // learning of S2's committed reconfiguration.
    pull_ok(&mut st, 1, &[1, 3], 3);
    // Both leaders now commit independently: the consistency guarantee is
    // violated, exactly as in Fig. 4(d)/Fig. 12(c).
    let m = match st.invoke(NodeId(1), "overwrite") {
        LocalOutcome::Applied(id) => id,
        LocalOutcome::NoOp(reason) => panic!("invoke blocked: {reason}"),
    };
    let c3 = push_ok(&mut st, 1, &[1, 3], m);
    assert_eq!(
        invariants::check_safety(&st),
        Err(invariants::Violation::CommitsDiverge {
            first: c2,
            second: c3
        })
    );
}

#[test]
fn r3_blocks_the_fig4_trace() {
    // With the full guard, S1's very first reconfiguration attempt is
    // rejected: nothing has been committed at timestamp 1 yet.
    let mut st: St = AdoreState::new(SingleNode::new([1, 2, 3, 4]));
    pull_ok(&mut st, 1, &[1, 2, 3], 1);
    assert_eq!(
        st.reconfig(NodeId(1), SingleNode::new([1, 2, 3]), ReconfigGuard::all()),
        LocalOutcome::NoOp(NoOpReason::R3Violated)
    );
    // After committing a regular command at its own timestamp, the leader
    // may reconfigure — and the resulting state keeps every invariant.
    let m = st.invoke(NodeId(1), "noop").applied().unwrap();
    push_ok(&mut st, 1, &[1, 2, 3], m);
    let out = st.reconfig(
        NodeId(1),
        SingleNode::new([1, 2, 3]).without(NodeId(4)),
        ReconfigGuard::all(),
    );
    assert!(matches!(out, LocalOutcome::Applied(_)));
    assert!(invariants::check_all(&st).is_empty());
}

#[test]
fn r2_blocks_stacked_reconfigurations() {
    let mut st: St = AdoreState::new(SingleNode::new([1, 2, 3, 4]));
    pull_ok(&mut st, 1, &[1, 2, 3], 1);
    let m = st.invoke(NodeId(1), "noop").applied().unwrap();
    push_ok(&mut st, 1, &[1, 2, 3], m);
    // First reconfiguration passes all guards.
    let out = st.reconfig(NodeId(1), SingleNode::new([1, 2, 3]), ReconfigGuard::all());
    assert!(matches!(out, LocalOutcome::Applied(_)));
    // A second, stacked one is stopped by R2 (the first is uncommitted).
    assert_eq!(
        st.reconfig(NodeId(1), SingleNode::new([1, 2]), ReconfigGuard::all()),
        LocalOutcome::NoOp(NoOpReason::R2Violated)
    );
}

#[test]
fn r1_blocks_multi_node_jumps() {
    let mut st: St = AdoreState::new(SingleNode::new([1, 2, 3, 4]));
    pull_ok(&mut st, 1, &[1, 2, 3], 1);
    let m = st.invoke(NodeId(1), "noop").applied().unwrap();
    push_ok(&mut st, 1, &[1, 2, 3], m);
    assert_eq!(
        st.reconfig(NodeId(1), SingleNode::new([1, 2]), ReconfigGuard::all()),
        LocalOutcome::NoOp(NoOpReason::R1Violated)
    );
}

/// The joint-consensus scheme tolerates the Fig. 4 schedule even without
/// R3 being load-bearing for this particular trace shape: the joint phase
/// keeps quorums overlapping. (This does *not* mean R3 is unnecessary for
/// joint consensus in general — only that this specific four-node schedule
/// is blocked earlier, at the quorum level.)
#[test]
fn joint_consensus_blocks_fig4_at_the_quorum_level() {
    use adore_schemes::Joint;
    let flawed = ReconfigGuard::all().without_r3();
    let mut st: AdoreState<Joint, &'static str> = AdoreState::new(Joint::stable([1, 2, 3, 4]));
    let out = st
        .pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2, 3]),
                time: Timestamp(1),
            },
        )
        .unwrap();
    assert!(matches!(out, PullOutcome::Elected(_)));
    // S1 enters the joint phase toward {1,2,3}.
    let joint = Joint::stable([1, 2, 3, 4]).enter_joint(node_set([1, 2, 3]));
    let r1 = match st.reconfig(NodeId(1), joint, flawed) {
        LocalOutcome::Applied(id) => id,
        LocalOutcome::NoOp(reason) => panic!("reconfig blocked: {reason}"),
    };
    let _ = r1;
    // S2's rival election with {2,3,4} under the old stable config works...
    let out = st
        .pull(
            NodeId(2),
            &PullDecision::Ok {
                supporters: node_set([2, 3, 4]),
                time: Timestamp(2),
            },
        )
        .unwrap();
    assert!(matches!(out, PullOutcome::Elected(_)));
    // ... but any commit S2 makes under a joint config toward {1,2,4} needs
    // majorities of BOTH sets, which forces contact with {1,2,3}-majorities.
    let joint2 = Joint::stable([1, 2, 3, 4]).enter_joint(node_set([1, 2, 4]));
    let r2 = match st.reconfig(NodeId(2), joint2, flawed) {
        LocalOutcome::Applied(id) => id,
        LocalOutcome::NoOp(reason) => panic!("reconfig blocked: {reason}"),
    };
    // {2,4} is NOT a quorum of the joint config (not a majority of
    // {1,2,3,4}), so the Fig. 4 commit cannot happen.
    let out = st
        .push(
            NodeId(2),
            &PushDecision::Ok {
                supporters: node_set([2, 4]),
                target: r2,
            },
        )
        .unwrap();
    assert_eq!(out, PushOutcome::NoQuorum);
}
