//! Byzantine-sized quorums (§9, future work).
//!
//! The paper closes by observing that BFT protocols like HotStuff "use
//! larger quorum sizes ... but their safety ultimately still relies on a
//! logical tree of commands with overlapping quorums", and expects an
//! ADORE-like model to work there too. This scheme realizes the quorum
//! arithmetic: over `n = 3f + 1` replicas, quorums of size `2f + 1`
//! guarantee that any two quorums intersect in at least `f + 1` replicas —
//! enough honest overlap to prevent branching even when `f` members lie.
//!
//! The replicas themselves remain benign here (ADORE models benign faults;
//! extending the *oracles* to adversarial behavior is beyond quorum
//! arithmetic), so what is validated is exactly what the paper's OVERLAP
//! assumption needs — with the stronger `f + 1` intersection checked on
//! top. Membership changes follow the single-node rule, constrained to
//! sizes of the form `3f + 1`.

use serde::{Deserialize, Serialize};

use adore_core::{node_set, Configuration, NodeSet};

/// A `3f + 1`-member configuration with `2f + 1`-sized quorums.
///
/// # Examples
///
/// ```
/// use adore_core::{node_set, Configuration};
/// use adore_schemes::ByzantineQuorum;
///
/// let cf = ByzantineQuorum::new([1, 2, 3, 4]); // f = 1
/// assert_eq!(cf.fault_tolerance(), 1);
/// assert!(cf.is_quorum(&node_set([1, 2, 3])));
/// assert!(!cf.is_quorum(&node_set([1, 2])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ByzantineQuorum {
    members: NodeSet,
}

impl ByzantineQuorum {
    /// Creates a configuration over the given node numbers.
    ///
    /// # Panics
    ///
    /// Panics unless the member count has the form `3f + 1` with `f ≥ 0`.
    #[must_use]
    pub fn new<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        let members = node_set(ids);
        assert!(
            !members.is_empty() && members.len() % 3 == 1,
            "membership must have the form 3f + 1"
        );
        ByzantineQuorum { members }
    }

    /// The number of tolerated faulty replicas (`f`).
    #[must_use]
    pub fn fault_tolerance(&self) -> usize {
        (self.members.len() - 1) / 3
    }

    /// The quorum size (`2f + 1`).
    #[must_use]
    pub fn quorum_size(&self) -> usize {
        2 * self.fault_tolerance() + 1
    }

    /// Checks the BFT-strength overlap **within one configuration**: two
    /// quorums of the same configuration share at least `f + 1` members
    /// (`2(2f+1) − (3f+1) = f+1`), which is what a Byzantine extension
    /// relies on to out-vote `f` liars.
    ///
    /// Across *different* (`R1⁺`-related) configurations only the basic
    /// OVERLAP (≥ 1) survives — e.g. a `2f+1` quorum of a `3f+1` set and a
    /// `2f'+1` quorum of the containing `3f'+1` set can intersect in a
    /// single node. A genuinely Byzantine reconfiguration scheme therefore
    /// needs a stronger `R1⁺` than size adjacency; this observation — made
    /// checkable here — is exactly where the paper's §9 "we expect an
    /// ADORE-like model would also work" would need the additional care.
    #[must_use]
    pub fn overlap_exceeds_f(&self, other: &Self, q1: &NodeSet, q2: &NodeSet) -> bool {
        if !self.r1_plus(other) || !self.is_quorum(q1) || !other.is_quorum(q2) {
            return true;
        }
        let required = if self == other {
            self.fault_tolerance() + 1
        } else {
            1
        };
        q1.intersection(q2).count() >= required
    }
}

impl Configuration for ByzantineQuorum {
    fn members(&self) -> NodeSet {
        self.members.clone()
    }

    fn is_quorum(&self, s: &NodeSet) -> bool {
        s.intersection(&self.members).count() >= self.quorum_size()
    }

    fn r1_plus(&self, next: &Self) -> bool {
        // Identity, or a full 3-node step between adjacent 3f+1 sizes with
        // the smaller set nested in the larger (one-node steps would leave
        // the 3f+1 form) — and the smaller side must tolerate at least one
        // fault: quorum sizes across an f=0 → f=1 step sum to 1 + 3 = 4,
        // exactly the larger membership, so the pigeonhole fails and
        // quorums like {1} and {2,3,4} are disjoint. The exhaustive
        // validator (`adore_schemes::validate`) found this; in general the
        // step f → f+1 is safe iff (2f+1) + (2f+3) > 3(f+1)+1, i.e. f ≥ 1.
        if self == next {
            return true;
        }
        let (small, large) = if self.members.len() < next.members.len() {
            (&self.members, &next.members)
        } else {
            (&next.members, &self.members)
        };
        large.len() == small.len() + 3 && small.is_subset(large) && small.len() >= 4
    }
}

impl crate::space::ReconfigSpace for ByzantineQuorum {
    fn candidates(&self, universe: &NodeSet) -> Vec<Self> {
        let mut out = Vec::new();
        // Grow by three: every 3-subset of the universe outside members.
        let outside: Vec<_> = universe.difference(&self.members).copied().collect();
        for i in 0..outside.len() {
            for j in (i + 1)..outside.len() {
                for k in (j + 1)..outside.len() {
                    let mut m = self.members.clone();
                    m.extend([outside[i], outside[j], outside[k]]);
                    out.push(ByzantineQuorum { members: m });
                }
            }
        }
        // Shrink by three: every 3-subset of members, provided the
        // remaining cluster still tolerates a fault (f >= 1 — steps
        // touching a singleton are excluded by R1+, see `r1_plus`).
        if self.members.len() >= 7 {
            let inside: Vec<_> = self.members.iter().copied().collect();
            for i in 0..inside.len() {
                for j in (i + 1)..inside.len() {
                    for k in (j + 1)..inside.len() {
                        let mut m = self.members.clone();
                        m.remove(&inside[i]);
                        m.remove(&inside[j]);
                        m.remove(&inside[k]);
                        out.push(ByzantineQuorum { members: m });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ReconfigSpace;
    use adore_core::{check_overlap, check_reflexive};

    #[test]
    fn quorum_arithmetic() {
        let f0 = ByzantineQuorum::new([1]);
        assert_eq!(f0.fault_tolerance(), 0);
        assert_eq!(f0.quorum_size(), 1);
        let f2 = ByzantineQuorum::new(1..=7);
        assert_eq!(f2.fault_tolerance(), 2);
        assert_eq!(f2.quorum_size(), 5);
        assert!(f2.is_quorum(&node_set(1..=5)));
        assert!(!f2.is_quorum(&node_set(1..=4)));
    }

    #[test]
    #[should_panic(expected = "3f + 1")]
    fn wrong_sizes_are_rejected() {
        let _ = ByzantineQuorum::new([1, 2, 3]);
    }

    #[test]
    fn r1_plus_steps_between_adjacent_tolerance_levels() {
        let f1 = ByzantineQuorum::new([1, 2, 3, 4]);
        let f2 = ByzantineQuorum::new(1..=7);
        assert!(check_reflexive(&f1));
        assert!(f1.r1_plus(&f2));
        assert!(f2.r1_plus(&f1));
        // Non-nested or non-adjacent: rejected.
        assert!(!f1.r1_plus(&ByzantineQuorum::new([4, 5, 6, 7])));
        assert!(!ByzantineQuorum::new([1]).r1_plus(&f2));
        // The f=0 -> f=1 step is excluded: {1} and {2,3,4} would be
        // disjoint quorums (found by exhaustive validation).
        assert!(!ByzantineQuorum::new([1]).r1_plus(&f1));
        assert!(!f1.r1_plus(&ByzantineQuorum::new([1])));
    }

    #[test]
    fn overlap_holds_and_is_f_plus_one_within_a_config() {
        let f1 = ByzantineQuorum::new([1, 2, 3, 4]);
        let f2 = ByzantineQuorum::new(1..=7);
        let universe: Vec<u32> = (1..=7).collect();
        for mask_q in 0u64..128 {
            for mask_q2 in 0u64..128 {
                let q = node_set(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask_q & (1 << i) != 0).then_some(n)),
                );
                let q2 = node_set(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask_q2 & (1 << i) != 0).then_some(n)),
                );
                // The assumption the safety proof needs...
                assert!(check_overlap(&f1, &f2, &q, &q2));
                assert!(check_overlap(&f2, &f1, &q, &q2));
                // ... and the BFT-grade f+1 intersection per configuration.
                assert!(f1.overlap_exceeds_f(&f1, &q, &q2));
                assert!(f2.overlap_exceeds_f(&f2, &q, &q2));
                assert!(f1.overlap_exceeds_f(&f2, &q, &q2));
            }
        }
    }

    #[test]
    fn cross_config_overlap_can_be_a_single_node() {
        // The checkable form of the §9 caveat: size-adjacent BFT configs
        // only guarantee singleton overlap.
        let f1 = ByzantineQuorum::new([1, 2, 3, 4]);
        let f2 = ByzantineQuorum::new(1..=7);
        let q1 = node_set([1, 2, 3]);
        let q2 = node_set([3, 4, 5, 6, 7]);
        assert!(f1.is_quorum(&q1) && f2.is_quorum(&q2));
        assert_eq!(q1.intersection(&q2).count(), 1);
    }

    #[test]
    fn candidates_keep_the_3f_plus_1_form() {
        let f1 = ByzantineQuorum::new([1, 2, 3, 4]);
        let universe = node_set(1..=7);
        let cands = f1.candidates(&universe);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(f1.r1_plus(c));
            assert_eq!(c.members().len() % 3, 1);
        }
    }
}
