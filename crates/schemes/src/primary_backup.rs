//! Primary-backup replication (§6, "Primary Backup").
//!
//! One distinguished replica (the primary) must acknowledge every election
//! and commit; passive backups may be added and removed arbitrarily:
//!
//! ```text
//! Config               ≜ N_nid * Set(N_nid)
//! R1⁺((P, _), (P', _)) ≜ P = P'
//! isQuorum(S, (P, _))  ≜ P ∈ S
//! ```
//!
//! All quorums contain the primary, so they trivially intersect. The cost is
//! availability: a crashed primary blocks all progress (the paper suggests
//! layering a majority-managed primary *set* on top; see
//! [`crate::DynamicQuorum`] for such a building block).

use serde::{Deserialize, Serialize};

use adore_core::{node_set, Configuration, NodeId, NodeSet};

/// A primary plus a freely changeable set of passive backups.
///
/// # Examples
///
/// ```
/// use adore_core::{node_set, Configuration, NodeId};
/// use adore_schemes::PrimaryBackup;
///
/// let cf = PrimaryBackup::new(1, [2, 3]);
/// assert!(cf.is_quorum(&node_set([1])));       // primary alone suffices
/// assert!(!cf.is_quorum(&node_set([2, 3])));   // backups alone never do
/// // Backups may change arbitrarily in one step.
/// assert!(cf.r1_plus(&PrimaryBackup::new(1, [4, 5, 6])));
/// assert!(!cf.r1_plus(&PrimaryBackup::new(2, [1, 3])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PrimaryBackup {
    primary: NodeId,
    backups: NodeSet,
}

impl PrimaryBackup {
    /// Creates a configuration with the given primary and backup numbers.
    #[must_use]
    pub fn new<I: IntoIterator<Item = u32>>(primary: u32, backups: I) -> Self {
        let mut backups = node_set(backups);
        backups.remove(&NodeId(primary));
        PrimaryBackup {
            primary: NodeId(primary),
            backups,
        }
    }

    /// The primary replica.
    #[must_use]
    pub fn primary(&self) -> NodeId {
        self.primary
    }

    /// The passive backups (never containing the primary).
    #[must_use]
    pub fn backups(&self) -> &NodeSet {
        &self.backups
    }
}

impl Configuration for PrimaryBackup {
    fn members(&self) -> NodeSet {
        let mut all = self.backups.clone();
        all.insert(self.primary);
        all
    }

    fn is_quorum(&self, s: &NodeSet) -> bool {
        s.contains(&self.primary)
    }

    fn r1_plus(&self, next: &Self) -> bool {
        self.primary == next.primary
    }
}

impl crate::space::ReconfigSpace for PrimaryBackup {
    fn candidates(&self, universe: &NodeSet) -> Vec<Self> {
        // Any backup set over the universe (minus the primary) is reachable
        // in one step; enumerate them all for bounded instances.
        let pool: Vec<NodeId> = universe
            .iter()
            .copied()
            .filter(|n| *n != self.primary)
            .collect();
        let mut out = Vec::new();
        for mask in 0u64..(1 << pool.len()) {
            let backups: NodeSet = pool
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (mask & (1 << i) != 0).then_some(n))
                .collect();
            if backups != self.backups {
                out.push(PrimaryBackup {
                    primary: self.primary,
                    backups,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ReconfigSpace;
    use adore_core::{check_overlap, check_reflexive};

    #[test]
    fn primary_is_in_every_quorum() {
        let cf = PrimaryBackup::new(1, [2, 3]);
        assert!(cf.is_quorum(&node_set([1, 2, 3])));
        assert!(cf.is_quorum(&node_set([1])));
        assert!(!cf.is_quorum(&node_set([2])));
    }

    #[test]
    fn constructor_strips_primary_from_backups() {
        let cf = PrimaryBackup::new(1, [1, 2]);
        assert_eq!(cf.backups(), &node_set([2]));
        assert_eq!(cf.members(), node_set([1, 2]));
    }

    #[test]
    fn overlap_holds_because_quorums_share_the_primary() {
        let a = PrimaryBackup::new(1, [2, 3]);
        let b = PrimaryBackup::new(1, [4, 5]);
        assert!(check_reflexive(&a));
        assert!(a.r1_plus(&b));
        let universe: Vec<u32> = (1..=5).collect();
        for mask_q in 0u64..32 {
            for mask_q2 in 0u64..32 {
                let q = node_set(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask_q & (1 << i) != 0).then_some(n)),
                );
                let q2 = node_set(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask_q2 & (1 << i) != 0).then_some(n)),
                );
                assert!(check_overlap(&a, &b, &q, &q2));
            }
        }
    }

    #[test]
    fn candidates_keep_the_primary_fixed() {
        let cf = PrimaryBackup::new(1, [2]);
        let universe = node_set([1, 2, 3]);
        for c in cf.candidates(&universe) {
            assert_eq!(c.primary(), NodeId(1));
            assert!(cf.r1_plus(&c));
        }
        // {}, {3}, {2,3} — everything except the current {2}.
        assert_eq!(cf.candidates(&universe).len(), 3);
    }
}
