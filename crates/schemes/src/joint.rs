//! Raft's joint consensus (§6, "Raft Joint Consensus").
//!
//! Arbitrary membership changes go through an intermediate *joint*
//! configuration requiring majorities of **both** the old and new member
//! sets:
//!
//! ```text
//! Config        ≜ Set(N_nid) * Option(Set(N_nid))
//! R1⁺(C, C')    ≜ (∃old. C = (old, ⊥) ∧ C' = (old, _)) ∨
//!                 (∃new. C = (_, new) ∧ C' = (new, ⊥))
//! isQuorum(S, (old, new)) ≜ |old| < 2·|S ∩ old| ∧
//!                           (new = ⊥ ∨ |new| < 2·|S ∩ new|)
//! ```

use serde::{Deserialize, Serialize};

use adore_core::{node_set, Configuration, NodeSet};

/// A (possibly joint) Raft configuration.
///
/// A *stable* configuration has only an `old` member set; a *joint*
/// configuration additionally has the incoming `new` set and demands
/// majorities of both.
///
/// # Examples
///
/// ```
/// use adore_core::{node_set, Configuration};
/// use adore_schemes::Joint;
///
/// let stable = Joint::stable([1, 2, 3]);
/// let joint = stable.enter_joint(node_set([3, 4, 5]));
/// // The joint quorum needs majorities of BOTH {1,2,3} and {3,4,5}.
/// assert!(joint.is_quorum(&node_set([1, 3, 4])));
/// assert!(!joint.is_quorum(&node_set([1, 2, 3])));
/// // Leaving the joint phase lands on the new stable configuration.
/// assert!(joint.r1_plus(&Joint::stable([3, 4, 5])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Joint {
    old: NodeSet,
    new: Option<NodeSet>,
}

impl Joint {
    /// A stable (non-joint) configuration over the given node numbers.
    #[must_use]
    pub fn stable<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Joint {
            old: node_set(ids),
            new: None,
        }
    }

    /// A stable configuration from an existing node set.
    #[must_use]
    pub fn stable_set(old: NodeSet) -> Self {
        Joint { old, new: None }
    }

    /// The joint configuration transitioning from `self` (which must be
    /// stable to be `R1⁺`-reachable) to `new`.
    #[must_use]
    pub fn enter_joint(&self, new: NodeSet) -> Self {
        Joint {
            old: self.old.clone(),
            new: Some(new),
        }
    }

    /// Whether this configuration is in the joint phase.
    #[must_use]
    pub fn is_joint(&self) -> bool {
        self.new.is_some()
    }

    /// The stable configuration this joint phase transitions to, or `self`
    /// if already stable.
    #[must_use]
    pub fn leave_joint(&self) -> Self {
        match &self.new {
            Some(new) => Joint {
                old: new.clone(),
                new: None,
            },
            None => self.clone(),
        }
    }

    fn majority(set: &NodeSet, s: &NodeSet) -> bool {
        set.len() < 2 * s.intersection(set).count()
    }
}

impl Configuration for Joint {
    fn members(&self) -> NodeSet {
        let mut all = self.old.clone();
        if let Some(new) = &self.new {
            all.extend(new.iter().copied());
        }
        all
    }

    fn is_quorum(&self, s: &NodeSet) -> bool {
        Self::majority(&self.old, s) && self.new.as_ref().is_none_or(|new| Self::majority(new, s))
    }

    fn r1_plus(&self, next: &Self) -> bool {
        // Stable -> joint keeping the same old set,
        // or joint -> its own stable successor,
        // or no change at all (REFLEXIVE).
        if self == next {
            return true;
        }
        match (&self.new, &next.new) {
            (None, Some(_)) => self.old == next.old,
            (Some(new), None) => *new == next.old,
            _ => false,
        }
    }
}

impl crate::space::ReconfigSpace for Joint {
    fn candidates(&self, universe: &NodeSet) -> Vec<Self> {
        match &self.new {
            // From the joint phase, the only move is to the new stable set.
            Some(_) => vec![self.leave_joint()],
            // From a stable set, enter a joint phase toward any non-empty
            // subset of the universe (bounded instances keep this small).
            None => {
                let nodes: Vec<_> = universe.iter().copied().collect();
                let mut out = Vec::new();
                for mask in 1u64..(1 << nodes.len()) {
                    let new: NodeSet = nodes
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask & (1 << i) != 0).then_some(n))
                        .collect();
                    if new != self.old {
                        out.push(self.enter_joint(new));
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ReconfigSpace;
    use adore_core::{check_overlap, check_reflexive};

    #[test]
    fn stable_quorum_is_plain_majority() {
        let cf = Joint::stable([1, 2, 3]);
        assert!(cf.is_quorum(&node_set([1, 2])));
        assert!(!cf.is_quorum(&node_set([3])));
        assert!(!cf.is_joint());
    }

    #[test]
    fn joint_quorum_needs_both_majorities() {
        let joint = Joint::stable([1, 2, 3]).enter_joint(node_set([4, 5, 6]));
        assert!(joint.is_joint());
        assert!(joint.is_quorum(&node_set([1, 2, 4, 5])));
        assert!(!joint.is_quorum(&node_set([1, 2, 4])));
        assert!(!joint.is_quorum(&node_set([4, 5, 6])));
        assert_eq!(joint.members(), node_set([1, 2, 3, 4, 5, 6]));
    }

    #[test]
    fn r1_plus_walks_stable_joint_stable() {
        let old = Joint::stable([1, 2, 3]);
        let joint = old.enter_joint(node_set([4, 5, 6]));
        let new = Joint::stable([4, 5, 6]);
        assert!(check_reflexive(&old));
        assert!(check_reflexive(&joint));
        assert!(old.r1_plus(&joint));
        assert!(joint.r1_plus(&new));
        // Skipping the joint phase is forbidden.
        assert!(!old.r1_plus(&new));
        // Entering a joint phase with a different old set is forbidden.
        assert!(!old.r1_plus(&Joint::stable([1, 2]).enter_joint(node_set([4, 5, 6]))));
    }

    #[test]
    fn overlap_holds_for_disjoint_membership_swap() {
        // The most adversarial case: completely disjoint old/new sets.
        let old = Joint::stable([1, 2, 3]);
        let joint = old.enter_joint(node_set([4, 5, 6]));
        let universe: Vec<u32> = (1..=6).collect();
        let subsets: Vec<NodeSet> = (0u64..64)
            .map(|mask| {
                node_set(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask & (1 << i) != 0).then_some(n)),
                )
            })
            .collect();
        let new = Joint::stable([4, 5, 6]);
        for q in &subsets {
            for q2 in &subsets {
                assert!(check_overlap(&old, &joint, q, q2));
                assert!(check_overlap(&joint, &new, q, q2));
            }
        }
    }

    #[test]
    fn candidates_respect_the_phase_discipline() {
        let stable = Joint::stable([1, 2]);
        let universe = node_set([1, 2, 3]);
        let from_stable = stable.candidates(&universe);
        assert!(from_stable.iter().all(Joint::is_joint));
        assert!(from_stable.iter().all(|c| stable.r1_plus(c)));
        let joint = stable.enter_joint(node_set([2, 3]));
        assert_eq!(joint.candidates(&universe), vec![Joint::stable([2, 3])]);
    }
}
