//! Exhaustive validation of the REFLEXIVE and OVERLAP assumptions (Fig. 7).
//!
//! ADORE's safety theorem is conditional on the scheme satisfying these two
//! assumptions; the paper discharges them in ~200 lines of Coq per scheme.
//! Here they are *checked exhaustively* over bounded universes: every
//! configuration pair related by `R1⁺` and every pair of supporter subsets
//! of the combined membership. This is the engine behind the `schemes_table`
//! experiment (E4 in `DESIGN.md`).

use adore_core::{Configuration, NodeSet};

/// Outcome of [`validate`]: work done plus any falsifying instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Number of configurations examined.
    pub configs: usize,
    /// Number of `R1⁺`-related ordered configuration pairs.
    pub related_pairs: usize,
    /// Number of `(pair, quorum, quorum)` OVERLAP instances checked.
    pub overlap_instances: u64,
    /// Configurations falsifying REFLEXIVE (as debug strings).
    pub reflexive_failures: Vec<String>,
    /// `(cf, cf2, q, q2)` instances falsifying OVERLAP (as debug strings).
    pub overlap_failures: Vec<String>,
}

impl ValidationReport {
    /// Whether both assumptions held on every checked instance.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.reflexive_failures.is_empty() && self.overlap_failures.is_empty()
    }
}

fn subsets(universe: &NodeSet) -> Vec<NodeSet> {
    let nodes: Vec<_> = universe.iter().copied().collect();
    assert!(nodes.len() <= 20, "universe too large to enumerate");
    (0u64..(1 << nodes.len()))
        .map(|mask| {
            nodes
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (mask & (1 << i) != 0).then_some(n))
                .collect()
        })
        .collect()
}

/// Exhaustively validates REFLEXIVE and OVERLAP over the given
/// configuration population.
///
/// For every ordered pair `(cf, cf2)` with `cf.r1_plus(&cf2)`, every pair of
/// subsets of `members(cf) ∪ members(cf2)` is tested: if both are quorums of
/// their respective configurations they must intersect.
///
/// # Panics
///
/// Panics if a combined membership exceeds 20 nodes (2^20 subsets), which
/// is far beyond any sensible exhaustive instance.
///
/// # Examples
///
/// ```
/// use adore_schemes::{validate, SingleNode};
/// let configs = vec![SingleNode::new([1, 2, 3]), SingleNode::new([1, 2])];
/// let report = validate(&configs);
/// assert!(report.is_valid());
/// assert_eq!(report.configs, 2);
/// ```
#[must_use]
pub fn validate<C: Configuration>(configs: &[C]) -> ValidationReport {
    let mut report = ValidationReport {
        configs: configs.len(),
        related_pairs: 0,
        overlap_instances: 0,
        reflexive_failures: Vec::new(),
        overlap_failures: Vec::new(),
    };
    for cf in configs {
        if !cf.r1_plus(cf) {
            report.reflexive_failures.push(format!("{cf:?}"));
        }
    }
    for cf in configs {
        for cf2 in configs {
            if !cf.r1_plus(cf2) {
                continue;
            }
            report.related_pairs += 1;
            let mut universe = cf.members();
            universe.extend(cf2.members());
            let all_subsets = subsets(&universe);
            for q in &all_subsets {
                if !cf.is_quorum(q) {
                    continue;
                }
                for q2 in &all_subsets {
                    report.overlap_instances += 1;
                    if cf2.is_quorum(q2) && q.intersection(q2).next().is_none() {
                        report
                            .overlap_failures
                            .push(format!("{cf:?} / {cf2:?}: {q:?} ∩ {q2:?} = ∅"));
                    }
                }
            }
        }
    }
    report
}

/// All subset-based configurations over `universe`, for schemes whose
/// population is the powerset of a node universe.
///
/// # Examples
///
/// ```
/// use adore_core::node_set;
/// use adore_schemes::{powerset_configs, SingleNode};
/// let configs = powerset_configs(&node_set([1, 2]), SingleNode::from_set);
/// assert_eq!(configs.len(), 3); // {1}, {2}, {1,2}
/// ```
#[must_use]
pub fn powerset_configs<C>(universe: &NodeSet, make: impl Fn(NodeSet) -> C) -> Vec<C> {
    subsets(universe)
        .into_iter()
        .filter(|s| !s.is_empty())
        .map(make)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SingleNode;
    use adore_core::{node_set, NodeId};

    /// A deliberately broken scheme: quorums are any non-empty set.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct AnyQuorum(NodeSet);

    impl Configuration for AnyQuorum {
        fn members(&self) -> NodeSet {
            self.0.clone()
        }
        fn is_quorum(&self, s: &NodeSet) -> bool {
            s.iter().any(|n| self.0.contains(n))
        }
        fn r1_plus(&self, _next: &Self) -> bool {
            true
        }
    }

    #[test]
    fn valid_scheme_passes() {
        let configs = powerset_configs(&node_set([1, 2, 3, 4]), SingleNode::from_set);
        let report = validate(&configs);
        assert!(report.is_valid(), "{report:?}");
        assert!(report.related_pairs > 0);
        assert!(report.overlap_instances > 0);
    }

    #[test]
    fn broken_scheme_is_caught() {
        let configs = vec![AnyQuorum(node_set([1, 2]))];
        let report = validate(&configs);
        assert!(!report.is_valid());
        assert!(!report.overlap_failures.is_empty());
    }

    #[test]
    fn broken_reflexivity_is_caught() {
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        struct NeverRelated;
        impl Configuration for NeverRelated {
            fn members(&self) -> NodeSet {
                node_set([1])
            }
            fn is_quorum(&self, s: &NodeSet) -> bool {
                s.contains(&NodeId(1))
            }
            fn r1_plus(&self, _next: &Self) -> bool {
                false
            }
        }
        let report = validate(&[NeverRelated]);
        assert_eq!(report.reflexive_failures.len(), 1);
    }
}
