//! Weighted majority quorums (one of the "two other" schemes of §7).
//!
//! Each member carries a voting weight; a quorum is any set whose member
//! weights sum past half the total. `R1⁺` is equality (a static scheme):
//! two strict weighted majorities of the same weight assignment must share
//! a member by a pigeonhole argument on weights, so OVERLAP holds without
//! any constraint beyond REFLEXIVE.
//!
//! This instantiation demonstrates that ADORE's quorum parameter need not
//! be cardinality-based at all.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use adore_core::{Configuration, NodeId, NodeSet};

/// Static membership with per-node voting weights and strict-majority-of-
/// weight quorums.
///
/// # Examples
///
/// ```
/// use adore_core::{node_set, Configuration};
/// use adore_schemes::WeightedMajority;
///
/// // One heavy node (weight 3) and three light ones (weight 1 each).
/// let cf = WeightedMajority::new([(1, 3), (2, 1), (3, 1), (4, 1)]);
/// // The heavy node plus any light one passes 3 + 1 > 6/2.
/// assert!(cf.is_quorum(&node_set([1, 2])));
/// // All light nodes together only reach 3, not > 3.
/// assert!(!cf.is_quorum(&node_set([2, 3, 4])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WeightedMajority {
    weights: BTreeMap<NodeId, u64>,
}

impl WeightedMajority {
    /// Creates a configuration from `(node, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any weight is zero — zero-weight members could never
    /// matter and would bloat the member set.
    #[must_use]
    pub fn new<I: IntoIterator<Item = (u32, u64)>>(weights: I) -> Self {
        let weights: BTreeMap<NodeId, u64> =
            weights.into_iter().map(|(n, w)| (NodeId(n), w)).collect();
        assert!(weights.values().all(|w| *w > 0), "weights must be positive");
        WeightedMajority { weights }
    }

    /// The weight of `node`, or zero for non-members.
    #[must_use]
    pub fn weight(&self, node: NodeId) -> u64 {
        self.weights.get(&node).copied().unwrap_or(0)
    }

    /// The total weight of all members.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.weights.values().sum()
    }
}

impl Configuration for WeightedMajority {
    fn members(&self) -> NodeSet {
        self.weights.keys().copied().collect()
    }

    fn is_quorum(&self, s: &NodeSet) -> bool {
        let weight: u64 = s.iter().map(|n| self.weight(*n)).sum();
        2 * weight > self.total_weight()
    }

    fn r1_plus(&self, next: &Self) -> bool {
        self == next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_core::{check_overlap, check_reflexive, node_set};

    #[test]
    fn quorum_weighs_members_only() {
        let cf = WeightedMajority::new([(1, 2), (2, 1), (3, 1)]);
        assert!(cf.is_quorum(&node_set([1, 2])));
        assert!(!cf.is_quorum(&node_set([2, 3])));
        // Outsiders carry zero weight.
        assert!(!cf.is_quorum(&node_set([9, 10, 11])));
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weights_are_rejected() {
        let _ = WeightedMajority::new([(1, 0)]);
    }

    #[test]
    fn heavy_node_can_dominate() {
        let cf = WeightedMajority::new([(1, 10), (2, 1), (3, 1)]);
        assert!(cf.is_quorum(&node_set([1])));
    }

    #[test]
    fn overlap_holds_exhaustively_for_small_weightings() {
        // All weight assignments over {1,2,3} with weights in 1..=3.
        for w1 in 1..=3u64 {
            for w2 in 1..=3u64 {
                for w3 in 1..=3u64 {
                    let cf = WeightedMajority::new([(1, w1), (2, w2), (3, w3)]);
                    assert!(check_reflexive(&cf));
                    for mask_q in 0u64..8 {
                        for mask_q2 in 0u64..8 {
                            let q = node_set((1..=3u32).filter(|n| mask_q & (1 << (n - 1)) != 0));
                            let q2 = node_set((1..=3u32).filter(|n| mask_q2 & (1 << (n - 1)) != 0));
                            assert!(check_overlap(&cf, &cf, &q, &q2));
                        }
                    }
                }
            }
        }
    }
}
